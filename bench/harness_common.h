#pragma once
// Shared pipeline for the benchmark harnesses: train the three model
// families of the paper on (synthetic) MNIST, measure latencies on the
// host CPU, and assemble the Fig2Evaluator profile.
//
// Every bench accepts overrides via argv ("key=value" pairs) so EXPERIMENTS
// runs can scale the workload: train=N test=N epochs=N niters=N seed=N
// link_ms=F bandwidth_mbps=F.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "sim/scenario.h"
#include "slim/fluid_model.h"
#include "train/trainer_common.h"

namespace fluid::bench {

struct HarnessOptions {
  std::int64_t train_count = 4000;
  std::int64_t test_count = 1000;
  std::int64_t epochs_per_stage = 2;
  std::int64_t niters = 3;
  std::uint64_t seed = 42;
  /// Paper methodology: TCP latency measured offline. Default approximates
  /// the Jetson pair's effective per-message cost.
  double link_latency_ms = 12.0;
  double link_bandwidth_mbps = 100.0;
  std::string data_dir = "data";  // real MNIST used when IDX files exist

  static HarnessOptions FromArgs(int argc, char** argv);
};

/// The three trained systems of the evaluation.
struct TrainedModels {
  slim::FluidNetConfig cfg;
  std::unique_ptr<nn::Sequential> static_model;     // Static DNN
  std::unique_ptr<slim::FluidModel> dynamic_model;  // incremental-trained
  std::unique_ptr<slim::FluidModel> fluid_model;    // nested-trained
  data::Dataset train_set;
  data::Dataset test_set;
  bool real_mnist = false;
};

/// Load data and train all three families (prints progress to stdout).
TrainedModels TrainAll(const HarnessOptions& opts);

/// Latency side of the profile from the calibrated Jetson-class device
/// model (sim::EmulatedJetsonCpu) applied to this library's exact FLOP
/// counts — the substitution for the paper's boards (DESIGN.md §3).
/// Accuracies are left zero.
sim::SystemProfile AnalyticJetsonProfile(const slim::FluidModel& model,
                                         const sim::LinkModel& link);

/// Assemble the full profile: emulated-Jetson latencies + accuracies
/// measured on the trained models' test set.
sim::SystemProfile ProfileFrom(TrainedModels& models,
                               const HarnessOptions& opts);

/// Link model from the options.
sim::LinkModel LinkFrom(const HarnessOptions& opts);

/// Paper reference numbers (Fig. 2) for side-by-side shape comparison.
struct PaperFig2 {
  static constexpr double kStaticThroughput = 11.1;
  static constexpr double kDynamicHtThroughput = 14.4;
  static constexpr double kFluidHtThroughput = 28.3;
  static constexpr double kStaticAccuracy = 98.9;
  static constexpr double kDynamicFullAccuracy = 98.8;
  static constexpr double kDynamicW50Accuracy = 97.6;
  static constexpr double kFluidFullAccuracy = 99.2;
};

}  // namespace fluid::bench
