// Ablation: latency under offered load (open-loop queueing study).
//
// Fig. 2 reports capacity; an operator also needs the latency each mode
// delivers at a given request rate. Poisson arrivals are pushed into each
// mode on the emulated Jetson devices: HA admits one image at a time into
// the pipeline (one logical server at the bottleneck-stage rate), HT is
// two independent servers. The table shows the saturation knees the
// ModeController's capacity thresholds are built from.

#include <cstdio>

#include "core/rng.h"
#include "harness_common.h"
#include "sim/queue_sim.h"

using namespace fluid;

int main(int argc, char** argv) {
  const auto opts = bench::HarnessOptions::FromArgs(argc, argv);
  core::Rng rng(opts.seed);
  slim::FluidModel fluid(slim::FluidNetConfig{},
                         slim::SubnetFamily::PaperDefault(), rng);
  const sim::SystemProfile p =
      bench::AnalyticJetsonProfile(fluid, bench::LinkFrom(opts));

  // HA: the pipeline admits the next image when its slowest stage frees.
  const double ha_service =
      std::max({p.static_front_latency_s / p.master_speed,
                p.link.TransferTime(p.static_cut_bytes),
                p.static_back_latency_s / p.worker_speed});
  // HT: two independent standalone servers.
  const std::vector<double> ht_services{
      p.w50_latency_s / p.master_speed,
      p.upper50_latency_s / p.worker_speed};

  std::printf("== Ablation: latency vs offered load (emulated Jetson) ==\n");
  std::printf("# HA capacity %.1f img/s; HT capacity %.1f img/s\n\n",
              1.0 / ha_service,
              1.0 / ht_services[0] + 1.0 / ht_services[1]);
  std::printf("%-10s | %10s %10s %10s | %10s %10s %10s\n", "load[img/s]",
              "HA mean", "HA p99", "HA util", "HT mean", "HT p99", "HT util");
  std::printf("%s\n", std::string(82, '-').c_str());

  for (const double load :
       {2.0, 5.0, 8.0, 10.0, 11.0, 12.0, 14.0, 20.0, 26.0, 28.0}) {
    sim::QueueSimOptions ha;
    ha.arrival_rate = load;
    ha.service_times_s = {ha_service};
    ha.arrivals = 4000;
    ha.seed = opts.seed;
    const auto ra = sim::SimulateQueue(ha);

    sim::QueueSimOptions ht = ha;
    ht.service_times_s = ht_services;
    const auto rt = sim::SimulateQueue(ht);

    const auto fmt = [](double seconds) { return seconds * 1e3; };
    std::printf("%-10.0f | %9.0fms %9.0fms %9.0f%% | %9.0fms %9.0fms %9.0f%%\n",
                load, fmt(ra.mean_sojourn_s), fmt(ra.p99_sojourn_s),
                ra.utilization * 100, fmt(rt.mean_sojourn_s),
                fmt(rt.p99_sojourn_s), rt.utilization * 100);
  }
  std::printf("\nreading: HA latency explodes as load approaches its "
              "~11 img/s capacity — exactly where the ModeController flips "
              "to HT, which stays responsive to ~28 img/s.\n");
  return 0;
}
