// Ablation: how many outer iterations does Algorithm 1 need?
//
// The paper motivates the outer loop ("reusing the weights ... is
// nontrivial; therefore, we fine-tune all the models for multiple
// iterations") but does not quantify it. This sweep trains a Fluid DyDNN
// with niters = 1..4 and reports per-sub-network accuracy, showing (a) one
// pass leaves the combined 75 %/100 % models degraded by the upper
// retraining, and (b) returns diminish after 2-3 iterations.

#include <cstdio>

#include "core/rng.h"
#include "data/synthetic_mnist.h"
#include "harness_common.h"
#include "train/nested_trainer.h"

using namespace fluid;

int main(int argc, char** argv) {
  auto opts = bench::HarnessOptions::FromArgs(argc, argv);
  // This sweep retrains 4 models; default to a lighter workload than Fig 2.
  if (opts.train_count == 4000) opts.train_count = 2000;
  if (opts.test_count == 1000) opts.test_count = 600;

  std::printf("== Ablation: Algorithm 1 outer iterations (niters) ==\n");
  const data::Dataset train =
      data::MakeSyntheticMnist(opts.train_count, opts.seed, data::SyntheticMnistOptions::Hard());
  const data::Dataset test =
      data::MakeSyntheticMnist(opts.test_count, opts.seed + 1, data::SyntheticMnistOptions::Hard());
  std::printf("# %lld train / %lld test synthetic MNIST, %lld epochs/stage\n\n",
              static_cast<long long>(opts.train_count),
              static_cast<long long>(opts.test_count),
              static_cast<long long>(opts.epochs_per_stage));

  const auto family = slim::SubnetFamily::PaperDefault();
  std::printf("%-7s", "niters");
  for (const auto& spec : family.All()) {
    std::printf("%12s", spec.name.c_str());
  }
  std::printf("\n%s\n", std::string(7 + 12 * 6, '-').c_str());

  for (std::int64_t niters = 1; niters <= 4; ++niters) {
    core::Rng rng(opts.seed + 10);  // same init for every row
    slim::FluidModel model(slim::FluidNetConfig{}, family, rng);
    train::NestedIncrementalTrainer trainer(model);
    train::NestedTrainOptions nopts;
    nopts.niters = niters;
    nopts.stage.epochs = opts.epochs_per_stage;
    nopts.stage.batch_size = 32;
    nopts.stage.learning_rate = 0.02F;
    nopts.stage.shuffle_seed = opts.seed;
    trainer.Fit(train, nullptr, nopts);

    std::printf("%-7lld", static_cast<long long>(niters));
    for (const auto& spec : family.All()) {
      const double acc =
          train::EvaluateSubnet(model, spec, test).accuracy * 100.0;
      std::printf("%11.1f%%", acc);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nreading: columns 75%%/100%% recover as niters grows; the "
              "upper slices stay standalone-usable throughout.\n");
  return 0;
}
