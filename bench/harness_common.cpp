#include "harness_common.h"

#include <cstdio>
#include <cstdlib>

#include "core/rng.h"
#include "data/mnist.h"
#include "train/incremental_trainer.h"
#include "train/nested_trainer.h"
#include "train/static_trainer.h"

namespace fluid::bench {

HarnessOptions HarnessOptions::FromArgs(int argc, char** argv) {
  HarnessOptions opts;
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    kv[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  const auto geti = [&](const char* key, std::int64_t& out) {
    if (kv.contains(key)) out = std::strtoll(kv[key].c_str(), nullptr, 10);
  };
  const auto getd = [&](const char* key, double& out) {
    if (kv.contains(key)) out = std::strtod(kv[key].c_str(), nullptr);
  };
  geti("train", opts.train_count);
  geti("test", opts.test_count);
  geti("epochs", opts.epochs_per_stage);
  geti("niters", opts.niters);
  std::int64_t seed = static_cast<std::int64_t>(opts.seed);
  geti("seed", seed);
  opts.seed = static_cast<std::uint64_t>(seed);
  getd("link_ms", opts.link_latency_ms);
  getd("bandwidth_mbps", opts.link_bandwidth_mbps);
  if (kv.contains("data_dir")) opts.data_dir = kv["data_dir"];
  return opts;
}

sim::LinkModel LinkFrom(const HarnessOptions& opts) {
  sim::LinkModel link;
  link.latency_s = opts.link_latency_ms * 1e-3;
  link.bandwidth_bytes_per_s = opts.link_bandwidth_mbps * 1e6 / 8.0;
  return link;
}

TrainedModels TrainAll(const HarnessOptions& opts) {
  TrainedModels out;
  out.cfg = slim::FluidNetConfig{};  // the paper's model

  auto splits = data::LoadMnistOrSynthetic(
      opts.data_dir, opts.train_count, opts.test_count, opts.seed,
      data::SyntheticMnistOptions::Hard());
  out.train_set = std::move(splits.train);
  out.test_set = std::move(splits.test);
  out.real_mnist = splits.from_real_files;
  std::printf("# dataset: %s (%lld train / %lld test)\n",
              out.real_mnist ? "real MNIST" : "synthetic MNIST",
              static_cast<long long>(out.train_set.size()),
              static_cast<long long>(out.test_set.size()));

  train::TrainOptions stage;
  stage.epochs = opts.epochs_per_stage;
  stage.batch_size = 32;
  stage.learning_rate = 0.02F;
  stage.shuffle_seed = opts.seed;

  // --- Static DNN -------------------------------------------------------
  std::printf("# training Static DNN (width 16)...\n");
  train::StaticTrainer static_trainer(out.cfg, 16, opts.seed + 1);
  {
    train::TrainOptions opts_static = stage;
    // The schedules below see the data niters×stages times; give the
    // static model a comparable total number of passes.
    opts_static.epochs = opts.epochs_per_stage * opts.niters * 2;
    static_trainer.Fit(out.train_set, nullptr, opts_static);
  }
  out.static_model =
      std::make_unique<nn::Sequential>(std::move(static_trainer.model()));

  // --- Dynamic DNN (incremental, MLCAD'19) ------------------------------
  std::printf("# training Dynamic DNN (incremental)...\n");
  {
    core::Rng rng(opts.seed + 2);
    out.dynamic_model = std::make_unique<slim::FluidModel>(
        out.cfg, slim::SubnetFamily::PaperDefault(), rng);
    train::IncrementalTrainer trainer(*out.dynamic_model);
    train::TrainOptions opts_dyn = stage;
    opts_dyn.epochs = opts.epochs_per_stage * opts.niters;
    trainer.Fit(out.train_set, nullptr, opts_dyn);
  }

  // --- Fluid DyDNN (nested incremental, Algorithm 1) ---------------------
  std::printf("# training Fluid DyDNN (nested incremental, niters=%lld)...\n",
              static_cast<long long>(opts.niters));
  {
    core::Rng rng(opts.seed + 3);
    out.fluid_model = std::make_unique<slim::FluidModel>(
        out.cfg, slim::SubnetFamily::PaperDefault(), rng);
    train::NestedIncrementalTrainer trainer(*out.fluid_model);
    train::NestedTrainOptions nopts;
    nopts.niters = opts.niters;
    nopts.stage = stage;
    trainer.Fit(out.train_set, nullptr, nopts);
  }
  return out;
}

sim::SystemProfile AnalyticJetsonProfile(const slim::FluidModel& model,
                                         const sim::LinkModel& link) {
  const auto& cfg = model.config();
  const auto& family = model.family();
  const auto jetson = sim::EmulatedJetsonCpu();
  const slim::ChannelRange full{0, family.max_width()};

  // FLOPs of the static pipeline halves (cut after stage 2 of 3).
  std::int64_t f_front = 0, f_back = 0;
  for (std::int64_t i = 0; i < cfg.num_conv_layers; ++i) {
    const slim::ChannelRange in =
        (i == 0) ? slim::ChannelRange{0, cfg.image_channels} : full;
    const std::int64_t sp = (i == 0) ? cfg.image_size : cfg.SpatialAfter(i - 1);
    const std::int64_t flops =
        model.conv(static_cast<std::size_t>(i)).SliceFlops(in, full, sp, sp);
    (i < 2 ? f_front : f_back) += flops;
  }
  f_back += model.fc().SliceFlops(model.FcColumns(full),
                                  {0, cfg.num_classes});

  sim::SystemProfile p;
  p.link = link;
  p.overlapped_pipeline = true;  // see EmulatedJetsonCpu calibration note
  p.static_front_latency_s = jetson.LatencyFor(f_front);
  p.static_back_latency_s = jetson.LatencyFor(f_back);
  p.static_cut_bytes = family.max_width() * cfg.SpatialAfter(1) *
                       cfg.SpatialAfter(1) *
                       static_cast<std::int64_t>(sizeof(float));
  p.w50_latency_s =
      jetson.LatencyFor(model.SubnetFlops(family.MasterResident()));
  p.upper50_latency_s =
      jetson.LatencyFor(model.SubnetFlops(family.WorkerResident()));
  // The paper measured a small Master/Worker asymmetry (14.4 vs 13.9 img/s
  // for the same-size slices); reproduce it as a worker speed factor.
  p.worker_speed = 0.965;
  return p;
}

sim::SystemProfile ProfileFrom(TrainedModels& models,
                               const HarnessOptions& opts) {
  sim::SystemProfile p =
      AnalyticJetsonProfile(*models.fluid_model, LinkFrom(opts));

  const auto& family = models.fluid_model->family();
  const auto combined = family.Combined();
  const auto l50 = family.MasterResident();
  const auto u50 = family.WorkerResident();
  p.acc_static =
      train::EvaluateModel(*models.static_model, models.test_set).accuracy;
  p.acc_dynamic_full =
      train::EvaluateSubnet(*models.dynamic_model, combined, models.test_set)
          .accuracy;
  p.acc_dynamic_w50 =
      train::EvaluateSubnet(*models.dynamic_model, l50, models.test_set)
          .accuracy;
  p.acc_fluid_full =
      train::EvaluateSubnet(*models.fluid_model, combined, models.test_set)
          .accuracy;
  p.acc_fluid_lower50 =
      train::EvaluateSubnet(*models.fluid_model, l50, models.test_set)
          .accuracy;
  p.acc_fluid_upper50 =
      train::EvaluateSubnet(*models.fluid_model, u50, models.test_set)
          .accuracy;
  return p;
}

}  // namespace fluid::bench
