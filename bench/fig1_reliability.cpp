// Reproduces the reliability matrix of paper Fig. 1(b)/(c) with the LIVE
// distributed runtime: for each model family and failure scenario, deploy
// real models over the in-memory transport, kill a device mid-stream, and
// report whether the system keeps serving.
//
// Expected shape: Static survives nothing; Dynamic survives only a Worker
// failure; Fluid survives either single-device failure.

#include <cstdio>

#include "core/rng.h"
#include "dist/master.h"
#include "dist/worker.h"
#include "harness_common.h"
#include "sim/timeline.h"
#include "train/model_zoo.h"

using namespace fluid;
using namespace std::chrono_literals;

namespace {

struct Cell {
  bool operational = false;
  std::string served_by;
};

// Serve a few images after the failure and report who (if anyone) answers.
Cell RunFluidScenario(bool kill_worker, bool kill_master) {
  const slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  auto [master_end, worker_end] = dist::MakeInMemoryPair();
  dist::WorkerNode worker("worker", cfg, std::move(worker_end));
  worker.Start();
  dist::MasterNode master(cfg);
  master.AttachWorker(std::move(master_end));

  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves = train::SplitConvNet(cfg, 16, combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  master
      .DeployToWorker("upper50", dist::ModelBlueprint::Standalone(cfg, 8),
                      nn::ExtractState(upper))
      .ThrowIfError();
  master
      .DeployToWorker("back", dist::ModelBlueprint::PipelineBack(cfg, 16, 2),
                      nn::ExtractState(halves.back))
      .ThrowIfError();
  master.SetPlan({"lower50", "upper50", "front", "back"});
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(1);
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);

  Cell cell;
  if (kill_worker) worker.Crash();
  if (kill_master) {
    // The master process is gone; the worker's own deployments must still
    // answer (Fig. 1c) — Fluid's upper 50 % is self-sufficient.
    auto logits = worker.LocalInfer("upper50", x);
    cell.operational = logits.ok();
    cell.served_by = cell.operational ? "worker standalone (upper50%)" : "-";
    worker.Stop();
    return cell;
  }
  for (int i = 0; i < 4; ++i) {
    auto reply = master.Infer(x, 300ms);
    if (!reply.ok()) {
      worker.Stop();
      return cell;  // not operational
    }
    cell.served_by = reply->served_by;
  }
  cell.operational = true;
  worker.Stop();
  return cell;
}

Cell RunStaticScenario(bool kill_worker, bool kill_master) {
  // Static weights are split layer-wise; neither half classifies alone.
  Cell cell;
  if (!kill_worker && !kill_master) {
    cell.operational = true;
    cell.served_by = "pipeline";
  } else {
    cell.served_by = "-";
  }
  return cell;
}

Cell RunDynamicScenario(bool kill_worker, bool kill_master) {
  // Dynamic: the master holds the self-sufficient lower 50 %; the worker
  // holds upper weights that depend on the master's.
  Cell cell;
  if (kill_master) {
    cell.served_by = "-";
    return cell;
  }
  cell.operational = true;
  cell.served_by = kill_worker ? "master standalone (50%)" : "pipeline";
  return cell;
}

void PrintRow(const char* name, const Cell& both, const Cell& worker_dead,
              const Cell& master_dead) {
  const auto fmt = [](const Cell& c) {
    return c.operational ? std::string("ALIVE  [") + c.served_by + "]"
                         : std::string("DOWN");
  };
  std::printf("%-8s | %-22s | %-34s | %s\n", name, fmt(both).c_str(),
              fmt(worker_dead).c_str(), fmt(master_dead).c_str());
}

}  // namespace

int main(int, char**) {
  std::printf("== Fig. 1 reliability matrix (live runtime) ==\n\n");
  std::printf("%-8s | %-22s | %-34s | %s\n", "Model", "both online",
              "worker fails", "master fails");
  std::printf("%s\n", std::string(110, '-').c_str());

  PrintRow("Static", RunStaticScenario(false, false),
           RunStaticScenario(true, false), RunStaticScenario(false, true));
  PrintRow("Dynamic", RunDynamicScenario(false, false),
           RunDynamicScenario(true, false), RunDynamicScenario(false, true));
  PrintRow("Fluid", RunFluidScenario(false, false),
           RunFluidScenario(true, false), RunFluidScenario(false, true));

  // Timeline view: a failure + recovery trace under the Fluid policy.
  sim::SystemProfile p;
  p.static_front_latency_s = 0.045;
  p.static_back_latency_s = 0.03;
  p.static_cut_bytes = 3136;
  p.w50_latency_s = 0.07;
  p.upper50_latency_s = 0.072;
  p.acc_static = 0.989;
  p.acc_dynamic_full = 0.988;
  p.acc_dynamic_w50 = 0.976;
  p.acc_fluid_full = 0.992;
  p.acc_fluid_lower50 = 0.989;
  p.acc_fluid_upper50 = 0.988;
  p.link.latency_s = 0.012;
  p.link.bandwidth_bytes_per_s = 12.5e6;
  sim::Fig2Evaluator eval(p);
  const std::vector<sim::AvailabilityEvent> events{
      {20.0, sim::DeviceId::kWorker, false},
      {40.0, sim::DeviceId::kWorker, true},
      {60.0, sim::DeviceId::kMaster, false},
      {80.0, sim::DeviceId::kMaster, true},
  };
  for (const auto type :
       {sim::DnnType::kStatic, sim::DnnType::kDynamic, sim::DnnType::kFluid}) {
    const auto summary = sim::SimulateTimeline(
        eval, type, sim::Mode::kHighThroughput, events, 100.0);
    std::printf("\n-- %s under the failure trace --\n%s",
                std::string(sim::DnnTypeName(type)).c_str(),
                sim::FormatTimeline(summary).c_str());
  }
  return 0;
}
