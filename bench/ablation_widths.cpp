// Ablation: width-family granularity.
//
// The paper fixes four sub-networks ([25,50,75,100] %). This sweep varies
// the family — coarser (2 widths) to finer (8 widths) — and reports every
// sub-network's accuracy, FLOPs and deployable parameter bytes, exposing
// the accuracy/adaptability trade-off that motivates the paper's choice.

#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "data/synthetic_mnist.h"
#include "harness_common.h"
#include "train/nested_trainer.h"

using namespace fluid;

int main(int argc, char** argv) {
  auto opts = bench::HarnessOptions::FromArgs(argc, argv);
  if (opts.train_count == 4000) opts.train_count = 2000;
  if (opts.test_count == 1000) opts.test_count = 600;

  std::printf("== Ablation: sub-network family granularity ==\n\n");
  const data::Dataset train =
      data::MakeSyntheticMnist(opts.train_count, opts.seed, data::SyntheticMnistOptions::Hard());
  const data::Dataset test =
      data::MakeSyntheticMnist(opts.test_count, opts.seed + 1, data::SyntheticMnistOptions::Hard());

  struct FamilyCase {
    const char* label;
    std::vector<std::int64_t> widths;
    std::size_t split;
  };
  const std::vector<FamilyCase> cases = {
      {"coarse (50/100)", {8, 16}, 0},
      {"paper (25/50/75/100)", {4, 8, 12, 16}, 1},
      {"fine (8 widths)", {2, 4, 6, 8, 10, 12, 14, 16}, 3},
  };

  for (const auto& fc : cases) {
    slim::SubnetFamily family(fc.widths, fc.split);
    core::Rng rng(opts.seed + 20);
    slim::FluidModel model(slim::FluidNetConfig{}, family, rng);
    train::NestedIncrementalTrainer trainer(model);
    train::NestedTrainOptions nopts;
    nopts.niters = opts.niters;
    nopts.stage.epochs = opts.epochs_per_stage;
    nopts.stage.batch_size = 32;
    nopts.stage.learning_rate = 0.02F;
    trainer.Fit(train, nullptr, nopts);

    std::printf("-- %s: %zu runnable sub-networks --\n", fc.label,
                family.All().size());
    std::printf("%-12s %10s %12s %12s\n", "subnet", "acc", "MFLOP/img",
                "params[KB]");
    for (const auto& spec : family.All()) {
      const double acc =
          train::EvaluateSubnet(model, spec, test).accuracy * 100.0;
      std::printf("%-12s %9.1f%% %12.3f %12.1f\n", spec.name.c_str(), acc,
                  static_cast<double>(model.SubnetFlops(spec)) / 1e6,
                  static_cast<double>(model.SubnetParamBytes(spec)) / 1024.0);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("reading: finer families adapt in smaller steps but squeeze "
              "more sub-networks into the same shared weights, costing "
              "accuracy at each width.\n");
  return 0;
}
