// google-benchmark microbenchmarks of the kernels every experiment rests
// on: GEMM, conv forward/backward, slimmable slice execution at each paper
// width, the channel-partitioned HA runner, and the wire codec.

#include <benchmark/benchmark.h>

#include "core/gemm.h"
#include "core/qgemm.h"
#include "core/rng.h"
#include "dist/message.h"
#include "nn/checkpoint.h"
#include "nn/conv2d.h"
#include "slim/fluid_model.h"
#include "slim/partitioned.h"
#include "train/model_zoo.h"

using namespace fluid;

namespace {

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto _ : state) {
    core::Gemm(false, false, n, n, n, 1.0F, a.data(), n, b.data(), n, 0.0F,
               c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(16)->Arg(64)->Arg(144)->Arg(256)->Arg(512);

void BM_QGemmInt8(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::Rng rng(1);
  std::vector<std::int8_t> a(static_cast<std::size_t>(n * n));
  std::vector<std::int8_t> b(static_cast<std::size_t>(n * n));
  std::vector<std::int32_t> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) {
    v = static_cast<std::int8_t>(
        static_cast<std::int64_t>(rng.UniformInt(255)) - 127);
  }
  for (auto& v : b) {
    v = static_cast<std::int8_t>(
        static_cast<std::int64_t>(rng.UniformInt(255)) - 127);
  }
  for (auto _ : state) {
    core::QGemmInt8(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  // "FLOP"-equivalent ops (one multiply + one add per k step) so the
  // reported rate compares directly against BM_Gemm's GF/s.
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_QGemmInt8)->Arg(16)->Arg(64)->Arg(144)->Arg(256)->Arg(512);

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t width = state.range(0);
  core::Rng rng(2);
  nn::Conv2d conv(width, width, 3, 1, 1, rng);
  core::Tensor x =
      core::Tensor::UniformRandom({1, width, 14, 14}, rng, -1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_Conv2dForwardBatched(benchmark::State& state) {
  // Batched serving path: the fused lowering turns each fusion group into
  // one [Cout, group·area] GEMM, so throughput/sample should rise with
  // batch until the group size caps it. items == samples.
  const std::int64_t batch = state.range(0);
  core::Rng rng(2);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  core::Tensor x =
      core::Tensor::UniformRandom({batch, 16, 14, 14}, rng, -1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dForwardBatched)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t width = state.range(0);
  core::Rng rng(3);
  nn::Conv2d conv(width, width, 3, 1, 1, rng);
  core::Tensor x =
      core::Tensor::UniformRandom({1, width, 14, 14}, rng, -1, 1);
  core::Tensor g = core::Tensor::Ones({1, width, 14, 14});
  for (auto _ : state) {
    conv.Forward(x, true);
    benchmark::DoNotOptimize(conv.Backward(g));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_SubnetForward(benchmark::State& state) {
  // Single-image inference of each paper sub-network — the quantity the
  // Fig. 2 throughput panel measures.
  static slim::FluidModel model = slim::FluidModel::PaperDefault(5);
  const auto specs = model.family().All();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  core::Rng rng(4);
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(spec, x, false));
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_SubnetForward)->DenseRange(0, 5);

void BM_ExtractedSubnetForward(benchmark::State& state) {
  static slim::FluidModel model = slim::FluidModel::PaperDefault(6);
  nn::Sequential extracted =
      model.ExtractSubnet(model.family().MasterResident());
  core::Rng rng(5);
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extracted.Forward(x, false));
  }
}
BENCHMARK(BM_ExtractedSubnetForward);

void BM_PartitionedHaForward(benchmark::State& state) {
  static slim::FluidModel model = slim::FluidModel::PaperDefault(7);
  slim::PartitionedRunner runner(model);
  core::Rng rng(6);
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(x));
  }
}
BENCHMARK(BM_PartitionedHaForward);

void BM_MessageCodec(benchmark::State& state) {
  core::Rng rng(7);
  const core::Tensor t =
      core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  const dist::Message msg =
      dist::Message::WithTensor(dist::MsgType::kInfer, 1, "m", t);
  for (auto _ : state) {
    const auto bytes = dist::EncodeMessage(msg);
    dist::Message out;
    dist::DecodeMessage(bytes, out).ThrowIfError();
    benchmark::DoNotOptimize(out.payload.data());
  }
}
BENCHMARK(BM_MessageCodec);

void BM_CheckpointSerialize(benchmark::State& state) {
  slim::FluidNetConfig cfg;
  core::Rng rng(8);
  nn::Sequential model = train::BuildConvNet(cfg, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::SerializeState(nn::ExtractState(model)));
  }
}
BENCHMARK(BM_CheckpointSerialize);

}  // namespace

BENCHMARK_MAIN();
