// Reproduces the ACCURACY panel of paper Fig. 2.
//
// Trains all three families on (synthetic) MNIST with the paper's
// schedules — Static: plain SGD; Dynamic: incremental training [MLCAD'19];
// Fluid: nested incremental training (Algorithm 1) — then evaluates every
// deployable configuration on the held-out test set.
//
// Expected shape (paper): all ~98-99 % when the full models run; the 50 %
// models a point or so lower; Static/Dynamic score 0 in the failure cells
// where they cannot operate, while Fluid keeps high accuracy in all cells;
// Fluid HA (99.2) edges out Static (98.9) via the extra-subnet
// regularization.

#include <cstdio>
#include <string>

#include "core/csv.h"
#include "harness_common.h"
#include "sim/scenario.h"
#include "train/trainer_common.h"

using namespace fluid;

int main(int argc, char** argv) {
  const auto opts = bench::HarnessOptions::FromArgs(argc, argv);
  std::string quant_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("quant_json=", 0) == 0) quant_json = arg.substr(11);
  }
  std::printf("== Fig. 2 (accuracy panel) — Fluid DyDNNs, DATE 2024 ==\n");

  auto models = bench::TrainAll(opts);
  auto profile = bench::ProfileFrom(models, opts);
  sim::Fig2Evaluator eval(profile);

  std::printf("\n%s\n", sim::FormatFig2Table(eval.FullGrid()).c_str());

  std::printf("accuracy summary        (this run | paper)\n");
  std::printf("  Static 100%%           : %5.1f%%  | %.1f%%\n",
              profile.acc_static * 100, bench::PaperFig2::kStaticAccuracy);
  std::printf("  Dynamic 100%% (HA)     : %5.1f%%  | %.1f%%\n",
              profile.acc_dynamic_full * 100,
              bench::PaperFig2::kDynamicFullAccuracy);
  std::printf("  Dynamic 50%%           : %5.1f%%  | %.1f%%\n",
              profile.acc_dynamic_w50 * 100,
              bench::PaperFig2::kDynamicW50Accuracy);
  std::printf("  Fluid 100%% (HA)       : %5.1f%%  | %.1f%%\n",
              profile.acc_fluid_full * 100,
              bench::PaperFig2::kFluidFullAccuracy);
  std::printf("  Fluid lower 50%%       : %5.1f%%  | ~98.9%%\n",
              profile.acc_fluid_lower50 * 100);
  std::printf("  Fluid upper 50%%       : %5.1f%%  | ~98.8%%\n",
              profile.acc_fluid_upper50 * 100);

  // The structural claims of the panel, checked explicitly.
  const bool fluid_survives_both =
      eval.Evaluate(sim::DnnType::kFluid, sim::Availability::kOnlyMaster,
                    sim::Mode::kHighThroughput)
          .accuracy > 0.5 &&
      eval.Evaluate(sim::DnnType::kFluid, sim::Availability::kOnlyWorker,
                    sim::Mode::kHighThroughput)
          .accuracy > 0.5;
  const bool static_fails_both =
      eval.Evaluate(sim::DnnType::kStatic, sim::Availability::kOnlyMaster,
                    sim::Mode::kHighAccuracy)
          .accuracy == 0.0 &&
      eval.Evaluate(sim::DnnType::kStatic, sim::Availability::kOnlyWorker,
                    sim::Mode::kHighAccuracy)
          .accuracy == 0.0;
  const bool dynamic_master_only =
      eval.Evaluate(sim::DnnType::kDynamic, sim::Availability::kOnlyMaster,
                    sim::Mode::kHighAccuracy)
          .accuracy > 0.5 &&
      eval.Evaluate(sim::DnnType::kDynamic, sim::Availability::kOnlyWorker,
                    sim::Mode::kHighAccuracy)
          .accuracy == 0.0;

  std::printf("\nstructural checks: fluid survives either failure: %s; "
              "static fails both: %s; dynamic survives master-only: %s\n",
              fluid_survives_both ? "PASS" : "FAIL",
              static_fails_both ? "PASS" : "FAIL",
              dynamic_master_only ? "PASS" : "FAIL");

  // INT8 deployment accuracy: the quantized serving artifact (per-channel
  // int8 weights + on-the-fly activation scales, src/quant/) against its
  // fp32 source, on the same held-out test set. The serve-path criterion
  // is ≤ 1 pp top-1 delta — this is the number BENCH_serving.json records
  // next to the quantized-HA throughput win.
  {
    const auto& family = models.fluid_model->family();
    nn::Sequential fp32 = models.fluid_model->ExtractSubnet(family.Combined());
    nn::Sequential int8 =
        models.fluid_model->ExtractSubnetQuantized(family.Combined());
    const double fp32_acc =
        train::EvaluateModel(fp32, models.test_set).accuracy;
    const double int8_acc =
        train::EvaluateModel(int8, models.test_set).accuracy;
    const double delta_pp = (fp32_acc - int8_acc) * 100.0;
    std::printf("\nint8 deployment accuracy (fluid 100%% subnet): fp32 "
                "%.2f%%, int8 %.2f%%, delta %.2f pp (%s)\n",
                fp32_acc * 100.0, int8_acc * 100.0, delta_pp,
                delta_pp <= 1.0 ? "PASS <= 1pp" : "FAIL > 1pp");
    if (!quant_json.empty()) {
      std::FILE* f = std::fopen(quant_json.c_str(), "w");
      if (f != nullptr) {
        std::fprintf(f,
                     "{\n"
                     " \"fp32_top1\": %.4f,\n"
                     " \"int8_top1\": %.4f,\n"
                     " \"delta_pp\": %.2f\n"
                     "}\n",
                     fp32_acc, int8_acc, delta_pp);
        std::fclose(f);
        std::printf("wrote %s\n", quant_json.c_str());
      }
    }
  }

  // Machine-readable record for EXPERIMENTS.md regeneration.
  core::CsvWriter csv({"model", "devices", "mode", "img_per_s", "accuracy",
                       "deployment"});
  for (const auto& row : eval.FullGrid()) {
    csv.Row()
        .Text(sim::DnnTypeName(row.type))
        .Text(sim::AvailabilityName(row.availability))
        .Text(sim::ModeName(row.mode))
        .Number(row.result.throughput_img_per_s, 2)
        .Number(row.result.accuracy, 4)
        .Text(row.result.note)
        .Done();
  }
  const std::string csv_path = "fig2_results.csv";
  if (csv.WriteTo(csv_path).ok()) {
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
