// Reproduces the THROUGHPUT panel of paper Fig. 2.
//
// Two views are printed:
//  1. The headline panel uses the calibrated Jetson-Xavier-NX-class device
//     model (sim::EmulatedJetsonCpu — ~35.5 MFLOP/s + ~58 ms dispatch
//     overhead, solved from the paper's two measured anchors) applied to
//     this library's exact per-sub-network FLOP counts, plus the
//     offline-measured link model. This is the DESIGN.md §3 substitution
//     for the paper's boards and reproduces Fig. 2's absolute numbers.
//  2. A transparency panel re-derives the same grid from latencies
//     *measured on this host's CPU* (raw, uncalibrated) — the shape (who
//     wins, who survives) is identical; the absolute scale reflects this
//     machine instead of a Jetson.
//
// Expected shape (paper): Static 11.1 img/s both-online and 0 under any
// failure; Dynamic 14.4 HT / survives only Master; Fluid 28.3 HT
// (~2.5× Static, ~2× Dynamic), survives either failure.
//
// Extension — closed-loop serving mode (`closed_loop=1`): instead of the
// simulated panels, spin up a LIVE master + workers fleet in-process and
// measure requests/sec end to end with N concurrent closed-loop clients,
// first over the synchronous one-request-per-RPC path, then over the
// async batched runtime (request queue + coalesced fused batches sharded
// across the fleet). Knobs: clients=N per_client=N workers=N max_batch=N
// max_delay_ms=N json=PATH (writes the numbers for BENCH_serving.json).
//
// Extension — quantized HA serving mode (`ha=1`): a live master + worker
// pair running the HighAccuracy pipeline over the emulated link, serving
// the SAME deployment twice — once with fp32 (wire v2) cut-activation
// frames and once with int8 (wire v3) frames negotiated per-deploy — so
// the printed speedup isolates exactly the cut-activation wire format.
// Includes an OPEN-LOOP Poisson arrival generator (rate=R req/s) with
// p50/p95/p99 latency percentiles next to the closed-loop req/s. Knobs:
// clients=N per_client=N cut=K ha_chunk=N ha_window=N max_batch=N
// rate=R open_requests=N quant_compute=0|1 link_ms=F bandwidth_mbps=F
// json=PATH.
//
// Extension — mixed-SLO serving mode (`mixed=1`): the continuous-batching
// scenario. A live HA pipeline (int8 wire) over the emulated link takes
// BURSTY open-loop traffic (square-wave-modulated Poisson) mixed across
// the three priority classes, each with its own deadline; the
// iteration-level scheduler interleaves requests at ha_chunk granularity,
// so a high-class arrival's time-to-first-chunk never includes the
// residual service of the work ahead of it. Reports per-class
// p50/p95/p99, deadline misses, preemptions, and (orchestrate=1) live
// ModeController HA/HT flips driven by the pool signals. Knobs: rate=R
// requests=N burst=F burst_period_ms=N slo_high_ms/slo_normal_ms/
// slo_low_ms=N max_active=N cut/ha_chunk/ha_window/max_batch link_ms
// bandwidth_mbps orchestrate=0|1 tick_ms=N ha_cap/ht_cap=F json=PATH
// smoke=low|overload (CI gates: low asserts zero deadline misses,
// overload asserts nonzero preemptions).
//
// Extension — wire data-plane mode (`wire=1`): the HT fan-out served
// twice on one fleet — fp32 input shards (wire v2) vs int8 input shards
// (wire v5, int8_input_wire negotiated per-deploy) — isolating the input
// wire format + the vectored batched send path, with per-phase wire
// byte/frame counters and the input quantization's top-1 fidelity. Knobs:
// clients=N per_client=N workers=N max_batch=N max_delay_ms=N link_ms=F
// bandwidth_mbps=F model=slice|full json=PATH.
//
// Extension — cluster scale-out mode (`cluster=1`): the partitioned
// multi-master fleet. For masters=1..N, build N partitions — each its own
// MasterNode + worker over its OWN emulated link (one serialization
// domain per partition) — behind one RequestRouter, and measure aggregate
// req/s closed-loop (16 clients per partition) plus a 3-class open-loop
// Poisson run with per-class latency percentiles. One master is
// link-bound (each coalesced chunk pays the RTT); N masters overlap N
// independent link waits, so the sweep shows the router scaling past the
// single-master serialization domain on the same per-partition link
// budget. Knobs: masters=N clients=N(per partition) per_client=N
// max_batch=N max_active=N open_rate=R(per partition)
// open_requests=N(per partition) slo_high_ms/slo_normal_ms/slo_low_ms=N
// policy=least|hash link_ms=F bandwidth_mbps=F json=PATH.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/alloc_count.h"
#include "core/buffer_pool.h"
#include "core/rng.h"
#include "dist/master.h"
#include "dist/orchestrator.h"
#include "dist/router.h"
#include "dist/worker.h"
#include "harness_common.h"
#include "nn/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quant/quantize.h"
#include "sim/latency.h"
#include "sim/pipeline_sim.h"
#include "train/model_zoo.h"

using namespace fluid;
using namespace std::chrono_literals;

namespace {

// A request input drawn from the float pool (the client half of the
// recycling cycle: the serve path consumes it and the client recycles the
// reply's logits below, so steady state circulates pooled storage).
core::Tensor PooledInput(const core::Tensor& x) {
  return core::AcquireTensorCopy(x);
}

struct ClosedLoopResult {
  double rps = 0;
  // Steady-state heap discipline, measured as operator-new deltas across
  // the timed pass (a short warmup pass first fills pools and grow-only
  // scratch, so these are the per-request figures a long-running server
  // would see).
  double allocs_per_req = 0;
  double bytes_per_req = 0;
};

// Drive `clients` closed-loop threads for `per_client` requests each and
// return aggregate requests/sec plus steady-state allocations/request.
// `infer` must be thread-safe.
template <typename InferFn>
ClosedLoopResult RunClosedLoop(int clients, int per_client,
                               const InferFn& infer) {
  const auto run_pass = [&](int requests_per_client) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        core::Rng rng(1000 + static_cast<std::uint64_t>(c));
        const core::Tensor x =
            core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
        for (int i = 0; i < requests_per_client; ++i) {
          auto reply = infer(x);
          if (!reply.ok()) {
            std::fprintf(stderr, "closed-loop request failed: %s\n",
                         reply.status().ToString().c_str());
            std::abort();
          }
          // Close the pool cycle: the logits' storage feeds the next
          // request's batch instead of going back to the heap.
          core::RecycleTensor(std::move(reply->logits));
        }
      });
    }
    for (auto& t : threads) t.join();
  };

  run_pass(std::min(per_client, 8));  // warm pools / scratch / scheduler
  const core::PoolStats pool0 = core::PoolStatsSnapshot();
  const std::uint64_t allocs0 = core::AllocCount();
  const std::uint64_t bytes0 = core::AllocBytes();
  const auto t0 = std::chrono::steady_clock::now();
  run_pass(per_client);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double n = static_cast<double>(clients) * per_client;
  ClosedLoopResult r;
  r.rps = n / secs;
  r.allocs_per_req = static_cast<double>(core::AllocCount() - allocs0) / n;
  r.bytes_per_req = static_cast<double>(core::AllocBytes() - bytes0) / n;
  const core::PoolStats pool1 = core::PoolStatsSnapshot();
  std::printf("  [pool: %.1f gets/req, %.0f%% hit, %.2f discards/req]\n",
              static_cast<double>(pool1.gets - pool0.gets) / n,
              pool1.gets == pool0.gets
                  ? 100.0
                  : 100.0 * static_cast<double>(pool1.hits - pool0.hits) /
                        static_cast<double>(pool1.gets - pool0.gets),
              static_cast<double>(pool1.discards - pool0.discards) / n);
  return r;
}

struct OpenLoopResult {
  double offered_rps = 0;   // the Poisson rate requested
  double achieved_rps = 0;  // completions over the measured span
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double allocs_per_req = 0;  // heap allocations per request over the run
  double bytes_per_req = 0;
};

/// Open-loop measurement: arrivals are a Poisson process at `rate` req/s
/// (exponential inter-arrival gaps from a fixed seed), latency is
/// scheduled-arrival → completion — so queueing delay counts, which is
/// the point: an open-loop generator keeps offering load while the
/// server falls behind, exposing the latency cliff closed-loop clients
/// (which self-throttle) never show. A collector thread drains futures
/// in submission order — the batched master completes requests in order,
/// so per-future completion timestamps are accurate.
OpenLoopResult RunOpenLoop(dist::MasterNode& master, double rate,
                           int total_requests) {
  using Clock = std::chrono::steady_clock;
  struct Pending {
    std::future<core::StatusOr<dist::InferReply>> future;
    Clock::time_point scheduled;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> pending;
  bool done = false;

  // Latency sample sink: the shared obs log-linear histogram (constant
  // footprint, allocation-free Record) instead of the old sorted vector.
  obs::Histogram lat_hist;
  Clock::time_point last_completion{};
  std::thread collector([&] {
    for (;;) {
      Pending p;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || done; });
        if (pending.empty()) return;
        p = std::move(pending.front());
        pending.pop_front();
      }
      auto reply = p.future.get();
      const auto now = Clock::now();
      if (!reply.ok()) {
        std::fprintf(stderr, "open-loop request failed: %s\n",
                     reply.status().ToString().c_str());
        std::abort();
      }
      core::RecycleTensor(std::move(reply->logits));
      lat_hist.Record(
          std::chrono::duration<double, std::milli>(now - p.scheduled).count());
      last_completion = now;
    }
  });

  core::Rng rng(2024);
  const core::Tensor x =
      core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  const std::uint64_t allocs0 = core::AllocCount();
  const std::uint64_t bytes0 = core::AllocBytes();
  const auto t0 = Clock::now();
  double next_s = 0.0;
  for (int i = 0; i < total_requests; ++i) {
    next_s += -std::log(1.0 - rng.Uniform()) / rate;
    const auto at = t0 + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(next_s));
    std::this_thread::sleep_until(at);
    auto fut = master.InferAsync(PooledInput(x), std::chrono::milliseconds(30000));
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back({std::move(fut), at});
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_one();
  collector.join();

  OpenLoopResult r;
  r.offered_rps = rate;
  r.allocs_per_req = static_cast<double>(core::AllocCount() - allocs0) /
                     total_requests;
  r.bytes_per_req = static_cast<double>(core::AllocBytes() - bytes0) /
                    total_requests;
  const double span_s =
      std::chrono::duration<double>(last_completion - t0).count();
  const obs::Histogram::Snapshot lat = lat_hist.Snap();
  r.achieved_rps = span_s > 0 ? static_cast<double>(lat.count) / span_s : 0;
  r.p50_ms = lat.Quantile(0.50);
  r.p95_ms = lat.Quantile(0.95);
  r.p99_ms = lat.Quantile(0.99);
  return r;
}

// `ha=1`: quantized vs fp32 HighAccuracy serving over the emulated link.
int RunHaServing(int argc, char** argv) {
  std::int64_t clients = 32, per_client = 50;
  std::int64_t max_batch = 32, ha_chunk = 8, ha_window = 16, cut = 1;
  std::int64_t open_requests = 400, quant_compute = 0;
  double rate = 0.0;  // open-loop offered load; 0 = skip the open loop
  double link_ms = 12.0, bandwidth_mbps = 100.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq), val = arg.substr(eq + 1);
    if (key == "clients") clients = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "per_client") per_client = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_batch") max_batch = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "ha_chunk") ha_chunk = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "ha_window") ha_window = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "cut") cut = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "open_requests")
      open_requests = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "quant_compute")
      quant_compute = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "rate") rate = std::strtod(val.c_str(), nullptr);
    if (key == "link_ms") link_ms = std::strtod(val.c_str(), nullptr);
    if (key == "bandwidth_mbps")
      bandwidth_mbps = std::strtod(val.c_str(), nullptr);
    if (key == "json") json_path = val;
  }

  std::printf("== HighAccuracy pipeline: fp32 (wire v2) vs int8 (wire v3) "
              "cut activations ==\n");
  std::printf("# link: %.1f ms/frame + payload at %.0f Mbit/s; cut after "
              "stage %lld; chunk %lld, window %lld, max_batch %lld\n",
              link_ms, bandwidth_mbps, static_cast<long long>(cut),
              static_cast<long long>(ha_chunk),
              static_cast<long long>(ha_window),
              static_cast<long long>(max_batch));

  const slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  const auto combined = fluid.family().Combined();
  const std::int64_t width = combined.range.width();
  nn::Sequential full = fluid.ExtractSubnet(combined);
  auto halves = train::SplitConvNet(cfg, width, full, cut);
  const auto back_state = nn::ExtractState(halves.back);
  std::printf("# cut tensor: %lld floats/sample (%.1f KB fp32, %.1f KB "
              "int8 per %lld-sample chunk)\n\n",
              static_cast<long long>(halves.cut_bytes_per_sample / 4),
              static_cast<double>(halves.cut_bytes_per_sample * ha_chunk) /
                  1024.0,
              static_cast<double>(halves.cut_bytes_per_sample * ha_chunk) /
                  4096.0,
              static_cast<long long>(ha_chunk));

  dist::MasterNode master(cfg);
  auto [master_end, worker_end] = dist::MakeEmulatedLinkPair(
      std::chrono::duration<double>(link_ms * 1e-3),
      bandwidth_mbps * 1e6 / 8.0);
  dist::WorkerNode worker("w0", cfg, std::move(worker_end));
  worker.Start();
  master.AttachWorker(std::move(master_end));

  master.DeployLocal("front", std::move(halves.front));
  auto bp_fp32 = dist::ModelBlueprint::PipelineBack(cfg, width, cut);
  auto bp_int8 = bp_fp32;
  bp_int8.quant.int8_wire = true;
  bp_int8.quant.int8_compute = quant_compute != 0;
  master.DeployToWorker("back_fp32", bp_fp32, back_state, 10000ms)
      .ThrowIfError();
  master.DeployToWorker("back_int8", bp_int8, back_state, 10000ms)
      .ThrowIfError();

  dist::Plan plan;
  plan.pipeline_front = "front";
  plan.pipeline_back = "back_fp32";
  plan.back_worker = 0;
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighAccuracy);

  dist::BatchOptions bopts;
  bopts.max_batch = static_cast<std::size_t>(max_batch);
  bopts.max_delay = std::chrono::milliseconds(0);
  bopts.ha_chunk = static_cast<std::size_t>(ha_chunk);
  bopts.ha_window = static_cast<std::size_t>(ha_window);
  bopts.queue_capacity = 8192;
  master.StartServing(bopts);

  auto closed_loop = [&] {
    return RunClosedLoop(
        static_cast<int>(clients), static_cast<int>(per_client),
        [&](const core::Tensor& x) {
          return master.InferAsync(PooledInput(x), 30000ms).get();
        });
  };

  const ClosedLoopResult fp32 = closed_loop();
  std::printf("closed-loop fp32 HA  : %8.1f req/s   (%.1f allocs, %.0f B "
              "heap/req)\n",
              fp32.rps, fp32.allocs_per_req, fp32.bytes_per_req);
  OpenLoopResult fp32_open;
  if (rate > 0) {
    fp32_open = RunOpenLoop(master, rate, static_cast<int>(open_requests));
    std::printf("open-loop  fp32 HA  : offered %.0f, achieved %6.1f req/s, "
                "latency p50 %.1f / p95 %.1f / p99 %.1f ms, %.1f allocs / "
                "%.0f B heap per req\n",
                fp32_open.offered_rps, fp32_open.achieved_rps,
                fp32_open.p50_ms, fp32_open.p95_ms, fp32_open.p99_ms,
                fp32_open.allocs_per_req, fp32_open.bytes_per_req);
  }

  plan.pipeline_back = "back_int8";
  master.SetPlan(plan);

  const ClosedLoopResult int8 = closed_loop();
  std::printf("closed-loop int8 HA  : %8.1f req/s   (wire v3%s; %.1f allocs, "
              "%.0f B heap/req)\n",
              int8.rps, quant_compute != 0 ? " + int8 compute" : "",
              int8.allocs_per_req, int8.bytes_per_req);
  OpenLoopResult int8_open;
  if (rate > 0) {
    int8_open = RunOpenLoop(master, rate, static_cast<int>(open_requests));
    std::printf("open-loop  int8 HA  : offered %.0f, achieved %6.1f req/s, "
                "latency p50 %.1f / p95 %.1f / p99 %.1f ms, %.1f allocs / "
                "%.0f B heap per req\n",
                int8_open.offered_rps, int8_open.achieved_rps,
                int8_open.p50_ms, int8_open.p95_ms, int8_open.p99_ms,
                int8_open.allocs_per_req, int8_open.bytes_per_req);
  }

  const auto stats = master.stats();
  master.StopServing();
  std::printf("speedup: %.2fx   (quant cut frames %lld, pipeline samples "
              "%lld, failovers %lld)\n",
              int8.rps / fp32.rps,
              static_cast<long long>(stats.quant_cut_frames),
              static_cast<long long>(stats.served_pipeline),
              static_cast<long long>(stats.failovers));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        " \"mode\": \"ha_quant\",\n"
        " \"clients\": %lld,\n"
        " \"per_client\": %lld,\n"
        " \"cut_stage\": %lld,\n"
        " \"ha_chunk\": %lld,\n"
        " \"ha_window\": %lld,\n"
        " \"max_batch\": %lld,\n"
        " \"quant_compute\": %lld,\n"
        " \"link_ms\": %.1f,\n"
        " \"bandwidth_mbps\": %.1f,\n"
        " \"cut_floats_per_sample\": %lld,\n"
        " \"fp32_req_per_s\": %.1f,\n"
        " \"int8_req_per_s\": %.1f,\n"
        " \"speedup\": %.2f,\n"
        " \"fp32_allocs_per_req\": %.2f,\n"
        " \"fp32_bytes_per_req\": %.0f,\n"
        " \"int8_allocs_per_req\": %.2f,\n"
        " \"int8_bytes_per_req\": %.0f,\n"
        " \"open_loop_rate\": %.1f,\n"
        " \"fp32_open\": {\"achieved_req_per_s\": %.1f, \"p50_ms\": %.1f, "
        "\"p95_ms\": %.1f, \"p99_ms\": %.1f, \"allocs_per_req\": %.2f, "
        "\"bytes_per_req\": %.0f},\n"
        " \"int8_open\": {\"achieved_req_per_s\": %.1f, \"p50_ms\": %.1f, "
        "\"p95_ms\": %.1f, \"p99_ms\": %.1f, \"allocs_per_req\": %.2f, "
        "\"bytes_per_req\": %.0f}\n"
        "}\n",
        static_cast<long long>(clients), static_cast<long long>(per_client),
        static_cast<long long>(cut), static_cast<long long>(ha_chunk),
        static_cast<long long>(ha_window), static_cast<long long>(max_batch),
        static_cast<long long>(quant_compute), link_ms, bandwidth_mbps,
        static_cast<long long>(halves.cut_bytes_per_sample / 4), fp32.rps,
        int8.rps, int8.rps / fp32.rps, fp32.allocs_per_req,
        fp32.bytes_per_req, int8.allocs_per_req, int8.bytes_per_req, rate,
        fp32_open.achieved_rps, fp32_open.p50_ms, fp32_open.p95_ms,
        fp32_open.p99_ms, fp32_open.allocs_per_req, fp32_open.bytes_per_req,
        int8_open.achieved_rps, int8_open.p50_ms, int8_open.p95_ms,
        int8_open.p99_ms, int8_open.allocs_per_req, int8_open.bytes_per_req);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  worker.Stop();
  return 0;
}

// ---------------------------------------------------------------------------
// `mixed=1`: continuous batching under mixed-priority bursty traffic.
// ---------------------------------------------------------------------------

// Per-class tallies of the mixed-SLO run. Latencies cover DELIVERED
// requests only; `expired` are requests the scheduler failed
// kDeadlineExceeded without service, `late` are delivered past their SLO.
struct MixedClassTally {
  std::int64_t offered = 0;
  std::int64_t delivered = 0;
  std::int64_t expired = 0;
  std::int64_t late = 0;
  obs::Histogram lat_ms;  // shared obs histogram, not a sorted vector
  double p50 = 0, p95 = 0, p99 = 0;

  void Finish() {
    const obs::Histogram::Snapshot s = lat_ms.Snap();
    p50 = s.Quantile(0.50);
    p95 = s.Quantile(0.95);
    p99 = s.Quantile(0.99);
  }
};

int RunMixedSlo(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  std::int64_t requests = 3000, max_batch = 64, ha_chunk = 8, ha_window = 32;
  std::int64_t cut = 1, max_active = 256, tick_ms = 250, orchestrate = 0;
  double rate = 950.0, burst = 1.6, burst_period_ms = 400.0;
  double link_ms = 12.0, bandwidth_mbps = 100.0;
  double ha_cap = 1300.0, ht_cap = 2600.0;
  std::int64_t slo_ms[3] = {250, 1000, 4000};  // high / normal / low
  std::string json_path, smoke;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq), val = arg.substr(eq + 1);
    if (key == "requests") requests = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_batch") max_batch = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "ha_chunk") ha_chunk = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "ha_window") ha_window = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "cut") cut = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_active") max_active = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "tick_ms") tick_ms = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "orchestrate")
      orchestrate = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_high_ms") slo_ms[0] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_normal_ms")
      slo_ms[1] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_low_ms") slo_ms[2] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "rate") rate = std::strtod(val.c_str(), nullptr);
    if (key == "burst") burst = std::strtod(val.c_str(), nullptr);
    if (key == "burst_period_ms")
      burst_period_ms = std::strtod(val.c_str(), nullptr);
    if (key == "link_ms") link_ms = std::strtod(val.c_str(), nullptr);
    if (key == "bandwidth_mbps")
      bandwidth_mbps = std::strtod(val.c_str(), nullptr);
    if (key == "ha_cap") ha_cap = std::strtod(val.c_str(), nullptr);
    if (key == "ht_cap") ht_cap = std::strtod(val.c_str(), nullptr);
    if (key == "json") json_path = val;
    if (key == "smoke") smoke = val;
  }

  std::printf("== mixed-SLO continuous batching: bursty 3-class traffic on "
              "the HA pipeline (int8 wire) ==\n");
  std::printf("# offered %.0f req/s avg (x%.1f burst every %.0f ms), %lld "
              "requests; SLO high/normal/low = %lld/%lld/%lld ms\n",
              rate, burst, burst_period_ms, static_cast<long long>(requests),
              static_cast<long long>(slo_ms[0]),
              static_cast<long long>(slo_ms[1]),
              static_cast<long long>(slo_ms[2]));
  std::printf("# link %.1f ms + %.0f Mbit/s; chunk %lld, window %lld, "
              "max_batch %lld, max_active_reqs %lld%s\n\n",
              link_ms, bandwidth_mbps, static_cast<long long>(ha_chunk),
              static_cast<long long>(ha_window),
              static_cast<long long>(max_batch),
              static_cast<long long>(max_active),
              orchestrate != 0 ? ", orchestrated HA/HT" : "");

  const slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  const auto combined = fluid.family().Combined();
  const std::int64_t width = combined.range.width();
  nn::Sequential full = fluid.ExtractSubnet(combined);
  auto halves = train::SplitConvNet(cfg, width, full, cut);

  dist::MasterNode master(cfg);
  auto [master_end, worker_end] = dist::MakeEmulatedLinkPair(
      std::chrono::duration<double>(link_ms * 1e-3),
      bandwidth_mbps * 1e6 / 8.0);
  dist::WorkerNode worker("w0", cfg, std::move(worker_end));
  worker.Start();
  master.AttachWorker(std::move(master_end));

  // HA pipeline with the int8 wire (the PR 6 operating point), plus
  // standalone slices on both devices so an orchestrated HT flip has a
  // real fan-out to route to.
  master.DeployLocal("front", std::move(halves.front));
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  auto bp_back = dist::ModelBlueprint::PipelineBack(cfg, width, cut);
  bp_back.quant.int8_wire = true;
  master.DeployToWorker("back", bp_back, nn::ExtractState(halves.back), 10000ms)
      .ThrowIfError();
  const auto upper = fluid.family().WorkerResident();
  nn::Sequential upper_net = fluid.ExtractSubnet(upper);
  master
      .DeployToWorker("upper",
                      dist::ModelBlueprint::Standalone(cfg, upper.range.width()),
                      nn::ExtractState(upper_net), 10000ms)
      .ThrowIfError();
  dist::Plan plan;
  plan.master_standalone = "lower50";
  plan.worker_standalone = "upper";
  plan.pipeline_front = "front";
  plan.pipeline_back = "back";
  plan.back_worker = 0;
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighAccuracy);

  dist::BatchOptions bopts;
  bopts.max_batch = static_cast<std::size_t>(max_batch);
  bopts.max_delay = std::chrono::milliseconds(0);
  bopts.ha_chunk = static_cast<std::size_t>(ha_chunk);
  bopts.ha_window = static_cast<std::size_t>(ha_window);
  bopts.max_active_reqs = static_cast<std::size_t>(max_active);
  bopts.queue_capacity = 8192;
  master.StartServing(bopts);

  // Pre-warm the pool size classes the first burst touches — request
  // inputs, stacked chunk batches, the chunk's widest activation, int8
  // staging and wire frames — then spill them to the shared lists where
  // any serving thread can claim them. Open loop starts cold straight
  // into a burst, and without this the first chunks pay the allocator
  // (and page zeroing) exactly when the deadline clock is running.
  {
    const std::size_t in_elems = std::size_t{28} * 28;
    const std::size_t chunk_rows = static_cast<std::size_t>(ha_chunk);
    const std::size_t act_elems =
        chunk_rows * static_cast<std::size_t>(width) * in_elems;
    core::PoolPrewarm<float>(in_elems, 2 * chunk_rows);
    core::PoolPrewarm<float>(chunk_rows * in_elems, 4);
    core::PoolPrewarm<float>(act_elems, 4);
    core::PoolPrewarm<std::int8_t>(act_elems, 4);
    core::PoolPrewarm<std::uint8_t>(act_elems * sizeof(float), 2);
    core::PoolFlushThisThread();
  }

  // Optional control plane: ticks the orchestrator on an arrival-rate
  // demand estimate; the ModeController reads the pool's occupancy /
  // miss-rate / class signals and flips HA<->HT live. Off by default —
  // each heartbeat holds the master for a link RTT, which belongs in the
  // orchestrated variant, not the scheduler-isolating gate run.
  std::atomic<std::int64_t> arrivals{0};
  std::atomic<bool> orch_stop{false};
  dist::OrchestratorConfig ocfg;
  ocfg.ha_capacity = ha_cap;
  ocfg.ht_capacity = ht_cap;
  ocfg.probe_timeout = std::chrono::milliseconds(100);
  dist::Orchestrator orch(master, ocfg);
  std::thread orch_thread;
  if (orchestrate != 0) {
    orch_thread = std::thread([&] {
      std::int64_t last = 0;
      auto t_last = Clock::now();
      while (!orch_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(tick_ms));
        const std::int64_t n = arrivals.load();
        const auto t = Clock::now();
        const double dt = std::chrono::duration<double>(t - t_last).count();
        orch.Tick(dt > 0 ? static_cast<double>(n - last) / dt : 0.0);
        last = n;
        t_last = t;
      }
    });
  }

  // Completion collector: priority scheduling reorders completions, so an
  // in-submission-order drain (RunOpenLoop's) would timestamp a fast
  // high-class reply with a slow low-class neighbour's finish. Poll every
  // outstanding future instead and stamp each the moment it turns ready.
  MixedClassTally tally[3];
  struct Pending {
    std::future<core::StatusOr<dist::InferReply>> future;
    Clock::time_point scheduled;
    int cls;
  };
  std::mutex mu;
  std::vector<Pending> incoming;
  bool done = false;
  Clock::time_point last_completion{};
  std::thread collector([&] {
    std::vector<Pending> open;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& p : incoming) open.push_back(std::move(p));
        incoming.clear();
        if (open.empty() && done) return;
      }
      bool progressed = false;
      for (auto it = open.begin(); it != open.end();) {
        if (it->future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          ++it;
          continue;
        }
        const auto now = Clock::now();
        auto reply = it->future.get();
        MixedClassTally& t = tally[it->cls];
        if (reply.ok()) {
          core::RecycleTensor(std::move(reply->logits));
          const double ms =
              std::chrono::duration<double, std::milli>(now - it->scheduled)
                  .count();
          t.lat_ms.Record(ms);
          ++t.delivered;
          if (ms > static_cast<double>(slo_ms[it->cls])) ++t.late;
          last_completion = now;
        } else if (reply.status().code() ==
                   core::StatusCode::kDeadlineExceeded) {
          ++t.expired;  // expired while READY: failed without service
        } else {
          std::fprintf(stderr, "mixed-slo request failed: %s\n",
                       reply.status().ToString().c_str());
          std::abort();
        }
        it = open.erase(it);
        progressed = true;
      }
      if (!progressed) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Bursty arrivals: Poisson thinned/boosted by a square wave — the first
  // half of every period runs at burst x rate, the second half at the
  // complementary trough, so the average offered load stays `rate` while
  // the instantaneous load swings around it. The class pattern fixes the
  // mix at 20% high / 50% normal / 30% low, deterministic per index.
  static constexpr int kClassPattern[10] = {0, 1, 2, 1, 2, 1, 0, 1, 2, 1};
  core::Rng rng(4242);
  const core::Tensor x =
      core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  const double trough = std::max(0.1, 2.0 - burst);
  const auto t0 = Clock::now();
  double next_s = 0.0;
  for (std::int64_t i = 0; i < requests; ++i) {
    const double phase = std::fmod(next_s * 1000.0, 2.0 * burst_period_ms);
    const double mult = phase < burst_period_ms ? burst : trough;
    next_s += -std::log(1.0 - rng.Uniform()) / (rate * mult);
    const auto at = t0 + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(next_s));
    std::this_thread::sleep_until(at);
    const int cls = kClassPattern[i % 10];
    dist::SubmitOptions so;
    so.timeout = std::chrono::milliseconds(slo_ms[cls]);
    so.priority = static_cast<dist::Priority>(cls);
    auto fut = master.InferAsync(PooledInput(x), so);
    ++tally[cls].offered;
    ++arrivals;
    {
      std::lock_guard<std::mutex> lock(mu);
      incoming.push_back({std::move(fut), at, cls});
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  collector.join();
  orch_stop = true;
  if (orch_thread.joinable()) orch_thread.join();

  const auto sched = master.scheduler_stats();
  const auto stats = master.stats();
  master.StopServing();

  std::int64_t delivered_total = 0;
  for (int c = 0; c < 3; ++c) {
    MixedClassTally& t = tally[c];
    t.Finish();
    delivered_total += t.delivered;
  }
  const double span_s =
      std::chrono::duration<double>(last_completion - t0).count();
  const double achieved =
      span_s > 0 ? static_cast<double>(delivered_total) / span_s : 0.0;

  std::printf("class    offered  delivered  expired  late     p50      p95      p99\n");
  for (int c = 0; c < 3; ++c) {
    const MixedClassTally& t = tally[c];
    std::printf("%-6s %9lld %10lld %8lld %5lld %7.1f %8.1f %8.1f ms\n",
                std::string(dist::PriorityName(static_cast<dist::Priority>(c)))
                    .c_str(),
                static_cast<long long>(t.offered),
                static_cast<long long>(t.delivered),
                static_cast<long long>(t.expired),
                static_cast<long long>(t.late), t.p50, t.p95, t.p99);
  }
  std::printf("\nachieved %.1f req/s over %.2f s; scheduler: %lld chunks "
              "(avg %.1f rows), occupancy %.0f%%, max active %lld, "
              "deadline misses %lld, preemptions %lld\n",
              achieved, span_s, static_cast<long long>(sched.batches),
              sched.avg_batch, sched.occupancy * 100.0,
              static_cast<long long>(sched.max_active_seen),
              static_cast<long long>(sched.deadline_misses),
              static_cast<long long>(sched.preemptions));
  std::printf("pipeline: %lld samples, %lld int8 cut frames, %lld failovers; "
              "sharded: local %lld remote %lld; worker SLO frames %lld "
              "(high/normal/low samples %lld/%lld/%lld)\n",
              static_cast<long long>(stats.served_pipeline),
              static_cast<long long>(stats.quant_cut_frames),
              static_cast<long long>(stats.failovers),
              static_cast<long long>(stats.served_local),
              static_cast<long long>(stats.served_remote),
              static_cast<long long>(worker.slo_frames()),
              static_cast<long long>(worker.samples_served_class(0)),
              static_cast<long long>(worker.samples_served_class(1)),
              static_cast<long long>(worker.samples_served_class(2)));
  if (orchestrate != 0) {
    std::printf("orchestrator: %lld ticks, %lld mode switches, final mode "
                "%s\n",
                static_cast<long long>(orch.ticks()),
                static_cast<long long>(orch.controller().switches()),
                std::string(sim::ModeName(orch.controller().mode())).c_str());
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 " \"mode\": \"mixed_slo\",\n"
                 " \"offered_req_per_s\": %.1f,\n"
                 " \"achieved_req_per_s\": %.1f,\n"
                 " \"requests\": %lld,\n"
                 " \"burst\": %.2f,\n"
                 " \"burst_period_ms\": %.0f,\n"
                 " \"link_ms\": %.1f,\n"
                 " \"bandwidth_mbps\": %.1f,\n"
                 " \"cut_stage\": %lld,\n"
                 " \"ha_chunk\": %lld,\n"
                 " \"ha_window\": %lld,\n"
                 " \"max_batch\": %lld,\n"
                 " \"max_active_reqs\": %lld,\n"
                 " \"orchestrate\": %lld,\n",
                 rate, achieved, static_cast<long long>(requests), burst,
                 burst_period_ms, link_ms, bandwidth_mbps,
                 static_cast<long long>(cut), static_cast<long long>(ha_chunk),
                 static_cast<long long>(ha_window),
                 static_cast<long long>(max_batch),
                 static_cast<long long>(max_active),
                 static_cast<long long>(orchestrate));
    for (int c = 0; c < 3; ++c) {
      const MixedClassTally& t = tally[c];
      std::fprintf(
          f,
          " \"%s\": {\"slo_ms\": %lld, \"offered\": %lld, \"delivered\": "
          "%lld, \"expired\": %lld, \"late\": %lld, \"p50_ms\": %.1f, "
          "\"p95_ms\": %.1f, \"p99_ms\": %.1f},\n",
          std::string(dist::PriorityName(static_cast<dist::Priority>(c)))
              .c_str(),
          static_cast<long long>(slo_ms[c]),
          static_cast<long long>(t.offered),
          static_cast<long long>(t.delivered),
          static_cast<long long>(t.expired), static_cast<long long>(t.late),
          t.p50, t.p95, t.p99);
    }
    std::fprintf(
        f,
        " \"scheduler\": {\"chunks\": %lld, \"avg_rows\": %.2f, "
        "\"pool_occupancy\": %.3f, \"max_active_seen\": %lld, "
        "\"deadline_misses\": %lld, \"preemptions\": %lld},\n"
        " \"pipeline\": {\"served_samples\": %lld, \"quant_cut_frames\": "
        "%lld, \"failovers\": %lld, \"served_local\": %lld, "
        "\"served_remote\": %lld},\n"
        " \"mode_switches\": %lld\n"
        "}\n",
        static_cast<long long>(sched.batches), sched.avg_batch,
        sched.occupancy, static_cast<long long>(sched.max_active_seen),
        static_cast<long long>(sched.deadline_misses),
        static_cast<long long>(sched.preemptions),
        static_cast<long long>(stats.served_pipeline),
        static_cast<long long>(stats.quant_cut_frames),
        static_cast<long long>(stats.failovers),
        static_cast<long long>(stats.served_local),
        static_cast<long long>(stats.served_remote),
        static_cast<long long>(orch.controller().switches()));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  worker.Stop();

  // CI smoke gates. `low`: a lightly loaded scheduler must not miss a
  // single deadline. `overload`: saturation must provably engage the
  // preemptive path (chunks filling with higher-class rows while lower
  // classes wait).
  if (smoke == "low") {
    const std::int64_t expired =
        tally[0].expired + tally[1].expired + tally[2].expired;
    if (sched.deadline_misses != 0 || expired != 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL (low): %lld deadline misses, %lld expired "
                   "requests at low load\n",
                   static_cast<long long>(sched.deadline_misses),
                   static_cast<long long>(expired));
      return 1;
    }
    std::printf("smoke(low) OK: zero deadline misses\n");
  } else if (smoke == "overload") {
    if (sched.preemptions <= 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL (overload): no preemptions under overload\n");
      return 1;
    }
    std::printf("smoke(overload) OK: %lld preemptions\n",
                static_cast<long long>(sched.preemptions));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `wire=1`: HT fan-out wire data-plane A/B — fp32 input shards (wire v2)
// vs int8 input shards (wire v5, `int8_input_wire`) on the SAME fleet over
// the emulated link, so the printed speedup isolates exactly the input
// wire format + the vectored batched send path underneath it. Also
// measures the top-1 fidelity of the absmax input quantization directly
// on the served slice (the ≤1 pp acceptance gate).
// ---------------------------------------------------------------------------
int RunWireServing(int argc, char** argv) {
  std::int64_t clients = 64, per_client = 50, num_workers = 2;
  std::int64_t max_batch = 64, max_delay_ms = 0;
  double link_ms = 12.0, bandwidth_mbps = 100.0;  // the paper's measured link
  std::string json_path, model = "slice";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq), val = arg.substr(eq + 1);
    if (key == "clients") clients = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "per_client") per_client = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "workers") num_workers = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_batch") max_batch = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_delay_ms")
      max_delay_ms = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "link_ms") link_ms = std::strtod(val.c_str(), nullptr);
    if (key == "bandwidth_mbps")
      bandwidth_mbps = std::strtod(val.c_str(), nullptr);
    if (key == "json") json_path = val;
    if (key == "model") model = val;  // full | slice
  }

  std::printf("== HT fan-out wire data plane: fp32 (wire v2) vs int8 input "
              "shards (wire v5) ==\n");
  std::printf("# fleet: master + %lld workers; %lld clients x %lld requests; "
              "link %.1f ms + %.0f Mbit/s; max_batch %lld\n",
              static_cast<long long>(num_workers),
              static_cast<long long>(clients),
              static_cast<long long>(per_client), link_ms, bandwidth_mbps,
              static_cast<long long>(max_batch));

  const slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  const auto range = model == "slice" ? fluid.family().WorkerResident()
                                      : fluid.family().Combined();
  nn::Sequential slice = fluid.ExtractSubnet(range);
  std::printf("# model: %s (width %lld); input %lld floats/sample\n",
              model.c_str(), static_cast<long long>(range.range.width()),
              static_cast<long long>(28 * 28));

  // Top-1 fidelity of the input quantization, measured where it matters:
  // the served slice's argmax before vs after the input's absmax int8
  // round trip. This is the bench's accuracy gate (≤ 1 pp delta), cheap
  // enough to rerun every time instead of carrying a stale number.
  double top1_agreement = 0.0;
  {
    core::Rng arng(123);
    const std::int64_t batches = 16, rows = 32;
    std::int64_t same = 0;
    for (std::int64_t b = 0; b < batches; ++b) {
      core::Tensor x =
          core::Tensor::UniformRandom({rows, 1, 28, 28}, arng, 0, 1);
      const core::Tensor a = slice.Forward(x, false);
      const core::Tensor q = slice.Forward(
          quant::DequantizeTensor(quant::QuantizeTensor(x)), false);
      const std::int64_t classes = a.numel() / rows;
      const auto da = a.data(), dq = q.data();
      for (std::int64_t r = 0; r < rows; ++r) {
        std::int64_t ia = 0, iq = 0;
        for (std::int64_t c = 1; c < classes; ++c) {
          if (da[r * classes + c] > da[r * classes + ia]) ia = c;
          if (dq[r * classes + c] > dq[r * classes + iq]) iq = c;
        }
        same += ia == iq ? 1 : 0;
      }
    }
    top1_agreement = static_cast<double>(same) / (batches * 32.0);
    std::printf("# input-quant top-1 agreement: %.2f%% (delta %.2f pp)\n\n",
                top1_agreement * 100.0, (1.0 - top1_agreement) * 100.0);
  }

  auto make_pair = [&] {
    return link_ms > 0
               ? dist::MakeEmulatedLinkPair(
                     std::chrono::duration<double>(link_ms * 1e-3),
                     bandwidth_mbps * 1e6 / 8.0)
               : dist::MakeInMemoryPair();
  };

  // Every worker hosts the slice twice: once plain (fp32 v2 input shards)
  // and once with int8_input_wire negotiated (v5). Switching the plan's
  // worker_standalone name flips the whole fan-out's wire format with no
  // other change — same weights, same routing, same scheduler.
  dist::MasterNode master(cfg);
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  for (std::int64_t i = 0; i < num_workers; ++i) {
    auto [master_end, worker_end] = make_pair();
    workers.push_back(std::make_unique<dist::WorkerNode>(
        "w" + std::to_string(i), cfg, std::move(worker_end)));
    workers.back()->Start();
    master.AttachWorker(std::move(master_end));
    auto bp_fp32 = dist::ModelBlueprint::Standalone(cfg, range.range.width());
    auto bp_int8 = bp_fp32;
    bp_int8.quant.int8_input_wire = true;
    master
        .DeployToWorker("slice_fp32", bp_fp32, nn::ExtractState(slice), 5000ms,
                        static_cast<std::size_t>(i))
        .ThrowIfError();
    master
        .DeployToWorker("slice_int8", bp_int8, nn::ExtractState(slice), 5000ms,
                        static_cast<std::size_t>(i))
        .ThrowIfError();
  }
  master.DeployLocal("slice", fluid.ExtractSubnet(range));
  master.SetMode(sim::Mode::kHighThroughput);

  dist::BatchOptions bopts;
  bopts.max_batch = static_cast<std::size_t>(max_batch);
  bopts.max_delay = std::chrono::milliseconds(max_delay_ms);
  master.StartServing(bopts);

  struct WirePhase {
    ClosedLoopResult loop;
    dist::WireStats wire;  // delta across the phase (incl. its warmup)
    double reqs = 0;       // requests the delta covers
  };
  auto run_phase = [&](const std::string& dep) {
    dist::Plan plan;
    plan.master_standalone = "slice";
    plan.worker_standalone = dep;
    master.SetPlan(plan);
    const dist::WireStats w0 = master.wire_stats();
    WirePhase phase;
    phase.loop = RunClosedLoop(
        static_cast<int>(clients), static_cast<int>(per_client),
        [&](const core::Tensor& x) {
          return master.InferAsync(PooledInput(x), 30000ms).get();
        });
    const dist::WireStats w1 = master.wire_stats();
    phase.wire.bytes_sent = w1.bytes_sent - w0.bytes_sent;
    phase.wire.bytes_recv = w1.bytes_recv - w0.bytes_recv;
    phase.wire.frames_sent = w1.frames_sent - w0.frames_sent;
    phase.wire.frames_recv = w1.frames_recv - w0.frames_recv;
    phase.wire.batched_sends = w1.batched_sends - w0.batched_sends;
    // RunClosedLoop's warmup pass also crossed the wire.
    phase.reqs = static_cast<double>(clients) *
                 (static_cast<double>(per_client) +
                  std::min<double>(static_cast<double>(per_client), 8.0));
    return phase;
  };

  const WirePhase fp32 = run_phase("slice_fp32");
  std::printf("fp32  input shards (v2): %8.1f req/s   %.0f wire B/req "
              "(%lld frames, %lld batched sends)\n",
              fp32.loop.rps,
              static_cast<double>(fp32.wire.bytes_sent) / fp32.reqs,
              static_cast<long long>(fp32.wire.frames_sent),
              static_cast<long long>(fp32.wire.batched_sends));

  const WirePhase int8 = run_phase("slice_int8");
  const auto stats = master.stats();
  master.StopServing();
  std::printf("int8  input shards (v5): %8.1f req/s   %.0f wire B/req "
              "(%lld frames, %lld batched sends, %lld v5 frames)\n",
              int8.loop.rps,
              static_cast<double>(int8.wire.bytes_sent) / int8.reqs,
              static_cast<long long>(int8.wire.frames_sent),
              static_cast<long long>(int8.wire.batched_sends),
              static_cast<long long>(stats.quant_input_frames));
  std::printf("speedup: %.2fx req/s, %.2fx fewer fan-out bytes/req\n",
              int8.loop.rps / fp32.loop.rps,
              (static_cast<double>(fp32.wire.bytes_sent) / fp32.reqs) /
                  (static_cast<double>(int8.wire.bytes_sent) / int8.reqs));
  if (stats.quant_input_frames <= 0) {
    std::fprintf(stderr, "error: int8 phase shipped no v5 input shards\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        " \"mode\": \"wire\",\n"
        " \"model\": \"%s\",\n"
        " \"clients\": %lld,\n"
        " \"per_client\": %lld,\n"
        " \"workers\": %lld,\n"
        " \"max_batch\": %lld,\n"
        " \"link_ms\": %.1f,\n"
        " \"bandwidth_mbps\": %.1f,\n"
        " \"top1_agreement\": %.4f,\n"
        " \"top1_delta_pp\": %.2f,\n"
        " \"fp32_req_per_s\": %.1f,\n"
        " \"int8_req_per_s\": %.1f,\n"
        " \"speedup\": %.2f,\n"
        " \"quant_input_frames\": %lld,\n"
        " \"fp32_wire\": {\"bytes_sent\": %lld, \"bytes_recv\": %lld, "
        "\"frames_sent\": %lld, \"batched_sends\": %lld, "
        "\"bytes_sent_per_req\": %.0f},\n"
        " \"int8_wire\": {\"bytes_sent\": %lld, \"bytes_recv\": %lld, "
        "\"frames_sent\": %lld, \"batched_sends\": %lld, "
        "\"bytes_sent_per_req\": %.0f}\n"
        "}\n",
        model.c_str(), static_cast<long long>(clients),
        static_cast<long long>(per_client),
        static_cast<long long>(num_workers), static_cast<long long>(max_batch),
        link_ms, bandwidth_mbps, top1_agreement,
        (1.0 - top1_agreement) * 100.0, fp32.loop.rps, int8.loop.rps,
        int8.loop.rps / fp32.loop.rps,
        static_cast<long long>(stats.quant_input_frames),
        static_cast<long long>(fp32.wire.bytes_sent),
        static_cast<long long>(fp32.wire.bytes_recv),
        static_cast<long long>(fp32.wire.frames_sent),
        static_cast<long long>(fp32.wire.batched_sends),
        static_cast<double>(fp32.wire.bytes_sent) / fp32.reqs,
        static_cast<long long>(int8.wire.bytes_sent),
        static_cast<long long>(int8.wire.bytes_recv),
        static_cast<long long>(int8.wire.frames_sent),
        static_cast<long long>(int8.wire.batched_sends),
        static_cast<double>(int8.wire.bytes_sent) / int8.reqs);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  for (auto& w : workers) w->Stop();
  return 0;
}

int RunClosedLoopServing(int argc, char** argv) {
  // key=value knobs (same convention as HarnessOptions).
  std::int64_t clients = 8, per_client = 200, num_workers = 2;
  std::int64_t max_batch = 16, max_delay_ms = 0;
  double link_ms = 12.0, bandwidth_mbps = 100.0;  // the paper's measured link
  std::string json_path, model = "full";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq), val = arg.substr(eq + 1);
    if (key == "clients") clients = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "per_client") per_client = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "workers") num_workers = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_batch") max_batch = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_delay_ms")
      max_delay_ms = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "link_ms") link_ms = std::strtod(val.c_str(), nullptr);
    if (key == "bandwidth_mbps")
      bandwidth_mbps = std::strtod(val.c_str(), nullptr);
    if (key == "json") json_path = val;
    if (key == "model") model = val;  // full | slice
  }

  // The serving fleet talks over the paper's link: per-frame latency plus
  // payload at the measured bandwidth (the same offline-measured TCP model
  // the sim panels charge). link_ms=0 degrades to a zero-cost in-process
  // wire — useful to isolate pure scheduling overhead.
  auto make_pair = [&] {
    return link_ms > 0
               ? dist::MakeEmulatedLinkPair(
                     std::chrono::duration<double>(link_ms * 1e-3),
                     bandwidth_mbps * 1e6 / 8.0)
               : dist::MakeInMemoryPair();
  };

  std::printf("== closed-loop serving: sync RPC path vs async batched "
              "runtime ==\n");
  std::printf("# fleet: master + %lld workers (in-process, framed "
              "transports); %lld clients x %lld requests\n",
              static_cast<long long>(num_workers),
              static_cast<long long>(clients),
              static_cast<long long>(per_client));
  std::printf("# link: %.1f ms/frame + payload at %.0f Mbit/s (paper: "
              "measured offline on TCP; 0 = free in-process wire)\n\n",
              link_ms, bandwidth_mbps);

  // Same self-sufficient model on every device: routing never changes
  // logits, so the comparison is pure serving-path mechanics. `model=full`
  // (default) serves the full-width net — the compute-bound regime where
  // batching matters; `model=slice` serves the thin upper-50% slice —
  // the overhead-bound regime.
  const slim::FluidNetConfig cfg;
  core::Rng rng(7);
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  const auto range = model == "slice" ? fluid.family().WorkerResident()
                                      : fluid.family().Combined();
  nn::Sequential slice = fluid.ExtractSubnet(range);
  std::printf("# model: %s (width %lld)\n", model.c_str(),
              static_cast<long long>(range.range.width()));

  dist::MasterNode master(cfg);
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  for (std::int64_t i = 0; i < num_workers; ++i) {
    auto [master_end, worker_end] = make_pair();
    workers.push_back(std::make_unique<dist::WorkerNode>(
        "w" + std::to_string(i), cfg, std::move(worker_end)));
    workers.back()->Start();
    master.AttachWorker(std::move(master_end));
    master
        .DeployToWorker("slice",
                        dist::ModelBlueprint::Standalone(cfg, range.range.width()),
                        nn::ExtractState(slice), 5000ms,
                        static_cast<std::size_t>(i))
        .ThrowIfError();
  }
  master.DeployLocal("slice", fluid.ExtractSubnet(range));
  dist::Plan plan;
  plan.master_standalone = "slice";
  plan.worker_standalone = "slice";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  // Phase 1: the synchronous path — one request per RPC, no coalescing.
  const ClosedLoopResult sync = RunClosedLoop(
      static_cast<int>(clients), static_cast<int>(per_client),
      [&](const core::Tensor& x) { return master.Infer(x, 10000ms); });
  std::printf("sync  one-request-per-RPC : %8.1f req/s   (%.1f allocs, %.0f "
              "B heap/req)\n",
              sync.rps, sync.allocs_per_req, sync.bytes_per_req);

  // Phase 2: the async batched runtime — queue, coalesce, shard, scatter.
  dist::BatchOptions bopts;
  bopts.max_batch = static_cast<std::size_t>(max_batch);
  bopts.max_delay = std::chrono::milliseconds(max_delay_ms);
  master.StartServing(bopts);
  const ClosedLoopResult async = RunClosedLoop(
      static_cast<int>(clients), static_cast<int>(per_client),
      [&](const core::Tensor& x) {
        return master.InferAsync(PooledInput(x), 10000ms).get();
      });
  const auto serving = master.scheduler_stats();
  master.StopServing();
  std::printf("async batched (max_batch=%lld, max_delay=%lldms): %8.1f "
              "req/s   (%.1f allocs, %.0f B heap/req)\n",
              static_cast<long long>(max_batch),
              static_cast<long long>(max_delay_ms), async.rps,
              async.allocs_per_req, async.bytes_per_req);
  std::printf("speedup: %.2fx   (avg coalesced batch %.1f, occupancy %.0f%%, "
              "%lld batches)\n",
              async.rps / sync.rps, serving.avg_batch,
              serving.occupancy * 100.0,
              static_cast<long long>(serving.batches));

  const auto stats = master.stats();
  std::printf("served: local=%lld remote=%lld failovers=%lld "
              "stale_replies=%lld\n",
              static_cast<long long>(stats.served_local),
              static_cast<long long>(stats.served_remote),
              static_cast<long long>(stats.failovers),
              static_cast<long long>(stats.stale_replies));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        " \"clients\": %lld,\n"
        " \"per_client\": %lld,\n"
        " \"workers\": %lld,\n"
        " \"max_batch\": %lld,\n"
        " \"max_delay_ms\": %lld,\n"
        " \"link_ms\": %.1f,\n"
        " \"bandwidth_mbps\": %.1f,\n"
        " \"sync_req_per_s\": %.1f,\n"
        " \"async_req_per_s\": %.1f,\n"
        " \"speedup\": %.2f,\n"
        " \"avg_coalesced_batch\": %.2f,\n"
        " \"pool_occupancy\": %.3f,\n"
        " \"sync_allocs_per_req\": %.2f,\n"
        " \"sync_bytes_per_req\": %.0f,\n"
        " \"async_allocs_per_req\": %.2f,\n"
        " \"async_bytes_per_req\": %.0f\n"
        "}\n",
        static_cast<long long>(clients), static_cast<long long>(per_client),
        static_cast<long long>(num_workers), static_cast<long long>(max_batch),
        static_cast<long long>(max_delay_ms), link_ms, bandwidth_mbps,
        sync.rps, async.rps, async.rps / sync.rps, serving.avg_batch,
        serving.occupancy, sync.allocs_per_req, sync.bytes_per_req,
        async.allocs_per_req, async.bytes_per_req);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  for (auto& w : workers) w->Stop();
  return 0;
}

// One row of the cluster sweep: the whole fleet's numbers at masters=N.
struct ClusterPoint {
  int masters = 0;
  double closed_rps = 0;
  double open_offered = 0;
  double open_achieved = 0;
  MixedClassTally tally[3];
  std::int64_t deadline_misses = 0;
  double avg_batch = 0;
  std::int64_t routed = 0, rerouted = 0, retries = 0, failed = 0;
  std::int64_t priority_reorders = 0;
};

int RunClusterScale(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  std::int64_t masters_max = 4, clients_per = 16, per_client = 60;
  std::int64_t max_batch = 8, max_active = 256;
  std::int64_t open_requests = 400;  // per partition
  double open_rate = 200.0;          // req/s per partition
  double link_ms = 12.0, bandwidth_mbps = 100.0;
  std::int64_t slo_ms[3] = {250, 1000, 4000};  // high / normal / low
  std::int64_t trace_sample = 16;  // 1-in-N request tracing; 0 disables
  std::string json_path, policy = "least";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq), val = arg.substr(eq + 1);
    if (key == "masters") masters_max = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "clients") clients_per = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "per_client") per_client = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_batch") max_batch = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_active") max_active = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "open_rate") open_rate = std::strtod(val.c_str(), nullptr);
    if (key == "open_requests")
      open_requests = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_high_ms") slo_ms[0] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_normal_ms")
      slo_ms[1] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_low_ms") slo_ms[2] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "link_ms") link_ms = std::strtod(val.c_str(), nullptr);
    if (key == "bandwidth_mbps")
      bandwidth_mbps = std::strtod(val.c_str(), nullptr);
    if (key == "policy") policy = val;
    if (key == "trace_sample")
      trace_sample = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "json") json_path = val;
  }
  masters_max = std::max<std::int64_t>(1, std::min<std::int64_t>(8, masters_max));

  // Fleet observability stays ON for the recorded scaling numbers: sampled
  // tracing (1-in-N at the router front door) with the wire v6 trace
  // block enabled on every partition link. The acceptance gate is that
  // closed-loop req/s holds within 3% of the untraced baseline.
  obs::Tracer::Global().SetSampleEvery(static_cast<int>(trace_sample));

  std::printf("== cluster scale-out: RequestRouter over 1..%lld partitioned "
              "masters ==\n",
              static_cast<long long>(masters_max));
  std::printf("# per partition: 1 master + 1 worker on its own %.1f ms / "
              "%.0f Mbit/s link, max_batch %lld; policy %s\n",
              link_ms, bandwidth_mbps, static_cast<long long>(max_batch),
              policy.c_str());
  std::printf("# closed loop: %lld clients x %lld reqs per partition; open "
              "loop: %.0f req/s x %lld reqs per partition, 3 classes\n\n",
              static_cast<long long>(clients_per),
              static_cast<long long>(per_client), open_rate,
              static_cast<long long>(open_requests));

  // Every partition serves the same worker-standalone deployment: no
  // master-local slice, so each coalesced chunk round-trips the
  // partition's link — the serialization the router exists to overlap.
  const slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  const auto upper = fluid.family().WorkerResident();
  nn::Sequential upper_net = fluid.ExtractSubnet(upper);
  const nn::StateDict upper_state = nn::ExtractState(upper_net);
  const auto bp = dist::ModelBlueprint::Standalone(cfg, upper.range.width());

  static constexpr int kClusterClassPattern[10] = {0, 1, 2, 1, 2, 1, 0, 1, 2, 1};
  std::vector<ClusterPoint> points;
  for (std::int64_t n = 1; n <= masters_max; ++n) {
    struct Part {
      std::unique_ptr<dist::MasterNode> master;
      std::unique_ptr<dist::WorkerNode> worker;
    };
    std::vector<Part> parts;
    dist::RouterOptions ropts;
    ropts.policy = policy == "hash" ? dist::RoutePolicy::kConsistentHash
                                    : dist::RoutePolicy::kLeastLoaded;
    dist::RequestRouter router(ropts);
    for (std::int64_t p = 0; p < n; ++p) {
      Part part;
      part.master = std::make_unique<dist::MasterNode>(cfg);
      auto [master_end, worker_end] = dist::MakeEmulatedLinkPair(
          std::chrono::duration<double>(link_ms * 1e-3),
          bandwidth_mbps * 1e6 / 8.0);
      part.worker = std::make_unique<dist::WorkerNode>(
          "p" + std::to_string(p) + "w0", cfg, std::move(worker_end));
      part.worker->Start();
      part.master->AttachWorker(std::move(master_end));
      part.master->DeployToWorker("up", bp, upper_state, 10000ms)
          .ThrowIfError();
      dist::Plan plan;
      plan.worker_standalone = "up";
      part.master->SetPlan(plan);
      part.master->SetMode(sim::Mode::kHighThroughput);
      dist::BatchOptions bopts;
      bopts.max_batch = static_cast<std::size_t>(max_batch);
      bopts.max_delay = std::chrono::milliseconds(0);
      bopts.max_active_reqs = static_cast<std::size_t>(max_active);
      bopts.queue_capacity = 8192;
      part.master->StartServing(bopts);
      part.master->EnableTraceWire(0);  // v6 trace block on this link
      router.AddPartition(part.master.get());
      parts.push_back(std::move(part));
    }

    ClusterPoint pt;
    pt.masters = static_cast<int>(n);

    // Phase 1: closed loop through the router — the aggregate-req/s
    // scaling number (same per-partition link budget at every N).
    const ClosedLoopResult closed = RunClosedLoop(
        static_cast<int>(clients_per * n), static_cast<int>(per_client),
        [&](const core::Tensor& x) {
          return router.InferAsync(PooledInput(x), 30000ms).get();
        });
    pt.closed_rps = closed.rps;
    std::printf("masters=%lld closed loop: %8.1f req/s\n",
                static_cast<long long>(n), closed.rps);

    // Phase 2: open loop, Poisson at open_rate x N, the mixed-SLO class
    // pattern (20/50/30) with per-class deadlines carried through the
    // router unchanged. Completions are polled (priority scheduling
    // reorders them), each stamped the moment its future turns ready.
    const double rate = open_rate * static_cast<double>(n);
    const std::int64_t requests = open_requests * n;
    pt.open_offered = rate;
    struct Pending {
      std::future<core::StatusOr<dist::InferReply>> future;
      Clock::time_point scheduled;
      int cls;
    };
    std::mutex mu;
    std::vector<Pending> incoming;
    bool done = false;
    Clock::time_point last_completion{};
    std::thread collector([&] {
      std::vector<Pending> open;
      for (;;) {
        {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& p : incoming) open.push_back(std::move(p));
          incoming.clear();
          if (open.empty() && done) return;
        }
        bool progressed = false;
        for (auto it = open.begin(); it != open.end();) {
          if (it->future.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            ++it;
            continue;
          }
          const auto now = Clock::now();
          auto reply = it->future.get();
          MixedClassTally& t = pt.tally[it->cls];
          if (reply.ok()) {
            core::RecycleTensor(std::move(reply->logits));
            const double ms =
                std::chrono::duration<double, std::milli>(now - it->scheduled)
                    .count();
            t.lat_ms.Record(ms);
            ++t.delivered;
            if (ms > static_cast<double>(slo_ms[it->cls])) ++t.late;
            last_completion = now;
          } else if (reply.status().code() ==
                     core::StatusCode::kDeadlineExceeded) {
            ++t.expired;
          } else {
            std::fprintf(stderr, "cluster open-loop request failed: %s\n",
                         reply.status().ToString().c_str());
            std::abort();
          }
          it = open.erase(it);
          progressed = true;
        }
        if (!progressed)
          std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    core::Rng rng(4242);
    const core::Tensor x =
        core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
    const auto t0 = Clock::now();
    double next_s = 0.0;
    for (std::int64_t i = 0; i < requests; ++i) {
      next_s += -std::log(1.0 - rng.Uniform()) / rate;
      const auto at = t0 + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(next_s));
      std::this_thread::sleep_until(at);
      const int cls = kClusterClassPattern[i % 10];
      dist::SubmitOptions so;
      so.timeout = std::chrono::milliseconds(slo_ms[cls]);
      so.priority = static_cast<dist::Priority>(cls);
      auto fut = router.InferAsync(PooledInput(x), so);
      ++pt.tally[cls].offered;
      {
        std::lock_guard<std::mutex> lock(mu);
        incoming.push_back({std::move(fut), at, cls});
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    collector.join();

    std::int64_t delivered_total = 0;
    for (auto& t : pt.tally) {
      t.Finish();
      delivered_total += t.delivered;
    }
    const double span_s =
        std::chrono::duration<double>(last_completion - t0).count();
    pt.open_achieved =
        span_s > 0 ? static_cast<double>(delivered_total) / span_s : 0.0;

    const dist::RouterStats rs = router.stats();
    const dist::SchedulerStats sched = router.scheduler_stats();
    pt.deadline_misses = sched.deadline_misses;
    pt.avg_batch = sched.avg_batch;
    pt.routed = rs.routed_reqs;
    pt.rerouted = rs.rerouted_reqs;
    pt.retries = rs.retries;
    pt.failed = rs.failed_reqs;
    for (auto& part : parts)
      pt.priority_reorders += part.worker->priority_reorders();

    // Router first, then masters, then workers — the quiet shutdown order.
    router.Stop();
    for (auto& part : parts) part.master->StopServing();
    for (auto& part : parts) part.worker->Stop();

    std::printf("masters=%lld open loop:   %8.1f req/s offered, %.1f "
                "achieved; p99 high/normal/low %.1f/%.1f/%.1f ms; misses "
                "%lld, rerouted %lld\n\n",
                static_cast<long long>(n), rate, pt.open_achieved,
                pt.tally[0].p99, pt.tally[1].p99, pt.tally[2].p99,
                static_cast<long long>(pt.deadline_misses),
                static_cast<long long>(pt.rerouted));
    points.push_back(std::move(pt));
  }

  std::printf("masters  closed req/s   scale   open req/s   high p99   "
              "misses  rerouted\n");
  for (const ClusterPoint& pt : points) {
    std::printf("%7d %13.1f %6.2fx %12.1f %8.1f ms %8lld %9lld\n", pt.masters,
                pt.closed_rps, pt.closed_rps / points.front().closed_rps,
                pt.open_achieved, pt.tally[0].p99,
                static_cast<long long>(pt.deadline_misses),
                static_cast<long long>(pt.rerouted));
  }
  std::printf("observability: 1-in-%lld request tracing, %lld spans "
              "recorded across the sweep\n",
              static_cast<long long>(trace_sample),
              static_cast<long long>(obs::Tracer::Global().recorded()));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 " \"mode\": \"cluster_scale\",\n"
                 " \"policy\": \"%s\",\n"
                 " \"clients_per_partition\": %lld,\n"
                 " \"per_client\": %lld,\n"
                 " \"max_batch\": %lld,\n"
                 " \"max_active_reqs\": %lld,\n"
                 " \"open_rate_per_partition\": %.1f,\n"
                 " \"open_requests_per_partition\": %lld,\n"
                 " \"link_ms\": %.1f,\n"
                 " \"bandwidth_mbps\": %.1f,\n"
                 " \"slo_ms\": {\"high\": %lld, \"normal\": %lld, "
                 "\"low\": %lld},\n"
                 " \"points\": [\n",
                 std::string(dist::RoutePolicyName(
                                 policy == "hash"
                                     ? dist::RoutePolicy::kConsistentHash
                                     : dist::RoutePolicy::kLeastLoaded))
                     .c_str(),
                 static_cast<long long>(clients_per),
                 static_cast<long long>(per_client),
                 static_cast<long long>(max_batch),
                 static_cast<long long>(max_active), open_rate,
                 static_cast<long long>(open_requests), link_ms,
                 bandwidth_mbps, static_cast<long long>(slo_ms[0]),
                 static_cast<long long>(slo_ms[1]),
                 static_cast<long long>(slo_ms[2]));
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ClusterPoint& pt = points[i];
      std::fprintf(
          f,
          "  {\"masters\": %d, \"closed_req_per_s\": %.1f, "
          "\"open_offered_req_per_s\": %.1f, \"open_achieved_req_per_s\": "
          "%.1f,\n"
          "   \"high\": {\"p50_ms\": %.1f, \"p95_ms\": %.1f, \"p99_ms\": "
          "%.1f, \"delivered\": %lld, \"expired\": %lld},\n"
          "   \"normal\": {\"p50_ms\": %.1f, \"p95_ms\": %.1f, \"p99_ms\": "
          "%.1f, \"delivered\": %lld, \"expired\": %lld},\n"
          "   \"low\": {\"p50_ms\": %.1f, \"p95_ms\": %.1f, \"p99_ms\": "
          "%.1f, \"delivered\": %lld, \"expired\": %lld},\n"
          "   \"deadline_misses\": %lld, \"avg_coalesced_batch\": %.2f, "
          "\"routed\": %lld, \"rerouted\": %lld, \"retries\": %lld, "
          "\"failed\": %lld, \"worker_priority_reorders\": %lld}%s\n",
          pt.masters, pt.closed_rps, pt.open_offered, pt.open_achieved,
          pt.tally[0].p50, pt.tally[0].p95, pt.tally[0].p99,
          static_cast<long long>(pt.tally[0].delivered),
          static_cast<long long>(pt.tally[0].expired), pt.tally[1].p50,
          pt.tally[1].p95, pt.tally[1].p99,
          static_cast<long long>(pt.tally[1].delivered),
          static_cast<long long>(pt.tally[1].expired), pt.tally[2].p50,
          pt.tally[2].p95, pt.tally[2].p99,
          static_cast<long long>(pt.tally[2].delivered),
          static_cast<long long>(pt.tally[2].expired),
          static_cast<long long>(pt.deadline_misses), pt.avg_batch,
          static_cast<long long>(pt.routed),
          static_cast<long long>(pt.rerouted),
          static_cast<long long>(pt.retries),
          static_cast<long long>(pt.failed),
          static_cast<long long>(pt.priority_reorders),
          i + 1 < points.size() ? "," : "");
    }
    const auto scale_vs_1 = [&](std::size_t k) {
      return k <= points.size() && points.front().closed_rps > 0
                 ? points[k - 1].closed_rps / points.front().closed_rps
                 : 0.0;
    };
    std::fprintf(f,
                 " ],\n"
                 " \"trace_sample_every\": %lld,\n"
                 " \"trace_spans_recorded\": %lld,\n"
                 " \"scale_2x_vs_1\": %.2f,\n"
                 " \"scale_3x_vs_1\": %.2f,\n"
                 " \"scale_4x_vs_1\": %.2f,\n"
                 " \"high_p99_at_3_ms\": %.1f\n"
                 "}\n",
                 static_cast<long long>(trace_sample),
                 static_cast<long long>(obs::Tracer::Global().recorded()),
                 scale_vs_1(2), scale_vs_1(3), scale_vs_1(4),
                 points.size() >= 3 ? points[2].tally[0].p99 : 0.0);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `obs=1`: latency-breakdown view — where each SLO class's latency goes.
// The scheduler's always-on queue-wait/service histograms plus the wire
// histogram (fed by traced replies, so the run samples EVERY request)
// split p50/p99 into scheduler-queue vs compute vs link time per class.
// A worker-standalone plan over the emulated link makes every chunk
// round-trip the wire, so all three components have data. Emits the
// `obs` section of BENCH_serving.json.
// ---------------------------------------------------------------------------
int RunObsBreakdown(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  std::int64_t requests = 2000, max_batch = 8, max_active = 256;
  double rate = 300.0, link_ms = 12.0, bandwidth_mbps = 100.0;
  std::int64_t slo_ms[3] = {250, 1000, 4000};  // high / normal / low
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq), val = arg.substr(eq + 1);
    if (key == "requests") requests = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_batch") max_batch = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "max_active") max_active = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "rate") rate = std::strtod(val.c_str(), nullptr);
    if (key == "link_ms") link_ms = std::strtod(val.c_str(), nullptr);
    if (key == "bandwidth_mbps")
      bandwidth_mbps = std::strtod(val.c_str(), nullptr);
    if (key == "slo_high_ms") slo_ms[0] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_normal_ms")
      slo_ms[1] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "slo_low_ms") slo_ms[2] = std::strtoll(val.c_str(), nullptr, 10);
    if (key == "json") json_path = val;
  }

  std::printf("== latency breakdown: queue-wait vs service vs wire per SLO "
              "class (traced serving) ==\n");
  std::printf("# Poisson %.0f req/s, %lld requests, 3 classes; link %.1f ms "
              "+ %.0f Mbit/s; every request traced\n\n",
              rate, static_cast<long long>(requests), link_ms, bandwidth_mbps);

  // Fresh series for this section, and sample EVERY request: the wire
  // histogram only sees traced replies, so 1-in-1 makes it cover the run.
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetSampleEvery(1);

  // One partition behind the router — traces start at the router front
  // door, so the timeline carries router.dispatch → sched.* → wire →
  // worker.service even at N=1.
  const slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  const auto upper = fluid.family().WorkerResident();
  nn::Sequential upper_net = fluid.ExtractSubnet(upper);
  dist::MasterNode master(cfg);
  auto [master_end, worker_end] = dist::MakeEmulatedLinkPair(
      std::chrono::duration<double>(link_ms * 1e-3),
      bandwidth_mbps * 1e6 / 8.0);
  dist::WorkerNode worker("w0", cfg, std::move(worker_end));
  worker.Start();
  master.AttachWorker(std::move(master_end));
  master
      .DeployToWorker("up",
                      dist::ModelBlueprint::Standalone(cfg, upper.range.width()),
                      nn::ExtractState(upper_net), 10000ms)
      .ThrowIfError();
  dist::Plan plan;
  plan.worker_standalone = "up";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);
  dist::BatchOptions bopts;
  bopts.max_batch = static_cast<std::size_t>(max_batch);
  bopts.max_delay = std::chrono::milliseconds(0);
  bopts.max_active_reqs = static_cast<std::size_t>(max_active);
  bopts.queue_capacity = 8192;
  master.StartServing(bopts);
  master.EnableTraceWire(0);  // this link speaks v6: trace blocks ride it
  dist::RequestRouter router;
  router.AddPartition(&master);

  // Poisson 3-class open loop (the mixed-SLO 20/50/30 pattern). Client
  // latencies are not tallied here — the breakdown comes from the serving
  // path's own histograms; the client just keeps the offered load honest.
  static constexpr int kObsClassPattern[10] = {0, 1, 2, 1, 2, 1, 0, 1, 2, 1};
  std::vector<std::future<core::StatusOr<dist::InferReply>>> futures;
  futures.reserve(static_cast<std::size_t>(requests));
  core::Rng rng(4242);
  const core::Tensor x =
      core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  const auto t0 = Clock::now();
  double next_s = 0.0;
  for (std::int64_t i = 0; i < requests; ++i) {
    next_s += -std::log(1.0 - rng.Uniform()) / rate;
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(next_s)));
    const int cls = kObsClassPattern[i % 10];
    dist::SubmitOptions so;
    so.timeout = std::chrono::milliseconds(slo_ms[cls]);
    so.priority = static_cast<dist::Priority>(cls);
    futures.push_back(router.InferAsync(PooledInput(x), so));
  }
  std::int64_t delivered = 0, expired = 0;
  for (auto& fut : futures) {
    auto reply = fut.get();
    if (reply.ok()) {
      core::RecycleTensor(std::move(reply->logits));
      ++delivered;
    } else if (reply.status().code() == core::StatusCode::kDeadlineExceeded) {
      ++expired;
    } else {
      std::fprintf(stderr, "obs request failed: %s\n",
                   reply.status().ToString().c_str());
      std::abort();
    }
  }
  router.Stop();
  master.StopServing();
  worker.Stop();
  obs::Tracer::Global().SetSampleEvery(0);

  const auto& reg = obs::MetricsRegistry::Global();
  const char* kComponents[3] = {"fluid_sched_queue_wait_ms",
                                "fluid_sched_service_ms", "fluid_wire_ms"};
  const char* kComponentKeys[3] = {"queue_wait_ms", "service_ms", "wire_ms"};
  // snap[class][component]
  obs::Histogram::Snapshot snap[3][3];
  bool missing = false;
  for (int c = 0; c < 3; ++c) {
    const std::string label{
        dist::PriorityName(static_cast<dist::Priority>(c))};
    for (int k = 0; k < 3; ++k) {
      const obs::Histogram* h = reg.FindHistogram(
          std::string(kComponents[k]) + "{class=\"" + label + "\"}");
      if (h != nullptr) snap[c][k] = h->Snap();
      // A class can legitimately end empty only if it was never offered;
      // with the 20/50/30 pattern every class is.
      if (h == nullptr || snap[c][k].count == 0) missing = true;
    }
  }

  std::printf("class    queue p50/p99        service p50/p99     wire "
              "p50/p99          samples\n");
  for (int c = 0; c < 3; ++c) {
    std::printf("%-6s %7.1f /%7.1f ms %8.1f /%7.1f ms %7.1f /%7.1f ms %8lld\n",
                std::string(dist::PriorityName(static_cast<dist::Priority>(c)))
                    .c_str(),
                snap[c][0].Quantile(0.50), snap[c][0].Quantile(0.99),
                snap[c][1].Quantile(0.50), snap[c][1].Quantile(0.99),
                snap[c][2].Quantile(0.50), snap[c][2].Quantile(0.99),
                static_cast<long long>(snap[c][0].count));
  }
  std::printf("\ndelivered %lld, expired %lld; %lld trace spans recorded\n",
              static_cast<long long>(delivered),
              static_cast<long long>(expired),
              static_cast<long long>(obs::Tracer::Global().recorded()));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 " \"mode\": \"obs\",\n"
                 " \"requests\": %lld,\n"
                 " \"rate_req_per_s\": %.1f,\n"
                 " \"link_ms\": %.1f,\n"
                 " \"bandwidth_mbps\": %.1f,\n"
                 " \"max_batch\": %lld,\n"
                 " \"trace_sample_every\": 1,\n"
                 " \"trace_spans_recorded\": %lld,\n"
                 " \"delivered\": %lld,\n"
                 " \"expired\": %lld,\n"
                 " \"breakdown\": {\n",
                 static_cast<long long>(requests), rate, link_ms,
                 bandwidth_mbps, static_cast<long long>(max_batch),
                 static_cast<long long>(obs::Tracer::Global().recorded()),
                 static_cast<long long>(delivered),
                 static_cast<long long>(expired));
    for (int c = 0; c < 3; ++c) {
      std::fprintf(f, "  \"%s\": {",
                   std::string(dist::PriorityName(
                                   static_cast<dist::Priority>(c)))
                       .c_str());
      for (int k = 0; k < 3; ++k) {
        std::fprintf(f,
                     "\"%s\": {\"count\": %lld, \"p50\": %.2f, "
                     "\"p99\": %.2f}%s",
                     kComponentKeys[k],
                     static_cast<long long>(snap[c][k].count),
                     snap[c][k].Quantile(0.50), snap[c][k].Quantile(0.99),
                     k < 2 ? ", " : "");
      }
      std::fprintf(f, "}%s\n", c < 2 ? "," : "");
    }
    std::fprintf(f, " }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (missing) {
    std::fprintf(stderr,
                 "OBS FAIL: a per-class breakdown histogram is missing or "
                 "empty — the traced serving path did not feed it\n");
    return 1;
  }
  if (obs::Tracer::Global().recorded() <= 0) {
    std::fprintf(stderr, "OBS FAIL: no trace spans recorded\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "ha=1") {
      return RunHaServing(argc, argv);
    }
    if (std::string(argv[i]) == "mixed=1") {
      return RunMixedSlo(argc, argv);
    }
    if (std::string(argv[i]) == "closed_loop=1") {
      return RunClosedLoopServing(argc, argv);
    }
    if (std::string(argv[i]) == "wire=1") {
      return RunWireServing(argc, argv);
    }
    if (std::string(argv[i]) == "cluster=1") {
      return RunClusterScale(argc, argv);
    }
    if (std::string(argv[i]) == "obs=1") {
      return RunObsBreakdown(argc, argv);
    }
  }
  const auto opts = bench::HarnessOptions::FromArgs(argc, argv);
  const slim::FluidNetConfig cfg;
  core::Rng rng(opts.seed);

  std::printf("== Fig. 2 (throughput panel) — Fluid DyDNNs, DATE 2024 ==\n");
  std::printf("# link: %.1f ms one-way + payload at %.0f Mbit/s (paper: "
              "measured offline on TCP)\n\n",
              opts.link_latency_ms, opts.link_bandwidth_mbps);

  // Weights do not affect latency — untrained models suffice here.
  slim::FluidModel fluid(cfg, slim::SubnetFamily::PaperDefault(), rng);
  nn::Sequential static_model = train::BuildConvNet(cfg, 16, rng);

  // ---- Panel 1: emulated Jetson (calibrated substitution) -------------
  sim::SystemProfile jp =
      bench::AnalyticJetsonProfile(fluid, bench::LinkFrom(opts));
  jp.acc_static = jp.acc_dynamic_full = jp.acc_fluid_full = 0.99;
  jp.acc_dynamic_w50 = jp.acc_fluid_lower50 = jp.acc_fluid_upper50 = 0.98;

  std::printf("-- emulated Jetson-class devices (%.1f MFLOP/s + %.1f ms "
              "dispatch overhead) --\n",
              sim::EmulatedJetsonCpu().effective_flops_per_s / 1e6,
              sim::EmulatedJetsonCpu().fixed_overhead_s * 1e3);
  std::printf("per-image latency: static front %.1f ms, back %.1f ms, 50%% "
              "%.1f ms, upper50%% %.1f ms, link(cut) %.1f ms\n\n",
              jp.static_front_latency_s * 1e3, jp.static_back_latency_s * 1e3,
              jp.w50_latency_s * 1e3, jp.upper50_latency_s * 1e3,
              jp.link.TransferTime(jp.static_cut_bytes) * 1e3);
  sim::Fig2Evaluator jeval(jp);
  std::printf("%s\n", sim::FormatFig2Table(jeval.FullGrid()).c_str());

  const auto st = jeval.Evaluate(sim::DnnType::kStatic,
                                 sim::Availability::kBothOnline,
                                 sim::Mode::kHighAccuracy);
  const auto dyn = jeval.Evaluate(sim::DnnType::kDynamic,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighThroughput);
  const auto fl = jeval.Evaluate(sim::DnnType::kFluid,
                                 sim::Availability::kBothOnline,
                                 sim::Mode::kHighThroughput);
  std::printf("key numbers           (this run | paper)\n");
  std::printf("  Static both-online    : %5.1f | %5.1f img/s\n",
              st.throughput_img_per_s, bench::PaperFig2::kStaticThroughput);
  std::printf("  Dynamic HT            : %5.1f | %5.1f img/s\n",
              dyn.throughput_img_per_s,
              bench::PaperFig2::kDynamicHtThroughput);
  std::printf("  Fluid HT              : %5.1f | %5.1f img/s\n",
              fl.throughput_img_per_s, bench::PaperFig2::kFluidHtThroughput);
  std::printf("  Fluid HT / Static     : %4.2fx | %4.2fx\n",
              fl.throughput_img_per_s / st.throughput_img_per_s,
              bench::PaperFig2::kFluidHtThroughput /
                  bench::PaperFig2::kStaticThroughput);
  std::printf("  Fluid HT / Dynamic    : %4.2fx | %4.2fx\n\n",
              fl.throughput_img_per_s / dyn.throughput_img_per_s,
              bench::PaperFig2::kFluidHtThroughput /
                  bench::PaperFig2::kDynamicHtThroughput);

  // ---- Panel 2: raw host-measured latencies (transparency) ------------
  sim::SystemProfile hp;
  hp.link = bench::LinkFrom(opts);
  core::Tensor sample({1, 1, 28, 28});
  auto halves = train::SplitConvNet(cfg, 16, static_model, 2);
  hp.static_cut_bytes = halves.cut_bytes_per_sample;
  hp.static_front_latency_s =
      sim::MeasureModelLatency(halves.front, sample, 50).mean_s;
  core::Tensor mid = halves.front.Forward(sample, false);
  hp.static_back_latency_s =
      sim::MeasureModelLatency(halves.back, mid, 50).mean_s;
  auto lower50 = fluid.ExtractSubnet(fluid.family().MasterResident());
  auto upper50 = fluid.ExtractSubnet(fluid.family().WorkerResident());
  hp.w50_latency_s = sim::MeasureModelLatency(lower50, sample, 50).mean_s;
  hp.upper50_latency_s = sim::MeasureModelLatency(upper50, sample, 50).mean_s;
  hp.acc_static = hp.acc_dynamic_full = hp.acc_fluid_full = 0.99;
  hp.acc_dynamic_w50 = hp.acc_fluid_lower50 = hp.acc_fluid_upper50 = 0.98;

  std::printf("-- raw host CPU (uncalibrated; same shape, this machine's "
              "scale) --\n");
  std::printf("per-image latency: static front %.3f ms, back %.3f ms, 50%% "
              "%.3f ms, upper50%% %.3f ms\n\n",
              hp.static_front_latency_s * 1e3, hp.static_back_latency_s * 1e3,
              hp.w50_latency_s * 1e3, hp.upper50_latency_s * 1e3);
  sim::Fig2Evaluator heval(hp);
  std::printf("%s\n", sim::FormatFig2Table(heval.FullGrid()).c_str());

  // Extension: store-and-forward vs overlapped pipeline on the Jetson model.
  sim::PipelineParams pp;
  pp.front_latency_s = jp.static_front_latency_s;
  pp.back_latency_s = jp.static_back_latency_s;
  pp.cut_bytes = jp.static_cut_bytes;
  pp.link = jp.link;
  const auto seq = sim::SequentialPipelineThroughput(pp);
  const auto pip = sim::SimulatePipelined(pp, 300);
  std::printf("static pipeline on emulated Jetson: store-and-forward %.1f "
              "img/s, overlapped (DES) %.1f img/s\n",
              seq.throughput_img_per_s, pip.throughput_img_per_s);
  return 0;
}
