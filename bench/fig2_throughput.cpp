// Reproduces the THROUGHPUT panel of paper Fig. 2.
//
// Two views are printed:
//  1. The headline panel uses the calibrated Jetson-Xavier-NX-class device
//     model (sim::EmulatedJetsonCpu — ~35.5 MFLOP/s + ~58 ms dispatch
//     overhead, solved from the paper's two measured anchors) applied to
//     this library's exact per-sub-network FLOP counts, plus the
//     offline-measured link model. This is the DESIGN.md §3 substitution
//     for the paper's boards and reproduces Fig. 2's absolute numbers.
//  2. A transparency panel re-derives the same grid from latencies
//     *measured on this host's CPU* (raw, uncalibrated) — the shape (who
//     wins, who survives) is identical; the absolute scale reflects this
//     machine instead of a Jetson.
//
// Expected shape (paper): Static 11.1 img/s both-online and 0 under any
// failure; Dynamic 14.4 HT / survives only Master; Fluid 28.3 HT
// (~2.5× Static, ~2× Dynamic), survives either failure.

#include <cstdio>

#include "core/rng.h"
#include "harness_common.h"
#include "sim/latency.h"
#include "sim/pipeline_sim.h"
#include "train/model_zoo.h"

using namespace fluid;

int main(int argc, char** argv) {
  const auto opts = bench::HarnessOptions::FromArgs(argc, argv);
  const slim::FluidNetConfig cfg;
  core::Rng rng(opts.seed);

  std::printf("== Fig. 2 (throughput panel) — Fluid DyDNNs, DATE 2024 ==\n");
  std::printf("# link: %.1f ms one-way + payload at %.0f Mbit/s (paper: "
              "measured offline on TCP)\n\n",
              opts.link_latency_ms, opts.link_bandwidth_mbps);

  // Weights do not affect latency — untrained models suffice here.
  slim::FluidModel fluid(cfg, slim::SubnetFamily::PaperDefault(), rng);
  nn::Sequential static_model = train::BuildConvNet(cfg, 16, rng);

  // ---- Panel 1: emulated Jetson (calibrated substitution) -------------
  sim::SystemProfile jp =
      bench::AnalyticJetsonProfile(fluid, bench::LinkFrom(opts));
  jp.acc_static = jp.acc_dynamic_full = jp.acc_fluid_full = 0.99;
  jp.acc_dynamic_w50 = jp.acc_fluid_lower50 = jp.acc_fluid_upper50 = 0.98;

  std::printf("-- emulated Jetson-class devices (%.1f MFLOP/s + %.1f ms "
              "dispatch overhead) --\n",
              sim::EmulatedJetsonCpu().effective_flops_per_s / 1e6,
              sim::EmulatedJetsonCpu().fixed_overhead_s * 1e3);
  std::printf("per-image latency: static front %.1f ms, back %.1f ms, 50%% "
              "%.1f ms, upper50%% %.1f ms, link(cut) %.1f ms\n\n",
              jp.static_front_latency_s * 1e3, jp.static_back_latency_s * 1e3,
              jp.w50_latency_s * 1e3, jp.upper50_latency_s * 1e3,
              jp.link.TransferTime(jp.static_cut_bytes) * 1e3);
  sim::Fig2Evaluator jeval(jp);
  std::printf("%s\n", sim::FormatFig2Table(jeval.FullGrid()).c_str());

  const auto st = jeval.Evaluate(sim::DnnType::kStatic,
                                 sim::Availability::kBothOnline,
                                 sim::Mode::kHighAccuracy);
  const auto dyn = jeval.Evaluate(sim::DnnType::kDynamic,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighThroughput);
  const auto fl = jeval.Evaluate(sim::DnnType::kFluid,
                                 sim::Availability::kBothOnline,
                                 sim::Mode::kHighThroughput);
  std::printf("key numbers           (this run | paper)\n");
  std::printf("  Static both-online    : %5.1f | %5.1f img/s\n",
              st.throughput_img_per_s, bench::PaperFig2::kStaticThroughput);
  std::printf("  Dynamic HT            : %5.1f | %5.1f img/s\n",
              dyn.throughput_img_per_s,
              bench::PaperFig2::kDynamicHtThroughput);
  std::printf("  Fluid HT              : %5.1f | %5.1f img/s\n",
              fl.throughput_img_per_s, bench::PaperFig2::kFluidHtThroughput);
  std::printf("  Fluid HT / Static     : %4.2fx | %4.2fx\n",
              fl.throughput_img_per_s / st.throughput_img_per_s,
              bench::PaperFig2::kFluidHtThroughput /
                  bench::PaperFig2::kStaticThroughput);
  std::printf("  Fluid HT / Dynamic    : %4.2fx | %4.2fx\n\n",
              fl.throughput_img_per_s / dyn.throughput_img_per_s,
              bench::PaperFig2::kFluidHtThroughput /
                  bench::PaperFig2::kDynamicHtThroughput);

  // ---- Panel 2: raw host-measured latencies (transparency) ------------
  sim::SystemProfile hp;
  hp.link = bench::LinkFrom(opts);
  core::Tensor sample({1, 1, 28, 28});
  auto halves = train::SplitConvNet(cfg, 16, static_model, 2);
  hp.static_cut_bytes = halves.cut_bytes_per_sample;
  hp.static_front_latency_s =
      sim::MeasureModelLatency(halves.front, sample, 50).mean_s;
  core::Tensor mid = halves.front.Forward(sample, false);
  hp.static_back_latency_s =
      sim::MeasureModelLatency(halves.back, mid, 50).mean_s;
  auto lower50 = fluid.ExtractSubnet(fluid.family().MasterResident());
  auto upper50 = fluid.ExtractSubnet(fluid.family().WorkerResident());
  hp.w50_latency_s = sim::MeasureModelLatency(lower50, sample, 50).mean_s;
  hp.upper50_latency_s = sim::MeasureModelLatency(upper50, sample, 50).mean_s;
  hp.acc_static = hp.acc_dynamic_full = hp.acc_fluid_full = 0.99;
  hp.acc_dynamic_w50 = hp.acc_fluid_lower50 = hp.acc_fluid_upper50 = 0.98;

  std::printf("-- raw host CPU (uncalibrated; same shape, this machine's "
              "scale) --\n");
  std::printf("per-image latency: static front %.3f ms, back %.3f ms, 50%% "
              "%.3f ms, upper50%% %.3f ms\n\n",
              hp.static_front_latency_s * 1e3, hp.static_back_latency_s * 1e3,
              hp.w50_latency_s * 1e3, hp.upper50_latency_s * 1e3);
  sim::Fig2Evaluator heval(hp);
  std::printf("%s\n", sim::FormatFig2Table(heval.FullGrid()).c_str());

  // Extension: store-and-forward vs overlapped pipeline on the Jetson model.
  sim::PipelineParams pp;
  pp.front_latency_s = jp.static_front_latency_s;
  pp.back_latency_s = jp.static_back_latency_s;
  pp.cut_bytes = jp.static_cut_bytes;
  pp.link = jp.link;
  const auto seq = sim::SequentialPipelineThroughput(pp);
  const auto pip = sim::SimulatePipelined(pp, 300);
  std::printf("static pipeline on emulated Jetson: store-and-forward %.1f "
              "img/s, overlapped (DES) %.1f img/s\n",
              seq.throughput_img_per_s, pip.throughput_img_per_s);
  return 0;
}
