// Ablation: communication-latency sweep.
//
// The paper's HA throughput (and Static's) is communication-bound — "due to
// inevitable communication overhead between devices" (§III). This sweep
// moves the one-way link latency from 0 to 100 ms on the emulated
// Jetson-class devices (sim::EmulatedJetsonCpu) and reports where the
// distributed pipeline stops being worthwhile versus single-device and HT
// operation — the crossover the paper's HA/HT adaptation exploits. It also
// contrasts the paper's store-and-forward model against an overlapped
// (pipelined) schedule simulated with the DES, and the per-layer
// channel-partitioned HA dataflow, whose byte cost comes from the real
// PartitionedRunner accounting.

#include <algorithm>
#include <cstdio>

#include "core/rng.h"
#include "harness_common.h"
#include "sim/pipeline_sim.h"
#include "slim/partitioned.h"

using namespace fluid;

int main(int argc, char** argv) {
  const auto opts = bench::HarnessOptions::FromArgs(argc, argv);
  const slim::FluidNetConfig cfg;
  core::Rng rng(opts.seed);

  std::printf("== Ablation: link-latency sweep (emulated Jetson devices) "
              "==\n\n");

  slim::FluidModel fluid(cfg, slim::SubnetFamily::PaperDefault(), rng);
  const sim::SystemProfile base =
      bench::AnalyticJetsonProfile(fluid, bench::LinkFrom(opts));
  const auto jetson = sim::EmulatedJetsonCpu();
  const double t_full =
      jetson.LatencyFor(fluid.SubnetFlops(fluid.family().Combined()));

  slim::PartitionedRunner runner(fluid);
  const auto part_stats = runner.AnalyticStats(1);

  std::printf("compute: front %.1f ms, back %.1f ms, full-1dev %.1f ms, "
              "50%% %.1f ms\n",
              base.static_front_latency_s * 1e3,
              base.static_back_latency_s * 1e3, t_full * 1e3,
              base.w50_latency_s * 1e3);
  std::printf("channel-partitioned HA moves %lld B per image over %lld "
              "exchanges\n\n",
              static_cast<long long>(part_stats.total_bytes()),
              static_cast<long long>(part_stats.exchanges));

  std::printf("%-10s %12s %12s %12s %12s %12s\n", "link[ms]", "pipe-S&F",
              "pipe-ovl", "HT(2dev)", "1dev-full", "part-HA");
  std::printf("%s\n", std::string(74, '-').c_str());

  sim::LinkModel link = base.link;
  double crossover_snf = -1.0, crossover_ovl = -1.0;
  for (const double ms :
       {0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    link.latency_s = ms * 1e-3;
    sim::PipelineParams pp{base.static_front_latency_s,
                           base.static_back_latency_s, base.static_cut_bytes,
                           link};
    const double snf =
        sim::SequentialPipelineThroughput(pp).throughput_img_per_s;
    const double ovl = sim::SimulatePipelined(pp, 200).throughput_img_per_s;
    const double lat[2] = {base.w50_latency_s, base.upper50_latency_s};
    const double ht = sim::IndependentParallelThroughput(lat, 2);
    const double one_dev = 1.0 / t_full;
    // Channel-partitioned HA: both devices compute half of each stage,
    // paying the link per exchange.
    const double part_compute =
        std::max(base.w50_latency_s, base.upper50_latency_s);
    const double part_comm =
        static_cast<double>(part_stats.exchanges) * link.latency_s +
        static_cast<double>(part_stats.total_bytes()) /
            link.bandwidth_bytes_per_s;
    const double part_ha = 1.0 / (part_compute + part_comm);

    std::printf("%-10.0f %12.1f %12.1f %12.1f %12.1f %12.1f\n", ms, snf, ovl,
                ht, one_dev, part_ha);
    if (crossover_snf < 0 && snf < one_dev) crossover_snf = ms;
    if (crossover_ovl < 0 && ovl < one_dev) crossover_ovl = ms;
  }
  std::printf("\ncrossovers vs running the full model on one device "
              "(%.1f img/s):\n", 1.0 / t_full);
  std::printf("  store-and-forward pipeline loses above ~%.0f ms one-way\n",
              crossover_snf);
  std::printf("  overlapped pipeline loses above ~%.0f ms one-way\n",
              crossover_ovl < 0 ? 100.0 : crossover_ovl);
  std::printf("reading: HT never touches the link and dominates at every "
              "latency — the paper's motivation for leaving HA under load; "
              "per-layer channel partitioning pays the link %lldx per image "
              "and degrades fastest.\n",
              static_cast<long long>(part_stats.exchanges));
  return 0;
}
