#!/usr/bin/env bash
# Builds Release and records the perf baselines at the repo root so the
# trajectory is tracked PR over PR:
#   BENCH_gemm.json    — GEMM / conv microbenchmarks (google-benchmark)
#   BENCH_serving.json — closed-loop serving: sync RPC path vs the async
#                        batched runtime over the paper's emulated link
#                        (fig2_throughput closed_loop=1)
#
# Usage: scripts/run_bench.sh [extra google-benchmark args...]
# Honours FLUID_NUM_THREADS; by default records a single-thread run plus a
# FLUID_NUM_THREADS=4 run in one file.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

# Fail loudly when the benchmark target is missing or broken (e.g.
# google-benchmark not found at configure time, or micro_ops.cpp does not
# compile) instead of silently recording nothing — or worse, silently
# benchmarking a stale binary from an earlier build.
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
if ! cmake --build "${build_dir}" -j "$(nproc)" --target micro_ops; then
  echo "error: building micro_ops failed." >&2
  echo "       Is google-benchmark installed? (find_package(benchmark))" >&2
  exit 1
fi
if [[ ! -x "${build_dir}/micro_ops" ]]; then
  echo "error: ${build_dir}/micro_ops was not produced by the build." >&2
  exit 1
fi

filter='BM_Gemm|BM_Conv2dForward'
tmp1="$(mktemp)" tmp4="$(mktemp)" merged=""
trap 'rm -f "${tmp1}" "${tmp4}" ${merged:+"${merged}"}' EXIT

FLUID_NUM_THREADS=1 "${build_dir}/micro_ops" \
  --benchmark_filter="${filter}" --benchmark_format=json "$@" > "${tmp1}"
FLUID_NUM_THREADS=4 "${build_dir}/micro_ops" \
  --benchmark_filter="${filter}" --benchmark_format=json "$@" > "${tmp4}"

# Merge into a temp file and move into place only on success, so a failed
# run never truncates the tracked baseline.
merged="$(mktemp)"
python3 - "${tmp1}" "${tmp4}" > "${merged}" <<'EOF'
import json, sys
one, four = (json.load(open(p)) for p in sys.argv[1:3])
json.dump({
    "context": one["context"],
    "threads_1": one["benchmarks"],
    "threads_4": four["benchmarks"],
}, sys.stdout, indent=1)
EOF
mv "${merged}" "${repo_root}/BENCH_gemm.json"

echo "wrote ${repo_root}/BENCH_gemm.json"

# ---- closed-loop serving baseline -----------------------------------------
if ! cmake --build "${build_dir}" -j "$(nproc)" --target fig2_throughput; then
  echo "error: building fig2_throughput failed." >&2
  exit 1
fi
serving_tmp="$(mktemp)"
trap 'rm -f "${tmp1}" "${tmp4}" ${merged:+"${merged}"} "${serving_tmp}"' EXIT
"${build_dir}/fig2_throughput" closed_loop=1 clients=8 per_client=100 \
  json="${serving_tmp}"
mv "${serving_tmp}" "${repo_root}/BENCH_serving.json"
echo "wrote ${repo_root}/BENCH_serving.json"
