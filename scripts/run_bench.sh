#!/usr/bin/env bash
# Builds Release and records the perf baselines at the repo root so the
# trajectory is tracked PR over PR:
#   BENCH_gemm.json    — GEMM / conv microbenchmarks (google-benchmark)
#   BENCH_serving.json — live serving baselines, three sections:
#                          closed_loop — sync RPC path vs the async batched
#                            runtime over the paper's emulated link
#                            (fig2_throughput closed_loop=1)
#                          ha_quant    — HighAccuracy pipeline, fp32 (v2)
#                            vs int8 (v3) cut-activation frames, closed- and
#                            open-loop with latency percentiles
#                            (fig2_throughput ha=1)
#                          mixed_slo   — continuous batching: bursty
#                            3-class open-loop traffic on the HA pipeline,
#                            per-priority-class latency percentiles plus
#                            deadline-miss/preemption counters
#                            (fig2_throughput mixed=1)
#                          wire        — HT fan-out data plane: fp32 (v2)
#                            vs int8 input shards (wire v5) on one fleet,
#                            with per-phase wire byte/frame counters and
#                            the input quantization's top-1 fidelity
#                            (fig2_throughput wire=1)
#                          cluster_scale — partitioned multi-master
#                            scale-out: RequestRouter over N=1..4
#                            masters, each with its own worker and
#                            emulated link; aggregate closed-loop req/s
#                            plus 3-class open-loop percentiles per N,
#                            measured with 1-in-16 request tracing and
#                            the wire v6 trace block on
#                            (fig2_throughput cluster=1)
#                          obs         — latency breakdown per SLO class:
#                            queue-wait vs service vs wire p50/p99 from
#                            the serving path's own histograms, every
#                            request traced (fig2_throughput obs=1)
#                          int8_accuracy — top-1 of the int8 deployment vs
#                            its fp32 source (fig2_accuracy quant_json=…;
#                            skipped when FLUID_BENCH_SKIP_ACCURACY=1 — it
#                            trains the three model families; the
#                            previously recorded section carries over)
#
# Usage: scripts/run_bench.sh [extra google-benchmark args...]
# Honours FLUID_NUM_THREADS; by default records a single-thread run plus a
# FLUID_NUM_THREADS=4 run in one file.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

# Fail loudly when the benchmark target is missing or broken (e.g.
# google-benchmark not found at configure time, or micro_ops.cpp does not
# compile) instead of silently recording nothing — or worse, silently
# benchmarking a stale binary from an earlier build.
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release

# Verify the tree really configured Release before recording any rate: a
# stale cache (or a Debug override on the command line) must fail loudly,
# not silently stamp debug-build numbers into the tracked baselines.
# Note: google-benchmark's context.library_build_type describes the
# SYSTEM libbenchmark package, not this library — the authoritative field
# for our code is the cmake_build_type recorded below from this check.
configured_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "${build_dir}/CMakeCache.txt" | head -n1)"
if [[ "${configured_type}" != "Release" ]]; then
  echo "error: build tree at ${build_dir} is configured as" \
       "'${configured_type:-<unset>}', not Release." >&2
  echo "       Refusing to record benchmark numbers from a non-Release" \
       "build; delete ${build_dir}/CMakeCache.txt and rerun." >&2
  exit 1
fi

if ! cmake --build "${build_dir}" -j "$(nproc)" --target micro_ops; then
  echo "error: building micro_ops failed." >&2
  echo "       Is google-benchmark installed? (find_package(benchmark))" >&2
  exit 1
fi
if [[ ! -x "${build_dir}/micro_ops" ]]; then
  echo "error: ${build_dir}/micro_ops was not produced by the build." >&2
  exit 1
fi

filter='BM_Gemm|BM_QGemmInt8|BM_Conv2dForward'
tmp1="$(mktemp)" tmp4="$(mktemp)" merged=""
trap 'rm -f "${tmp1}" "${tmp4}" ${merged:+"${merged}"}' EXIT

FLUID_NUM_THREADS=1 "${build_dir}/micro_ops" \
  --benchmark_filter="${filter}" --benchmark_format=json "$@" > "${tmp1}"
FLUID_NUM_THREADS=4 "${build_dir}/micro_ops" \
  --benchmark_filter="${filter}" --benchmark_format=json "$@" > "${tmp4}"

# Merge into a temp file and move into place only on success, so a failed
# run never truncates the tracked baseline.
merged="$(mktemp)"
python3 - "${tmp1}" "${tmp4}" "${configured_type}" > "${merged}" <<'EOF'
import json, sys
one, four = (json.load(open(p)) for p in sys.argv[1:3])
ctx = one["context"]
# The verified build type of THIS library (context.library_build_type is
# the system google-benchmark package's own, which we don't control).
ctx["cmake_build_type"] = sys.argv[3]
json.dump({
    "context": ctx,
    "threads_1": one["benchmarks"],
    "threads_4": four["benchmarks"],
}, sys.stdout, indent=1)
EOF
mv "${merged}" "${repo_root}/BENCH_gemm.json"

echo "wrote ${repo_root}/BENCH_gemm.json"

# ---- serving baselines ------------------------------------------------------
if ! cmake --build "${build_dir}" -j "$(nproc)" --target fig2_throughput; then
  echo "error: building fig2_throughput failed." >&2
  exit 1
fi
serving_tmp="$(mktemp)" ha_tmp="$(mktemp)" acc_tmp="$(mktemp)" mixed_tmp="$(mktemp)" wire_tmp="$(mktemp)" cluster_tmp="$(mktemp)" obs_tmp="$(mktemp)"
trap 'rm -f "${tmp1}" "${tmp4}" ${merged:+"${merged}"} "${serving_tmp}" "${ha_tmp}" "${acc_tmp}" "${mixed_tmp}" "${wire_tmp}" "${cluster_tmp}" "${obs_tmp}"' EXIT
"${build_dir}/fig2_throughput" closed_loop=1 clients=8 per_client=100 \
  json="${serving_tmp}"
# Wire data plane: the HT fan-out served fp32 (v2) vs int8 input shards
# (v5) on the same fleet and link — the per-phase wire byte counters and
# the input quantization's top-1 fidelity land in the `wire` section.
"${build_dir}/fig2_throughput" wire=1 clients=64 per_client=50 max_batch=64 \
  json="${wire_tmp}"
# Quantized HA: the 12 ms / 100 Mbit/s paper link, deep cut (stage 1 —
# the regime where the cut-activation stream saturates the serial link),
# open-loop Poisson at 900 req/s (between the fp32 and int8 capacities,
# so the percentile gap shows the saturation cliff).
"${build_dir}/fig2_throughput" ha=1 clients=64 per_client=50 max_batch=64 \
  ha_window=32 cut=1 rate=900 open_requests=500 json="${ha_tmp}"
# Continuous batching under mixed-SLO bursty traffic: same link and HA
# int8 operating point as ha_quant's open loop, but three priority
# classes with per-class deadlines and a square-wave burst around the
# 950 req/s average — the gate is the high class's p99 against the
# single-class ha_quant baseline.
"${build_dir}/fig2_throughput" mixed=1 rate=950 requests=3000 \
  max_batch=64 ha_window=32 cut=1 json="${mixed_tmp}"
# Partitioned multi-master scale-out: the router over N=1..4 partitions,
# each master + worker on its OWN 12 ms / 100 Mbit/s emulated link — the
# aggregate req/s at N=3 vs N=1 is the scale-out gate, and the high
# class's open-loop p99 must hold against the single-master mixed_slo
# baseline.
"${build_dir}/fig2_throughput" cluster=1 masters=4 json="${cluster_tmp}"
# Latency breakdown: the serving path's queue-wait/service/wire histograms
# split each SLO class's latency into its scheduler, compute and link
# components; every request is traced so the wire component covers the run.
"${build_dir}/fig2_throughput" obs=1 rate=300 requests=2000 \
  json="${obs_tmp}"

if [[ "${FLUID_BENCH_SKIP_ACCURACY:-0}" != "1" ]]; then
  if ! cmake --build "${build_dir}" -j "$(nproc)" --target fig2_accuracy; then
    echo "error: building fig2_accuracy failed." >&2
    exit 1
  fi
  "${build_dir}/fig2_accuracy" quant_json="${acc_tmp}"
else
  # Skipping the (training-heavy) accuracy run must not erase the last
  # recorded numbers: carry the previous int8_accuracy section forward.
  python3 - "${repo_root}/BENCH_serving.json" > "${acc_tmp}" <<'EOF'
import json, sys
try:
    prev = json.load(open(sys.argv[1]))
except (OSError, ValueError):
    prev = {}
json.dump(prev.get("int8_accuracy", {}), sys.stdout)
EOF
fi

serving_merged="$(mktemp)"
python3 - "${serving_tmp}" "${ha_tmp}" "${acc_tmp}" "${mixed_tmp}" "${wire_tmp}" "${cluster_tmp}" "${obs_tmp}" > "${serving_merged}" <<'EOF'
import json, sys
closed, ha, acc, mixed, wire, cluster, obs = (
    json.load(open(p)) for p in sys.argv[1:8])
out = {"closed_loop": closed, "ha_quant": ha, "mixed_slo": mixed,
       "wire": wire, "cluster_scale": cluster, "obs": obs}
# Steady-state heap discipline per scenario, gathered in one place so the
# alloc/request trajectory is tracked PR over PR next to the latencies.
out["mem_discipline"] = {
    "closed_loop": {
        k: closed[k]
        for k in ("sync_allocs_per_req", "sync_bytes_per_req",
                  "async_allocs_per_req", "async_bytes_per_req")
        if k in closed
    },
    "ha_quant": {
        k: ha[k]
        for k in ("fp32_allocs_per_req", "fp32_bytes_per_req",
                  "int8_allocs_per_req", "int8_bytes_per_req")
        if k in ha
    },
    "ha_quant_open_loop": {
        f"{tier}_{k}": ha[tier + "_open"][k]
        for tier in ("fp32", "int8") if tier + "_open" in ha
        for k in ("allocs_per_req", "bytes_per_req")
        if k in ha[tier + "_open"]
    },
}
if acc:
    out["int8_accuracy"] = acc
json.dump(out, sys.stdout, indent=1)
EOF
mv "${serving_merged}" "${repo_root}/BENCH_serving.json"
echo "wrote ${repo_root}/BENCH_serving.json"
