#!/usr/bin/env bash
# Tier-1 verify: configure, build, run every test. Exits non-zero on any
# configure/build/test failure so CI and the PR driver can gate on it.
#
# The suite runs twice: once with the auto-detected SIMD GEMM kernel and
# once pinned to FLUID_SIMD=scalar, so the portable fallback tier stays
# correct on hosts where CPUID would never select it.
#
# Usage: scripts/run_tests.sh [ctest args...]
#   e.g. scripts/run_tests.sh -R MasterWorker
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)"

if ! ls "${build_dir}"/fluid_*_tests >/dev/null 2>&1; then
  echo "error: no test binaries were built (GTest missing?)" >&2
  exit 1
fi

echo "== ctest (auto-detected SIMD tier) =="
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"

echo "== ctest (FLUID_SIMD=scalar) =="
FLUID_SIMD=scalar \
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
