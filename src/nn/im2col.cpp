#include "nn/im2col.h"

#include "core/error.h"
#include "core/parallel.h"

namespace fluid::nn {

std::int64_t ConvOutExtent(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t pad) {
  FLUID_CHECK_MSG(stride > 0, "stride must be positive");
  const std::int64_t padded = in + 2 * pad - kernel;
  FLUID_CHECK_MSG(padded >= 0, "kernel larger than padded input");
  return padded / stride + 1;
}

namespace {

// Core lowering with an explicit output row stride: patch row r of the
// sample lands at cols_out + r * row_stride. The per-sample layout uses
// row_stride == area; the fused layout uses row_stride == batch * area
// with a per-sample column offset already applied to cols_out.
//
// Templated over the element type: lowering only copies values (plus
// zero padding), so the same routine serves the fp32 path and the
// already-quantized int8 path (where the zero code is exactly the
// quantization of 0.0f).
template <typename T>
void Im2ColStrided(const T* input, std::int64_t height, std::int64_t width,
                   std::int64_t c_lo, std::int64_t c_hi, std::int64_t kernel,
                   std::int64_t stride, std::int64_t pad, std::int64_t out_h,
                   std::int64_t out_w, T* cols_out,
                   std::int64_t row_stride) {
  std::int64_t row = 0;
  for (std::int64_t c = c_lo; c < c_hi; ++c) {
    const T* chan = input + c * height * width;
    for (std::int64_t ky = 0; ky < kernel; ++ky) {
      for (std::int64_t kx = 0; kx < kernel; ++kx, ++row) {
        T* dst = cols_out + row * row_stride;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= height) {
            for (std::int64_t ox = 0; ox < out_w; ++ox) dst[oy * out_w + ox] = T{0};
            continue;
          }
          const T* src_row = chan + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            dst[oy * out_w + ox] =
                (ix >= 0 && ix < width) ? src_row[ix] : T{0};
          }
        }
      }
    }
  }
}

}  // namespace

void Im2Col(std::span<const float> input, std::int64_t channels,
            std::int64_t height, std::int64_t width, std::int64_t c_lo,
            std::int64_t c_hi, std::int64_t kernel, std::int64_t stride,
            std::int64_t pad, std::span<float> cols) {
  FLUID_CHECK_MSG(0 <= c_lo && c_lo < c_hi && c_hi <= channels,
                  "Im2Col channel slice out of range");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(input.size()) ==
                      channels * height * width,
                  "Im2Col input size mismatch");
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t slice = c_hi - c_lo;
  FLUID_CHECK_MSG(static_cast<std::int64_t>(cols.size()) ==
                      slice * kernel * kernel * out_h * out_w,
                  "Im2Col cols size mismatch");
  Im2ColStrided(input.data(), height, width, c_lo, c_hi, kernel, stride, pad,
                out_h, out_w, cols.data(), out_h * out_w);
}

void Col2Im(std::span<const float> cols, std::int64_t channels,
            std::int64_t height, std::int64_t width, std::int64_t c_lo,
            std::int64_t c_hi, std::int64_t kernel, std::int64_t stride,
            std::int64_t pad, std::span<float> grad_input) {
  FLUID_CHECK_MSG(0 <= c_lo && c_lo < c_hi && c_hi <= channels,
                  "Col2Im channel slice out of range");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(grad_input.size()) ==
                      channels * height * width,
                  "Col2Im grad_input size mismatch");
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t slice = c_hi - c_lo;
  FLUID_CHECK_MSG(static_cast<std::int64_t>(cols.size()) ==
                      slice * kernel * kernel * out_h * out_w,
                  "Col2Im cols size mismatch");

  const std::int64_t patch_area = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = c_lo; c < c_hi; ++c) {
    float* chan = grad_input.data() + c * height * width;
    for (std::int64_t ky = 0; ky < kernel; ++ky) {
      for (std::int64_t kx = 0; kx < kernel; ++kx, ++row) {
        const float* src = cols.data() + row * patch_area;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= height) continue;
          float* dst_row = chan + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            if (ix >= 0 && ix < width) dst_row[ix] += src[oy * out_w + ox];
          }
        }
      }
    }
  }
}

void Im2ColBatched(std::span<const float> input, std::int64_t batch,
                   std::int64_t channels, std::int64_t height,
                   std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                   std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                   std::span<float> cols) {
  const std::int64_t plane = channels * height * width;
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t per_sample = (c_hi - c_lo) * kernel * kernel * out_h * out_w;
  FLUID_CHECK_MSG(static_cast<std::int64_t>(input.size()) == batch * plane,
                  "Im2ColBatched input size mismatch");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(cols.size()) == batch * per_sample,
                  "Im2ColBatched cols size mismatch");
  core::ParallelForEach(0, batch, 1, [&](std::int64_t n) {
    Im2Col(input.subspan(static_cast<std::size_t>(n * plane),
                         static_cast<std::size_t>(plane)),
           channels, height, width, c_lo, c_hi, kernel, stride, pad,
           cols.subspan(static_cast<std::size_t>(n * per_sample),
                        static_cast<std::size_t>(per_sample)));
  });
}

void Im2ColFused(std::span<const float> input, std::int64_t batch,
                 std::int64_t channels, std::int64_t height,
                 std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                 std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                 std::span<float> cols) {
  FLUID_CHECK_MSG(0 <= c_lo && c_lo < c_hi && c_hi <= channels,
                  "Im2ColFused channel slice out of range");
  const std::int64_t plane = channels * height * width;
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t area = out_h * out_w;
  const std::int64_t patch = (c_hi - c_lo) * kernel * kernel;
  FLUID_CHECK_MSG(static_cast<std::int64_t>(input.size()) == batch * plane,
                  "Im2ColFused input size mismatch");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(cols.size()) ==
                      patch * batch * area,
                  "Im2ColFused cols size mismatch");
  const std::int64_t row_stride = batch * area;
  core::ParallelForEach(0, batch, 1, [&](std::int64_t n) {
    Im2ColStrided(input.data() + n * plane, height, width, c_lo, c_hi, kernel,
                  stride, pad, out_h, out_w, cols.data() + n * area,
                  row_stride);
  });
}

void Im2ColFusedInt8(std::span<const std::int8_t> input, std::int64_t batch,
                     std::int64_t channels, std::int64_t height,
                     std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                     std::int64_t kernel, std::int64_t stride,
                     std::int64_t pad, std::span<std::int8_t> cols) {
  FLUID_CHECK_MSG(0 <= c_lo && c_lo < c_hi && c_hi <= channels,
                  "Im2ColFusedInt8 channel slice out of range");
  const std::int64_t plane = channels * height * width;
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t area = out_h * out_w;
  const std::int64_t patch = (c_hi - c_lo) * kernel * kernel;
  FLUID_CHECK_MSG(static_cast<std::int64_t>(input.size()) == batch * plane,
                  "Im2ColFusedInt8 input size mismatch");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(cols.size()) ==
                      patch * batch * area,
                  "Im2ColFusedInt8 cols size mismatch");
  const std::int64_t row_stride = batch * area;
  core::ParallelForEach(0, batch, 1, [&](std::int64_t n) {
    Im2ColStrided(input.data() + n * plane, height, width, c_lo, c_hi, kernel,
                  stride, pad, out_h, out_w, cols.data() + n * area,
                  row_stride);
  });
}

void Col2ImBatched(std::span<const float> cols, std::int64_t batch,
                   std::int64_t channels, std::int64_t height,
                   std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                   std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                   std::span<float> grad_input) {
  const std::int64_t plane = channels * height * width;
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t per_sample = (c_hi - c_lo) * kernel * kernel * out_h * out_w;
  FLUID_CHECK_MSG(
      static_cast<std::int64_t>(grad_input.size()) == batch * plane,
      "Col2ImBatched grad_input size mismatch");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(cols.size()) == batch * per_sample,
                  "Col2ImBatched cols size mismatch");
  core::ParallelForEach(0, batch, 1, [&](std::int64_t n) {
    Col2Im(cols.subspan(static_cast<std::size_t>(n * per_sample),
                        static_cast<std::size_t>(per_sample)),
           channels, height, width, c_lo, c_hi, kernel, stride, pad,
           grad_input.subspan(static_cast<std::size_t>(n * plane),
                              static_cast<std::size_t>(plane)));
  });
}

}  // namespace fluid::nn
