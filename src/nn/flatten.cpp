#include "nn/flatten.h"

#include "core/error.h"

namespace fluid::nn {

core::Tensor Flatten::Forward(const core::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() >= 1, "Flatten expects rank >= 1");
  const std::int64_t batch = s[0];
  const std::int64_t rest = batch == 0 ? 0 : input.numel() / batch;
  if (training) cached_in_shape_ = s;
  return input.Reshaped({batch, rest});
}

core::Tensor Flatten::ForwardInference(core::Tensor&& input) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() >= 1, "Flatten expects rank >= 1");
  const std::int64_t batch = s[0];
  const std::int64_t rest = batch == 0 ? 0 : input.numel() / batch;
  return std::move(input).Reshaped({batch, rest});
}

core::Tensor Flatten::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(cached_in_shape_.rank() > 0,
                  "Flatten::Backward without training Forward");
  return grad_output.Reshaped(cached_in_shape_);
}

}  // namespace fluid::nn
