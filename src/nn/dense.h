#pragma once
// Fully-connected layer: y = W x + b, rank-2 inputs [N, in].

#include <cstdint>
#include <string>

#include "core/rng.h"
#include "nn/layer.h"

namespace fluid::nn {

class Dense : public Layer {
 public:
  /// Weight [out, in], Kaiming-uniform; bias [out], zero.
  Dense(std::int64_t in_features, std::int64_t out_features, core::Rng& rng,
        std::string name = "dense");

  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  std::string Kind() const override { return "Dense"; }
  std::string ToString() const override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  core::Tensor& weight() { return weight_; }
  core::Tensor& bias() { return bias_; }

 private:
  std::int64_t in_features_, out_features_;
  std::string name_;
  core::Tensor weight_, bias_;
  core::Tensor weight_grad_, bias_grad_;
  core::Tensor cached_input_;
};

}  // namespace fluid::nn
