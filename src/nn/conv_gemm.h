#pragma once
// Shared conv↔GEMM lowering helpers behind nn::Conv2d and
// slim::SlimConv2d. Both layers run the same im2col-lowered GEMMs over a
// packed [out_ch, patch] weight matrix; the slimmable layer just packs a
// channel slice first and scatters gradients back with a stride. Keeping
// the forward fusion and the deterministic chunked-accumulation
// scaffolding here means the two layers cannot drift.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace fluid::nn {

/// Upper bound on samples per fused forward group. Groups run
/// sequentially on the caller; each group lowers into one fused
/// [patch, group·area] buffer and multiplies in a single
/// [out_ch, group·area] GEMM, so batches up to the group size (serving
/// and the default training batch) are exactly one GEMM. Parallelism
/// comes from inside the group: batch-parallel im2col/scatter and the
/// GEMM's (row block × column group) tasks — a lone wide GEMM spreads
/// across cores on its own. The actual group size also honours
/// kConvFusedBudgetFloats, so spatially large shapes shrink the group
/// instead of pinning a huge grow-only scratch. Group boundaries depend
/// only on the problem shape (never the thread count), and per-element
/// accumulation order is grouping-invariant, so results are bitwise
/// deterministic.
inline constexpr std::int64_t kConvFusedBatch = 64;

/// Float budget for one group's fused scratch (cols + fused output,
/// (patch + out_ch)·area floats per sample): 8M floats ≈ 32 MB. The
/// scratch is grow-only and thread-lifetime, so this caps the resident
/// per-thread footprint for any conv shape.
inline constexpr std::int64_t kConvFusedBudgetFloats = std::int64_t{8} << 20;

/// Samples per backward accumulation chunk (see ConvBackwardChunked).
inline constexpr std::int64_t kConvBackwardChunk = 4;

/// Caller-owned scratch for ConvForwardFused: the fused im2col buffer and
/// the pre-scatter GEMM output. Both are grown on demand (grow-only, like
/// the thread-local default) so a reused ConvScratch stops allocating
/// after the first group of each shape. Callers that want explicit
/// lifetime control (e.g. to bound scratch to a request instead of a
/// thread) pass one; passing nullptr uses the per-thread default.
struct ConvScratch {
  std::vector<float> cols;   // [patch, group·area] lowered columns
  std::vector<float> fused;  // [out_ch, group·area] pre-scatter output
};

/// Fused-batch conv forward over a packed channel slice.
///   input:  [batch, in_ch, height, width] contiguous.
///   weight: packed [out_ch, in_ch·kernel²] row-major.
///   bias:   [out_ch] (callers with sliced bias pass an offset pointer).
///   output: [batch, out_ch, out_h, out_w] contiguous, overwritten with
///           conv(input, weight) + bias.
///   leaky_slope: when != 1, the bias scatter also applies
///           max(v, slope·v) on the way out — the scatter already touches
///           every output element, so the folded activation is free on
///           the serve path (and bitwise identical to a separate
///           LeakyReLU layer, which computes exactly v > 0 ? v : slope·v
///           after the same bias add). 1 means "no activation": the fold
///           is skipped entirely, not computed as max(v, v).
///   scratch: caller-owned working buffers, or nullptr for the reusable
///           per-thread default (either way, steady-state repeat shapes
///           allocate nothing).
void ConvForwardFused(std::span<const float> input, std::int64_t batch,
                      std::int64_t in_ch, std::int64_t height,
                      std::int64_t width, std::int64_t kernel,
                      std::int64_t stride, std::int64_t pad,
                      std::int64_t out_ch, const float* weight,
                      const float* bias, std::span<float> output,
                      float leaky_slope = 1.0F,
                      ConvScratch* scratch = nullptr);

/// Deterministic chunked conv backward, shared by both conv layers: the
/// batch is cut into fixed kConvBackwardChunk-sample chunks, each chunk
/// lowers its samples and accumulates private dW [out_ch, patch] / db
/// [out_ch] partials (db in double), the input gradient is scatter-added
/// per sample via col2im, and `reduce_chunk(gw_chunk, gb_chunk)` is then
/// invoked once per chunk *in chunk order* on the calling thread so the
/// caller's gradient accumulation is bit-reproducible at any thread count.
///   input / grad_output: [batch, in_ch|out_ch, …] contiguous.
///   weight: packed [out_ch, patch] (same matrix the forward used).
///   grad_input: zero-initialised [batch, in_ch, height, width]; receives
///               the scatter-added input gradient.
void ConvBackwardChunked(
    std::span<const float> input, std::span<const float> grad_output,
    std::int64_t batch, std::int64_t in_ch, std::int64_t height,
    std::int64_t width, std::int64_t kernel, std::int64_t stride,
    std::int64_t pad, std::int64_t out_ch, const float* weight,
    std::span<float> grad_input,
    const std::function<void(const float* gw_chunk, const double* gb_chunk)>&
        reduce_chunk);

}  // namespace fluid::nn
