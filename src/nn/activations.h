#pragma once
// Stateless activation layers.

#include "nn/layer.h"

namespace fluid::nn {

class ReLU : public Layer {
 public:
  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor ForwardInference(core::Tensor&& input) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::string Kind() const override { return "ReLU"; }

 private:
  core::Tensor cached_input_;
};

/// max(x, slope·x). The Fluid model uses this instead of plain ReLU:
/// when an upper channel slice trained inside the wide model is restricted
/// to its own inputs, its pre-activations can turn uniformly negative, and
/// with a hard ReLU the standalone slice would be gradient-dead and
/// unrecoverable by Algorithm 1's retraining (the failure behind the
/// paper's "reusing the weights ... is nontrivial"). The leak keeps the
/// retraining well-posed.
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01F);

  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor ForwardInference(core::Tensor&& input) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::string Kind() const override { return "LeakyReLU"; }
  std::string ToString() const override;
  float slope() const { return slope_; }

 private:
  float slope_;
  core::Tensor cached_input_;
};

}  // namespace fluid::nn
