#pragma once
// im2col / col2im for 2-D convolution, with channel-range support.
//
// The channel-range parameters are what make the slimmable layers work:
// fluid::slim executes a sub-network by lowering only the active input
// channel slice, so the same routines serve both the plain and the
// slimmable convolutions.

#include <cstdint>
#include <span>

namespace fluid::nn {

/// Output spatial extent of a convolution axis.
std::int64_t ConvOutExtent(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t pad);

/// Lower one image's channel slice [c_lo, c_hi) into column-major patches.
///   input: one sample, C×H×W contiguous (full C extent = `channels`).
///   cols:  out buffer, ((c_hi-c_lo)*k*k) × (out_h*out_w), row-major.
void Im2Col(std::span<const float> input, std::int64_t channels,
            std::int64_t height, std::int64_t width, std::int64_t c_lo,
            std::int64_t c_hi, std::int64_t kernel, std::int64_t stride,
            std::int64_t pad, std::span<float> cols);

/// Inverse scatter-add of Im2Col: accumulates column gradients back into the
/// image gradient slice [c_lo, c_hi). `grad_input` must cover the full C
/// extent; only the slice is touched (+=).
void Col2Im(std::span<const float> cols, std::int64_t channels,
            std::int64_t height, std::int64_t width, std::int64_t c_lo,
            std::int64_t c_hi, std::int64_t kernel, std::int64_t stride,
            std::int64_t pad, std::span<float> grad_input);

/// Batched Im2Col over `batch` samples, parallelized across the batch via
/// the core thread pool. `input` is [batch, channels, H, W] contiguous;
/// `cols` receives one Im2Col block per sample back-to-back:
/// [batch, (c_hi-c_lo)*k*k * out_h*out_w].
void Im2ColBatched(std::span<const float> input, std::int64_t batch,
                   std::int64_t channels, std::int64_t height,
                   std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                   std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                   std::span<float> cols);

/// Batched Im2Col into the *fused* layout: `cols` is one
/// ((c_hi-c_lo)*k*k) × (batch*out_h*out_w) row-major matrix, with sample
/// n's lowering occupying the column block [n*area, (n+1)*area). A single
/// GEMM against this buffer computes the whole batch:
///   out [Cout, batch·area] = W [Cout, patch] × cols [patch, batch·area].
/// Parallelized across the batch (samples own disjoint column blocks).
void Im2ColFused(std::span<const float> input, std::int64_t batch,
                 std::int64_t channels, std::int64_t height,
                 std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                 std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                 std::span<float> cols);

/// Int8 variant of Im2ColFused for the single-quantize int8 conv path:
/// the input is quantized ONCE (one whole-tensor scale) and lowered
/// directly into an int8 column buffer — 4× smaller than the fp32
/// lowering and patch× less quantization work, since lowering replicates
/// each input element up to kernel² times. Bitwise-identical to
/// quantize-after-fp32-lowering because lowering only copies values and
/// the zero-padding code equals QuantizeValue(0) == 0.
void Im2ColFusedInt8(std::span<const std::int8_t> input, std::int64_t batch,
                     std::int64_t channels, std::int64_t height,
                     std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                     std::int64_t kernel, std::int64_t stride,
                     std::int64_t pad, std::span<std::int8_t> cols);

/// Batched Col2Im: scatter-adds each sample's column gradients into its
/// image-gradient slice, parallelized across the batch (samples are
/// disjoint, so this is deterministic).
void Col2ImBatched(std::span<const float> cols, std::int64_t batch,
                   std::int64_t channels, std::int64_t height,
                   std::int64_t width, std::int64_t c_lo, std::int64_t c_hi,
                   std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                   std::span<float> grad_input);

}  // namespace fluid::nn
