#pragma once
// Classification metrics used by the trainers, benches and EXPERIMENTS.md.

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.h"

namespace fluid::nn {

/// Fraction of rows whose argmax matches the label, in [0,1].
double Accuracy(const core::Tensor& logits,
                const std::vector<std::int64_t>& labels);

/// Streaming mean (loss curves, latency averages).
class AverageMeter {
 public:
  void Add(double value, std::int64_t weight = 1);
  void Reset();
  double mean() const;
  std::int64_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  std::int64_t count_ = 0;
};

/// Square confusion matrix with pretty-printing, for error analysis in the
/// examples.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int64_t num_classes);

  void Add(std::int64_t predicted, std::int64_t actual);
  void AddBatch(const core::Tensor& logits,
                const std::vector<std::int64_t>& labels);

  std::int64_t at(std::int64_t predicted, std::int64_t actual) const;
  std::int64_t total() const { return total_; }
  double OverallAccuracy() const;
  /// Recall of one class (diagonal / column sum); 0 when unseen.
  double Recall(std::int64_t cls) const;
  /// Precision of one class (diagonal / row sum); 0 when never predicted.
  double Precision(std::int64_t cls) const;

  std::string ToString() const;

 private:
  std::int64_t num_classes_;
  std::vector<std::int64_t> counts_;  // [predicted * C + actual]
  std::int64_t total_ = 0;
};

}  // namespace fluid::nn
