#include "nn/dense.h"

#include <sstream>

#include "core/error.h"
#include "core/gemm.h"

namespace fluid::nn {

Dense::Dense(std::int64_t in_features, std::int64_t out_features,
             core::Rng& rng, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(name)),
      weight_(core::Tensor::KaimingUniform({out_features, in_features}, rng,
                                           in_features)),
      bias_(core::Tensor({out_features})),
      weight_grad_(core::Tensor({out_features, in_features})),
      bias_grad_(core::Tensor({out_features})) {
  FLUID_CHECK_MSG(in_features > 0 && out_features > 0,
                  "Dense: dimensions must be positive");
}

core::Tensor Dense::Forward(const core::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 2 && s[1] == in_features_,
                  "Dense: expected [N," + std::to_string(in_features_) +
                      "], got " + s.ToString());
  const std::int64_t batch = s[0];
  // Pooled output: the β=0 GEMM overwrites every element.
  core::Tensor output = core::AcquireTensor({batch, out_features_});
  // out [N, out] = in [N, in] × Wᵀ [in, out]
  core::Gemm(false, true, batch, out_features_, in_features_, 1.0F,
             input.data().data(), in_features_, weight_.data().data(),
             in_features_, 0.0F, output.data().data(), out_features_);
  for (std::int64_t n = 0; n < batch; ++n) {
    float* row = output.data().data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) {
      row[o] += bias_.data()[static_cast<std::size_t>(o)];
    }
  }
  if (training) cached_input_ = input;
  return output;
}

core::Tensor Dense::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "Dense::Backward without training Forward");
  const std::int64_t batch = cached_input_.shape()[0];
  FLUID_CHECK_MSG(grad_output.shape() == core::Shape({batch, out_features_}),
                  "Dense::Backward grad shape mismatch");

  // dW [out, in] += gOᵀ [out, N] × in [N, in]
  core::Gemm(true, false, out_features_, in_features_, batch, 1.0F,
             grad_output.data().data(), out_features_,
             cached_input_.data().data(), in_features_, 1.0F,
             weight_grad_.data().data(), in_features_);
  // db += column sums of gO
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = grad_output.data().data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) {
      bias_grad_.data()[static_cast<std::size_t>(o)] += row[o];
    }
  }
  // gIn [N, in] = gO [N, out] × W [out, in]
  core::Tensor grad_input({batch, in_features_});
  core::Gemm(false, false, batch, in_features_, out_features_, 1.0F,
             grad_output.data().data(), out_features_, weight_.data().data(),
             in_features_, 0.0F, grad_input.data().data(), in_features_);
  return grad_input;
}

std::vector<ParamRef> Dense::Params() {
  return {{name_ + ".weight", &weight_, &weight_grad_},
          {name_ + ".bias", &bias_, &bias_grad_}};
}

std::string Dense::ToString() const {
  std::ostringstream os;
  os << "Dense(" << in_features_ << "->" << out_features_ << ")";
  return os.str();
}

}  // namespace fluid::nn
