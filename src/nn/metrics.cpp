#include "nn/metrics.h"

#include <iomanip>
#include <sstream>

#include "core/error.h"
#include "core/tensor_ops.h"

namespace fluid::nn {

double Accuracy(const core::Tensor& logits,
                const std::vector<std::int64_t>& labels) {
  const auto preds = core::ArgmaxRows(logits);
  FLUID_CHECK_MSG(preds.size() == labels.size(),
                  "Accuracy: label count mismatch");
  if (preds.empty()) return 0.0;
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

void AverageMeter::Add(double value, std::int64_t weight) {
  FLUID_CHECK_MSG(weight >= 0, "AverageMeter weight must be non-negative");
  sum_ += value * static_cast<double>(weight);
  count_ += weight;
}

void AverageMeter::Reset() {
  sum_ = 0.0;
  count_ = 0;
}

double AverageMeter::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

ConfusionMatrix::ConfusionMatrix(std::int64_t num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes * num_classes), 0) {
  FLUID_CHECK_MSG(num_classes > 0, "ConfusionMatrix needs >= 1 class");
}

void ConfusionMatrix::Add(std::int64_t predicted, std::int64_t actual) {
  FLUID_CHECK_MSG(predicted >= 0 && predicted < num_classes_ && actual >= 0 &&
                      actual < num_classes_,
                  "ConfusionMatrix::Add class out of range");
  ++counts_[static_cast<std::size_t>(predicted * num_classes_ + actual)];
  ++total_;
}

void ConfusionMatrix::AddBatch(const core::Tensor& logits,
                               const std::vector<std::int64_t>& labels) {
  const auto preds = core::ArgmaxRows(logits);
  FLUID_CHECK_MSG(preds.size() == labels.size(),
                  "ConfusionMatrix::AddBatch label count mismatch");
  for (std::size_t i = 0; i < preds.size(); ++i) Add(preds[i], labels[i]);
}

std::int64_t ConfusionMatrix::at(std::int64_t predicted,
                                 std::int64_t actual) const {
  FLUID_CHECK_MSG(predicted >= 0 && predicted < num_classes_ && actual >= 0 &&
                      actual < num_classes_,
                  "ConfusionMatrix::at class out of range");
  return counts_[static_cast<std::size_t>(predicted * num_classes_ + actual)];
}

double ConfusionMatrix::OverallAccuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t diag = 0;
  for (std::int64_t c = 0; c < num_classes_; ++c) diag += at(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::Recall(std::int64_t cls) const {
  std::int64_t col = 0;
  for (std::int64_t p = 0; p < num_classes_; ++p) col += at(p, cls);
  return col == 0 ? 0.0
                  : static_cast<double>(at(cls, cls)) /
                        static_cast<double>(col);
}

double ConfusionMatrix::Precision(std::int64_t cls) const {
  std::int64_t row = 0;
  for (std::int64_t a = 0; a < num_classes_; ++a) row += at(cls, a);
  return row == 0 ? 0.0
                  : static_cast<double>(at(cls, cls)) /
                        static_cast<double>(row);
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "pred\\actual";
  for (std::int64_t a = 0; a < num_classes_; ++a) {
    os << std::setw(6) << a;
  }
  os << "\n";
  for (std::int64_t p = 0; p < num_classes_; ++p) {
    os << std::setw(11) << p;
    for (std::int64_t a = 0; a < num_classes_; ++a) {
      os << std::setw(6) << at(p, a);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fluid::nn
