#include "nn/activations.h"

#include <sstream>
#include <utility>

#include "core/error.h"

namespace fluid::nn {

core::Tensor ReLU::Forward(const core::Tensor& input, bool training) {
  core::Tensor output(input.shape());
  auto in = input.data();
  auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] > 0.0F ? in[i] : 0.0F;
  }
  if (training) cached_input_ = input;
  return output;
}

core::Tensor ReLU::ForwardInference(core::Tensor&& input) {
  for (float& v : input.data()) {
    v = v > 0.0F ? v : 0.0F;
  }
  return std::move(input);
}

core::Tensor ReLU::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "ReLU::Backward without training Forward");
  FLUID_CHECK_MSG(grad_output.shape() == cached_input_.shape(),
                  "ReLU::Backward grad shape mismatch");
  core::Tensor grad_input(grad_output.shape());
  auto in = cached_input_.data();
  auto go = grad_output.data();
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    gi[i] = in[i] > 0.0F ? go[i] : 0.0F;
  }
  return grad_input;
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope) {
  FLUID_CHECK_MSG(slope >= 0.0F && slope < 1.0F,
                  "LeakyReLU slope must be in [0, 1)");
}

core::Tensor LeakyReLU::Forward(const core::Tensor& input, bool training) {
  core::Tensor output(input.shape());
  auto in = input.data();
  auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] > 0.0F ? in[i] : slope_ * in[i];
  }
  if (training) cached_input_ = input;
  return output;
}

core::Tensor LeakyReLU::ForwardInference(core::Tensor&& input) {
  for (float& v : input.data()) {
    v = v > 0.0F ? v : slope_ * v;
  }
  return std::move(input);
}

core::Tensor LeakyReLU::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "LeakyReLU::Backward without training Forward");
  FLUID_CHECK_MSG(grad_output.shape() == cached_input_.shape(),
                  "LeakyReLU::Backward grad shape mismatch");
  core::Tensor grad_input(grad_output.shape());
  auto in = cached_input_.data();
  auto go = grad_output.data();
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    gi[i] = in[i] > 0.0F ? go[i] : slope_ * go[i];
  }
  return grad_input;
}

std::string LeakyReLU::ToString() const {
  std::ostringstream os;
  os << "LeakyReLU(" << slope_ << ")";
  return os.str();
}

}  // namespace fluid::nn
