#include "nn/conv_gemm.h"

#include <algorithm>
#include <vector>

#include "core/error.h"
#include "core/gemm.h"
#include "core/parallel.h"
#include "nn/im2col.h"

namespace fluid::nn {

namespace {

// Caller-side fused-forward scratch, reused across calls. Bound to local
// references before any parallel region: a thread_local NAME inside a
// lambda is not captured — it resolves to the executing worker's (empty)
// instance — while a local reference to it is captured and keeps pointing
// at the caller's buffer.
thread_local std::vector<float> tl_fused_cols;
thread_local std::vector<float> tl_fused_out;

}  // namespace

void ConvForwardFused(std::span<const float> input, std::int64_t batch,
                      std::int64_t in_ch, std::int64_t height,
                      std::int64_t width, std::int64_t kernel,
                      std::int64_t stride, std::int64_t pad,
                      std::int64_t out_ch, const float* weight,
                      const float* bias, std::span<float> output,
                      float leaky_slope, ConvScratch* scratch) {
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t patch = in_ch * kernel * kernel;
  const std::int64_t area = out_h * out_w;
  const std::int64_t in_plane = in_ch * height * width;
  FLUID_CHECK_MSG(static_cast<std::int64_t>(input.size()) ==
                      batch * in_plane,
                  "ConvForwardFused input size mismatch");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(output.size()) ==
                      batch * out_ch * area,
                  "ConvForwardFused output size mismatch");

  // Sequential fusion groups (kConvFusedBatch caps the fused working
  // set); each group is ONE wide GEMM. Every stage inside a group is
  // parallel on its own — im2col over samples, the GEMM over its
  // (row block × column group) tasks, the bias scatter over samples — so
  // no batch-level chunking is needed and a single group still uses
  // every core.
  // Group size: as many samples as the float budget allows, capped at
  // kConvFusedBatch. Depends only on the problem shape, so group
  // boundaries are thread-count-independent.
  const std::int64_t per_sample_floats = (patch + out_ch) * area;
  const std::int64_t group =
      std::clamp(kConvFusedBudgetFloats / per_sample_floats,
                 std::int64_t{1}, kConvFusedBatch);

  auto& cols = scratch != nullptr ? scratch->cols : tl_fused_cols;
  auto& fused = scratch != nullptr ? scratch->fused : tl_fused_out;
  for (std::int64_t lo = 0; lo < batch; lo += group) {
    const std::int64_t hi = std::min(lo + group, batch);
    const std::int64_t cnt = hi - lo;
    const std::int64_t ncols = cnt * area;
    core::EnsureScratch(cols, patch * ncols);
    core::EnsureScratch(fused, out_ch * ncols);
    Im2ColFused(input.subspan(static_cast<std::size_t>(lo * in_plane),
                              static_cast<std::size_t>(cnt * in_plane)),
                cnt, in_ch, height, width, 0, in_ch, kernel, stride, pad,
                std::span<float>(cols.data(),
                                 static_cast<std::size_t>(patch * ncols)));
    // fused [out_ch, cnt·area] = W [out_ch, patch] × cols [patch, cnt·area]
    core::Gemm(false, false, out_ch, ncols, patch, 1.0F, weight, patch,
               cols.data(), ncols, 0.0F, fused.data(), ncols);
    // Scatter the channel-major fused rows back into per-sample
    // [out_ch, area] planes, adding bias — and the folded LeakyReLU, when
    // requested — on the way out.
    const float slope = leaky_slope;
    core::ParallelForEach(0, cnt, 1, [&](std::int64_t i) {
      float* out_sample = output.data() + (lo + i) * out_ch * area;
      for (std::int64_t c = 0; c < out_ch; ++c) {
        const float b = bias[c];
        const float* src = fused.data() + c * ncols + i * area;
        float* dst = out_sample + c * area;
        if (slope == 1.0F) {
          for (std::int64_t j = 0; j < area; ++j) dst[j] = src[j] + b;
        } else {
          for (std::int64_t j = 0; j < area; ++j) {
            const float v = src[j] + b;
            dst[j] = v > 0.0F ? v : slope * v;
          }
        }
      }
    });
  }
}

void ConvBackwardChunked(
    std::span<const float> input, std::span<const float> grad_output,
    std::int64_t batch, std::int64_t in_ch, std::int64_t height,
    std::int64_t width, std::int64_t kernel, std::int64_t stride,
    std::int64_t pad, std::int64_t out_ch, const float* weight,
    std::span<float> grad_input,
    const std::function<void(const float* gw_chunk, const double* gb_chunk)>&
        reduce_chunk) {
  const std::int64_t out_h = ConvOutExtent(height, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(width, kernel, stride, pad);
  const std::int64_t patch = in_ch * kernel * kernel;
  const std::int64_t area = out_h * out_w;
  const std::int64_t in_plane = in_ch * height * width;
  const std::int64_t per_sample = patch * area;
  FLUID_CHECK_MSG(static_cast<std::int64_t>(input.size()) ==
                      batch * in_plane,
                  "ConvBackwardChunked input size mismatch");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(grad_output.size()) ==
                      batch * out_ch * area,
                  "ConvBackwardChunked grad_output size mismatch");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(grad_input.size()) ==
                      batch * in_plane,
                  "ConvBackwardChunked grad_input size mismatch");

  // Chunks of the batch get private partial accumulators that are reduced
  // in chunk order afterwards (fixed chunking → thread-count-independent
  // sums). The grad_input planes are per-sample disjoint, written in place.
  const std::int64_t chunks = core::NumChunks(0, batch, kConvBackwardChunk);
  std::vector<float> gw(static_cast<std::size_t>(chunks * out_ch * patch));
  std::vector<double> gb(static_cast<std::size_t>(chunks * out_ch));

  core::ParallelForChunks(
      0, batch, kConvBackwardChunk,
      [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
        const std::int64_t cnt = hi - lo;
        float* gw_chunk = gw.data() + chunk * out_ch * patch;
        double* gb_chunk = gb.data() + chunk * out_ch;
        thread_local std::vector<float> cols;
        thread_local std::vector<float> grad_cols;
        core::EnsureScratch(cols, cnt * per_sample);
        core::EnsureScratch(grad_cols, cnt * per_sample);
        Im2ColBatched(
            input.subspan(static_cast<std::size_t>(lo * in_plane),
                          static_cast<std::size_t>(cnt * in_plane)),
            cnt, in_ch, height, width, 0, in_ch, kernel, stride, pad,
            std::span<float>(cols.data(),
                             static_cast<std::size_t>(cnt * per_sample)));
        for (std::int64_t n = lo; n < hi; ++n) {
          const float* sample_cols = cols.data() + (n - lo) * per_sample;
          const float* go_sample =
              grad_output.data() + n * out_ch * area;
          // dW_chunk [out_ch, patch] += gO [out_ch, area] × colsᵀ [area, patch]
          core::Gemm(false, true, out_ch, patch, area, 1.0F, go_sample, area,
                     sample_cols, area, n == lo ? 0.0F : 1.0F, gw_chunk,
                     patch);
          // db_chunk += row sums of gO
          for (std::int64_t c = 0; c < out_ch; ++c) {
            double s = 0.0;
            const float* row = go_sample + c * area;
            for (std::int64_t i = 0; i < area; ++i) s += row[i];
            gb_chunk[c] += s;
          }
          // gCols [patch, area] = Wᵀ [patch, out_ch] × gO [out_ch, area]
          core::Gemm(true, false, patch, area, out_ch, 1.0F, weight, patch,
                     go_sample, area, 0.0F,
                     grad_cols.data() + (n - lo) * per_sample, area);
        }
        Col2ImBatched(
            std::span<const float>(grad_cols.data(),
                                   static_cast<std::size_t>(cnt * per_sample)),
            cnt, in_ch, height, width, 0, in_ch, kernel, stride, pad,
            grad_input.subspan(static_cast<std::size_t>(lo * in_plane),
                               static_cast<std::size_t>(cnt * in_plane)));
      });

  // Ordered reduction of the chunk partials on the calling thread.
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    reduce_chunk(gw.data() + chunk * out_ch * patch,
                 gb.data() + chunk * out_ch);
  }
}

}  // namespace fluid::nn
