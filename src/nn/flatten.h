#pragma once
// Flattens [N, ...] to [N, prod(...)]; shape-only, no data movement.

#include "nn/layer.h"

namespace fluid::nn {

class Flatten : public Layer {
 public:
  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::string Kind() const override { return "Flatten"; }

 private:
  core::Shape cached_in_shape_;
};

}  // namespace fluid::nn
