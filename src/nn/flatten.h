#pragma once
// Flattens [N, ...] to [N, prod(...)]; shape-only, no data movement.

#include "nn/layer.h"

namespace fluid::nn {

class Flatten : public Layer {
 public:
  core::Tensor Forward(const core::Tensor& input, bool training) override;
  /// Owning reshape: moves the storage instead of copying it (and must
  /// NOT recycle the input — its buffer lives on as the output).
  core::Tensor ForwardInference(core::Tensor&& input) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::string Kind() const override { return "Flatten"; }

 private:
  core::Shape cached_in_shape_;
};

}  // namespace fluid::nn
