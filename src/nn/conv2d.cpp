#include "nn/conv2d.h"

#include <sstream>

#include "core/error.h"
#include "nn/conv_gemm.h"
#include "nn/im2col.h"

namespace fluid::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               core::Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      name_(std::move(name)),
      weight_(core::Tensor::KaimingUniform(
          {out_channels, in_channels, kernel, kernel}, rng,
          in_channels * kernel * kernel)),
      bias_(core::Tensor({out_channels})),
      weight_grad_(core::Tensor({out_channels, in_channels, kernel, kernel})),
      bias_grad_(core::Tensor({out_channels})) {
  FLUID_CHECK_MSG(in_channels > 0 && out_channels > 0 && kernel > 0,
                  "Conv2d: dimensions must be positive");
}

core::Tensor Conv2d::Forward(const core::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 4 && s[1] == in_channels_,
                  "Conv2d: expected input [N," + std::to_string(in_channels_) +
                      ",H,W], got " + s.ToString());
  const std::int64_t batch = s[0], height = s[2], width = s[3];
  const std::int64_t out_h = ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = ConvOutExtent(width, kernel_, stride_, pad_);

  // Pooled output (the fused kernel's bias scatter writes every element).
  core::Tensor output =
      core::AcquireTensor({batch, out_channels_, out_h, out_w});
  // Fused-batch lowering: one [Cout, group·area] GEMM per fusion group
  // (see conv_gemm.h); deterministic at any thread count.
  ConvForwardFused(input.data(), batch, in_channels_, height, width, kernel_,
                   stride_, pad_, out_channels_, weight_.data().data(),
                   bias_.data().data(), output.data());
  if (training) cached_input_ = input;
  return output;
}

core::Tensor Conv2d::ForwardFusedLeaky(const core::Tensor& input,
                                       float slope) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 4 && s[1] == in_channels_,
                  "Conv2d: expected input [N," + std::to_string(in_channels_) +
                      ",H,W], got " + s.ToString());
  const std::int64_t batch = s[0], height = s[2], width = s[3];
  const std::int64_t out_h = ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = ConvOutExtent(width, kernel_, stride_, pad_);

  core::Tensor output =
      core::AcquireTensor({batch, out_channels_, out_h, out_w});
  ConvForwardFused(input.data(), batch, in_channels_, height, width, kernel_,
                   stride_, pad_, out_channels_, weight_.data().data(),
                   bias_.data().data(), output.data(), slope);
  return output;
}

core::Tensor Conv2d::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "Conv2d::Backward without training Forward");
  const auto& in_shape = cached_input_.shape();
  const std::int64_t batch = in_shape[0], height = in_shape[2],
                     width = in_shape[3];
  const std::int64_t out_h = ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t patch = in_channels_ * kernel_ * kernel_;
  FLUID_CHECK_MSG(grad_output.shape() ==
                      core::Shape({batch, out_channels_, out_h, out_w}),
                  "Conv2d::Backward grad shape mismatch");

  core::Tensor grad_input(in_shape);
  // Shared deterministic chunked-accumulation scaffolding (conv_gemm.h);
  // the reduce callback folds each chunk's partials into the dense
  // gradient accumulators in chunk order.
  ConvBackwardChunked(
      cached_input_.data(), grad_output.data(), batch, in_channels_, height,
      width, kernel_, stride_, pad_, out_channels_, weight_.data().data(),
      grad_input.data(),
      [&](const float* gw_chunk, const double* gb_chunk) {
        float* dst = weight_grad_.data().data();
        for (std::int64_t j = 0; j < out_channels_ * patch; ++j) {
          dst[j] += gw_chunk[j];
        }
        for (std::int64_t c = 0; c < out_channels_; ++c) {
          bias_grad_.data()[static_cast<std::size_t>(c)] +=
              static_cast<float>(gb_chunk[c]);
        }
      });
  return grad_input;
}

std::vector<ParamRef> Conv2d::Params() {
  return {{name_ + ".weight", &weight_, &weight_grad_},
          {name_ + ".bias", &bias_, &bias_grad_}};
}

std::string Conv2d::ToString() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", k=" << kernel_
     << ", s=" << stride_ << ", p=" << pad_ << ")";
  return os.str();
}

}  // namespace fluid::nn
