#include "nn/conv2d.h"

#include <sstream>
#include <vector>

#include "core/error.h"
#include "core/gemm.h"
#include "nn/im2col.h"

namespace fluid::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               core::Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      name_(std::move(name)),
      weight_(core::Tensor::KaimingUniform(
          {out_channels, in_channels, kernel, kernel}, rng,
          in_channels * kernel * kernel)),
      bias_(core::Tensor({out_channels})),
      weight_grad_(core::Tensor({out_channels, in_channels, kernel, kernel})),
      bias_grad_(core::Tensor({out_channels})) {
  FLUID_CHECK_MSG(in_channels > 0 && out_channels > 0 && kernel > 0,
                  "Conv2d: dimensions must be positive");
}

core::Tensor Conv2d::Forward(const core::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 4 && s[1] == in_channels_,
                  "Conv2d: expected input [N," + std::to_string(in_channels_) +
                      ",H,W], got " + s.ToString());
  const std::int64_t batch = s[0], height = s[2], width = s[3];
  const std::int64_t out_h = ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t patch = in_channels_ * kernel_ * kernel_;
  const std::int64_t area = out_h * out_w;

  core::Tensor output({batch, out_channels_, out_h, out_w});
  std::vector<float> cols(static_cast<std::size_t>(patch * area));

  for (std::int64_t n = 0; n < batch; ++n) {
    const auto in_sample = input.data().subspan(
        static_cast<std::size_t>(n * in_channels_ * height * width),
        static_cast<std::size_t>(in_channels_ * height * width));
    Im2Col(in_sample, in_channels_, height, width, 0, in_channels_, kernel_,
           stride_, pad_, cols);
    float* out_sample =
        output.data().data() + n * out_channels_ * area;
    // out [Cout, area] = W [Cout, patch] × cols [patch, area]
    core::Gemm(false, false, out_channels_, area, patch, 1.0F,
               weight_.data().data(), patch, cols.data(), area, 0.0F,
               out_sample, area);
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float b = bias_.data()[static_cast<std::size_t>(c)];
      float* row = out_sample + c * area;
      for (std::int64_t i = 0; i < area; ++i) row[i] += b;
    }
  }
  if (training) cached_input_ = input;
  return output;
}

core::Tensor Conv2d::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "Conv2d::Backward without training Forward");
  const auto& in_shape = cached_input_.shape();
  const std::int64_t batch = in_shape[0], height = in_shape[2],
                     width = in_shape[3];
  const std::int64_t out_h = ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t patch = in_channels_ * kernel_ * kernel_;
  const std::int64_t area = out_h * out_w;
  FLUID_CHECK_MSG(grad_output.shape() ==
                      core::Shape({batch, out_channels_, out_h, out_w}),
                  "Conv2d::Backward grad shape mismatch");

  core::Tensor grad_input(in_shape);
  std::vector<float> cols(static_cast<std::size_t>(patch * area));
  std::vector<float> grad_cols(static_cast<std::size_t>(patch * area));

  for (std::int64_t n = 0; n < batch; ++n) {
    const auto in_sample = cached_input_.data().subspan(
        static_cast<std::size_t>(n * in_channels_ * height * width),
        static_cast<std::size_t>(in_channels_ * height * width));
    Im2Col(in_sample, in_channels_, height, width, 0, in_channels_, kernel_,
           stride_, pad_, cols);
    const float* go_sample =
        grad_output.data().data() + n * out_channels_ * area;

    // dW [Cout, patch] += gO [Cout, area] × colsᵀ [area, patch]
    core::Gemm(false, true, out_channels_, patch, area, 1.0F, go_sample, area,
               cols.data(), area, 1.0F, weight_grad_.data().data(), patch);
    // db += row sums of gO
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      double s = 0.0;
      const float* row = go_sample + c * area;
      for (std::int64_t i = 0; i < area; ++i) s += row[i];
      bias_grad_.data()[static_cast<std::size_t>(c)] += static_cast<float>(s);
    }
    // gCols [patch, area] = Wᵀ [patch, Cout] × gO [Cout, area]
    core::Gemm(true, false, patch, area, out_channels_, 1.0F,
               weight_.data().data(), patch, go_sample, area, 0.0F,
               grad_cols.data(), area);
    auto gi_sample = grad_input.data().subspan(
        static_cast<std::size_t>(n * in_channels_ * height * width),
        static_cast<std::size_t>(in_channels_ * height * width));
    Col2Im(grad_cols, in_channels_, height, width, 0, in_channels_, kernel_,
           stride_, pad_, gi_sample);
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::Params() {
  return {{name_ + ".weight", &weight_, &weight_grad_},
          {name_ + ".bias", &bias_, &bias_grad_}};
}

std::string Conv2d::ToString() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", k=" << kernel_
     << ", s=" << stride_ << ", p=" << pad_ << ")";
  return os.str();
}

}  // namespace fluid::nn
