#include "nn/conv2d.h"

#include <sstream>
#include <vector>

#include "core/error.h"
#include "core/gemm.h"
#include "core/parallel.h"
#include "nn/im2col.h"

namespace fluid::nn {

namespace {
// Samples per batch chunk in Forward/Backward. Chunk boundaries are fixed
// (independent of thread count) and Backward reduces chunk partials in
// index order, so results are reproducible at any FLUID_NUM_THREADS.
// Chunking also bounds the im2col working set to
// O(threads · kBatchChunk · patch · area) instead of O(batch · ...).
constexpr std::int64_t kBatchChunk = 4;

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               core::Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      name_(std::move(name)),
      weight_(core::Tensor::KaimingUniform(
          {out_channels, in_channels, kernel, kernel}, rng,
          in_channels * kernel * kernel)),
      bias_(core::Tensor({out_channels})),
      weight_grad_(core::Tensor({out_channels, in_channels, kernel, kernel})),
      bias_grad_(core::Tensor({out_channels})) {
  FLUID_CHECK_MSG(in_channels > 0 && out_channels > 0 && kernel > 0,
                  "Conv2d: dimensions must be positive");
}

core::Tensor Conv2d::Forward(const core::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 4 && s[1] == in_channels_,
                  "Conv2d: expected input [N," + std::to_string(in_channels_) +
                      ",H,W], got " + s.ToString());
  const std::int64_t batch = s[0], height = s[2], width = s[3];
  const std::int64_t out_h = ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t patch = in_channels_ * kernel_ * kernel_;
  const std::int64_t area = out_h * out_w;

  core::Tensor output({batch, out_channels_, out_h, out_w});
  const std::int64_t in_plane = in_channels_ * height * width;
  const std::int64_t per_sample = patch * area;

  // Chunks of the batch lower into a thread-local cols buffer and write
  // disjoint output planes; deterministic at any thread count.
  core::ParallelForChunks(
      0, batch, kBatchChunk,
      [&](std::int64_t, std::int64_t lo, std::int64_t hi) {
        const std::int64_t cnt = hi - lo;
        thread_local std::vector<float> cols;
        core::EnsureScratch(cols, cnt * per_sample);
        Im2ColBatched(
            input.data().subspan(static_cast<std::size_t>(lo * in_plane),
                                 static_cast<std::size_t>(cnt * in_plane)),
            cnt, in_channels_, height, width, 0, in_channels_, kernel_,
            stride_, pad_,
            std::span<float>(cols.data(),
                             static_cast<std::size_t>(cnt * per_sample)));
        for (std::int64_t n = lo; n < hi; ++n) {
          float* out_sample = output.data().data() + n * out_channels_ * area;
          // out [Cout, area] = W [Cout, patch] × cols [patch, area]
          core::Gemm(false, false, out_channels_, area, patch, 1.0F,
                     weight_.data().data(), patch,
                     cols.data() + (n - lo) * per_sample, area, 0.0F,
                     out_sample, area);
          for (std::int64_t c = 0; c < out_channels_; ++c) {
            const float b = bias_.data()[static_cast<std::size_t>(c)];
            float* row = out_sample + c * area;
            for (std::int64_t i = 0; i < area; ++i) row[i] += b;
          }
        }
      });
  if (training) cached_input_ = input;
  return output;
}

core::Tensor Conv2d::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "Conv2d::Backward without training Forward");
  const auto& in_shape = cached_input_.shape();
  const std::int64_t batch = in_shape[0], height = in_shape[2],
                     width = in_shape[3];
  const std::int64_t out_h = ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t patch = in_channels_ * kernel_ * kernel_;
  const std::int64_t area = out_h * out_w;
  FLUID_CHECK_MSG(grad_output.shape() ==
                      core::Shape({batch, out_channels_, out_h, out_w}),
                  "Conv2d::Backward grad shape mismatch");

  core::Tensor grad_input(in_shape);
  const std::int64_t in_plane = in_channels_ * height * width;
  const std::int64_t per_sample = patch * area;

  // Weight/bias gradients accumulate across samples, so chunks of the
  // batch get private partial accumulators that are reduced in chunk
  // order afterwards (fixed chunking → thread-count-independent sums).
  // The grad_input planes are per-sample disjoint and written in place.
  const std::int64_t chunks = core::NumChunks(0, batch, kBatchChunk);
  std::vector<float> gw(static_cast<std::size_t>(chunks * out_channels_ *
                                                 patch));
  std::vector<double> gb(static_cast<std::size_t>(chunks * out_channels_));

  core::ParallelForChunks(
      0, batch, kBatchChunk,
      [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
        const std::int64_t cnt = hi - lo;
        float* gw_chunk = gw.data() + chunk * out_channels_ * patch;
        double* gb_chunk = gb.data() + chunk * out_channels_;
        thread_local std::vector<float> cols;
        thread_local std::vector<float> grad_cols;
        core::EnsureScratch(cols, cnt * per_sample);
        core::EnsureScratch(grad_cols, cnt * per_sample);
        Im2ColBatched(
            cached_input_.data().subspan(
                static_cast<std::size_t>(lo * in_plane),
                static_cast<std::size_t>(cnt * in_plane)),
            cnt, in_channels_, height, width, 0, in_channels_, kernel_,
            stride_, pad_,
            std::span<float>(cols.data(),
                             static_cast<std::size_t>(cnt * per_sample)));
        for (std::int64_t n = lo; n < hi; ++n) {
          const float* sample_cols = cols.data() + (n - lo) * per_sample;
          const float* go_sample =
              grad_output.data().data() + n * out_channels_ * area;
          // dW_chunk [Cout, patch] += gO [Cout, area] × colsᵀ [area, patch]
          core::Gemm(false, true, out_channels_, patch, area, 1.0F, go_sample,
                     area, sample_cols, area, n == lo ? 0.0F : 1.0F, gw_chunk,
                     patch);
          // db_chunk += row sums of gO
          for (std::int64_t c = 0; c < out_channels_; ++c) {
            double s = 0.0;
            const float* row = go_sample + c * area;
            for (std::int64_t i = 0; i < area; ++i) s += row[i];
            gb_chunk[c] += s;
          }
          // gCols [patch, area] = Wᵀ [patch, Cout] × gO [Cout, area]
          core::Gemm(true, false, patch, area, out_channels_, 1.0F,
                     weight_.data().data(), patch, go_sample, area, 0.0F,
                     grad_cols.data() + (n - lo) * per_sample, area);
        }
        Col2ImBatched(
            std::span<const float>(grad_cols.data(),
                                   static_cast<std::size_t>(cnt * per_sample)),
            cnt, in_channels_, height, width, 0, in_channels_, kernel_,
            stride_, pad_,
            grad_input.data().subspan(
                static_cast<std::size_t>(lo * in_plane),
                static_cast<std::size_t>(cnt * in_plane)));
      });

  // Ordered reduction of the chunk partials.
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    const float* gw_chunk = gw.data() + chunk * out_channels_ * patch;
    float* dst = weight_grad_.data().data();
    for (std::int64_t j = 0; j < out_channels_ * patch; ++j) {
      dst[j] += gw_chunk[j];
    }
    const double* gb_chunk = gb.data() + chunk * out_channels_;
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      bias_grad_.data()[static_cast<std::size_t>(c)] +=
          static_cast<float>(gb_chunk[c]);
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::Params() {
  return {{name_ + ".weight", &weight_, &weight_grad_},
          {name_ + ".bias", &bias_, &bias_grad_}};
}

std::string Conv2d::ToString() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", k=" << kernel_
     << ", s=" << stride_ << ", p=" << pad_ << ")";
  return os.str();
}

}  // namespace fluid::nn
