#pragma once
// Optimizers with per-parameter *update masks*.
//
// The masks are the mechanism behind incremental training: when a wider
// sub-network is trained on top of a frozen narrower one, the trainer
// installs a 0/1 mask over each parameter so updates touch only the newly
// added channel block. Gradients are still computed everywhere (cheap for
// these model sizes); the mask gates the weight update, which is exactly
// the "freeze" semantics of Xun et al. (MLCAD'19) and Algorithm 1.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tensor.h"
#include "nn/layer.h"

namespace fluid::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update step to all `params` using their accumulated grads.
  virtual void Step(const std::vector<ParamRef>& params) = 0;

  /// Install a 0/1 mask for the named parameter (same shape as the value).
  /// Elements with mask 0 are not updated. Passing an empty tensor clears
  /// the mask.
  void SetMask(const std::string& param_name, core::Tensor mask);
  void ClearMasks() { masks_.clear(); }
  bool HasMask(const std::string& param_name) const {
    return masks_.contains(param_name);
  }

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 protected:
  explicit Optimizer(float learning_rate) : learning_rate_(learning_rate) {}

  /// Returns the mask for `name`, or nullptr when unmasked.
  const core::Tensor* MaskFor(const std::string& name) const;

  float learning_rate_;

 private:
  std::unordered_map<std::string, core::Tensor> masks_;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float momentum = 0.9F,
               float weight_decay = 0.0F);

  void Step(const std::vector<ParamRef>& params) override;

 private:
  float momentum_;
  float weight_decay_;
  std::unordered_map<std::string, core::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float learning_rate, float beta1 = 0.9F, float beta2 = 0.999F,
                float epsilon = 1e-8F);

  void Step(const std::vector<ParamRef>& params) override;

 private:
  struct Moments {
    core::Tensor m;
    core::Tensor v;
  };
  float beta1_, beta2_, epsilon_;
  std::int64_t step_count_ = 0;
  std::unordered_map<std::string, Moments> moments_;
};

/// Step-decay learning-rate schedule: lr = base * gamma^(epoch / step).
class StepLrSchedule {
 public:
  StepLrSchedule(float base_lr, std::int64_t step_epochs, float gamma)
      : base_lr_(base_lr), step_epochs_(step_epochs), gamma_(gamma) {}

  float LrAt(std::int64_t epoch) const;

 private:
  float base_lr_;
  std::int64_t step_epochs_;
  float gamma_;
};

}  // namespace fluid::nn
