#include "nn/softmax.h"

#include <cmath>

#include "core/error.h"
#include "core/parallel.h"

namespace fluid::nn {

core::Tensor Softmax(const core::Tensor& logits) {
  FLUID_CHECK_MSG(logits.shape().rank() == 2, "Softmax expects rank-2");
  const std::int64_t rows = logits.shape()[0];
  const std::int64_t cols = logits.shape()[1];
  core::Tensor out(logits.shape());
  auto in = logits.data();
  auto o = out.data();
  // Rows are independent; each is normalised entirely by one worker, so
  // the result is identical at any thread count.
  core::ParallelFor(0, rows, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      const float* src = in.data() + r * cols;
      float* dst = o.data() + r * cols;
      float mx = src[0];
      for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, src[c]);
      double sum = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) {
        dst[c] = std::exp(src[c] - mx);
        sum += dst[c];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (std::int64_t c = 0; c < cols; ++c) dst[c] *= inv;
    }
  });
  return out;
}

double SoftmaxCrossEntropy::Forward(const core::Tensor& logits,
                                    const std::vector<std::int64_t>& labels) {
  FLUID_CHECK_MSG(logits.shape().rank() == 2,
                  "SoftmaxCrossEntropy expects rank-2 logits");
  const std::int64_t rows = logits.shape()[0];
  const std::int64_t cols = logits.shape()[1];
  FLUID_CHECK_MSG(static_cast<std::int64_t>(labels.size()) == rows,
                  "labels size must equal batch size");
  probs_ = Softmax(logits);
  labels_ = labels;
  double loss = 0.0;
  auto p = probs_.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t y = labels[static_cast<std::size_t>(r)];
    FLUID_CHECK_MSG(y >= 0 && y < cols, "label out of range");
    const float py = p[static_cast<std::size_t>(r * cols + y)];
    loss -= std::log(std::max(py, 1e-12F));
  }
  return loss / static_cast<double>(rows);
}

core::Tensor SoftmaxCrossEntropy::Backward() const {
  FLUID_CHECK_MSG(!probs_.empty(),
                  "SoftmaxCrossEntropy::Backward before Forward");
  const std::int64_t rows = probs_.shape()[0];
  const std::int64_t cols = probs_.shape()[1];
  core::Tensor grad = probs_;
  auto g = grad.data();
  const float inv_n = 1.0F / static_cast<float>(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    g[static_cast<std::size_t>(r * cols + labels_[static_cast<std::size_t>(r)])] -=
        1.0F;
  }
  for (auto& v : g) v *= inv_n;
  return grad;
}

}  // namespace fluid::nn
