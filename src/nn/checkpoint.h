#pragma once
// Named-parameter checkpoints (save / load / in-memory state dicts).
//
// Format v1: magic "FLCK", u32 version, u32 count, then per entry a string
// name and a tensor. The distributed deployment plans reuse the same
// in-memory StateDict to ship sub-network weights to workers.

#include <map>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/serialize.h"
#include "core/tensor.h"
#include "nn/layer.h"

namespace fluid::nn {

/// Ordered name → tensor map (ordered so serialization is deterministic).
using StateDict = std::map<std::string, core::Tensor>;

/// Snapshot all parameters of a layer tree.
StateDict ExtractState(Layer& model);

/// Load parameters by name. Missing names or shape mismatches are errors
/// unless `allow_partial` — then matching names load and the rest are left
/// untouched (used when deploying a slice onto a fresh model).
core::Status LoadState(Layer& model, const StateDict& state,
                       bool allow_partial = false);

/// Serialize a state dict to bytes / parse it back.
std::vector<std::uint8_t> SerializeState(const StateDict& state);
core::StatusOr<StateDict> ParseState(std::span<const std::uint8_t> bytes);

/// File convenience wrappers.
core::Status SaveCheckpoint(Layer& model, const std::string& path);
core::Status LoadCheckpoint(Layer& model, const std::string& path);

}  // namespace fluid::nn
