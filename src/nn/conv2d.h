#pragma once
// Plain (non-slimmable) 2-D convolution layer, NCHW, square kernel.

#include <cstdint>
#include <string>

#include "core/rng.h"
#include "core/tensor.h"
#include "nn/layer.h"

namespace fluid::nn {

class Conv2d : public Layer {
 public:
  /// Weight shape [out_channels, in_channels, k, k]; bias [out_channels].
  /// Kaiming-uniform initialised from `rng`.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         core::Rng& rng, std::string name = "conv");

  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  std::string Kind() const override { return "Conv2d"; }
  std::string ToString() const override;

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  /// Inference forward with the following LeakyReLU folded into the
  /// fused bias scatter (bitwise identical to Forward + LeakyReLU — the
  /// scatter applies exactly max(v, slope·v) after the bias add). Used by
  /// Sequential's serve-path peephole; never caches.
  core::Tensor ForwardFusedLeaky(const core::Tensor& input, float slope);

  core::Tensor& weight() { return weight_; }
  core::Tensor& bias() { return bias_; }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  std::string name_;
  core::Tensor weight_, bias_;
  core::Tensor weight_grad_, bias_grad_;
  core::Tensor cached_input_;  // only kept when training
};

}  // namespace fluid::nn
