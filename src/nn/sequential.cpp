#include "nn/sequential.h"

#include <sstream>
#include <utility>

#include "core/error.h"

namespace fluid::nn {

Sequential& Sequential::Add(LayerPtr layer) {
  FLUID_CHECK_MSG(layer != nullptr, "Sequential::Add null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

core::Tensor Sequential::Forward(const core::Tensor& input, bool training) {
  if (training) {
    core::Tensor x = input;
    for (auto& l : layers_) x = l->Forward(x, training);
    return x;
  }
  // Inference: the first layer reads the caller's tensor directly (no
  // defensive copy), and every intermediate is owned by this frame, so
  // elementwise layers may consume it in place via ForwardInference.
  if (layers_.empty()) return input;
  core::Tensor x = layers_.front()->Forward(input, false);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    x = layers_[i]->ForwardInference(std::move(x));
  }
  return x;
}

core::Tensor Sequential::ForwardInference(core::Tensor&& input) {
  core::Tensor x = std::move(input);
  for (auto& l : layers_) x = l->ForwardInference(std::move(x));
  return x;
}

core::Tensor Sequential::Backward(const core::Tensor& grad_output) {
  core::Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::Params() {
  std::vector<ParamRef> params;
  for (auto& l : layers_) {
    for (auto& p : l->Params()) params.push_back(p);
  }
  return params;
}

Layer& Sequential::layer(std::size_t i) {
  FLUID_CHECK_MSG(i < layers_.size(), "Sequential::layer index out of range");
  return *layers_[i];
}

std::int64_t Sequential::ParamCount() {
  std::int64_t n = 0;
  for (const auto& p : Params()) n += p.value->numel();
  return n;
}

std::string Sequential::ToString() const {
  std::ostringstream os;
  os << "Sequential(\n";
  for (const auto& l : layers_) os << "  " << l->ToString() << "\n";
  os << ")";
  return os.str();
}

}  // namespace fluid::nn
