#include "nn/sequential.h"

#include <sstream>

#include "core/error.h"

namespace fluid::nn {

Sequential& Sequential::Add(LayerPtr layer) {
  FLUID_CHECK_MSG(layer != nullptr, "Sequential::Add null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

core::Tensor Sequential::Forward(const core::Tensor& input, bool training) {
  core::Tensor x = input;
  for (auto& l : layers_) x = l->Forward(x, training);
  return x;
}

core::Tensor Sequential::Backward(const core::Tensor& grad_output) {
  core::Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::Params() {
  std::vector<ParamRef> params;
  for (auto& l : layers_) {
    for (auto& p : l->Params()) params.push_back(p);
  }
  return params;
}

Layer& Sequential::layer(std::size_t i) {
  FLUID_CHECK_MSG(i < layers_.size(), "Sequential::layer index out of range");
  return *layers_[i];
}

std::int64_t Sequential::ParamCount() {
  std::int64_t n = 0;
  for (const auto& p : Params()) n += p.value->numel();
  return n;
}

std::string Sequential::ToString() const {
  std::ostringstream os;
  os << "Sequential(\n";
  for (const auto& l : layers_) os << "  " << l->ToString() << "\n";
  os << ")";
  return os.str();
}

}  // namespace fluid::nn
