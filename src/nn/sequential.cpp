#include "nn/sequential.h"

#include <sstream>
#include <utility>

#include "core/error.h"
#include "nn/activations.h"
#include "nn/conv2d.h"

namespace fluid::nn {

Sequential& Sequential::Add(LayerPtr layer) {
  FLUID_CHECK_MSG(layer != nullptr, "Sequential::Add null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

core::Tensor Sequential::Forward(const core::Tensor& input, bool training) {
  if (training) {
    core::Tensor x = input;
    for (auto& l : layers_) x = l->Forward(x, training);
    return x;
  }
  // Inference: the first layer reads the caller's tensor directly (no
  // defensive copy), and every intermediate is owned by this frame, so
  // elementwise layers may consume it in place via ForwardInference.
  if (layers_.empty()) return input;
  if (Layer* leaky = FusableLeakyAfter(0)) {
    auto& conv = static_cast<Conv2d&>(*layers_.front());
    return RunInferenceFrom(
        conv.ForwardFusedLeaky(input,
                               static_cast<LeakyReLU*>(leaky)->slope()),
        2);
  }
  return RunInferenceFrom(layers_.front()->Forward(input, false), 1);
}

core::Tensor Sequential::ForwardInference(core::Tensor&& input) {
  return RunInferenceFrom(std::move(input), 0);
}

Layer* Sequential::FusableLeakyAfter(std::size_t i) const {
  // The fold is exact (the scatter computes the same v > 0 ? v : slope·v
  // a separate LeakyReLU would), so the peephole is always safe on the
  // inference path; dynamic_cast keeps it honest against subclasses that
  // merely reuse the Kind() string.
  if (i + 1 >= layers_.size()) return nullptr;
  if (dynamic_cast<Conv2d*>(layers_[i].get()) == nullptr) return nullptr;
  return dynamic_cast<LeakyReLU*>(layers_[i + 1].get());
}

core::Tensor Sequential::RunInferenceFrom(core::Tensor&& x, std::size_t i) {
  core::Tensor t = std::move(x);
  for (; i < layers_.size(); ++i) {
    if (Layer* leaky = FusableLeakyAfter(i)) {
      auto& conv = static_cast<Conv2d&>(*layers_[i]);
      core::Tensor next =
          conv.ForwardFusedLeaky(t, static_cast<LeakyReLU*>(leaky)->slope());
      core::RecycleTensor(std::move(t));
      t = std::move(next);
      ++i;  // the activation ran inside the conv's scatter
      continue;
    }
    t = layers_[i]->ForwardInference(std::move(t));
  }
  return t;
}

core::Tensor Sequential::Backward(const core::Tensor& grad_output) {
  core::Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::Params() {
  std::vector<ParamRef> params;
  for (auto& l : layers_) {
    for (auto& p : l->Params()) params.push_back(p);
  }
  return params;
}

Layer& Sequential::layer(std::size_t i) {
  FLUID_CHECK_MSG(i < layers_.size(), "Sequential::layer index out of range");
  return *layers_[i];
}

std::int64_t Sequential::ParamCount() {
  std::int64_t n = 0;
  for (const auto& p : Params()) n += p.value->numel();
  return n;
}

std::string Sequential::ToString() const {
  std::ostringstream os;
  os << "Sequential(\n";
  for (const auto& l : layers_) os << "  " << l->ToString() << "\n";
  os << ")";
  return os.str();
}

}  // namespace fluid::nn
