#pragma once
// Sequential container of layers — the model type used throughout.

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace fluid::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& Add(LayerPtr layer);

  /// Convenience: construct in place.
  template <typename L, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor ForwardInference(core::Tensor&& input) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  std::string Kind() const override { return "Sequential"; }
  std::string ToString() const override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const std::vector<LayerPtr>& layers() const { return layers_; }

  /// Total learnable parameter count.
  std::int64_t ParamCount();

 private:
  /// Run layers [i, end) on the inference path with the Conv2d+LeakyReLU
  /// peephole (the activation folds into the conv's bias scatter).
  core::Tensor RunInferenceFrom(core::Tensor&& x, std::size_t i);
  /// The LeakyReLU folded into layer i's conv, if the peephole applies.
  Layer* FusableLeakyAfter(std::size_t i) const;

  std::vector<LayerPtr> layers_;
};

}  // namespace fluid::nn
