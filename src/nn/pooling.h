#pragma once
// Max pooling over NCHW inputs.

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace fluid::nn {

class MaxPool2d : public Layer {
 public:
  /// Square window, stride == window (the paper's model pools 2×2/2).
  explicit MaxPool2d(std::int64_t window);

  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::string Kind() const override { return "MaxPool2d"; }
  std::string ToString() const override;
  std::int64_t window() const { return window_; }

 private:
  std::int64_t window_;
  core::Shape cached_in_shape_;
  std::vector<std::int64_t> cached_argmax_;  // flat input index per output elt
};

}  // namespace fluid::nn
