#include "nn/checkpoint.h"

namespace fluid::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4B434C46;  // "FLCK" little-endian
constexpr std::uint32_t kVersion = 1;
}  // namespace

StateDict ExtractState(Layer& model) {
  StateDict state;
  for (const auto& p : model.Params()) {
    state[p.name] = *p.value;
  }
  return state;
}

core::Status LoadState(Layer& model, const StateDict& state,
                       bool allow_partial) {
  for (const auto& p : model.Params()) {
    const auto it = state.find(p.name);
    if (it == state.end()) {
      if (allow_partial) continue;
      return core::Status::NotFound("checkpoint missing parameter " + p.name);
    }
    if (it->second.shape() != p.value->shape()) {
      return core::Status::InvalidArgument(
          "checkpoint shape mismatch for " + p.name + ": model " +
          p.value->shape().ToString() + " vs checkpoint " +
          it->second.shape().ToString());
    }
    *p.value = it->second;
  }
  return core::Status::Ok();
}

std::vector<std::uint8_t> SerializeState(const StateDict& state) {
  core::ByteWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteU32(static_cast<std::uint32_t>(state.size()));
  for (const auto& [name, tensor] : state) {
    w.WriteString(name);
    w.WriteTensor(tensor);
  }
  return w.TakeBuffer();
}

core::StatusOr<StateDict> ParseState(std::span<const std::uint8_t> bytes) {
  core::ByteReader r(bytes);
  std::uint32_t magic = 0, version = 0, count = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU32(magic));
  if (magic != kMagic) return core::Status::DataLoss("bad checkpoint magic");
  FLUID_RETURN_IF_ERROR(r.TryReadU32(version));
  if (version != kVersion) {
    return core::Status::DataLoss("unsupported checkpoint version " +
                                  std::to_string(version));
  }
  FLUID_RETURN_IF_ERROR(r.TryReadU32(count));
  StateDict state;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    FLUID_RETURN_IF_ERROR(r.TryReadString(name));
    core::Tensor t;
    FLUID_RETURN_IF_ERROR(r.TryReadTensor(t));
    state[name] = std::move(t);
  }
  return state;
}

core::Status SaveCheckpoint(Layer& model, const std::string& path) {
  const auto bytes = SerializeState(ExtractState(model));
  return core::WriteFile(path, bytes);
}

core::Status LoadCheckpoint(Layer& model, const std::string& path) {
  auto bytes = core::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  auto state = ParseState(*bytes);
  if (!state.ok()) return state.status();
  return LoadState(model, *state);
}

}  // namespace fluid::nn
