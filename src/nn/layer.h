#pragma once
// Layer interface for the from-scratch NN substrate.
//
// The library uses explicit, layer-local backpropagation rather than a tape
// autograd: each layer caches what it needs during Forward and produces the
// input gradient in Backward while accumulating its parameter gradients.
// This keeps the slimmable channel-slice logic (fluid::slim) tractable and
// auditable — the paper's contribution is a *training schedule*, and the
// schedule manipulates exactly these parameter blocks.

#include <memory>
#include <string>
#include <vector>

#include "core/buffer_pool.h"
#include "core/tensor.h"

namespace fluid::nn {

/// Non-owning handle to one learnable parameter and its gradient
/// accumulator. `name` is unique within a model and stable across runs —
/// checkpoints and the distributed deployment plans key on it.
struct ParamRef {
  std::string name;
  core::Tensor* value = nullptr;
  core::Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output. When `training` is true the layer may cache
  /// activations needed by Backward; inference calls with false avoid that
  /// memory traffic.
  virtual core::Tensor Forward(const core::Tensor& input, bool training) = 0;

  /// Inference-only forward that owns `input` and may mutate it. The
  /// default delegates to Forward(…, false) and then RECYCLES the
  /// consumed input into the activation buffer pool — layers whose
  /// Forward allocates its output via core::AcquireTensor thereby
  /// ping-pong activations between two pooled buffers instead of
  /// allocating per layer. Elementwise layers override to transform the
  /// buffer in place; layers that alias or retain the input (reshape
  /// views) override to move the storage instead.
  virtual core::Tensor ForwardInference(core::Tensor&& input) {
    core::Tensor output = Forward(input, false);
    core::RecycleTensor(std::move(input));
    return output;
  }

  /// Given ∂L/∂output, accumulate parameter gradients (+=) and return
  /// ∂L/∂input. Only valid after a Forward(…, training=true).
  virtual core::Tensor Backward(const core::Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> Params() { return {}; }

  /// Zero all parameter gradient accumulators.
  void ZeroGrad() {
    for (auto& p : Params()) p.grad->Zero();
  }

  /// Short type tag, e.g. "Conv2d".
  virtual std::string Kind() const = 0;

  /// Human-readable one-line description.
  virtual std::string ToString() const { return Kind(); }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace fluid::nn
