#pragma once
// Softmax + cross-entropy, fused for numerical stability.

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace fluid::nn {

/// Row-wise softmax of rank-2 logits (stable: subtracts row max).
core::Tensor Softmax(const core::Tensor& logits);

/// Fused softmax-cross-entropy loss over a batch.
///
/// Forward caches the probabilities; Backward returns ∂L/∂logits =
/// (softmax − onehot) / N, which is the textbook fused gradient.
class SoftmaxCrossEntropy {
 public:
  /// Mean negative log-likelihood of `labels` under softmax(logits).
  /// logits: [N, classes]; labels: N class indices.
  double Forward(const core::Tensor& logits,
                 const std::vector<std::int64_t>& labels);

  /// Gradient w.r.t. logits for the last Forward call.
  core::Tensor Backward() const;

  /// Probabilities from the last Forward call.
  const core::Tensor& probabilities() const { return probs_; }

 private:
  core::Tensor probs_;
  std::vector<std::int64_t> labels_;
};

}  // namespace fluid::nn
