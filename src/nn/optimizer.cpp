#include "nn/optimizer.h"

#include <cmath>

#include "core/error.h"

namespace fluid::nn {

void Optimizer::SetMask(const std::string& param_name, core::Tensor mask) {
  if (mask.empty()) {
    masks_.erase(param_name);
    return;
  }
  masks_[param_name] = std::move(mask);
}

const core::Tensor* Optimizer::MaskFor(const std::string& name) const {
  const auto it = masks_.find(name);
  return it == masks_.end() ? nullptr : &it->second;
}

Sgd::Sgd(float learning_rate, float momentum, float weight_decay)
    : Optimizer(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {}

void Sgd::Step(const std::vector<ParamRef>& params) {
  for (const auto& p : params) {
    FLUID_CHECK_MSG(p.value && p.grad, "Sgd: null param " + p.name);
    auto& vel = velocity_[p.name];
    if (vel.shape() != p.value->shape()) vel = core::Tensor(p.value->shape());

    const core::Tensor* mask = MaskFor(p.name);
    if (mask) {
      FLUID_CHECK_MSG(mask->shape() == p.value->shape(),
                      "Sgd: mask shape mismatch for " + p.name);
    }
    auto w = p.value->data();
    auto g = p.grad->data();
    auto v = vel.data();
    const float* m = mask ? mask->data().data() : nullptr;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (m && m[i] == 0.0F) continue;
      const float grad = g[i] + weight_decay_ * w[i];
      v[i] = momentum_ * v[i] + grad;
      w[i] -= learning_rate_ * v[i];
    }
  }
}

Adam::Adam(float learning_rate, float beta1, float beta2, float epsilon)
    : Optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void Adam::Step(const std::vector<ParamRef>& params) {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (const auto& p : params) {
    FLUID_CHECK_MSG(p.value && p.grad, "Adam: null param " + p.name);
    auto& mom = moments_[p.name];
    if (mom.m.shape() != p.value->shape()) {
      mom.m = core::Tensor(p.value->shape());
      mom.v = core::Tensor(p.value->shape());
    }
    const core::Tensor* mask = MaskFor(p.name);
    if (mask) {
      FLUID_CHECK_MSG(mask->shape() == p.value->shape(),
                      "Adam: mask shape mismatch for " + p.name);
    }
    auto w = p.value->data();
    auto g = p.grad->data();
    auto m1 = mom.m.data();
    auto m2 = mom.v.data();
    const float* msk = mask ? mask->data().data() : nullptr;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (msk && msk[i] == 0.0F) continue;
      m1[i] = beta1_ * m1[i] + (1.0F - beta1_) * g[i];
      m2[i] = beta2_ * m2[i] + (1.0F - beta2_) * g[i] * g[i];
      const double mhat = m1[i] / bc1;
      const double vhat = m2[i] / bc2;
      w[i] -= static_cast<float>(learning_rate_ * mhat /
                                 (std::sqrt(vhat) + epsilon_));
    }
  }
}

float StepLrSchedule::LrAt(std::int64_t epoch) const {
  FLUID_CHECK_MSG(epoch >= 0, "epoch must be non-negative");
  if (step_epochs_ <= 0) return base_lr_;
  return base_lr_ *
         std::pow(gamma_, static_cast<float>(epoch / step_epochs_));
}

}  // namespace fluid::nn
