#include "nn/pooling.h"

#include <sstream>

#include "core/error.h"

namespace fluid::nn {

MaxPool2d::MaxPool2d(std::int64_t window) : window_(window) {
  FLUID_CHECK_MSG(window > 0, "MaxPool2d window must be positive");
}

core::Tensor MaxPool2d::Forward(const core::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 4, "MaxPool2d expects NCHW input");
  const std::int64_t batch = s[0], channels = s[1], height = s[2],
                     width = s[3];
  const std::int64_t out_h = height / window_;
  const std::int64_t out_w = width / window_;
  FLUID_CHECK_MSG(out_h > 0 && out_w > 0,
                  "MaxPool2d window larger than input");

  core::Tensor output = core::AcquireTensor({batch, channels, out_h, out_w});
  // The argmax indices exist only for Backward; inference skips the
  // whole side buffer (it was an allocation per serve-path call).
  if (training) {
    cached_in_shape_ = s;
    cached_argmax_.assign(static_cast<std::size_t>(output.numel()), -1);
  }

  auto in = input.data();
  auto out = output.data();
  std::size_t o = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const std::int64_t plane = (n * channels + c) * height * width;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox, ++o) {
          float best = -3.4e38F;
          std::int64_t best_idx = -1;
          for (std::int64_t wy = 0; wy < window_; ++wy) {
            const std::int64_t iy = oy * window_ + wy;
            for (std::int64_t wx = 0; wx < window_; ++wx) {
              const std::int64_t ix = ox * window_ + wx;
              const std::int64_t idx = plane + iy * width + ix;
              const float v = in[static_cast<std::size_t>(idx)];
              if (v > best) {
                best = v;
                best_idx = idx;
              }
            }
          }
          out[o] = best;
          if (training) cached_argmax_[o] = best_idx;
        }
      }
    }
  }
  return output;
}

core::Tensor MaxPool2d::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_argmax_.empty(),
                  "MaxPool2d::Backward without training Forward");
  FLUID_CHECK_MSG(static_cast<std::size_t>(grad_output.numel()) ==
                      cached_argmax_.size(),
                  "MaxPool2d::Backward grad size mismatch");
  core::Tensor grad_input(cached_in_shape_);
  auto go = grad_output.data();
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < cached_argmax_.size(); ++i) {
    gi[static_cast<std::size_t>(cached_argmax_[i])] += go[i];
  }
  return grad_input;
}

std::string MaxPool2d::ToString() const {
  std::ostringstream os;
  os << "MaxPool2d(" << window_ << "x" << window_ << ")";
  return os.str();
}

}  // namespace fluid::nn
