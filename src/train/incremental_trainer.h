#pragma once
// The Dynamic-DNN baseline: incremental training (Xun et al., MLCAD 2019).
//
// Widths are trained narrowest-first; each wider model freezes everything
// the previous one trained and only fits its newly added channel block.
// Smaller sub-networks are therefore preserved bit-exactly — they can be
// switched to at runtime — but the *upper* channel blocks never work on
// their own, which is precisely the reliability gap Fluid DyDNNs close.

#include "train/trainer_common.h"

namespace fluid::train {

class IncrementalTrainer {
 public:
  /// Trains the lower family of `model` in place.
  explicit IncrementalTrainer(slim::FluidModel& model) : model_(model) {}

  /// `opts.epochs` applies per width stage. When `eval_set` is non-null
  /// each stage logs the freshly trained sub-network's accuracy.
  std::vector<StageLog> Fit(const data::Dataset& train_set,
                            const data::Dataset* eval_set,
                            const TrainOptions& opts);

 private:
  slim::FluidModel& model_;
};

}  // namespace fluid::train
