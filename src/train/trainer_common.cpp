#include "train/trainer_common.h"

#include <cmath>

#include "core/logging.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "nn/softmax.h"

namespace fluid::train {

namespace {

/// One SGD epoch over `dataset` driving `forward` / `backward` callbacks.
/// Returns the mean loss.
double RunEpoch(
    const data::Dataset& dataset, std::int64_t batch_size, core::Rng& rng,
    const std::function<core::Tensor(const core::Tensor&)>& forward,
    const std::function<void(const core::Tensor&)>& backward) {
  data::DataLoader loader(dataset, batch_size, &rng);
  loader.StartEpoch();
  nn::SoftmaxCrossEntropy loss;
  nn::AverageMeter meter;
  data::Batch batch;
  while (loader.Next(batch)) {
    core::Tensor logits = forward(batch.images);
    const double batch_loss = loss.Forward(logits, batch.labels);
    backward(loss.Backward());
    meter.Add(batch_loss, batch.size());
  }
  return meter.mean();
}

template <typename ForwardFn>
EvalResult EvaluateWith(const data::Dataset& dataset, std::int64_t batch_size,
                        ForwardFn&& forward) {
  data::DataLoader loader(dataset, batch_size, /*rng=*/nullptr);
  loader.StartEpoch();
  nn::SoftmaxCrossEntropy loss;
  nn::AverageMeter loss_meter, acc_meter;
  data::Batch batch;
  while (loader.Next(batch)) {
    core::Tensor logits = forward(batch.images);
    loss_meter.Add(loss.Forward(logits, batch.labels), batch.size());
    acc_meter.Add(nn::Accuracy(logits, batch.labels), batch.size());
  }
  return {loss_meter.mean(), acc_meter.mean()};
}

}  // namespace

EvalResult EvaluateSubnet(slim::FluidModel& model, const slim::SubnetSpec& spec,
                          const data::Dataset& dataset,
                          std::int64_t batch_size) {
  return EvaluateWith(dataset, batch_size, [&](const core::Tensor& x) {
    return model.Forward(spec, x, /*training=*/false);
  });
}

EvalResult EvaluateModel(nn::Sequential& model, const data::Dataset& dataset,
                         std::int64_t batch_size) {
  return EvaluateWith(dataset, batch_size, [&](const core::Tensor& x) {
    return model.Forward(x, /*training=*/false);
  });
}

double TrainSubnet(slim::FluidModel& model, const slim::SubnetSpec& spec,
                   const std::optional<slim::SubnetSpec>& frozen,
                   bool train_head_bias, const data::Dataset& dataset,
                   const TrainOptions& opts) {
  nn::Sgd sgd(opts.learning_rate, opts.momentum, opts.weight_decay);
  for (auto& [name, mask] : model.TrainableMasks(spec, frozen, train_head_bias)) {
    sgd.SetMask(name, std::move(mask));
  }
  core::Rng rng(opts.shuffle_seed ^
                std::hash<std::string>{}(spec.name));
  const auto params = model.Params();
  double last = 0.0;
  for (std::int64_t e = 0; e < opts.epochs; ++e) {
    sgd.set_learning_rate(opts.learning_rate *
                          std::pow(opts.lr_decay_per_epoch,
                                   static_cast<float>(e)));
    last = RunEpoch(
        dataset, opts.batch_size, rng,
        [&](const core::Tensor& x) {
          model.ZeroGrad();
          return model.Forward(spec, x, /*training=*/true);
        },
        [&](const core::Tensor& grad) {
          model.Backward(grad);
          sgd.Step(params);
        });
    FLUID_LOG(Debug) << "subnet " << spec.name << " epoch " << e
                     << " loss " << last;
  }
  return last;
}

double TrainModel(nn::Sequential& model, const data::Dataset& dataset,
                  const TrainOptions& opts) {
  nn::Sgd sgd(opts.learning_rate, opts.momentum, opts.weight_decay);
  core::Rng rng(opts.shuffle_seed);
  const auto params = model.Params();
  double last = 0.0;
  for (std::int64_t e = 0; e < opts.epochs; ++e) {
    sgd.set_learning_rate(opts.learning_rate *
                          std::pow(opts.lr_decay_per_epoch,
                                   static_cast<float>(e)));
    last = RunEpoch(
        dataset, opts.batch_size, rng,
        [&](const core::Tensor& x) {
          model.ZeroGrad();
          return model.Forward(x, /*training=*/true);
        },
        [&](const core::Tensor& grad) {
          model.Backward(grad);
          sgd.Step(params);
        });
    FLUID_LOG(Debug) << "static epoch " << e << " loss " << last;
  }
  return last;
}

}  // namespace fluid::train
