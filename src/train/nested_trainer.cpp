#include "train/nested_trainer.h"

#include <cmath>

#include "core/error.h"
#include "core/logging.h"

namespace fluid::train {

std::vector<StageLog> NestedIncrementalTrainer::Fit(
    const data::Dataset& train_set, const data::Dataset* eval_set,
    const NestedTrainOptions& opts) {
  FLUID_CHECK_MSG(opts.niters >= 1, "NestedTrainOptions.niters must be >= 1");
  std::vector<StageLog> logs;
  const auto lower = model_.family().LowerFamily();
  const auto upper = model_.family().UpperFamily();

  for (std::int64_t iter = 0; iter < opts.niters; ++iter) {  // Alg.1 line 1
    TrainOptions stage_opts = opts.stage;
    if (iter > 0) stage_opts.learning_rate *= opts.finetune_lr_scale;
    // Decorrelate batch order across iterations.
    stage_opts.shuffle_seed =
        opts.stage.shuffle_seed + static_cast<std::uint64_t>(iter) * 977;

    const std::string prefix = "iter" + std::to_string(iter + 1) + "/";

    // Lines 2-5: incremental pass over the lower family.
    for (std::size_t i = 0; i < lower.size(); ++i) {
      const std::optional<slim::SubnetSpec> frozen =
          i == 0 ? std::nullopt : std::make_optional(lower[i - 1]);
      // The narrowest model owns the shared classifier bias; it keeps
      // ownership across iterations so the bias never sees conflicting
      // updates within one pass.
      const bool head_bias = (i == 0);
      const double loss = TrainSubnet(model_, lower[i], frozen, head_bias,
                                      train_set, stage_opts);
      StageLog log{prefix + lower[i].name, loss, std::nan("")};
      if (eval_set) {
        log.eval_accuracy =
            EvaluateSubnet(model_, lower[i], *eval_set).accuracy;
      }
      logs.push_back(log);
    }

    // Lines 6-10: re-train each upper slice so it runs standalone. The
    // copy-from / copy-back of Algorithm 1 is the identity on the shared
    // store; the mask confines updates to the slice, which is exactly the
    // region the copy-back would overwrite. The upper family is itself a
    // "nested Dynamic DNN trained incrementally" (§II-A): each wider upper
    // slice freezes the narrower one, otherwise the upper-50% pass would
    // clobber the standalone upper-25% model it shares weights with.
    for (std::size_t i = 0; i < upper.size(); ++i) {
      const auto& u = upper[i];
      const std::optional<slim::SubnetSpec> frozen =
          i == 0 ? std::nullopt : std::make_optional(upper[i - 1]);
      const double loss = TrainSubnet(model_, u, frozen,
                                      /*train_head_bias=*/false, train_set,
                                      stage_opts);
      StageLog log{prefix + u.name, loss, std::nan("")};
      if (eval_set) {
        log.eval_accuracy = EvaluateSubnet(model_, u, *eval_set).accuracy;
      }
      logs.push_back(log);
    }
    FLUID_LOG(Info) << "nested iteration " << (iter + 1) << "/" << opts.niters
                    << " done";
  }
  return logs;
}

}  // namespace fluid::train
