#pragma once
// Nested incremental training — Algorithm 1 of the paper, the core
// contribution of Fluid DyDNNs.
//
// Per outer iteration:
//   1. The lower family is trained incrementally (line 2-5): each width
//      fits its exclusive channel block; "copy trained weights to the next
//      model" is the identity here because all widths share one weight
//      store (DESIGN.md §5).
//   2. The upper family — itself "a nested Dynamic DNN ... trained
//      incrementally so they can be used independently" (§II-A) — is
//      re-trained so each upper slice works standalone (line 6-10), each
//      wider slice freezing the narrower one exactly like the lower pass.
//      "Copy corresponding weights from the 100% model" and "copy the
//      re-trained weights back" are the identity on a shared store: masked
//      in-place SGD updates exactly the region the copy-back would write.
//      tests/train/nested_trainer_test.cpp verifies this equivalence
//      against a literal extract → train → import loop.
//
// The upper re-training perturbs weights the 75 %/100 % models rely on —
// the paper's "nontrivial" interaction — which is why the schedule
// iterates: the next outer iteration's incremental pass re-fits the
// combined models around the updated upper blocks.

#include "train/trainer_common.h"

namespace fluid::train {

struct NestedTrainOptions {
  /// Outer fine-tuning iterations (Algorithm 1 line 1).
  std::int64_t niters = 2;
  /// SGD settings applied to every stage; `epochs` counts per stage.
  TrainOptions stage;
  /// LR multiplier applied to iterations after the first, so later passes
  /// fine-tune rather than re-learn.
  float finetune_lr_scale = 0.3F;
};

class NestedIncrementalTrainer {
 public:
  explicit NestedIncrementalTrainer(slim::FluidModel& model) : model_(model) {}

  /// Runs Algorithm 1. Logs one entry per (iteration, stage); when
  /// `eval_set` is given each entry carries that sub-network's accuracy.
  std::vector<StageLog> Fit(const data::Dataset& train_set,
                            const data::Dataset* eval_set,
                            const NestedTrainOptions& opts);

 private:
  slim::FluidModel& model_;
};

}  // namespace fluid::train
