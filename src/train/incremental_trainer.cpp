#include "train/incremental_trainer.h"

#include <cmath>

#include "core/logging.h"

namespace fluid::train {

std::vector<StageLog> IncrementalTrainer::Fit(const data::Dataset& train_set,
                                              const data::Dataset* eval_set,
                                              const TrainOptions& opts) {
  std::vector<StageLog> logs;
  const auto lower = model_.family().LowerFamily();
  for (std::size_t i = 0; i < lower.size(); ++i) {
    const std::optional<slim::SubnetSpec> frozen =
        i == 0 ? std::nullopt : std::make_optional(lower[i - 1]);
    const bool head_bias = (i == 0);
    const double loss =
        TrainSubnet(model_, lower[i], frozen, head_bias, train_set, opts);
    StageLog log{lower[i].name, loss, std::nan("")};
    if (eval_set) {
      log.eval_accuracy =
          EvaluateSubnet(model_, lower[i], *eval_set).accuracy;
    }
    FLUID_LOG(Info) << "incremental stage " << lower[i].name << " loss "
                    << loss;
    logs.push_back(log);
  }
  return logs;
}

}  // namespace fluid::train
