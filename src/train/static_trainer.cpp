#include "train/static_trainer.h"

#include <cmath>

namespace fluid::train {

StaticTrainer::StaticTrainer(slim::FluidNetConfig cfg, std::int64_t width,
                             std::uint64_t seed)
    : cfg_(cfg), width_(width), model_([&] {
        core::Rng rng(seed);
        return BuildConvNet(cfg, width, rng);
      }()) {}

std::vector<StageLog> StaticTrainer::Fit(const data::Dataset& train_set,
                                         const data::Dataset* eval_set,
                                         const TrainOptions& opts) {
  const double loss = TrainModel(model_, train_set, opts);
  StageLog log{"static", loss, std::nan("")};
  if (eval_set) log.eval_accuracy = EvaluateModel(model_, *eval_set).accuracy;
  return {log};
}

}  // namespace fluid::train
