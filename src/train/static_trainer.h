#pragma once
// Static DNN baseline: one fixed-width model, plain SGD.

#include "train/model_zoo.h"
#include "train/trainer_common.h"

namespace fluid::train {

class StaticTrainer {
 public:
  StaticTrainer(slim::FluidNetConfig cfg, std::int64_t width,
                std::uint64_t seed);

  /// Train and return per-stage logs (a single "static" stage).
  std::vector<StageLog> Fit(const data::Dataset& train_set,
                            const data::Dataset* eval_set,
                            const TrainOptions& opts);

  nn::Sequential& model() { return model_; }
  const slim::FluidNetConfig& config() const { return cfg_; }
  std::int64_t width() const { return width_; }

 private:
  slim::FluidNetConfig cfg_;
  std::int64_t width_;
  nn::Sequential model_;
};

}  // namespace fluid::train
