#include "train/model_zoo.h"

#include "core/error.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pooling.h"

namespace fluid::train {

nn::Sequential BuildConvNet(const slim::FluidNetConfig& cfg, std::int64_t width,
                            core::Rng& rng) {
  FLUID_CHECK_MSG(width > 0, "BuildConvNet width must be positive");
  nn::Sequential model;
  for (std::int64_t i = 0; i < cfg.num_conv_layers; ++i) {
    const std::int64_t in_ch = (i == 0) ? cfg.image_channels : width;
    model.Emplace<nn::Conv2d>(in_ch, width, cfg.kernel, cfg.stride, cfg.pad,
                              rng, "conv" + std::to_string(i + 1));
    model.Emplace<nn::LeakyReLU>(cfg.relu_leak);
    model.Emplace<nn::MaxPool2d>(cfg.pool);
  }
  model.Emplace<nn::Flatten>();
  const auto s = cfg.FinalSpatial();
  model.Emplace<nn::Dense>(width * s * s, cfg.num_classes, rng, "fc");
  return model;
}

PipelineHalves SplitConvNet(const slim::FluidNetConfig& cfg, std::int64_t width,
                            nn::Sequential& full, std::int64_t cut_stage) {
  FLUID_CHECK_MSG(cut_stage > 0 && cut_stage < cfg.num_conv_layers,
                  "SplitConvNet: cut must fall between conv stages");
  const std::size_t expected =
      static_cast<std::size_t>(cfg.num_conv_layers) * 3 + 2;
  FLUID_CHECK_MSG(full.size() == expected,
                  "SplitConvNet: model layout does not match BuildConvNet");

  core::Rng dummy(0);
  PipelineHalves halves;
  for (std::int64_t i = 0; i < cfg.num_conv_layers; ++i) {
    auto* src = dynamic_cast<nn::Conv2d*>(&full.layer(
        static_cast<std::size_t>(i) * 3));
    FLUID_CHECK_MSG(src != nullptr, "SplitConvNet: stage is not Conv2d");
    const std::int64_t in_ch = (i == 0) ? cfg.image_channels : width;
    auto copy = std::make_unique<nn::Conv2d>(in_ch, width, cfg.kernel,
                                             cfg.stride, cfg.pad, dummy,
                                             "conv" + std::to_string(i + 1));
    copy->weight() = src->weight();
    copy->bias() = src->bias();
    nn::Sequential& half = (i < cut_stage) ? halves.front : halves.back;
    half.Add(std::move(copy));
    half.Emplace<nn::LeakyReLU>(cfg.relu_leak);
    half.Emplace<nn::MaxPool2d>(cfg.pool);
  }
  auto* src_head = dynamic_cast<nn::Dense*>(&full.layer(expected - 1));
  FLUID_CHECK_MSG(src_head != nullptr, "SplitConvNet: head is not Dense");
  const auto s = cfg.FinalSpatial();
  auto head = std::make_unique<nn::Dense>(width * s * s, cfg.num_classes,
                                          dummy, "fc");
  head->weight() = src_head->weight();
  head->bias() = src_head->bias();
  halves.back.Emplace<nn::Flatten>();
  halves.back.Add(std::move(head));

  const std::int64_t sp = cfg.SpatialAfter(cut_stage - 1);
  halves.cut_bytes_per_sample =
      width * sp * sp * static_cast<std::int64_t>(sizeof(float));
  return halves;
}

}  // namespace fluid::train
