#pragma once
// Construction helpers for the baseline models of the evaluation:
// the Static DNN and its layer-pipeline split across two devices.

#include <cstdint>

#include "core/rng.h"
#include "nn/sequential.h"
#include "slim/fluid_model.h"

namespace fluid::train {

/// Build the paper's 3-conv + 1-FC network at a fixed width — the Static
/// DNN baseline (uses the same architecture hyper-parameters as the Fluid
/// model, just without slimmability).
nn::Sequential BuildConvNet(const slim::FluidNetConfig& cfg, std::int64_t width,
                            core::Rng& rng);

/// The Static DNN's distributed deployment: a layer pipeline cut after
/// `cut_stage` conv stages (paper Fig. 1: layers A,B on the Master, C,D on
/// the Worker). Weights are deep-copied from `full`, which must have been
/// built by BuildConvNet with the same cfg/width.
struct PipelineHalves {
  nn::Sequential front;  // Master: stages [0, cut_stage)
  nn::Sequential back;   // Worker: remaining stages + classifier
  /// Bytes of the activation tensor crossing the cut per input sample.
  std::int64_t cut_bytes_per_sample = 0;
};

PipelineHalves SplitConvNet(const slim::FluidNetConfig& cfg, std::int64_t width,
                            nn::Sequential& full, std::int64_t cut_stage);

}  // namespace fluid::train
