#pragma once
// Shared training/evaluation plumbing for the three schedules.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "slim/fluid_model.h"

namespace fluid::train {

struct TrainOptions {
  std::int64_t epochs = 1;
  std::int64_t batch_size = 32;
  float learning_rate = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  std::uint64_t shuffle_seed = 1234;
  /// Multiplicative LR decay applied per epoch (1 = constant).
  float lr_decay_per_epoch = 1.0F;
};

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;  // in [0,1]
};

/// Per-stage record emitted by the schedules (consumed by benches and
/// EXPERIMENTS.md tables).
struct StageLog {
  std::string stage;     // e.g. "iter1/50%" or "iter2/upper25%"
  double train_loss = 0.0;
  double eval_accuracy = 0.0;  // NaN when no eval set was supplied
};

/// Loss/accuracy of a sub-network slice over a dataset.
EvalResult EvaluateSubnet(slim::FluidModel& model, const slim::SubnetSpec& spec,
                          const data::Dataset& dataset,
                          std::int64_t batch_size = 256);

/// Loss/accuracy of a standalone model over a dataset.
EvalResult EvaluateModel(nn::Sequential& model, const data::Dataset& dataset,
                         std::int64_t batch_size = 256);

/// Train one slice for `opts.epochs` epochs with masked SGD.
/// `frozen` keeps that nested slice bit-exact; `train_head_bias` gates the
/// shared classifier bias (see FluidModel::TrainableMasks).
/// Returns the mean training loss of the final epoch.
double TrainSubnet(slim::FluidModel& model, const slim::SubnetSpec& spec,
                   const std::optional<slim::SubnetSpec>& frozen,
                   bool train_head_bias, const data::Dataset& dataset,
                   const TrainOptions& opts);

/// Train a standalone model (no masks). Returns final-epoch mean loss.
double TrainModel(nn::Sequential& model, const data::Dataset& dataset,
                  const TrainOptions& opts);

}  // namespace fluid::train
