#include "data/glyphs.h"

#include <cmath>
#include <numbers>

#include "core/error.h"

namespace fluid::data {

namespace {
constexpr double kPi = std::numbers::pi;
}

Stroke MakeArc(double cx, double cy, double rx, double ry, double a0,
               double a1, int segments) {
  FLUID_CHECK_MSG(segments >= 1, "MakeArc needs at least one segment");
  Stroke s;
  s.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double t = a0 + (a1 - a0) * static_cast<double>(i) / segments;
    s.push_back({cx + rx * std::cos(t), cy + ry * std::sin(t)});
  }
  return s;
}

namespace {

// Digit templates hand-tuned to read like handwritten digits after the
// renderer's random affine jitter. Coordinates in the unit box, y down.
Glyph Make0() {
  return {MakeArc(0.5, 0.5, 0.26, 0.36, 0.0, 2.0 * kPi, 24)};
}

Glyph Make1() {
  return {{{0.36, 0.30}, {0.52, 0.14}},
          {{0.52, 0.14}, {0.52, 0.86}}};
}

Glyph Make2() {
  Glyph g;
  // Top hook.
  g.push_back(MakeArc(0.5, 0.33, 0.24, 0.20, -kPi, 0.0, 10));
  // Diagonal to bottom-left, then base bar.
  g.push_back({{0.74, 0.33}, {0.26, 0.84}});
  g.push_back({{0.26, 0.84}, {0.78, 0.84}});
  return g;
}

Glyph Make3() {
  Glyph g;
  g.push_back(MakeArc(0.47, 0.32, 0.22, 0.18, -0.8 * kPi, 0.45 * kPi, 12));
  g.push_back(MakeArc(0.47, 0.68, 0.24, 0.19, -0.45 * kPi, 0.8 * kPi, 12));
  return g;
}

Glyph Make4() {
  return {{{0.58, 0.12}, {0.22, 0.60}},
          {{0.22, 0.60}, {0.80, 0.60}},
          {{0.62, 0.12}, {0.62, 0.88}}};
}

Glyph Make5() {
  Glyph g;
  g.push_back({{0.74, 0.14}, {0.30, 0.14}});
  g.push_back({{0.30, 0.14}, {0.28, 0.46}});
  g.push_back(MakeArc(0.49, 0.64, 0.24, 0.21, -0.6 * kPi, 0.75 * kPi, 14));
  return g;
}

Glyph Make6() {
  Glyph g;
  // Sweep from the top right down the left side.
  g.push_back({{0.68, 0.13}, {0.38, 0.42}});
  g.push_back({{0.38, 0.42}, {0.28, 0.62}});
  // Bottom loop.
  g.push_back(MakeArc(0.50, 0.66, 0.22, 0.20, 0.0, 2.0 * kPi, 18));
  return g;
}

Glyph Make7() {
  return {{{0.24, 0.15}, {0.78, 0.15}},
          {{0.78, 0.15}, {0.42, 0.86}}};
}

Glyph Make8() {
  Glyph g;
  g.push_back(MakeArc(0.5, 0.31, 0.20, 0.17, 0.0, 2.0 * kPi, 18));
  g.push_back(MakeArc(0.5, 0.68, 0.23, 0.19, 0.0, 2.0 * kPi, 18));
  return g;
}

Glyph Make9() {
  Glyph g;
  g.push_back(MakeArc(0.50, 0.33, 0.21, 0.19, 0.0, 2.0 * kPi, 18));
  g.push_back({{0.71, 0.33}, {0.62, 0.86}});
  return g;
}

}  // namespace

const Glyph& DigitGlyph(std::int64_t d) {
  FLUID_CHECK_MSG(d >= 0 && d <= 9, "DigitGlyph: digit out of range");
  static const Glyph glyphs[10] = {Make0(), Make1(), Make2(), Make3(),
                                   Make4(), Make5(), Make6(), Make7(),
                                   Make8(), Make9()};
  return glyphs[static_cast<std::size_t>(d)];
}

double SegmentDistanceSquared(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double apx = p.x - a.x;
  const double apy = p.y - a.y;
  const double len2 = abx * abx + aby * aby;
  double t = len2 > 0.0 ? (apx * abx + apy * aby) / len2 : 0.0;
  t = std::max(0.0, std::min(1.0, t));
  const double dx = apx - t * abx;
  const double dy = apy - t * aby;
  return dx * dx + dy * dy;
}

double GlyphDistance(const Glyph& glyph, const Point& p) {
  double best = 1e18;
  for (const auto& stroke : glyph) {
    for (std::size_t i = 1; i < stroke.size(); ++i) {
      best = std::min(best, SegmentDistanceSquared(p, stroke[i - 1], stroke[i]));
    }
  }
  return std::sqrt(best);
}

}  // namespace fluid::data
