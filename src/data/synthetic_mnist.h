#pragma once
// Procedural MNIST-like digit synthesis (the dataset substitution of
// DESIGN.md §3).
//
// Every sample is rendered deterministically from (seed, index): a digit
// glyph is pushed through a random affine transform (rotation, anisotropic
// scale, shear, translation), drawn with a random stroke thickness as a
// signed-distance soft stroke, then perturbed with pixel noise and
// intensity jitter. The result has the same shape, value range and task
// structure as MNIST.

#include <cstdint>

#include "data/dataset.h"

namespace fluid::data {

struct SyntheticMnistOptions {
  std::int64_t image_size = 28;
  /// Augmentation strengths; defaults approximate MNIST writer variance.
  double max_rotation_rad = 0.22;   // ~12.5°
  double min_scale = 0.82, max_scale = 1.08;
  double max_shear = 0.18;
  double max_translate_px = 2.0;
  double min_thickness = 0.045, max_thickness = 0.085;  // unit-box units
  double pixel_noise_std = 0.04;
  double min_intensity = 0.75, max_intensity = 1.0;
  /// Antialias band around the stroke edge, unit-box units.
  double edge_softness = 0.030;

  /// A deliberately harder variant (stronger affine jitter, heavy pixel
  /// noise, washed-out strokes). A small CNN lands in the same
  /// high-90s-accuracy band as on real MNIST instead of saturating, which
  /// is what the Fig. 2 accuracy comparisons need (DESIGN.md §3).
  static SyntheticMnistOptions Hard();
};

/// Render one digit image [1, 1, S, S] deterministically from
/// (seed, index); label = the digit drawn (index % 10 unless specified).
core::Tensor RenderDigit(std::int64_t digit, std::uint64_t seed,
                         std::uint64_t index, const SyntheticMnistOptions& opt);

/// Build a dataset of `count` samples with balanced labels, deterministic
/// in `seed`. Separate seeds give disjoint-looking train/test sets.
Dataset MakeSyntheticMnist(std::int64_t count, std::uint64_t seed,
                           const SyntheticMnistOptions& opt = {});

}  // namespace fluid::data
