#include "data/mnist.h"

#include "core/logging.h"
#include "data/idx.h"
#include "data/synthetic_mnist.h"

namespace fluid::data {

MnistSplits LoadMnistOrSynthetic(const std::string& dir,
                                 std::int64_t train_count,
                                 std::int64_t test_count, std::uint64_t seed,
                                 const SyntheticMnistOptions& synth_options) {
  MnistSplits splits;
  auto train = LoadIdxDataset(dir + "/train-images-idx3-ubyte",
                              dir + "/train-labels-idx1-ubyte");
  auto test = LoadIdxDataset(dir + "/t10k-images-idx3-ubyte",
                             dir + "/t10k-labels-idx1-ubyte");
  if (train.ok() && test.ok()) {
    FLUID_LOG(Info) << "using real MNIST from " << dir;
    splits.train = train->size() > train_count
                       ? train->Slice(0, train_count)
                       : std::move(*train);
    splits.test = test->size() > test_count ? test->Slice(0, test_count)
                                            : std::move(*test);
    splits.from_real_files = true;
    return splits;
  }
  FLUID_LOG(Info) << "real MNIST not found under '" << dir
                  << "'; generating synthetic digits";
  splits.train = MakeSyntheticMnist(train_count, seed, synth_options);
  splits.test = MakeSyntheticMnist(test_count, seed + 1, synth_options);
  splits.from_real_files = false;
  return splits;
}

}  // namespace fluid::data
