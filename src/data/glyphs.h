#pragma once
// Vector stroke templates for the ten digits, used by the synthetic MNIST
// generator (DESIGN.md §3: substitution for the MNIST dataset).
//
// Each digit is a set of polylines in a unit box (x right, y down, origin
// top-left). The renderer rasterises them through a random affine transform
// into 28×28 grayscale, which gives an MNIST-shaped task a small CNN learns
// to the same high-90s accuracy band as the real dataset.

#include <cstdint>
#include <vector>

namespace fluid::data {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// One continuous pen stroke.
using Stroke = std::vector<Point>;

/// All strokes of one glyph.
using Glyph = std::vector<Stroke>;

/// The template for digit `d` (0-9).
const Glyph& DigitGlyph(std::int64_t d);

/// Polyline approximation of an elliptic arc (angles in radians, y-down
/// screen convention; a1 may be less than a0 for the opposite direction).
Stroke MakeArc(double cx, double cy, double rx, double ry, double a0,
               double a1, int segments);

/// Squared distance from point p to segment [a, b].
double SegmentDistanceSquared(const Point& p, const Point& a, const Point& b);

/// Minimum distance from p to any segment of the glyph.
double GlyphDistance(const Glyph& glyph, const Point& p);

}  // namespace fluid::data
