#include "data/idx.h"

#include "core/serialize.h"

namespace fluid::data {

namespace {

// IDX integers are big-endian.
std::uint32_t ReadBigEndianU32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

core::StatusOr<core::Tensor> LoadIdxImages(const std::string& path) {
  auto bytes = core::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  const auto& b = *bytes;
  if (b.size() < 16) return core::Status::DataLoss("IDX image header truncated");
  const std::uint32_t magic = ReadBigEndianU32(b.data());
  if (magic != 0x00000803) {
    return core::Status::DataLoss("bad IDX image magic in " + path);
  }
  const std::uint32_t n = ReadBigEndianU32(b.data() + 4);
  const std::uint32_t rows = ReadBigEndianU32(b.data() + 8);
  const std::uint32_t cols = ReadBigEndianU32(b.data() + 12);
  const std::size_t expected =
      16 + static_cast<std::size_t>(n) * rows * cols;
  if (b.size() != expected) {
    return core::Status::DataLoss("IDX image payload size mismatch in " + path);
  }
  core::Tensor images({static_cast<std::int64_t>(n), 1,
                       static_cast<std::int64_t>(rows),
                       static_cast<std::int64_t>(cols)});
  auto out = images.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(b[16 + i]) / 255.0F;
  }
  return images;
}

core::StatusOr<std::vector<std::int64_t>> LoadIdxLabels(
    const std::string& path) {
  auto bytes = core::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  const auto& b = *bytes;
  if (b.size() < 8) return core::Status::DataLoss("IDX label header truncated");
  const std::uint32_t magic = ReadBigEndianU32(b.data());
  if (magic != 0x00000801) {
    return core::Status::DataLoss("bad IDX label magic in " + path);
  }
  const std::uint32_t n = ReadBigEndianU32(b.data() + 4);
  if (b.size() != 8 + static_cast<std::size_t>(n)) {
    return core::Status::DataLoss("IDX label payload size mismatch in " + path);
  }
  std::vector<std::int64_t> labels(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::int64_t>(b[8 + i]);
  }
  return labels;
}

core::StatusOr<Dataset> LoadIdxDataset(const std::string& images_path,
                                       const std::string& labels_path) {
  auto images = LoadIdxImages(images_path);
  if (!images.ok()) return images.status();
  auto labels = LoadIdxLabels(labels_path);
  if (!labels.ok()) return labels.status();
  if (images->shape()[0] != static_cast<std::int64_t>(labels->size())) {
    return core::Status::DataLoss("IDX image/label count mismatch");
  }
  Dataset ds;
  ds.images = std::move(*images);
  ds.labels = std::move(*labels);
  return ds;
}

}  // namespace fluid::data
