#pragma once
// Labeled image dataset + mini-batch loader.

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace fluid::data {

/// A labeled image classification dataset held in memory.
/// images: [N, C, H, W]; labels: N class indices.
struct Dataset {
  core::Tensor images;
  std::vector<std::int64_t> labels;

  std::int64_t size() const { return images.empty() ? 0 : images.shape()[0]; }

  /// Copy of samples [begin, end).
  Dataset Slice(std::int64_t begin, std::int64_t end) const;

  /// One sample as a batch-of-one tensor.
  core::Tensor Image(std::int64_t index) const;
  std::int64_t Label(std::int64_t index) const;

  /// Samples gathered by index list (for shuffled batching).
  Dataset Gather(const std::vector<std::size_t>& indices) const;

  /// Sanity checks (shapes consistent, labels in range). Throws on failure.
  void Validate(std::int64_t num_classes) const;
};

/// One mini-batch.
struct Batch {
  core::Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t size() const { return images.empty() ? 0 : images.shape()[0]; }
};

/// Iterates a dataset in mini-batches, reshuffling each epoch when a
/// non-null Rng is supplied. The last partial batch is kept (not dropped) —
/// evaluation must see every sample.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::int64_t batch_size, core::Rng* rng);

  /// Number of batches per epoch.
  std::int64_t NumBatches() const;

  /// Reset to the epoch start (reshuffles when shuffling).
  void StartEpoch();

  /// Fetch the next batch; returns false at epoch end.
  bool Next(Batch& out);

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  core::Rng* rng_;
  std::vector<std::size_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace fluid::data
