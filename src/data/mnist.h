#pragma once
// Unified entry point for the experiments' dataset: real MNIST when the IDX
// files exist, synthetic MNIST otherwise (DESIGN.md §3 substitution).

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "data/synthetic_mnist.h"

namespace fluid::data {

struct MnistSplits {
  Dataset train;
  Dataset test;
  /// True when loaded from real IDX files rather than synthesised.
  bool from_real_files = false;
};

/// Look for `train-images-idx3-ubyte` / `train-labels-idx1-ubyte` /
/// `t10k-images-idx3-ubyte` / `t10k-labels-idx1-ubyte` under `dir` and
/// load them (truncated to the requested counts); fall back to synthetic
/// data generated with `seed` (train) and `seed+1` (test) using
/// `synth_options` (the experiments pass SyntheticMnistOptions::Hard()).
MnistSplits LoadMnistOrSynthetic(
    const std::string& dir, std::int64_t train_count, std::int64_t test_count,
    std::uint64_t seed, const SyntheticMnistOptions& synth_options = {});

}  // namespace fluid::data
