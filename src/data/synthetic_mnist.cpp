#include "data/synthetic_mnist.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "data/glyphs.h"

namespace fluid::data {

SyntheticMnistOptions SyntheticMnistOptions::Hard() {
  SyntheticMnistOptions opt;
  opt.max_rotation_rad = 0.32;  // ~18°
  opt.min_scale = 0.62;
  opt.max_scale = 1.18;
  opt.max_shear = 0.35;
  opt.max_translate_px = 3.5;
  opt.min_thickness = 0.028;
  opt.max_thickness = 0.10;
  opt.pixel_noise_std = 0.12;
  opt.min_intensity = 0.55;
  opt.max_intensity = 1.0;
  opt.edge_softness = 0.05;
  return opt;
}

namespace {

/// 2×2 linear map + translation, applied to unit-box glyph coordinates.
struct Affine {
  double a = 1, b = 0, c = 0, d = 1;  // [a b; c d]
  double tx = 0, ty = 0;

  Point Apply(const Point& p) const {
    return {a * p.x + b * p.y + tx, c * p.x + d * p.y + ty};
  }
};

Affine SampleAffine(core::Rng& rng, const SyntheticMnistOptions& opt,
                    std::int64_t size) {
  const double angle = rng.Uniform(-opt.max_rotation_rad, opt.max_rotation_rad);
  const double sx = rng.Uniform(opt.min_scale, opt.max_scale);
  const double sy = rng.Uniform(opt.min_scale, opt.max_scale);
  const double shear = rng.Uniform(-opt.max_shear, opt.max_shear);
  const double ca = std::cos(angle), sa = std::sin(angle);
  // rotation ∘ shear ∘ scale, about the glyph centre (0.5, 0.5).
  Affine m;
  m.a = ca * sx + (-sa) * (shear * sx);
  m.b = -sa * sy;
  m.c = sa * sx + ca * (shear * sx);
  m.d = ca * sy;
  const double tpx = rng.Uniform(-opt.max_translate_px, opt.max_translate_px) /
                     static_cast<double>(size);
  const double tpy = rng.Uniform(-opt.max_translate_px, opt.max_translate_px) /
                     static_cast<double>(size);
  // Keep the centre fixed, then translate.
  m.tx = 0.5 - (m.a * 0.5 + m.b * 0.5) + tpx;
  m.ty = 0.5 - (m.c * 0.5 + m.d * 0.5) + tpy;
  return m;
}

}  // namespace

core::Tensor RenderDigit(std::int64_t digit, std::uint64_t seed,
                         std::uint64_t index,
                         const SyntheticMnistOptions& opt) {
  FLUID_CHECK_MSG(digit >= 0 && digit <= 9, "RenderDigit digit out of range");
  const std::int64_t size = opt.image_size;
  FLUID_CHECK_MSG(size >= 8, "RenderDigit image too small");

  // Per-sample stream: decorrelated across indices and seeds.
  core::Rng rng(seed ^ (0x5851F42D4C957F2DULL * (index + 1)) ^
                (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(digit + 1)));

  const Glyph& glyph = DigitGlyph(digit);
  const Affine fwd = SampleAffine(rng, opt, size);
  const double thickness = rng.Uniform(opt.min_thickness, opt.max_thickness);
  const double intensity = rng.Uniform(opt.min_intensity, opt.max_intensity);

  // Pre-transform the glyph once (cheaper than inverting per pixel).
  Glyph warped;
  warped.reserve(glyph.size());
  for (const auto& stroke : glyph) {
    Stroke w;
    w.reserve(stroke.size());
    for (const auto& p : stroke) w.push_back(fwd.Apply(p));
    warped.push_back(std::move(w));
  }

  core::Tensor image({1, 1, size, size});
  auto px = image.data();
  const double inv = 1.0 / static_cast<double>(size);
  for (std::int64_t y = 0; y < size; ++y) {
    for (std::int64_t x = 0; x < size; ++x) {
      const Point p{(static_cast<double>(x) + 0.5) * inv,
                    (static_cast<double>(y) + 0.5) * inv};
      const double d = GlyphDistance(warped, p);
      // Soft stroke: full intensity inside the core, smooth falloff across
      // the antialias band.
      double v = 0.0;
      if (d < thickness) {
        v = 1.0;
      } else if (d < thickness + opt.edge_softness) {
        const double t = (d - thickness) / opt.edge_softness;
        v = 1.0 - t * t * (3.0 - 2.0 * t);  // smoothstep down
      }
      v *= intensity;
      v += rng.Normal(0.0, opt.pixel_noise_std);
      px[static_cast<std::size_t>(y * size + x)] =
          static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
  return image;
}

Dataset MakeSyntheticMnist(std::int64_t count, std::uint64_t seed,
                           const SyntheticMnistOptions& opt) {
  FLUID_CHECK_MSG(count > 0, "MakeSyntheticMnist count must be positive");
  const std::int64_t size = opt.image_size;
  Dataset ds;
  ds.images = core::Tensor({count, 1, size, size});
  ds.labels.resize(static_cast<std::size_t>(count));

  // Balanced labels in a seed-deterministic shuffled order so that any
  // prefix of the dataset is approximately balanced too.
  core::Rng order_rng(seed ^ 0xC0FFEE0DDBA11ULL);
  std::vector<std::int64_t> digits(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    digits[static_cast<std::size_t>(i)] = i % 10;
  }
  order_rng.Shuffle(digits);

  const std::int64_t per = size * size;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t digit = digits[static_cast<std::size_t>(i)];
    const core::Tensor img =
        RenderDigit(digit, seed, static_cast<std::uint64_t>(i), opt);
    std::copy(img.data().begin(), img.data().end(),
              ds.images.data().begin() + i * per);
    ds.labels[static_cast<std::size_t>(i)] = digit;
  }
  return ds;
}

}  // namespace fluid::data
