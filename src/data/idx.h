#pragma once
// Loader for the IDX file format (the format real MNIST ships in).
//
// When the genuine MNIST files are present on disk the experiments use
// them transparently; otherwise the synthetic generator stands in
// (see mnist.h). Supports the two record types MNIST uses: u8 rank-3
// image files (magic 0x00000803) and u8 rank-1 label files (0x00000801).

#include <string>

#include "core/error.h"
#include "data/dataset.h"

namespace fluid::data {

/// Parse an IDX image file into [N, 1, H, W] float tensors scaled to [0,1].
core::StatusOr<core::Tensor> LoadIdxImages(const std::string& path);

/// Parse an IDX label file into class indices.
core::StatusOr<std::vector<std::int64_t>> LoadIdxLabels(const std::string& path);

/// Load an images+labels pair into a Dataset.
core::StatusOr<Dataset> LoadIdxDataset(const std::string& images_path,
                                       const std::string& labels_path);

}  // namespace fluid::data
