#include "data/dataset.h"

#include <cstring>

#include "core/error.h"

namespace fluid::data {

Dataset Dataset::Slice(std::int64_t begin, std::int64_t end) const {
  FLUID_CHECK_MSG(0 <= begin && begin <= end && end <= size(),
                  "Dataset::Slice range out of bounds");
  const auto& s = images.shape();
  const std::int64_t per = s[1] * s[2] * s[3];
  Dataset out;
  out.images = core::Tensor({end - begin, s[1], s[2], s[3]});
  std::memcpy(out.images.data().data(), images.data().data() + begin * per,
              static_cast<std::size_t>((end - begin) * per) * sizeof(float));
  out.labels.assign(labels.begin() + begin, labels.begin() + end);
  return out;
}

core::Tensor Dataset::Image(std::int64_t index) const {
  FLUID_CHECK_MSG(0 <= index && index < size(),
                  "Dataset::Image index out of bounds");
  const auto& s = images.shape();
  const std::int64_t per = s[1] * s[2] * s[3];
  core::Tensor out({1, s[1], s[2], s[3]});
  std::memcpy(out.data().data(), images.data().data() + index * per,
              static_cast<std::size_t>(per) * sizeof(float));
  return out;
}

std::int64_t Dataset::Label(std::int64_t index) const {
  FLUID_CHECK_MSG(0 <= index && index < size(),
                  "Dataset::Label index out of bounds");
  return labels[static_cast<std::size_t>(index)];
}

Dataset Dataset::Gather(const std::vector<std::size_t>& indices) const {
  const auto& s = images.shape();
  const std::int64_t per = s[1] * s[2] * s[3];
  Dataset out;
  out.images = core::Tensor(
      {static_cast<std::int64_t>(indices.size()), s[1], s[2], s[3]});
  out.labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FLUID_CHECK_MSG(indices[i] < static_cast<std::size_t>(size()),
                    "Dataset::Gather index out of bounds");
    std::memcpy(out.images.data().data() + static_cast<std::int64_t>(i) * per,
                images.data().data() +
                    static_cast<std::int64_t>(indices[i]) * per,
                static_cast<std::size_t>(per) * sizeof(float));
    out.labels[i] = labels[indices[i]];
  }
  return out;
}

void Dataset::Validate(std::int64_t num_classes) const {
  FLUID_CHECK_MSG(images.shape().rank() == 4, "Dataset images must be NCHW");
  FLUID_CHECK_MSG(static_cast<std::int64_t>(labels.size()) == size(),
                  "Dataset label count mismatch");
  for (const auto l : labels) {
    FLUID_CHECK_MSG(l >= 0 && l < num_classes, "Dataset label out of range");
  }
}

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size,
                       core::Rng* rng)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng) {
  FLUID_CHECK_MSG(batch_size_ > 0, "DataLoader batch size must be positive");
  order_.resize(static_cast<std::size_t>(dataset_.size()));
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

std::int64_t DataLoader::NumBatches() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::StartEpoch() {
  cursor_ = 0;
  if (rng_) rng_->Shuffle(order_);
}

bool DataLoader::Next(Batch& out) {
  if (cursor_ >= dataset_.size()) return false;
  const std::int64_t end =
      std::min<std::int64_t>(cursor_ + batch_size_, dataset_.size());
  std::vector<std::size_t> idx(order_.begin() + cursor_,
                               order_.begin() + end);
  Dataset gathered = dataset_.Gather(idx);
  out.images = std::move(gathered.images);
  out.labels = std::move(gathered.labels);
  cursor_ = end;
  return true;
}

}  // namespace fluid::data
