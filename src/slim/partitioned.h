#pragma once
// Channel-partitioned execution of the combined (full-width) model — the
// math of the paper's High-Accuracy mode.
//
// In HA mode the Master computes the lower channel block of every stage and
// the Worker the upper block (each holds only its own weight slice). A conv
// output channel needs *all* input channels, so after every stage except
// the last the devices exchange activation halves; the classifier merges as
// a sum of two partial products. This file implements that dataflow in one
// process and counts the bytes each direction would carry — the numbers the
// sim/ and dist/ layers use to model TCP cost, and the reason HA throughput
// is communication-bound (paper Fig. 2, 11.1 img/s for both Static and HA).

#include <cstdint>

#include "core/tensor.h"
#include "slim/fluid_model.h"

namespace fluid::slim {

/// Bytes and synchronisation points of one partitioned forward pass.
struct PartitionStats {
  std::int64_t bytes_master_to_worker = 0;
  std::int64_t bytes_worker_to_master = 0;
  std::int64_t exchanges = 0;  // pairwise sync points (input, per-stage, merge)

  std::int64_t total_bytes() const {
    return bytes_master_to_worker + bytes_worker_to_master;
  }
};

/// Concatenate two packed activations along the channel axis:
/// [N, Ca, H, W] ⧺ [N, Cb, H, W] → [N, Ca+Cb, H, W].
core::Tensor ConcatChannels(const core::Tensor& a, const core::Tensor& b);

class PartitionedRunner {
 public:
  /// Non-owning; `model` must outlive the runner. The partition boundary is
  /// the family's split width (Master = lower block, Worker = upper block).
  explicit PartitionedRunner(FluidModel& model);

  /// Forward `input` [N, C, S, S] through the partitioned dataflow.
  /// Returns logits matching model.Forward(family().Combined(), input,
  /// false) — conv stages bit-exactly, the classifier merge up to float
  /// summation re-association (partial products are summed per device).
  core::Tensor Run(const core::Tensor& input, PartitionStats* stats = nullptr);

  /// Stats of a single-sample pass without running it (analytic; used by
  /// the DES to cost communication).
  PartitionStats AnalyticStats(std::int64_t batch = 1) const;

 private:
  FluidModel& model_;
  ChannelRange lower_, upper_;
};

}  // namespace fluid::slim
