#pragma once
// Persistence for whole Fluid models: architecture config + width family +
// the shared full-width weight store, in one versioned binary file.
//
// This is the "trained artifact" of the system — a master loads it at
// startup and extracts/deploys slices from it (nn::checkpoint handles the
// per-slice deployment format).

#include <string>

#include "core/error.h"
#include "slim/fluid_model.h"

namespace fluid::slim {

/// Serialize config, family and all parameters.
std::vector<std::uint8_t> SerializeFluidModel(FluidModel& model);

/// Rebuild a model from SerializeFluidModel bytes.
core::StatusOr<FluidModel> ParseFluidModel(std::span<const std::uint8_t> bytes);

/// File wrappers (atomic write).
core::Status SaveFluidModel(FluidModel& model, const std::string& path);
core::StatusOr<FluidModel> LoadFluidModel(const std::string& path);

}  // namespace fluid::slim
