#include "slim/slim_conv2d.h"

#include <cstring>
#include <vector>

#include "core/error.h"
#include "nn/conv_gemm.h"
#include "nn/im2col.h"

namespace fluid::slim {

SlimConv2d::SlimConv2d(std::int64_t max_in, std::int64_t max_out,
                       std::int64_t kernel, std::int64_t stride,
                       std::int64_t pad, core::Rng& rng, std::string name)
    : max_in_(max_in),
      max_out_(max_out),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      name_(std::move(name)),
      weight_(core::Tensor::KaimingUniform({max_out, max_in, kernel, kernel},
                                           rng, max_in * kernel * kernel)),
      bias_(core::Tensor({max_out})),
      weight_grad_(core::Tensor({max_out, max_in, kernel, kernel})),
      bias_grad_(core::Tensor({max_out})) {
  FLUID_CHECK_MSG(max_in > 0 && max_out > 0 && kernel > 0,
                  "SlimConv2d: dimensions must be positive");
}

core::Tensor SlimConv2d::Forward(const core::Tensor& input,
                                 const ChannelRange& in,
                                 const ChannelRange& out, bool training) {
  CheckRange(in, max_in_, "SlimConv2d::Forward in");
  CheckRange(out, max_out_, "SlimConv2d::Forward out");
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 4 && s[1] == in.width(),
                  "SlimConv2d: packed input " + s.ToString() +
                      " does not match slice " + in.ToString());
  const std::int64_t batch = s[0], height = s[2], width = s[3];
  const std::int64_t out_h = nn::ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = nn::ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t in_w = in.width(), out_ch = out.width();
  const std::int64_t patch = in_w * kernel_ * kernel_;
  const std::int64_t kk = kernel_ * kernel_;

  // Pack the weight slice: rows = out channels of the slice, each row the
  // contiguous [in.lo, in.hi) kernel block of that output channel.
  std::vector<float> wpack(static_cast<std::size_t>(out_ch * patch));
  for (std::int64_t o = 0; o < out_ch; ++o) {
    const float* src =
        weight_.data().data() + ((out.lo + o) * max_in_ + in.lo) * kk;
    std::memcpy(wpack.data() + o * patch, src,
                static_cast<std::size_t>(patch) * sizeof(float));
  }

  core::Tensor output({batch, out_ch, out_h, out_w});
  // Packed input covers exactly the slice [0, in_w); the fused-batch
  // lowering (one [out_ch, group·area] GEMM per fusion group, see
  // conv_gemm.h) runs on the packed weight slice, with the bias pointer
  // offset to the slice's first output channel.
  nn::ConvForwardFused(input.data(), batch, in_w, height, width, kernel_,
                       stride_, pad_, out_ch, wpack.data(),
                       bias_.data().data() + out.lo, output.data());
  if (training) {
    cached_input_ = input;
    cached_in_ = in;
    cached_out_ = out;
  }
  return output;
}

core::Tensor SlimConv2d::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "SlimConv2d::Backward without training Forward");
  const ChannelRange in = cached_in_, out = cached_out_;
  const auto& is = cached_input_.shape();
  const std::int64_t batch = is[0], height = is[2], width = is[3];
  const std::int64_t out_h = nn::ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = nn::ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t in_w = in.width(), out_ch = out.width();
  const std::int64_t patch = in_w * kernel_ * kernel_;
  const std::int64_t kk = kernel_ * kernel_;
  FLUID_CHECK_MSG(grad_output.shape() ==
                      core::Shape({batch, out_ch, out_h, out_w}),
                  "SlimConv2d::Backward grad shape mismatch");

  std::vector<float> wpack(static_cast<std::size_t>(out_ch * patch));
  for (std::int64_t o = 0; o < out_ch; ++o) {
    std::memcpy(wpack.data() + o * patch,
                weight_.data().data() + ((out.lo + o) * max_in_ + in.lo) * kk,
                static_cast<std::size_t>(patch) * sizeof(float));
  }

  core::Tensor grad_input(is);
  // Shared deterministic chunked-accumulation scaffolding (conv_gemm.h);
  // the reduce callback scatters each chunk's packed partials into the
  // full-width sliced accumulators in chunk order.
  nn::ConvBackwardChunked(
      cached_input_.data(), grad_output.data(), batch, in_w, height, width,
      kernel_, stride_, pad_, out_ch, wpack.data(), grad_input.data(),
      [&](const float* gw_chunk, const double* gb_chunk) {
        for (std::int64_t o = 0; o < out_ch; ++o) {
          float* dst = weight_grad_.data().data() +
                       ((out.lo + o) * max_in_ + in.lo) * kk;
          const float* src = gw_chunk + o * patch;
          for (std::int64_t j = 0; j < patch; ++j) dst[j] += src[j];
          bias_grad_.data()[static_cast<std::size_t>(out.lo + o)] +=
              static_cast<float>(gb_chunk[o]);
        }
      });
  return grad_input;
}

std::vector<nn::ParamRef> SlimConv2d::Params() {
  return {{name_ + ".weight", &weight_, &weight_grad_},
          {name_ + ".bias", &bias_, &bias_grad_}};
}

core::Tensor SlimConv2d::PackWeight(const ChannelRange& in,
                                    const ChannelRange& out) const {
  CheckRange(in, max_in_, "PackWeight in");
  CheckRange(out, max_out_, "PackWeight out");
  const std::int64_t kk = kernel_ * kernel_;
  core::Tensor packed({out.width(), in.width(), kernel_, kernel_});
  for (std::int64_t o = 0; o < out.width(); ++o) {
    std::memcpy(packed.data().data() + o * in.width() * kk,
                weight_.data().data() + ((out.lo + o) * max_in_ + in.lo) * kk,
                static_cast<std::size_t>(in.width() * kk) * sizeof(float));
  }
  return packed;
}

core::Tensor SlimConv2d::PackBias(const ChannelRange& out) const {
  CheckRange(out, max_out_, "PackBias");
  core::Tensor packed({out.width()});
  std::memcpy(packed.data().data(), bias_.data().data() + out.lo,
              static_cast<std::size_t>(out.width()) * sizeof(float));
  return packed;
}

void SlimConv2d::UnpackWeight(const core::Tensor& packed,
                              const ChannelRange& in, const ChannelRange& out) {
  CheckRange(in, max_in_, "UnpackWeight in");
  CheckRange(out, max_out_, "UnpackWeight out");
  const std::int64_t kk = kernel_ * kernel_;
  FLUID_CHECK_MSG(packed.shape() ==
                      core::Shape({out.width(), in.width(), kernel_, kernel_}),
                  "UnpackWeight: packed shape mismatch");
  for (std::int64_t o = 0; o < out.width(); ++o) {
    std::memcpy(weight_.data().data() + ((out.lo + o) * max_in_ + in.lo) * kk,
                packed.data().data() + o * in.width() * kk,
                static_cast<std::size_t>(in.width() * kk) * sizeof(float));
  }
}

void SlimConv2d::UnpackBias(const core::Tensor& packed,
                            const ChannelRange& out) {
  CheckRange(out, max_out_, "UnpackBias");
  FLUID_CHECK_MSG(packed.shape() == core::Shape({out.width()}),
                  "UnpackBias: packed shape mismatch");
  std::memcpy(bias_.data().data() + out.lo, packed.data().data(),
              static_cast<std::size_t>(out.width()) * sizeof(float));
}

std::int64_t SlimConv2d::SliceFlops(const ChannelRange& in,
                                    const ChannelRange& out,
                                    std::int64_t height,
                                    std::int64_t width) const {
  const std::int64_t out_h = nn::ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = nn::ConvOutExtent(width, kernel_, stride_, pad_);
  return 2 * out.width() * in.width() * kernel_ * kernel_ * out_h * out_w;
}

}  // namespace fluid::slim
