#pragma once
// FluidModel: the paper's 3-conv + 1-FC network over a shared slimmable
// weight store, runnable at any sub-network of a SubnetFamily.
//
// This is the central type of the library. One instance holds the single
// full-width copy of every parameter; all six sub-networks of the paper are
// *views* (channel slices) onto it. Training a slice in place with an
// optimizer mask is mathematically identical to the paper's
// "copy → retrain → copy back" (Algorithm 1, lines 7-9), because the copy-
// back writes exactly the masked region; the trainers in fluid::train
// document this equivalence and the tests verify it against a literal
// extract-train-import implementation.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "nn/activations.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "slim/slim_conv2d.h"
#include "slim/slim_dense.h"
#include "slim/subnet_spec.h"

namespace fluid::slim {

/// Architecture hyper-parameters (defaults = the paper's model: 28×28
/// grayscale input, three 3×3 conv stages each followed by ReLU + 2×2 max
/// pool, then one fully-connected classifier).
struct FluidNetConfig {
  std::int64_t image_channels = 1;
  std::int64_t image_size = 28;
  std::int64_t num_classes = 10;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
  std::int64_t pool = 2;
  std::int64_t num_conv_layers = 3;
  /// Leak slope of the activations (see nn::LeakyReLU for why not 0).
  float relu_leak = 0.01F;

  /// Spatial extent after stage i (0-based, post-pool). Stage -1 = input.
  std::int64_t SpatialAfter(std::int64_t stage) const;
  /// Spatial extent entering the classifier.
  std::int64_t FinalSpatial() const { return SpatialAfter(num_conv_layers - 1); }
  /// Features per channel entering the classifier.
  std::int64_t FeaturesPerChannel() const {
    const auto s = FinalSpatial();
    return s * s;
  }
};

class FluidModel {
 public:
  FluidModel(FluidNetConfig config, SubnetFamily family, core::Rng& rng);

  /// Paper model + paper family, seeded.
  static FluidModel PaperDefault(std::uint64_t seed = 42);

  const FluidNetConfig& config() const { return config_; }
  const SubnetFamily& family() const { return family_; }

  /// Run one sub-network. `input` is [N, image_channels, S, S]; returns
  /// logits [N, num_classes]. With training=true the layers cache for one
  /// subsequent Backward (not reentrant).
  core::Tensor Forward(const SubnetSpec& spec, const core::Tensor& input,
                       bool training);

  /// Backprop through the sub-network of the last training Forward.
  /// Accumulates gradients in the shared full-width stores (only the
  /// slice's region is touched) and returns ∂L/∂input.
  core::Tensor Backward(const core::Tensor& grad_logits);

  /// All full-width parameters (for optimizers / checkpoints).
  std::vector<nn::ParamRef> Params();
  void ZeroGrad();

  /// 0/1 update masks for training `spec` while keeping `frozen` (if given)
  /// bit-exact. `train_head_bias` gates the shared classifier bias — only
  /// the first model trained in an incremental schedule owns it (see
  /// optimizer.h for why masks implement freezing).
  std::map<std::string, core::Tensor> TrainableMasks(
      const SubnetSpec& spec, const std::optional<SubnetSpec>& frozen,
      bool train_head_bias) const;

  /// Deep-copy the slice into a standalone nn::Sequential (Conv2d/Dense) —
  /// the deployment artifact shipped to a device. Forward of the extracted
  /// model is bit-identical to Forward(spec, ...) on this store.
  nn::Sequential ExtractSubnet(const SubnetSpec& spec) const;

  /// The INT8 serving form of the slice: ExtractSubnet run through
  /// quant::QuantizeModel (per-output-channel int8 weights, on-the-fly
  /// activation scales, LeakyReLU folded into the conv scatter). This is
  /// what a device serves when its deploy negotiated int8_compute.
  nn::Sequential ExtractSubnetQuantized(const SubnetSpec& spec) const;

  /// Write a standalone model's weights back into the slice (inverse of
  /// ExtractSubnet; the literal Algorithm-1 "copy back" step).
  void ImportSubnet(const SubnetSpec& spec, nn::Sequential& model);

  /// Forward-pass FLOPs of one sample through the slice.
  std::int64_t SubnetFlops(const SubnetSpec& spec) const;

  /// Bytes of the packed parameters of the slice (deployment payload size).
  std::int64_t SubnetParamBytes(const SubnetSpec& spec) const;

  /// Direct access for the partitioned runner and tests.
  SlimConv2d& conv(std::size_t i);
  const SlimConv2d& conv(std::size_t i) const;
  SlimDense& fc() { return *fc_; }
  const SlimDense& fc() const { return *fc_; }

  /// Feature-column range of the classifier for a channel range.
  ChannelRange FcColumns(const ChannelRange& channels) const;

 private:
  FluidNetConfig config_;
  SubnetFamily family_;
  std::vector<std::unique_ptr<SlimConv2d>> convs_;
  std::unique_ptr<SlimDense> fc_;

  // Per-stage stateless-but-caching layers for the single in-flight
  // forward/backward pair.
  std::vector<std::unique_ptr<nn::LeakyReLU>> relus_;
  std::vector<std::unique_ptr<nn::MaxPool2d>> pools_;
  nn::Flatten flatten_;
  std::optional<SubnetSpec> inflight_;
};

}  // namespace fluid::slim
