#pragma once
// Sub-network naming and geometry for a Fluid DyDNN width family.
//
// The paper's family (widths [4,8,12,16], split after index 1) yields six
// runnable sub-networks:
//   lower:  25% [0,4)   50% [0,8)   75% [0,12)   100% [0,16)
//   upper:  upper25% [8,12)   upper50% [8,16)
// The lower family alone is exactly the Dynamic-DNN baseline of
// Xun et al. (MLCAD'19); the upper family is what "Fluid" adds.

#include <cstdint>
#include <string>
#include <vector>

#include "slim/channel_range.h"

namespace fluid::slim {

/// One runnable sub-network: a name plus the channel block every hidden
/// layer activates. (In this architecture all hidden layers share widths,
/// as in the paper.)
struct SubnetSpec {
  std::string name;
  ChannelRange range;
  /// True for the upper-slice sub-networks that start at the split
  /// boundary rather than channel 0.
  bool is_upper = false;

  bool operator==(const SubnetSpec& other) const = default;
  std::string ToString() const { return name + range.ToString(); }
};

/// The full width family: cumulative widths plus the Master/Worker split.
class SubnetFamily {
 public:
  /// `widths` must be strictly increasing and positive; `split_index`
  /// selects the width held by the Master (everything above it is the
  /// Worker's upper block).
  SubnetFamily(std::vector<std::int64_t> widths, std::size_t split_index);

  /// Paper default: widths {4, 8, 12, 16}, split after the 50 % model.
  static SubnetFamily PaperDefault();

  std::size_t num_widths() const { return widths_.size(); }
  std::int64_t max_width() const { return widths_.back(); }
  std::int64_t split_width() const { return widths_[split_index_]; }
  std::size_t split_index() const { return split_index_; }
  const std::vector<std::int64_t>& widths() const { return widths_; }

  /// Lower sub-network i: channels [0, widths[i]). Name "25%", "50%", ....
  SubnetSpec Lower(std::size_t i) const;

  /// Upper sub-network above the split for width index i > split_index:
  /// channels [split_width, widths[i]). Name "upper25%", "upper50%", ....
  SubnetSpec Upper(std::size_t i) const;

  /// All lower specs, narrowest first (the Dynamic-DNN family).
  std::vector<SubnetSpec> LowerFamily() const;

  /// All upper specs, narrowest first (what Fluid adds).
  std::vector<SubnetSpec> UpperFamily() const;

  /// Every runnable sub-network: lower family then upper family.
  std::vector<SubnetSpec> All() const;

  /// Look up any spec produced by this family by name.
  SubnetSpec ByName(const std::string& name) const;

  /// The largest standalone spec for a given role after a failure:
  /// the Master keeps the split-width lower model, the Worker keeps the
  /// widest upper model.
  SubnetSpec MasterResident() const { return Lower(split_index_); }
  SubnetSpec WorkerResident() const { return Upper(widths_.size() - 1); }
  /// The combined full-width model both devices realise together in HA mode.
  SubnetSpec Combined() const { return Lower(widths_.size() - 1); }

 private:
  std::string PercentName(std::int64_t width) const;
  std::vector<std::int64_t> widths_;
  std::size_t split_index_;
};

}  // namespace fluid::slim
