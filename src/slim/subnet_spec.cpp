#include "slim/subnet_spec.h"

#include <sstream>

#include "core/error.h"

namespace fluid::slim {

SubnetFamily::SubnetFamily(std::vector<std::int64_t> widths,
                           std::size_t split_index)
    : widths_(std::move(widths)), split_index_(split_index) {
  FLUID_CHECK_MSG(!widths_.empty(), "SubnetFamily: empty width list");
  FLUID_CHECK_MSG(widths_.front() > 0, "SubnetFamily: widths must be positive");
  for (std::size_t i = 1; i < widths_.size(); ++i) {
    FLUID_CHECK_MSG(widths_[i] > widths_[i - 1],
                    "SubnetFamily: widths must be strictly increasing");
  }
  FLUID_CHECK_MSG(split_index_ < widths_.size(),
                  "SubnetFamily: split_index out of range");
}

SubnetFamily SubnetFamily::PaperDefault() {
  return SubnetFamily({4, 8, 12, 16}, 1);
}

std::string SubnetFamily::PercentName(std::int64_t width) const {
  // Percent of the maximum width, rounded to the nearest integer.
  const std::int64_t pct = (width * 100 + max_width() / 2) / max_width();
  std::ostringstream os;
  os << pct << "%";
  return os.str();
}

SubnetSpec SubnetFamily::Lower(std::size_t i) const {
  FLUID_CHECK_MSG(i < widths_.size(), "SubnetFamily::Lower index out of range");
  return SubnetSpec{PercentName(widths_[i]), {0, widths_[i]}, false};
}

SubnetSpec SubnetFamily::Upper(std::size_t i) const {
  FLUID_CHECK_MSG(i < widths_.size(), "SubnetFamily::Upper index out of range");
  FLUID_CHECK_MSG(i > split_index_,
                  "SubnetFamily::Upper requires a width above the split");
  return SubnetSpec{"upper" + PercentName(widths_[i] - split_width()),
                    {split_width(), widths_[i]},
                    true};
}

std::vector<SubnetSpec> SubnetFamily::LowerFamily() const {
  std::vector<SubnetSpec> specs;
  specs.reserve(widths_.size());
  for (std::size_t i = 0; i < widths_.size(); ++i) specs.push_back(Lower(i));
  return specs;
}

std::vector<SubnetSpec> SubnetFamily::UpperFamily() const {
  std::vector<SubnetSpec> specs;
  for (std::size_t i = split_index_ + 1; i < widths_.size(); ++i) {
    specs.push_back(Upper(i));
  }
  return specs;
}

std::vector<SubnetSpec> SubnetFamily::All() const {
  auto specs = LowerFamily();
  for (auto& u : UpperFamily()) specs.push_back(u);
  return specs;
}

SubnetSpec SubnetFamily::ByName(const std::string& name) const {
  for (const auto& s : All()) {
    if (s.name == name) return s;
  }
  throw core::Error("SubnetFamily: no sub-network named '" + name + "'");
}

}  // namespace fluid::slim
