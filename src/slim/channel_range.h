#pragma once
// Half-open channel intervals — the coordinate system of every slimmable
// slice in the library.
//
// A Fluid DyDNN sub-network is described entirely by which contiguous
// channel block [lo, hi) of the shared weight store it activates in each
// hidden layer (DESIGN.md §5). Lower sub-networks start at 0; the paper's
// "upper" sub-networks start at the 50 % boundary.

#include <cstdint>
#include <string>

#include "core/tensor.h"

namespace fluid::slim {

struct ChannelRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  std::int64_t width() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool Contains(const ChannelRange& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  bool Overlaps(const ChannelRange& other) const {
    return lo < other.hi && other.lo < hi;
  }
  bool operator==(const ChannelRange& other) const = default;

  std::string ToString() const;
};

/// Throws unless 0 <= lo < hi <= max.
void CheckRange(const ChannelRange& r, std::int64_t max, const char* what);

/// 0/1 mask over a conv weight [Co, Ci, k, k]: 1 where the output channel is
/// in `out` AND the input channel is in `in`.
core::Tensor ConvSliceMask(std::int64_t co, std::int64_t ci, std::int64_t k,
                           const ChannelRange& in, const ChannelRange& out);

/// 0/1 mask over a dense weight [out, in]: 1 inside the row range `out` and
/// the column range `in` (column units are *features*, not channels).
core::Tensor DenseSliceMask(std::int64_t out_features, std::int64_t in_features,
                            const ChannelRange& in_cols,
                            const ChannelRange& out_rows);

/// 0/1 mask over a bias [n]: 1 inside `r`.
core::Tensor BiasSliceMask(std::int64_t n, const ChannelRange& r);

/// a := a AND NOT b (elementwise over 0/1 masks); shapes must match.
/// Used to carve the frozen inner block out of a trainable slice.
void MaskSubtract(core::Tensor& a, const core::Tensor& b);

}  // namespace fluid::slim
