#pragma once
// Slimmable 2-D convolution: one full-width weight store, many runnable
// channel slices.
//
// Unlike nn::Conv2d this is not an nn::Layer — its Forward takes the active
// input/output channel ranges, because which slice runs is decided per call
// by the sub-network spec. Inputs and outputs are *packed*: a tensor whose
// channel extent equals the active width (so a deployed 25 % slice is
// bit-identical to a standalone small model — see FluidModel::ExtractSubnet).

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "nn/layer.h"
#include "slim/channel_range.h"

namespace fluid::slim {

class SlimConv2d {
 public:
  /// Full-width weight [max_out, max_in, k, k], Kaiming-uniform for the
  /// *largest* fan-in (shared init across slices, as in slimmable nets).
  SlimConv2d(std::int64_t max_in, std::int64_t max_out, std::int64_t kernel,
             std::int64_t stride, std::int64_t pad, core::Rng& rng,
             std::string name);

  /// Run the slice (in over the weight's input axis, out over its output
  /// axis). `input` is packed: [N, in.width(), H, W].
  /// Returns packed [N, out.width(), OH, OW].
  core::Tensor Forward(const core::Tensor& input, const ChannelRange& in,
                       const ChannelRange& out, bool training);

  /// Backprop for the slice of the last training Forward. Accumulates into
  /// the full-width gradient store (only the slice region is touched) and
  /// returns the packed input gradient.
  core::Tensor Backward(const core::Tensor& grad_output);

  std::vector<nn::ParamRef> Params();

  /// Copy the slice's weights out as a packed [out.w, in.w, k, k] tensor
  /// (plus bias) — deployment format.
  core::Tensor PackWeight(const ChannelRange& in, const ChannelRange& out) const;
  core::Tensor PackBias(const ChannelRange& out) const;

  /// Write a packed slice back into the store (inverse of PackWeight).
  void UnpackWeight(const core::Tensor& packed, const ChannelRange& in,
                    const ChannelRange& out);
  void UnpackBias(const core::Tensor& packed, const ChannelRange& out);

  std::int64_t max_in() const { return max_in_; }
  std::int64_t max_out() const { return max_out_; }
  std::int64_t kernel() const { return kernel_; }
  const std::string& name() const { return name_; }
  core::Tensor& weight() { return weight_; }
  core::Tensor& bias() { return bias_; }

  /// FLOPs (multiply-adds ×2) of one sample through the slice.
  std::int64_t SliceFlops(const ChannelRange& in, const ChannelRange& out,
                          std::int64_t height, std::int64_t width) const;

 private:
  std::int64_t max_in_, max_out_, kernel_, stride_, pad_;
  std::string name_;
  core::Tensor weight_, bias_;
  core::Tensor weight_grad_, bias_grad_;

  // Training caches (single in-flight Forward/Backward pair).
  core::Tensor cached_input_;
  ChannelRange cached_in_{}, cached_out_{};
};

}  // namespace fluid::slim
