#include "slim/slim_dense.h"

#include <cstring>
#include <vector>

#include "core/error.h"
#include "core/gemm.h"

namespace fluid::slim {

SlimDense::SlimDense(std::int64_t max_in, std::int64_t max_out, core::Rng& rng,
                     std::string name)
    : max_in_(max_in),
      max_out_(max_out),
      name_(std::move(name)),
      weight_(core::Tensor::KaimingUniform({max_out, max_in}, rng, max_in)),
      bias_(core::Tensor({max_out})),
      weight_grad_(core::Tensor({max_out, max_in})),
      bias_grad_(core::Tensor({max_out})) {
  FLUID_CHECK_MSG(max_in > 0 && max_out > 0,
                  "SlimDense: dimensions must be positive");
}

core::Tensor SlimDense::Forward(const core::Tensor& input,
                                const ChannelRange& in, const ChannelRange& out,
                                bool training, bool add_bias) {
  CheckRange(in, max_in_, "SlimDense::Forward in");
  CheckRange(out, max_out_, "SlimDense::Forward out");
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 2 && s[1] == in.width(),
                  "SlimDense: packed input " + s.ToString() +
                      " does not match slice " + in.ToString());
  const std::int64_t batch = s[0];
  core::Tensor output({batch, out.width()});

  // out[n,o] = Σ_i input[n,i] * W[out.lo+o, in.lo+i] + b[out.lo+o]
  // Use the stored weight directly with lda = max_in_ and an offset.
  const float* wbase = weight_.data().data() + out.lo * max_in_ + in.lo;
  core::Gemm(false, true, batch, out.width(), in.width(), 1.0F,
             input.data().data(), in.width(), wbase, max_in_, 0.0F,
             output.data().data(), out.width());
  if (add_bias) {
    for (std::int64_t n = 0; n < batch; ++n) {
      float* row = output.data().data() + n * out.width();
      for (std::int64_t o = 0; o < out.width(); ++o) {
        row[o] += bias_.data()[static_cast<std::size_t>(out.lo + o)];
      }
    }
  }
  if (training) {
    cached_input_ = input;
    cached_in_ = in;
    cached_out_ = out;
  }
  return output;
}

core::Tensor SlimDense::Backward(const core::Tensor& grad_output) {
  FLUID_CHECK_MSG(!cached_input_.empty(),
                  "SlimDense::Backward without training Forward");
  const ChannelRange in = cached_in_, out = cached_out_;
  const std::int64_t batch = cached_input_.shape()[0];
  FLUID_CHECK_MSG(grad_output.shape() == core::Shape({batch, out.width()}),
                  "SlimDense::Backward grad shape mismatch");

  // dW slice [out.w, in.w] += gOᵀ × input; accumulate straight into the
  // full-width grad with ldc = max_in_.
  float* gw_base = weight_grad_.data().data() + out.lo * max_in_ + in.lo;
  core::Gemm(true, false, out.width(), in.width(), batch, 1.0F,
             grad_output.data().data(), out.width(),
             cached_input_.data().data(), in.width(), 1.0F, gw_base, max_in_);
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = grad_output.data().data() + n * out.width();
    for (std::int64_t o = 0; o < out.width(); ++o) {
      bias_grad_.data()[static_cast<std::size_t>(out.lo + o)] += row[o];
    }
  }
  // gIn [N, in.w] = gO [N, out.w] × W slice [out.w, in.w]
  core::Tensor grad_input({batch, in.width()});
  const float* wbase = weight_.data().data() + out.lo * max_in_ + in.lo;
  core::Gemm(false, false, batch, in.width(), out.width(), 1.0F,
             grad_output.data().data(), out.width(), wbase, max_in_, 0.0F,
             grad_input.data().data(), in.width());
  return grad_input;
}

std::vector<nn::ParamRef> SlimDense::Params() {
  return {{name_ + ".weight", &weight_, &weight_grad_},
          {name_ + ".bias", &bias_, &bias_grad_}};
}

core::Tensor SlimDense::PackWeight(const ChannelRange& in,
                                   const ChannelRange& out) const {
  CheckRange(in, max_in_, "SlimDense::PackWeight in");
  CheckRange(out, max_out_, "SlimDense::PackWeight out");
  core::Tensor packed({out.width(), in.width()});
  for (std::int64_t o = 0; o < out.width(); ++o) {
    std::memcpy(packed.data().data() + o * in.width(),
                weight_.data().data() + (out.lo + o) * max_in_ + in.lo,
                static_cast<std::size_t>(in.width()) * sizeof(float));
  }
  return packed;
}

core::Tensor SlimDense::PackBias(const ChannelRange& out) const {
  CheckRange(out, max_out_, "SlimDense::PackBias");
  core::Tensor packed({out.width()});
  std::memcpy(packed.data().data(), bias_.data().data() + out.lo,
              static_cast<std::size_t>(out.width()) * sizeof(float));
  return packed;
}

void SlimDense::UnpackWeight(const core::Tensor& packed, const ChannelRange& in,
                             const ChannelRange& out) {
  CheckRange(in, max_in_, "SlimDense::UnpackWeight in");
  CheckRange(out, max_out_, "SlimDense::UnpackWeight out");
  FLUID_CHECK_MSG(packed.shape() == core::Shape({out.width(), in.width()}),
                  "SlimDense::UnpackWeight shape mismatch");
  for (std::int64_t o = 0; o < out.width(); ++o) {
    std::memcpy(weight_.data().data() + (out.lo + o) * max_in_ + in.lo,
                packed.data().data() + o * in.width(),
                static_cast<std::size_t>(in.width()) * sizeof(float));
  }
}

void SlimDense::UnpackBias(const core::Tensor& packed, const ChannelRange& out) {
  CheckRange(out, max_out_, "SlimDense::UnpackBias");
  FLUID_CHECK_MSG(packed.shape() == core::Shape({out.width()}),
                  "SlimDense::UnpackBias shape mismatch");
  std::memcpy(bias_.data().data() + out.lo, packed.data().data(),
              static_cast<std::size_t>(out.width()) * sizeof(float));
}

}  // namespace fluid::slim
