#include "slim/channel_range.h"

#include <sstream>

#include "core/error.h"

namespace fluid::slim {

std::string ChannelRange::ToString() const {
  std::ostringstream os;
  os << "[" << lo << "," << hi << ")";
  return os.str();
}

void CheckRange(const ChannelRange& r, std::int64_t max, const char* what) {
  FLUID_CHECK_MSG(0 <= r.lo && r.lo < r.hi && r.hi <= max,
                  std::string(what) + ": bad channel range " + r.ToString() +
                      " for extent " + std::to_string(max));
}

core::Tensor ConvSliceMask(std::int64_t co, std::int64_t ci, std::int64_t k,
                           const ChannelRange& in, const ChannelRange& out) {
  CheckRange(in, ci, "ConvSliceMask(in)");
  CheckRange(out, co, "ConvSliceMask(out)");
  core::Tensor mask({co, ci, k, k});
  auto d = mask.data();
  const std::int64_t kk = k * k;
  for (std::int64_t o = out.lo; o < out.hi; ++o) {
    for (std::int64_t i = in.lo; i < in.hi; ++i) {
      float* cell = d.data() + (o * ci + i) * kk;
      for (std::int64_t j = 0; j < kk; ++j) cell[j] = 1.0F;
    }
  }
  return mask;
}

core::Tensor DenseSliceMask(std::int64_t out_features, std::int64_t in_features,
                            const ChannelRange& in_cols,
                            const ChannelRange& out_rows) {
  CheckRange(in_cols, in_features, "DenseSliceMask(in)");
  CheckRange(out_rows, out_features, "DenseSliceMask(out)");
  core::Tensor mask({out_features, in_features});
  auto d = mask.data();
  for (std::int64_t o = out_rows.lo; o < out_rows.hi; ++o) {
    float* row = d.data() + o * in_features;
    for (std::int64_t i = in_cols.lo; i < in_cols.hi; ++i) row[i] = 1.0F;
  }
  return mask;
}

core::Tensor BiasSliceMask(std::int64_t n, const ChannelRange& r) {
  CheckRange(r, n, "BiasSliceMask");
  core::Tensor mask({n});
  auto d = mask.data();
  for (std::int64_t i = r.lo; i < r.hi; ++i) d[static_cast<std::size_t>(i)] = 1.0F;
  return mask;
}

void MaskSubtract(core::Tensor& a, const core::Tensor& b) {
  FLUID_CHECK_MSG(a.shape() == b.shape(), "MaskSubtract shape mismatch");
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (db[i] != 0.0F) da[i] = 0.0F;
  }
}

}  // namespace fluid::slim
