#include "slim/partitioned.h"

#include <cstring>

#include "core/error.h"
#include "core/tensor_ops.h"
#include "nn/activations.h"
#include "nn/flatten.h"
#include "nn/pooling.h"

namespace fluid::slim {

core::Tensor ConcatChannels(const core::Tensor& a, const core::Tensor& b) {
  FLUID_CHECK_MSG(a.shape().rank() == 4 && b.shape().rank() == 4,
                  "ConcatChannels expects NCHW");
  FLUID_CHECK_MSG(a.shape()[0] == b.shape()[0] &&
                      a.shape()[2] == b.shape()[2] &&
                      a.shape()[3] == b.shape()[3],
                  "ConcatChannels: batch/spatial mismatch");
  const std::int64_t batch = a.shape()[0], ca = a.shape()[1],
                     cb = b.shape()[1], h = a.shape()[2], w = a.shape()[3];
  core::Tensor out({batch, ca + cb, h, w});
  const std::int64_t plane = h * w;
  for (std::int64_t n = 0; n < batch; ++n) {
    std::memcpy(out.data().data() + n * (ca + cb) * plane,
                a.data().data() + n * ca * plane,
                static_cast<std::size_t>(ca * plane) * sizeof(float));
    std::memcpy(out.data().data() + (n * (ca + cb) + ca) * plane,
                b.data().data() + n * cb * plane,
                static_cast<std::size_t>(cb * plane) * sizeof(float));
  }
  return out;
}

PartitionedRunner::PartitionedRunner(FluidModel& model)
    : model_(model),
      lower_{0, model.family().split_width()},
      upper_{model.family().split_width(), model.family().max_width()} {}

core::Tensor PartitionedRunner::Run(const core::Tensor& input,
                                    PartitionStats* stats) {
  const auto& cfg = model_.config();
  constexpr std::int64_t kF32 = sizeof(float);
  PartitionStats local;

  // The Master owns the input stream; the Worker needs a copy of each image.
  local.bytes_master_to_worker += input.numel() * kF32;
  local.exchanges += 1;

  nn::LeakyReLU relu(cfg.relu_leak);
  nn::MaxPool2d pool(cfg.pool);
  nn::Flatten flatten;

  core::Tensor full = input;  // both devices hold this after each exchange
  const std::int64_t stages = cfg.num_conv_layers;
  for (std::int64_t i = 0; i < stages; ++i) {
    const ChannelRange in = (i == 0)
                                ? ChannelRange{0, cfg.image_channels}
                                : ChannelRange{0, model_.family().max_width()};
    // Master computes its rows, Worker computes its rows — from the same
    // full-width input both hold.
    core::Tensor lo = model_.conv(static_cast<std::size_t>(i))
                          .Forward(full, in, lower_, false);
    core::Tensor hi = model_.conv(static_cast<std::size_t>(i))
                          .Forward(full, in, upper_, false);
    lo = pool.Forward(relu.Forward(lo, false), false);
    hi = pool.Forward(relu.Forward(hi, false), false);
    if (i + 1 < stages) {
      // Exchange halves so both sides hold the full next-stage input.
      local.bytes_master_to_worker += lo.numel() * kF32;
      local.bytes_worker_to_master += hi.numel() * kF32;
      local.exchanges += 1;
      full = ConcatChannels(lo, hi);
    } else {
      // Last stage: each side flattens its own half; no activation
      // exchange — the classifier merges partial products instead.
      core::Tensor flat_lo = flatten.Forward(lo, false);
      core::Tensor flat_hi = flatten.Forward(hi, false);
      core::Tensor logits_lo =
          model_.fc().Forward(flat_lo, model_.FcColumns(lower_),
                              {0, cfg.num_classes}, false, /*add_bias=*/true);
      core::Tensor logits_hi =
          model_.fc().Forward(flat_hi, model_.FcColumns(upper_),
                              {0, cfg.num_classes}, false, /*add_bias=*/false);
      local.bytes_worker_to_master += logits_hi.numel() * kF32;
      local.exchanges += 1;
      if (stats) *stats = local;
      return core::Add(logits_lo, logits_hi);
    }
  }
  throw core::Error("PartitionedRunner: unreachable (no conv stages)");
}

PartitionStats PartitionedRunner::AnalyticStats(std::int64_t batch) const {
  const auto& cfg = model_.config();
  constexpr std::int64_t kF32 = sizeof(float);
  PartitionStats s;
  s.bytes_master_to_worker +=
      batch * cfg.image_channels * cfg.image_size * cfg.image_size * kF32;
  s.exchanges += 1;
  for (std::int64_t i = 0; i + 1 < cfg.num_conv_layers; ++i) {
    const std::int64_t sp = cfg.SpatialAfter(i);
    s.bytes_master_to_worker += batch * lower_.width() * sp * sp * kF32;
    s.bytes_worker_to_master += batch * upper_.width() * sp * sp * kF32;
    s.exchanges += 1;
  }
  s.bytes_worker_to_master += batch * cfg.num_classes * kF32;
  s.exchanges += 1;
  return s;
}

}  // namespace fluid::slim
