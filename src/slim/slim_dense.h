#pragma once
// Slimmable fully-connected layer (the classifier head of the Fluid model).
//
// Column ranges are in *feature* units: a channel slice [lo, hi) of a
// flattened C×H×W activation occupies the contiguous feature columns
// [lo·HW, hi·HW) because flatten is channel-major. The caller (FluidModel)
// does that conversion.

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "nn/layer.h"
#include "slim/channel_range.h"

namespace fluid::slim {

class SlimDense {
 public:
  /// Full weight [max_out, max_in]; Kaiming-uniform at max fan-in.
  SlimDense(std::int64_t max_in, std::int64_t max_out, core::Rng& rng,
            std::string name);

  /// input packed [N, in.width()]; returns packed [N, out.width()].
  /// `add_bias` is false when the caller is computing a *partial* product
  /// over a column block that another device will sum with its own partial
  /// (channel-partitioned HA mode adds the bias exactly once, at the merge).
  core::Tensor Forward(const core::Tensor& input, const ChannelRange& in,
                       const ChannelRange& out, bool training,
                       bool add_bias = true);

  core::Tensor Backward(const core::Tensor& grad_output);

  std::vector<nn::ParamRef> Params();

  core::Tensor PackWeight(const ChannelRange& in, const ChannelRange& out) const;
  core::Tensor PackBias(const ChannelRange& out) const;
  void UnpackWeight(const core::Tensor& packed, const ChannelRange& in,
                    const ChannelRange& out);
  void UnpackBias(const core::Tensor& packed, const ChannelRange& out);

  std::int64_t max_in() const { return max_in_; }
  std::int64_t max_out() const { return max_out_; }
  const std::string& name() const { return name_; }
  core::Tensor& weight() { return weight_; }
  core::Tensor& bias() { return bias_; }

  std::int64_t SliceFlops(const ChannelRange& in, const ChannelRange& out) const {
    return 2 * in.width() * out.width();
  }

 private:
  std::int64_t max_in_, max_out_;
  std::string name_;
  core::Tensor weight_, bias_;
  core::Tensor weight_grad_, bias_grad_;
  core::Tensor cached_input_;
  ChannelRange cached_in_{}, cached_out_{};
};

}  // namespace fluid::slim
