#include "slim/model_io.h"

#include "core/serialize.h"
#include "nn/checkpoint.h"

namespace fluid::slim {

namespace {
constexpr std::uint32_t kMagic = 0x444C5546;  // "FLUD"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> SerializeFluidModel(FluidModel& model) {
  core::ByteWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);

  const auto& cfg = model.config();
  w.WriteI64(cfg.image_channels);
  w.WriteI64(cfg.image_size);
  w.WriteI64(cfg.num_classes);
  w.WriteI64(cfg.kernel);
  w.WriteI64(cfg.stride);
  w.WriteI64(cfg.pad);
  w.WriteI64(cfg.pool);
  w.WriteI64(cfg.num_conv_layers);
  w.WriteF32(cfg.relu_leak);

  const auto& family = model.family();
  w.WriteU32(static_cast<std::uint32_t>(family.num_widths()));
  for (const auto width : family.widths()) w.WriteI64(width);
  w.WriteU32(static_cast<std::uint32_t>(family.split_index()));

  nn::StateDict state;
  for (const auto& p : model.Params()) state[p.name] = *p.value;
  w.WriteBytes(nn::SerializeState(state));
  return w.TakeBuffer();
}

core::StatusOr<FluidModel> ParseFluidModel(
    std::span<const std::uint8_t> bytes) {
  core::ByteReader r(bytes);
  std::uint32_t magic = 0, version = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU32(magic));
  if (magic != kMagic) {
    return core::Status::DataLoss("bad fluid-model magic");
  }
  FLUID_RETURN_IF_ERROR(r.TryReadU32(version));
  if (version != kVersion) {
    return core::Status::DataLoss("unsupported fluid-model version " +
                                  std::to_string(version));
  }

  FluidNetConfig cfg;
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.image_channels));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.image_size));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.num_classes));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.kernel));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.stride));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.pad));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.pool));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(cfg.num_conv_layers));
  FLUID_RETURN_IF_ERROR(r.TryReadF32(cfg.relu_leak));

  std::uint32_t width_count = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU32(width_count));
  if (width_count == 0 || width_count > 64) {
    return core::Status::DataLoss("implausible width count");
  }
  std::vector<std::int64_t> widths(width_count);
  for (auto& width : widths) FLUID_RETURN_IF_ERROR(r.TryReadI64(width));
  std::uint32_t split_index = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU32(split_index));
  if (split_index >= width_count) {
    return core::Status::DataLoss("split index out of range");
  }

  std::vector<std::uint8_t> state_bytes;
  FLUID_RETURN_IF_ERROR(r.TryReadBytes(state_bytes));
  auto state = nn::ParseState(state_bytes);
  if (!state.ok()) return state.status();

  // Construction validates geometry; weight load validates shapes.
  try {
    core::Rng rng(0);
    FluidModel model(cfg, SubnetFamily(std::move(widths), split_index), rng);
    for (const auto& p : model.Params()) {
      const auto it = state->find(p.name);
      if (it == state->end()) {
        return core::Status::DataLoss("fluid model missing parameter " +
                                      p.name);
      }
      if (it->second.shape() != p.value->shape()) {
        return core::Status::DataLoss("fluid model shape mismatch for " +
                                      p.name);
      }
      *p.value = it->second;
    }
    return model;
  } catch (const core::Error& e) {
    return core::Status::DataLoss(std::string("invalid fluid model: ") +
                                  e.what());
  }
}

core::Status SaveFluidModel(FluidModel& model, const std::string& path) {
  return core::WriteFile(path, SerializeFluidModel(model));
}

core::StatusOr<FluidModel> LoadFluidModel(const std::string& path) {
  auto bytes = core::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseFluidModel(*bytes);
}

}  // namespace fluid::slim
