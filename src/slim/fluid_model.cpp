#include "slim/fluid_model.h"

#include "core/error.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "quant/quant_layers.h"

namespace fluid::slim {

std::int64_t FluidNetConfig::SpatialAfter(std::int64_t stage) const {
  std::int64_t s = image_size;
  for (std::int64_t i = 0; i <= stage; ++i) {
    // Conv keeps the extent (paper uses 3×3/1 pad 1); pool floors.
    s = (s + 2 * pad - kernel) / stride + 1;
    s /= pool;
  }
  return s;
}

FluidModel::FluidModel(FluidNetConfig config, SubnetFamily family,
                       core::Rng& rng)
    : config_(config), family_(std::move(family)) {
  FLUID_CHECK_MSG(config_.num_conv_layers >= 1,
                  "FluidModel needs at least one conv layer");
  FLUID_CHECK_MSG(config_.FinalSpatial() >= 1,
                  "FluidModel: input too small for the pool pyramid");
  const std::int64_t w = family_.max_width();
  for (std::int64_t i = 0; i < config_.num_conv_layers; ++i) {
    const std::int64_t in_ch = (i == 0) ? config_.image_channels : w;
    convs_.push_back(std::make_unique<SlimConv2d>(
        in_ch, w, config_.kernel, config_.stride, config_.pad, rng,
        "conv" + std::to_string(i + 1)));
    relus_.push_back(std::make_unique<nn::LeakyReLU>(config_.relu_leak));
    pools_.push_back(std::make_unique<nn::MaxPool2d>(config_.pool));
  }
  fc_ = std::make_unique<SlimDense>(w * config_.FeaturesPerChannel(),
                                    config_.num_classes, rng, "fc");
}

FluidModel FluidModel::PaperDefault(std::uint64_t seed) {
  core::Rng rng(seed);
  return FluidModel(FluidNetConfig{}, SubnetFamily::PaperDefault(), rng);
}

ChannelRange FluidModel::FcColumns(const ChannelRange& channels) const {
  const std::int64_t f = config_.FeaturesPerChannel();
  return {channels.lo * f, channels.hi * f};
}

core::Tensor FluidModel::Forward(const SubnetSpec& spec,
                                 const core::Tensor& input, bool training) {
  CheckRange(spec.range, family_.max_width(), "FluidModel::Forward");
  core::Tensor h = input;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    // Stage 0 consumes the image (full input channels); later stages
    // consume the packed slice produced by the previous stage, which lives
    // at weight columns [range.lo, range.hi).
    const ChannelRange in = (i == 0)
                                ? ChannelRange{0, config_.image_channels}
                                : spec.range;
    h = convs_[i]->Forward(h, in, spec.range, training);
    h = relus_[i]->Forward(h, training);
    h = pools_[i]->Forward(h, training);
  }
  h = flatten_.Forward(h, training);
  core::Tensor logits =
      fc_->Forward(h, FcColumns(spec.range),
                   {0, config_.num_classes}, training);
  if (training) inflight_ = spec;
  return logits;
}

core::Tensor FluidModel::Backward(const core::Tensor& grad_logits) {
  FLUID_CHECK_MSG(inflight_.has_value(),
                  "FluidModel::Backward without a training Forward");
  core::Tensor g = fc_->Backward(grad_logits);
  g = flatten_.Backward(g);
  for (std::size_t i = convs_.size(); i-- > 0;) {
    g = pools_[i]->Backward(g);
    g = relus_[i]->Backward(g);
    g = convs_[i]->Backward(g);
  }
  inflight_.reset();
  return g;
}

std::vector<nn::ParamRef> FluidModel::Params() {
  std::vector<nn::ParamRef> params;
  for (auto& c : convs_) {
    for (auto& p : c->Params()) params.push_back(p);
  }
  for (auto& p : fc_->Params()) params.push_back(p);
  return params;
}

void FluidModel::ZeroGrad() {
  for (auto& p : Params()) p.grad->Zero();
}

std::map<std::string, core::Tensor> FluidModel::TrainableMasks(
    const SubnetSpec& spec, const std::optional<SubnetSpec>& frozen,
    bool train_head_bias) const {
  if (frozen) {
    FLUID_CHECK_MSG(
        spec.range.Contains(frozen->range) ||
            !spec.range.Overlaps(frozen->range),
        "TrainableMasks: frozen range must be nested or disjoint");
  }
  const std::int64_t w = family_.max_width();
  std::map<std::string, core::Tensor> masks;

  for (std::size_t i = 0; i < convs_.size(); ++i) {
    const auto& c = *convs_[i];
    const ChannelRange in_full =
        (i == 0) ? ChannelRange{0, config_.image_channels} : spec.range;
    core::Tensor wmask =
        ConvSliceMask(c.max_out(), c.max_in(), c.kernel(), in_full, spec.range);
    core::Tensor bmask = BiasSliceMask(w, spec.range);
    if (frozen && spec.range.Contains(frozen->range)) {
      const ChannelRange fin =
          (i == 0) ? ChannelRange{0, config_.image_channels} : frozen->range;
      MaskSubtract(wmask, ConvSliceMask(c.max_out(), c.max_in(), c.kernel(),
                                        fin, frozen->range));
      MaskSubtract(bmask, BiasSliceMask(w, frozen->range));
    }
    masks[c.name() + ".weight"] = std::move(wmask);
    masks[c.name() + ".bias"] = std::move(bmask);
  }

  core::Tensor fcw = DenseSliceMask(config_.num_classes, fc_->max_in(),
                                    FcColumns(spec.range),
                                    {0, config_.num_classes});
  if (frozen && spec.range.Contains(frozen->range)) {
    MaskSubtract(fcw, DenseSliceMask(config_.num_classes, fc_->max_in(),
                                     FcColumns(frozen->range),
                                     {0, config_.num_classes}));
  }
  masks["fc.weight"] = std::move(fcw);
  // The classifier bias is shared by every sub-network; only the schedule
  // step designated as its owner updates it (DESIGN.md §5).
  masks["fc.bias"] = train_head_bias
                         ? core::Tensor::Ones({config_.num_classes})
                         : core::Tensor::Zeros({config_.num_classes});
  return masks;
}

nn::Sequential FluidModel::ExtractSubnet(const SubnetSpec& spec) const {
  core::Rng dummy(0);
  nn::Sequential model;
  const std::int64_t width = spec.range.width();
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    const auto& c = *convs_[i];
    const ChannelRange in =
        (i == 0) ? ChannelRange{0, config_.image_channels} : spec.range;
    auto layer = std::make_unique<nn::Conv2d>(
        in.width(), width, config_.kernel, config_.stride, config_.pad, dummy,
        c.name());
    layer->weight() = c.PackWeight(in, spec.range);
    layer->bias() = c.PackBias(spec.range);
    model.Add(std::move(layer));
    model.Emplace<nn::LeakyReLU>(config_.relu_leak);
    model.Emplace<nn::MaxPool2d>(config_.pool);
  }
  model.Emplace<nn::Flatten>();
  auto head = std::make_unique<nn::Dense>(
      width * config_.FeaturesPerChannel(), config_.num_classes, dummy, "fc");
  head->weight() =
      fc_->PackWeight(FcColumns(spec.range), {0, config_.num_classes});
  head->bias() = fc_->PackBias({0, config_.num_classes});
  model.Add(std::move(head));
  return model;
}

nn::Sequential FluidModel::ExtractSubnetQuantized(const SubnetSpec& spec) const {
  nn::Sequential fp32 = ExtractSubnet(spec);
  return quant::QuantizeModel(fp32);
}

void FluidModel::ImportSubnet(const SubnetSpec& spec, nn::Sequential& model) {
  // Layout produced by ExtractSubnet: (Conv2d, ReLU, MaxPool2d) per stage,
  // then Flatten, Dense.
  const std::size_t expected = convs_.size() * 3 + 2;
  FLUID_CHECK_MSG(model.size() == expected,
                  "ImportSubnet: unexpected model layout");
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    auto* layer = dynamic_cast<nn::Conv2d*>(&model.layer(i * 3));
    FLUID_CHECK_MSG(layer != nullptr, "ImportSubnet: stage is not Conv2d");
    const ChannelRange in =
        (i == 0) ? ChannelRange{0, config_.image_channels} : spec.range;
    convs_[i]->UnpackWeight(layer->weight(), in, spec.range);
    convs_[i]->UnpackBias(layer->bias(), spec.range);
  }
  auto* head = dynamic_cast<nn::Dense*>(&model.layer(expected - 1));
  FLUID_CHECK_MSG(head != nullptr, "ImportSubnet: head is not Dense");
  fc_->UnpackWeight(head->weight(), FcColumns(spec.range),
                    {0, config_.num_classes});
  fc_->UnpackBias(head->bias(), {0, config_.num_classes});
}

std::int64_t FluidModel::SubnetFlops(const SubnetSpec& spec) const {
  std::int64_t flops = 0;
  std::int64_t s = config_.image_size;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    const ChannelRange in =
        (i == 0) ? ChannelRange{0, config_.image_channels} : spec.range;
    flops += convs_[i]->SliceFlops(in, spec.range, s, s);
    s = (s + 2 * config_.pad - config_.kernel) / config_.stride + 1;
    s /= config_.pool;
  }
  flops += fc_->SliceFlops(FcColumns(spec.range), {0, config_.num_classes});
  return flops;
}

std::int64_t FluidModel::SubnetParamBytes(const SubnetSpec& spec) const {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    const ChannelRange in =
        (i == 0) ? ChannelRange{0, config_.image_channels} : spec.range;
    count += in.width() * spec.range.width() * config_.kernel * config_.kernel;
    count += spec.range.width();  // bias
  }
  count += FcColumns(spec.range).width() * config_.num_classes;
  count += config_.num_classes;
  return count * static_cast<std::int64_t>(sizeof(float));
}

SlimConv2d& FluidModel::conv(std::size_t i) {
  FLUID_CHECK_MSG(i < convs_.size(), "FluidModel::conv index out of range");
  return *convs_[i];
}

const SlimConv2d& FluidModel::conv(std::size_t i) const {
  FLUID_CHECK_MSG(i < convs_.size(), "FluidModel::conv index out of range");
  return *convs_[i];
}

}  // namespace fluid::slim
