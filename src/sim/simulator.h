#pragma once
// Minimal discrete-event simulation kernel.
//
// Deterministic: events at equal timestamps fire in scheduling order.
// Used by the pipeline and failure-timeline simulations to model the
// two-device edge system without real hardware (DESIGN.md §3).

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace fluid::sim {

using SimTime = double;  // seconds

class Simulator {
 public:
  /// Schedule `fn` to run `delay` seconds from now. Negative delays are an
  /// error; zero is allowed (fires after currently queued same-time events).
  void Schedule(SimTime delay, std::function<void()> fn);

  /// Schedule at an absolute time (must not be in the past).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  SimTime Now() const { return now_; }

  /// Fire events in time order until the queue drains or `until` is
  /// reached. Returns the number of events processed.
  std::size_t Run(SimTime until = std::numeric_limits<SimTime>::infinity());

  /// Fire exactly one event; false if the queue is empty.
  bool Step();

  bool Empty() const { return queue_.empty(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tiebreaker → deterministic ordering
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace fluid::sim
