#pragma once
// Device and link cost models for the two-board edge system.
//
// The paper measured computation latency on Jetson Xavier NX CPUs and TCP
// communication latency offline, then combined them analytically ("the
// total throughput of the system can be calculated with the sum of
// computation and communication latency", §III). These models reproduce
// that methodology: compute cost comes either from an analytic FLOPs/rate
// profile or from latencies measured on the host (sim/latency.h); link
// cost is latency + size/bandwidth.

#include <cstdint>
#include <string>

namespace fluid::sim {

/// Compute-side cost model of one device.
struct ComputeProfile {
  /// Sustained effective rate on conv/GEMM kernels, FLOP/s.
  double effective_flops_per_s = 2.0e9;
  /// Fixed per-inference dispatch overhead, seconds.
  double fixed_overhead_s = 1.0e-4;
  /// Relative speed multiplier (1.0 = reference device; heterogeneous
  /// clusters scale this).
  double speed_factor = 1.0;

  /// Seconds to run `flops` once.
  double LatencyFor(std::int64_t flops) const {
    return fixed_overhead_s +
           static_cast<double>(flops) /
               (effective_flops_per_s * speed_factor);
  }
};

/// A device in the distributed system.
struct DeviceModel {
  std::string name;
  ComputeProfile compute;
  bool online = true;
};

/// Point-to-point link (the paper's TCP connection between two boards).
struct LinkModel {
  /// One-way message latency, seconds (paper measured this offline).
  double latency_s = 0.010;
  /// Payload bandwidth, bytes/s.
  double bandwidth_bytes_per_s = 12.5e6;  // ~100 Mbit/s Ethernet

  /// Seconds to move `bytes` one way.
  double TransferTime(std::int64_t bytes) const {
    return latency_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

}  // namespace fluid::sim
