#include "sim/latency.h"

#include <chrono>

#include "core/error.h"

namespace fluid::sim {

LatencyMeasurement MeasureLatency(const std::function<void()>& fn,
                                  std::int64_t iters, std::int64_t warmup) {
  FLUID_CHECK_MSG(iters > 0, "MeasureLatency needs >= 1 iteration");
  using clock = std::chrono::steady_clock;
  for (std::int64_t i = 0; i < warmup; ++i) fn();
  LatencyMeasurement m;
  m.iterations = iters;
  m.min_s = 1e18;
  double total = 0.0;
  for (std::int64_t i = 0; i < iters; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double s =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    total += s;
    m.min_s = std::min(m.min_s, s);
    m.max_s = std::max(m.max_s, s);
  }
  m.mean_s = total / static_cast<double>(iters);
  return m;
}

LatencyMeasurement MeasureModelLatency(nn::Sequential& model,
                                       const core::Tensor& sample,
                                       std::int64_t iters) {
  return MeasureLatency(
      [&] { model.Forward(sample, /*training=*/false); }, iters);
}

LatencyMeasurement MeasureSubnetLatency(slim::FluidModel& model,
                                        const slim::SubnetSpec& spec,
                                        const core::Tensor& sample,
                                        std::int64_t iters) {
  return MeasureLatency(
      [&] { model.Forward(spec, sample, /*training=*/false); }, iters);
}

}  // namespace fluid::sim
