#pragma once
// The Fig. 2 scenario evaluator: Static vs Dynamic vs Fluid DyDNN under
// device failures and HA/HT modes, using the paper's methodology
// (measured compute latency + offline-measured link latency, combined
// analytically).

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "sim/models.h"
#include "slim/fluid_model.h"

namespace fluid::sim {

enum class DnnType { kStatic, kDynamic, kFluid };
enum class Mode { kHighAccuracy, kHighThroughput };
enum class Availability { kBothOnline, kOnlyMaster, kOnlyWorker };

std::string_view DnnTypeName(DnnType t);
std::string_view ModeName(Mode m);
std::string_view AvailabilityName(Availability a);

/// Everything the analytic evaluator needs, decoupled from how it was
/// obtained (measured on the host by BuildSystemProfile, or synthesised in
/// tests/ablations).
struct SystemProfile {
  // Compute latencies on the reference device, seconds per image.
  double static_front_latency_s = 0.0;  // pipeline front (Master)
  double static_back_latency_s = 0.0;   // pipeline back (Worker)
  std::int64_t static_cut_bytes = 0;    // activation across the link
  double w50_latency_s = 0.0;           // any 50 %-width standalone model
  double upper50_latency_s = 0.0;       // upper-50 % standalone model

  // Test accuracies, in [0,1].
  double acc_static = 0.0;        // static 100 % model
  double acc_dynamic_full = 0.0;  // dynamic 100 % (combined)
  double acc_dynamic_w50 = 0.0;   // dynamic 50 % standalone
  double acc_fluid_full = 0.0;    // fluid 100 % (combined, HA)
  double acc_fluid_lower50 = 0.0;
  double acc_fluid_upper50 = 0.0;

  LinkModel link;
  // Heterogeneity multipliers (1 = reference speed).
  double master_speed = 1.0;
  double worker_speed = 1.0;
  /// Pipeline throughput model for the distributed deployments.
  /// false → the paper's store-and-forward formula 1/(ta + tlink + tb);
  /// true  → overlapped steady state 1/max(ta, tlink, tb). Calibration of
  /// the paper's Fig. 2 against the Jetson device model (see
  /// sim::EmulatedJetsonCpu) is consistent with the overlapped schedule.
  bool overlapped_pipeline = false;
};

/// A Jetson-Xavier-NX-class CPU cost model calibrated so that the paper's
/// two measured anchors hold exactly for this library's FLOP counts:
/// the 50 %-width model runs at 14.4 img/s and the distributed static
/// pipeline's bottleneck stage at 11.1 img/s (paper Fig. 2). The solved
/// parameters — ~35.5 MFLOP/s sustained with ~58 ms fixed per-inference
/// overhead — reflect the framework-dispatch-dominated regime of tiny
/// models on embedded CPUs.
ComputeProfile EmulatedJetsonCpu();

struct ScenarioResult {
  bool operational = false;
  double throughput_img_per_s = 0.0;
  double accuracy = 0.0;  // 0 when down
  std::string note;       // what is deployed where
};

/// One row of the reproduced Fig. 2 table.
struct Fig2Row {
  DnnType type;
  Availability availability;
  Mode mode;
  ScenarioResult result;
};

class Fig2Evaluator {
 public:
  explicit Fig2Evaluator(SystemProfile profile);

  const SystemProfile& profile() const { return profile_; }

  /// Operating point for one (model type, availability, mode) cell.
  /// Mode only differentiates behaviour when both devices are online and
  /// the model family supports adaptation.
  ScenarioResult Evaluate(DnnType type, Availability availability,
                          Mode mode) const;

  /// Every cell of Fig. 2 (HT and HA listed separately where they differ).
  std::vector<Fig2Row> FullGrid() const;

 private:
  ScenarioResult EvalStatic(Availability a) const;
  ScenarioResult EvalDynamic(Availability a, Mode m) const;
  ScenarioResult EvalFluid(Availability a, Mode m) const;
  double DistributedPipelineThroughput() const;

  SystemProfile profile_;
};

/// Inputs for building a SystemProfile from real trained models by
/// measuring on the host CPU (the reproduction's stand-in for the Jetson).
struct ProfileInputs {
  nn::Sequential* static_model = nullptr;   // trained 100 % static model
  slim::FluidModel* dynamic_model = nullptr;  // incremental-trained
  slim::FluidModel* fluid_model = nullptr;    // nested-trained
  const data::Dataset* test_set = nullptr;
  LinkModel link;
  std::int64_t cut_stage = 2;    // static pipeline cut (after stage 2 of 3)
  std::int64_t latency_iters = 20;
};

SystemProfile BuildSystemProfile(const ProfileInputs& in);

/// Render the grid as the two aligned Fig. 2 panels (throughput, accuracy).
std::string FormatFig2Table(const std::vector<Fig2Row>& rows);

}  // namespace fluid::sim
