#pragma once
// Discrete-event simulations of the two distributed execution patterns:
//
//  * TwoStagePipeline — the Static-DNN deployment (front half on Master,
//    back half on Worker, activations over the link). Computes both the
//    paper's store-and-forward throughput (no overlap: 1/(ta+tl+tb)) and
//    the pipelined steady state (overlap: 1/max(ta,tl,tb)); the ablation
//    bench contrasts them.
//  * IndependentParallel — the Fluid HT deployment (each device runs its
//    own sub-network on its own input stream).

#include <cstdint>

#include "sim/models.h"
#include "sim/simulator.h"

namespace fluid::sim {

struct PipelineParams {
  double front_latency_s = 0.0;  // Master compute per image
  double back_latency_s = 0.0;   // Worker compute per image
  std::int64_t cut_bytes = 0;    // activation crossing the link per image
  LinkModel link;
};

struct PipelineResult {
  double throughput_img_per_s = 0.0;
  double mean_latency_s = 0.0;   // per-image end-to-end
  std::int64_t images = 0;
};

/// Paper's analytic model: each image fully traverses Master → link →
/// Worker before the next is admitted.
PipelineResult SequentialPipelineThroughput(const PipelineParams& p);

/// Event-driven simulation with stage overlap: the Master starts image
/// i+1 while the link/Worker handle image i. `images` inferences are run
/// to steady state.
PipelineResult SimulatePipelined(const PipelineParams& p,
                                 std::int64_t images = 200);

/// Fluid HT mode: `n` devices run independent models in parallel on
/// separate input streams; system throughput is the sum of device rates.
double IndependentParallelThroughput(const double* device_latencies_s,
                                     std::size_t n);

}  // namespace fluid::sim
