#include "sim/pipeline_sim.h"

#include <algorithm>
#include <vector>

#include "core/error.h"

namespace fluid::sim {

PipelineResult SequentialPipelineThroughput(const PipelineParams& p) {
  const double per_image = p.front_latency_s + p.link.TransferTime(p.cut_bytes) +
                           p.back_latency_s;
  FLUID_CHECK_MSG(per_image > 0.0, "pipeline latency must be positive");
  PipelineResult r;
  r.mean_latency_s = per_image;
  r.throughput_img_per_s = 1.0 / per_image;
  r.images = 1;
  return r;
}

PipelineResult SimulatePipelined(const PipelineParams& p, std::int64_t images) {
  FLUID_CHECK_MSG(images > 0, "SimulatePipelined needs >= 1 image");
  Simulator sim;
  const double tl = p.link.TransferTime(p.cut_bytes);

  // Resource-availability times; each image claims the stages in order.
  double front_free = 0.0, link_free = 0.0, back_free = 0.0;
  std::vector<double> start(static_cast<std::size_t>(images), 0.0);
  std::vector<double> done(static_cast<std::size_t>(images), 0.0);

  // The closed-form greedy schedule is exactly what an event simulation
  // produces for a 3-resource tandem queue; drive it through the kernel so
  // the DES is exercised and timestamps stay consistent with other sims.
  for (std::int64_t i = 0; i < images; ++i) {
    const double t0 = front_free;  // admitted as soon as the Master frees
    const double t1 = t0 + p.front_latency_s;
    const double t2 = std::max(t1, link_free) + tl;
    const double t3 = std::max(t2, back_free) + p.back_latency_s;
    front_free = t1;
    link_free = t2;
    back_free = t3;
    start[static_cast<std::size_t>(i)] = t0;
    done[static_cast<std::size_t>(i)] = t3;
    sim.ScheduleAt(t3, [] {});
  }
  sim.Run();

  PipelineResult r;
  r.images = images;
  // Steady-state throughput from the second half (skips pipeline fill).
  const std::int64_t half = images / 2;
  const double span = done[static_cast<std::size_t>(images - 1)] -
                      done[static_cast<std::size_t>(half)];
  const std::int64_t count = images - 1 - half;
  r.throughput_img_per_s =
      count > 0 && span > 0.0 ? static_cast<double>(count) / span
                              : 1.0 / done[0];
  double total_latency = 0.0;
  for (std::int64_t i = 0; i < images; ++i) {
    total_latency += done[static_cast<std::size_t>(i)] -
                     start[static_cast<std::size_t>(i)];
  }
  r.mean_latency_s = total_latency / static_cast<double>(images);
  return r;
}

double IndependentParallelThroughput(const double* device_latencies_s,
                                     std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    FLUID_CHECK_MSG(device_latencies_s[i] > 0.0,
                    "device latency must be positive");
    total += 1.0 / device_latencies_s[i];
  }
  return total;
}

}  // namespace fluid::sim
