#include "sim/simulator.h"

#include "core/error.h"

namespace fluid::sim {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  FLUID_CHECK_MSG(delay >= 0.0, "Simulator::Schedule negative delay");
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  FLUID_CHECK_MSG(when >= now_, "Simulator::ScheduleAt time in the past");
  FLUID_CHECK_MSG(fn != nullptr, "Simulator: null event callback");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t Simulator::Run(SimTime until) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    if (!Step()) break;
    ++fired;
  }
  if (until != std::numeric_limits<SimTime>::infinity() && now_ < until &&
      queue_.empty()) {
    now_ = until;
  }
  return fired;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move via const_cast is the standard
  // idiom for draining move-only payloads.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

}  // namespace fluid::sim
