#include "sim/models.h"

// Header-only structs; this TU anchors the library target.
