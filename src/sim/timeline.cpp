#include "sim/timeline.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/error.h"

namespace fluid::sim {

namespace {

Availability ToAvailability(bool master_up, bool worker_up) {
  if (master_up && worker_up) return Availability::kBothOnline;
  if (master_up) return Availability::kOnlyMaster;
  if (worker_up) return Availability::kOnlyWorker;
  // Both down: modelled as OnlyWorker-with-zero below; callers never see
  // this value directly (HandleBothDown handles it).
  return Availability::kBothOnline;
}

}  // namespace

TimelineSummary SimulateTimeline(const Fig2Evaluator& evaluator, DnnType type,
                                 Mode preferred_mode,
                                 std::vector<AvailabilityEvent> events,
                                 SimTime horizon) {
  FLUID_CHECK_MSG(horizon > 0.0, "SimulateTimeline horizon must be positive");
  std::sort(events.begin(), events.end(),
            [](const AvailabilityEvent& a, const AvailabilityEvent& b) {
              return a.time < b.time;
            });

  Simulator sim;
  bool master_up = true, worker_up = true;
  TimelineSummary summary;
  SimTime segment_start = 0.0;

  const auto evaluate_now = [&]() -> ScenarioResult {
    if (!master_up && !worker_up) {
      return {};  // nothing online: non-operational
    }
    return evaluator.Evaluate(type, ToAvailability(master_up, worker_up),
                              preferred_mode);
  };

  ScenarioResult current = evaluate_now();

  const auto close_segment = [&](SimTime end) {
    if (end <= segment_start) return;
    TimelineSegment seg;
    seg.begin = segment_start;
    seg.end = end;
    seg.availability = ToAvailability(master_up, worker_up);
    seg.operating_point = current;
    seg.images_served =
        current.throughput_img_per_s * (end - segment_start);
    summary.total_images += seg.images_served;
    if (!current.operational) summary.downtime_s += end - segment_start;
    summary.segments.push_back(std::move(seg));
    segment_start = end;
  };

  for (const auto& ev : events) {
    if (ev.time < 0.0 || ev.time >= horizon) continue;
    sim.ScheduleAt(ev.time, [&, ev] {
      close_segment(ev.time);
      if (ev.device == DeviceId::kMaster) {
        master_up = ev.online;
      } else {
        worker_up = ev.online;
      }
      current = evaluate_now();
    });
  }
  sim.Run(horizon);
  close_segment(horizon);

  summary.mean_throughput = summary.total_images / horizon;
  double acc_weighted = 0.0;
  for (const auto& seg : summary.segments) {
    acc_weighted += seg.operating_point.accuracy * seg.images_served;
  }
  summary.mean_accuracy =
      summary.total_images > 0.0 ? acc_weighted / summary.total_images : 0.0;
  return summary;
}

std::string FormatTimeline(const TimelineSummary& summary) {
  std::ostringstream os;
  os << std::left << std::setw(16) << "t [s]" << std::setw(15) << "devices"
     << std::right << std::setw(9) << "img/s" << std::setw(9) << "acc %"
     << "  " << std::left << "deployment\n";
  os << std::string(72, '-') << "\n";
  for (const auto& seg : summary.segments) {
    std::ostringstream span;
    span << std::fixed << std::setprecision(1) << seg.begin << "-" << seg.end;
    os << std::left << std::setw(16) << span.str() << std::setw(15)
       << (seg.operating_point.operational
               ? AvailabilityName(seg.availability)
               : std::string_view("ALL DOWN"))
       << std::right << std::fixed << std::setprecision(1) << std::setw(9)
       << seg.operating_point.throughput_img_per_s << std::setw(9)
       << seg.operating_point.accuracy * 100.0 << "  " << std::left
       << seg.operating_point.note << "\n";
  }
  os << std::string(72, '-') << "\n";
  os << std::fixed << std::setprecision(2) << "mean throughput "
     << summary.mean_throughput << " img/s, mean accuracy "
     << summary.mean_accuracy * 100.0 << " %, downtime " << summary.downtime_s
     << " s\n";
  return os.str();
}

}  // namespace fluid::sim
