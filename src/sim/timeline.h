#pragma once
// Failure/recovery timeline simulation: how each model family's operating
// point evolves as devices drop and return (the dynamic view of Fig. 1's
// reliability matrix).

#include <string>
#include <vector>

#include "sim/scenario.h"
#include "sim/simulator.h"

namespace fluid::sim {

enum class DeviceId { kMaster, kWorker };

/// A scheduled availability change.
struct AvailabilityEvent {
  SimTime time = 0.0;
  DeviceId device = DeviceId::kMaster;
  bool online = true;
};

/// One constant-operating-point segment of the timeline.
struct TimelineSegment {
  SimTime begin = 0.0;
  SimTime end = 0.0;
  Availability availability = Availability::kBothOnline;
  ScenarioResult operating_point;
  /// Images served during the segment at the operating throughput.
  double images_served = 0.0;
};

struct TimelineSummary {
  std::vector<TimelineSegment> segments;
  double total_images = 0.0;
  double downtime_s = 0.0;       // time spent non-operational
  double mean_throughput = 0.0;  // images / horizon
  /// Image-weighted accuracy over the horizon.
  double mean_accuracy = 0.0;
};

/// Replays availability events through the DES kernel and evaluates the
/// (model type, preferred mode) policy at every change. Events outside
/// [0, horizon) are ignored; both devices start online.
TimelineSummary SimulateTimeline(const Fig2Evaluator& evaluator, DnnType type,
                                 Mode preferred_mode,
                                 std::vector<AvailabilityEvent> events,
                                 SimTime horizon);

/// Render segments as a text chart for examples/benches.
std::string FormatTimeline(const TimelineSummary& summary);

}  // namespace fluid::sim
