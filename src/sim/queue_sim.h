#pragma once
// Open-loop queueing simulation of an inference service: Poisson arrivals
// into k deterministic servers with one shared FIFO queue, driven through
// the DES kernel.
//
// The Fig. 2 panels report capacity; this answers the operator's follow-up
// question — what *latency* each mode delivers at a given offered load,
// and where the saturation knee sits. HA is one logical server (the
// pipeline admits one image at a time); HT is two independent servers.

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace fluid::sim {

struct QueueSimOptions {
  double arrival_rate = 10.0;           // offered load, img/s (Poisson)
  std::vector<double> service_times_s;  // one entry per server
  std::int64_t arrivals = 2000;
  std::uint64_t seed = 1;
  /// Drop requests once this many are waiting (0 = unbounded queue).
  std::int64_t queue_capacity = 0;
};

struct QueueSimResult {
  double throughput_img_per_s = 0.0;  // completed / span
  double mean_sojourn_s = 0.0;        // queueing + service
  double p50_sojourn_s = 0.0;
  double p99_sojourn_s = 0.0;
  double mean_queue_depth = 0.0;      // time-averaged
  std::int64_t completed = 0;
  std::int64_t dropped = 0;
  double utilization = 0.0;           // busy-server-time / (servers · span)
};

QueueSimResult SimulateQueue(const QueueSimOptions& options);

}  // namespace fluid::sim
