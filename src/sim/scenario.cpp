#include "sim/scenario.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/error.h"
#include "sim/latency.h"
#include "train/model_zoo.h"
#include "train/trainer_common.h"

namespace fluid::sim {

std::string_view DnnTypeName(DnnType t) {
  switch (t) {
    case DnnType::kStatic: return "Static";
    case DnnType::kDynamic: return "Dynamic";
    case DnnType::kFluid: return "Fluid";
  }
  return "?";
}

std::string_view ModeName(Mode m) {
  return m == Mode::kHighAccuracy ? "HA" : "HT";
}

std::string_view AvailabilityName(Availability a) {
  switch (a) {
    case Availability::kBothOnline: return "Master+Worker";
    case Availability::kOnlyMaster: return "Only Master";
    case Availability::kOnlyWorker: return "Only Worker";
  }
  return "?";
}

Fig2Evaluator::Fig2Evaluator(SystemProfile profile)
    : profile_(std::move(profile)) {
  FLUID_CHECK_MSG(profile_.master_speed > 0 && profile_.worker_speed > 0,
                  "device speeds must be positive");
}

ComputeProfile EmulatedJetsonCpu() {
  // Solved from the two Fig. 2 anchors (see header): with
  // f(50%) = 396,576 FLOP and f(pipeline front) = 1,128,960 FLOP,
  //   o + f50/r     = 1/14.4 s
  //   o + f_front/r = 1/11.1 s
  // gives r = 35.47 MFLOP/s and o = 58.26 ms.
  return ComputeProfile{35.47e6, 0.058263, 1.0};
}

double Fig2Evaluator::DistributedPipelineThroughput() const {
  const double ta = profile_.static_front_latency_s / profile_.master_speed;
  const double tl = profile_.link.TransferTime(profile_.static_cut_bytes);
  const double tb = profile_.static_back_latency_s / profile_.worker_speed;
  if (profile_.overlapped_pipeline) {
    // Overlapped steady state: the slowest stage gates admission.
    return 1.0 / std::max({ta, tl, tb});
  }
  // Paper §III formula: store-and-forward — the sum of computation and
  // communication latency bounds the system.
  return 1.0 / (ta + tl + tb);
}

ScenarioResult Fig2Evaluator::EvalStatic(Availability a) const {
  ScenarioResult r;
  if (a != Availability::kBothOnline) {
    // Either half of the weights alone cannot produce a prediction.
    r.note = "static half-model cannot run standalone";
    return r;
  }
  r.operational = true;
  r.throughput_img_per_s = DistributedPipelineThroughput();
  r.accuracy = profile_.acc_static;
  r.note = "layer pipeline: front on Master, back on Worker";
  return r;
}

ScenarioResult Fig2Evaluator::EvalDynamic(Availability a, Mode m) const {
  ScenarioResult r;
  switch (a) {
    case Availability::kBothOnline:
      r.operational = true;
      if (m == Mode::kHighAccuracy) {
        // Full-width model distributed exactly like the Static DNN.
        r.throughput_img_per_s = DistributedPipelineThroughput();
        r.accuracy = profile_.acc_dynamic_full;
        r.note = "100% model as layer pipeline";
      } else {
        // Adapt: 50% sub-network entirely on the Master, no link cost;
        // the upper weights cannot run alone, so the Worker idles.
        r.throughput_img_per_s =
            profile_.master_speed / profile_.w50_latency_s;
        r.accuracy = profile_.acc_dynamic_w50;
        r.note = "50% model local on Master; Worker idle";
      }
      return r;
    case Availability::kOnlyMaster:
      r.operational = true;
      r.throughput_img_per_s = profile_.master_speed / profile_.w50_latency_s;
      r.accuracy = profile_.acc_dynamic_w50;
      r.note = "50% model survives on Master";
      return r;
    case Availability::kOnlyWorker:
      // The upper 50 % weights depend on the lower 50 % (lost with the
      // Master) — the defining failure of Dynamic DNNs (paper Fig. 1c).
      r.note = "upper weights depend on lost lower 50%";
      return r;
  }
  return r;
}

ScenarioResult Fig2Evaluator::EvalFluid(Availability a, Mode m) const {
  ScenarioResult r;
  const double master_rate = profile_.master_speed / profile_.w50_latency_s;
  const double worker_rate =
      profile_.worker_speed / profile_.upper50_latency_s;
  switch (a) {
    case Availability::kBothOnline:
      r.operational = true;
      if (m == Mode::kHighAccuracy) {
        // "Replicate the distributed Static DNNs" (paper §III): redeploy
        // the combined 100% model as the same layer pipeline.
        r.throughput_img_per_s = DistributedPipelineThroughput();
        r.accuracy = profile_.acc_fluid_full;
        r.note = "combined 100% model as layer pipeline";
      } else {
        // Two independent sub-networks on separate input streams.
        r.throughput_img_per_s = master_rate + worker_rate;
        // Each stream classifies with its own sub-network; the system
        // accuracy is the rate-weighted mix of the two.
        r.accuracy = (master_rate * profile_.acc_fluid_lower50 +
                      worker_rate * profile_.acc_fluid_upper50) /
                     (master_rate + worker_rate);
        r.note = "lower50 on Master || upper50 on Worker";
      }
      return r;
    case Availability::kOnlyMaster:
      r.operational = true;
      r.throughput_img_per_s = master_rate;
      r.accuracy = profile_.acc_fluid_lower50;
      r.note = "lower 50% survives on Master";
      return r;
    case Availability::kOnlyWorker:
      r.operational = true;
      r.throughput_img_per_s = worker_rate;
      r.accuracy = profile_.acc_fluid_upper50;
      r.note = "upper 50% survives on Worker (independent weights)";
      return r;
  }
  return r;
}

ScenarioResult Fig2Evaluator::Evaluate(DnnType type, Availability availability,
                                       Mode mode) const {
  switch (type) {
    case DnnType::kStatic: return EvalStatic(availability);
    case DnnType::kDynamic: return EvalDynamic(availability, mode);
    case DnnType::kFluid: return EvalFluid(availability, mode);
  }
  return {};
}

std::vector<Fig2Row> Fig2Evaluator::FullGrid() const {
  std::vector<Fig2Row> rows;
  for (const DnnType t :
       {DnnType::kStatic, DnnType::kDynamic, DnnType::kFluid}) {
    for (const Availability a :
         {Availability::kBothOnline, Availability::kOnlyMaster,
          Availability::kOnlyWorker}) {
      if (a == Availability::kBothOnline && t != DnnType::kStatic) {
        rows.push_back({t, a, Mode::kHighAccuracy,
                        Evaluate(t, a, Mode::kHighAccuracy)});
        rows.push_back({t, a, Mode::kHighThroughput,
                        Evaluate(t, a, Mode::kHighThroughput)});
      } else {
        rows.push_back({t, a, Mode::kHighAccuracy,
                        Evaluate(t, a, Mode::kHighAccuracy)});
      }
    }
  }
  return rows;
}

SystemProfile BuildSystemProfile(const ProfileInputs& in) {
  FLUID_CHECK_MSG(in.static_model && in.dynamic_model && in.fluid_model &&
                      in.test_set,
                  "BuildSystemProfile: all models and test set required");
  SystemProfile p;
  p.link = in.link;

  const auto& cfg = in.fluid_model->config();
  const auto& family = in.fluid_model->family();
  core::Tensor sample({1, cfg.image_channels, cfg.image_size, cfg.image_size});

  // --- Static pipeline halves ------------------------------------------
  auto halves = train::SplitConvNet(cfg, family.max_width(), *in.static_model,
                                    in.cut_stage);
  p.static_cut_bytes = halves.cut_bytes_per_sample;
  p.static_front_latency_s =
      MeasureModelLatency(halves.front, sample, in.latency_iters).mean_s;
  core::Tensor mid = halves.front.Forward(sample, false);
  p.static_back_latency_s =
      MeasureModelLatency(halves.back, mid, in.latency_iters).mean_s;

  // --- 50 %-width standalone models ------------------------------------
  const auto spec_l50 = family.MasterResident();
  const auto spec_u50 = family.WorkerResident();
  auto lower50 = in.fluid_model->ExtractSubnet(spec_l50);
  auto upper50 = in.fluid_model->ExtractSubnet(spec_u50);
  p.w50_latency_s =
      MeasureModelLatency(lower50, sample, in.latency_iters).mean_s;
  p.upper50_latency_s =
      MeasureModelLatency(upper50, sample, in.latency_iters).mean_s;

  // --- Accuracies -------------------------------------------------------
  const auto combined = family.Combined();
  p.acc_static = train::EvaluateModel(*in.static_model, *in.test_set).accuracy;
  p.acc_dynamic_full =
      train::EvaluateSubnet(*in.dynamic_model, combined, *in.test_set).accuracy;
  p.acc_dynamic_w50 =
      train::EvaluateSubnet(*in.dynamic_model, spec_l50, *in.test_set).accuracy;
  p.acc_fluid_full =
      train::EvaluateSubnet(*in.fluid_model, combined, *in.test_set).accuracy;
  p.acc_fluid_lower50 =
      train::EvaluateSubnet(*in.fluid_model, spec_l50, *in.test_set).accuracy;
  p.acc_fluid_upper50 =
      train::EvaluateSubnet(*in.fluid_model, spec_u50, *in.test_set).accuracy;
  return p;
}

std::string FormatFig2Table(const std::vector<Fig2Row>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(9) << "Model" << std::setw(15) << "Devices"
     << std::setw(5) << "Mode" << std::right << std::setw(12) << "img/s"
     << std::setw(10) << "acc %" << "  " << std::left << "deployment\n";
  os << std::string(78, '-') << "\n";
  for (const auto& row : rows) {
    os << std::left << std::setw(9) << DnnTypeName(row.type) << std::setw(15)
       << AvailabilityName(row.availability) << std::setw(5)
       << (row.availability == Availability::kBothOnline &&
                   row.type != DnnType::kStatic
               ? ModeName(row.mode)
               : "-")
       << std::right << std::fixed << std::setprecision(1) << std::setw(12)
       << row.result.throughput_img_per_s << std::setw(10)
       << row.result.accuracy * 100.0 << "  " << std::left << row.result.note
       << "\n";
  }
  return os.str();
}

}  // namespace fluid::sim
