#pragma once
// Wall-clock latency measurement of real model code on the host CPU —
// the "measured computation latency" half of the paper's methodology.

#include <cstdint>
#include <functional>

#include "core/tensor.h"
#include "nn/sequential.h"
#include "slim/fluid_model.h"

namespace fluid::sim {

struct LatencyMeasurement {
  double mean_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  std::int64_t iterations = 0;
};

/// Time `fn` (one inference) `iters` times after `warmup` unmeasured runs.
LatencyMeasurement MeasureLatency(const std::function<void()>& fn,
                                  std::int64_t iters = 30,
                                  std::int64_t warmup = 5);

/// Single-image inference latency of a standalone model.
LatencyMeasurement MeasureModelLatency(nn::Sequential& model,
                                       const core::Tensor& sample,
                                       std::int64_t iters = 30);

/// Single-image inference latency of a sub-network slice.
LatencyMeasurement MeasureSubnetLatency(slim::FluidModel& model,
                                        const slim::SubnetSpec& spec,
                                        const core::Tensor& sample,
                                        std::int64_t iters = 30);

}  // namespace fluid::sim
