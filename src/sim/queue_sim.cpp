#include "sim/queue_sim.h"
#include <functional>

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/error.h"
#include "core/rng.h"

namespace fluid::sim {

QueueSimResult SimulateQueue(const QueueSimOptions& options) {
  FLUID_CHECK_MSG(options.arrival_rate > 0.0,
                  "SimulateQueue: arrival rate must be positive");
  FLUID_CHECK_MSG(!options.service_times_s.empty(),
                  "SimulateQueue: need at least one server");
  for (const double s : options.service_times_s) {
    FLUID_CHECK_MSG(s > 0.0, "SimulateQueue: service time must be positive");
  }
  FLUID_CHECK_MSG(options.arrivals > 0, "SimulateQueue: need arrivals");

  Simulator sim;
  core::Rng rng(options.seed);
  const std::size_t servers = options.service_times_s.size();

  struct State {
    std::deque<double> queue;            // arrival timestamps of waiting jobs
    std::vector<bool> busy;
    std::vector<double> busy_time;
    std::vector<double> sojourns;
    std::int64_t arrived = 0;
    std::int64_t completed = 0;
    std::int64_t dropped = 0;
    double queue_area = 0.0;             // ∫ depth dt
    double last_event_time = 0.0;
    double last_completion = 0.0;
  } st;
  st.busy.assign(servers, false);
  st.busy_time.assign(servers, 0.0);

  const auto account_queue = [&](double now) {
    st.queue_area += static_cast<double>(st.queue.size()) *
                     (now - st.last_event_time);
    st.last_event_time = now;
  };

  // Start service on server `s` for a job that arrived at `arrived_at`.
  std::function<void(std::size_t, double)> start_service =
      [&](std::size_t server, double arrived_at) {
        st.busy[server] = true;
        const double service = options.service_times_s[server];
        st.busy_time[server] += service;
        sim.Schedule(service, [&, server, arrived_at] {
          const double now = sim.Now();
          account_queue(now);
          st.sojourns.push_back(now - arrived_at);
          ++st.completed;
          st.last_completion = now;
          if (!st.queue.empty()) {
            const double next_arrival = st.queue.front();
            st.queue.pop_front();
            start_service(server, next_arrival);
          } else {
            st.busy[server] = false;
          }
        });
      };

  // Poisson arrival process.
  std::function<void()> arrive = [&] {
    const double now = sim.Now();
    account_queue(now);
    ++st.arrived;
    // Dispatch to any idle server, else queue (or drop).
    bool dispatched = false;
    for (std::size_t server = 0; server < servers && !dispatched; ++server) {
      if (!st.busy[server]) {
        start_service(server, now);
        dispatched = true;
      }
    }
    if (!dispatched) {
      if (options.queue_capacity > 0 &&
          static_cast<std::int64_t>(st.queue.size()) >=
              options.queue_capacity) {
        ++st.dropped;
      } else {
        st.queue.push_back(now);
      }
    }
    if (st.arrived < options.arrivals) {
      const double gap = -std::log(1.0 - rng.Uniform()) / options.arrival_rate;
      sim.Schedule(gap, arrive);
    }
  };
  sim.Schedule(0.0, arrive);
  sim.Run();

  QueueSimResult result;
  result.completed = st.completed;
  result.dropped = st.dropped;
  const double span = st.last_completion;
  result.throughput_img_per_s =
      span > 0.0 ? static_cast<double>(st.completed) / span : 0.0;
  if (!st.sojourns.empty()) {
    double total = 0.0;
    for (const double s : st.sojourns) total += s;
    result.mean_sojourn_s = total / static_cast<double>(st.sojourns.size());
    std::sort(st.sojourns.begin(), st.sojourns.end());
    const auto pct = [&](double q) {
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(st.sojourns.size() - 1));
      return st.sojourns[idx];
    };
    result.p50_sojourn_s = pct(0.50);
    result.p99_sojourn_s = pct(0.99);
  }
  result.mean_queue_depth = span > 0.0 ? st.queue_area / span : 0.0;
  double busy_total = 0.0;
  for (const double b : st.busy_time) busy_total += b;
  result.utilization =
      span > 0.0 ? busy_total / (static_cast<double>(servers) * span) : 0.0;
  return result;
}

}  // namespace fluid::sim
