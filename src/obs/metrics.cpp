#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>

namespace fluid::obs {

namespace detail {

std::size_t ThisThreadStripe() {
  // Hash of the thread id, computed once per thread. thread_local keeps
  // the hot path to one TLS read.
  thread_local const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricStripes;
  return stripe;
}

}  // namespace detail

// ---- Counter ----------------------------------------------------------------

std::int64_t Counter::Value() const {
  std::int64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// ---- Histogram --------------------------------------------------------------

struct Histogram::Shard {
  std::atomic<std::int64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<std::int64_t> max_u{0};
  std::atomic<std::int64_t> buckets[kBuckets] = {};
};

Histogram::Histogram() : shards_(new Shard[kMetricStripes]) {}
Histogram::~Histogram() = default;
Histogram::Histogram(Histogram&&) noexcept = default;
Histogram& Histogram::operator=(Histogram&&) noexcept = default;

std::size_t Histogram::BucketIndex(std::int64_t u) {
  if (u < 2 * kSub) return static_cast<std::size_t>(u);
  const int b = std::bit_width(static_cast<std::uint64_t>(u));
  const int shift = b - (kSubBits + 1);
  std::size_t idx = static_cast<std::size_t>(2 * kSub) +
                    static_cast<std::size_t>(b - (kSubBits + 2)) *
                        static_cast<std::size_t>(kSub) +
                    static_cast<std::size_t>((u >> shift) - kSub);
  if (idx >= kBuckets) idx = kBuckets - 1;
  return idx;
}

void Histogram::BucketBounds(std::size_t idx, std::int64_t& lo,
                             std::int64_t& hi) {
  if (idx < static_cast<std::size_t>(2 * kSub)) {
    lo = static_cast<std::int64_t>(idx);
    hi = lo + 1;
    return;
  }
  const std::size_t oct = (idx - 2 * kSub) / kSub;
  const std::size_t off = (idx - 2 * kSub) % kSub;
  const int shift = static_cast<int>(oct) + 1;
  lo = (kSub + static_cast<std::int64_t>(off)) << shift;
  hi = lo + (std::int64_t{1} << shift);
}

void Histogram::Record(double value) {
  std::int64_t u = 0;
  if (value > 0.0 && std::isfinite(value)) {
    u = static_cast<std::int64_t>(std::llround(value * kScale));
    if (u < 0) u = 0;
  }
  Shard& s = shards_[detail::ThisThreadStripe()];
  s.buckets[BucketIndex(u)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::int64_t prev = s.max_u.load(std::memory_order_relaxed);
  while (u > prev &&
         !s.max_u.compare_exchange_weak(prev, u, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  out.buckets.assign(kBuckets, 0);
  std::int64_t max_u = 0;
  for (std::size_t sh = 0; sh < kMetricStripes; ++sh) {
    const Shard& s = shards_[sh];
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    max_u = std::max(max_u, s.max_u.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.max = static_cast<double>(max_u) / kScale;
  return out;
}

std::int64_t Histogram::Count() const {
  std::int64_t total = 0;
  for (std::size_t sh = 0; sh < kMetricStripes; ++sh) {
    total += shards_[sh].count.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (std::size_t sh = 0; sh < kMetricStripes; ++sh) {
    Shard& s = shards_[sh];
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.max_u.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), nearest-rank with interpolation
  // inside the winning bucket.
  const double target = q * static_cast<double>(count - 1) + 1.0;
  double seen = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double n = static_cast<double>(buckets[b]);
    if (n <= 0.0) continue;
    if (seen + n >= target) {
      std::int64_t lo = 0, hi = 0;
      BucketBounds(b, lo, hi);
      const double frac = (target - seen) / n;  // (0, 1]
      const double u = static_cast<double>(lo) +
                       (static_cast<double>(hi - lo)) * frac;
      return u / kScale;
    }
    seen += n;
  }
  return max;
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // leaked: outlives exit
  return *g;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

// Split "name{labels}" so derived series (histogram _count/_sum, quantile
// labels) keep valid Prometheus syntax.
void SplitSeries(const std::string& series, std::string& base,
                 std::string& labels) {
  const auto brace = series.find('{');
  if (brace == std::string::npos) {
    base = series;
    labels.clear();
    return;
  }
  base = series.substr(0, brace);
  labels = series.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
}

std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = {}) {
  std::string all = labels;
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  if (all.empty()) return base;
  return base + "{" + all + "}";
}

void AppendNumber(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name;
    out += " ";
    out += std::to_string(c->Value());
    out += "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name;
    out += " ";
    AppendNumber(out, g->Value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto snap = h->Snap();
    std::string base, labels;
    SplitSeries(name, base, labels);
    for (const double q : {0.5, 0.9, 0.99}) {
      char qlabel[32];
      std::snprintf(qlabel, sizeof(qlabel), "quantile=\"%g\"", q);
      out += WithLabels(base, labels, qlabel);
      out += " ";
      AppendNumber(out, snap.Quantile(q));
      out += "\n";
    }
    out += WithLabels(base + "_count", labels);
    out += " ";
    out += std::to_string(snap.count);
    out += "\n";
    out += WithLabels(base + "_sum", labels);
    out += " ";
    AppendNumber(out, snap.sum);
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::DumpMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + JsonEscape(name) + "\": " + std::to_string(c->Value());
  }
  out += "\n },\n \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + JsonEscape(name) + "\": ";
    AppendNumber(out, g->Value());
  }
  out += "\n },\n \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const auto snap = h->Snap();
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(snap.count) + ", \"sum\": ";
    AppendNumber(out, snap.sum);
    out += ", \"mean\": ";
    AppendNumber(out, snap.Mean());
    out += ", \"max\": ";
    AppendNumber(out, snap.max);
    out += ", \"p50\": ";
    AppendNumber(out, snap.Quantile(0.5));
    out += ", \"p90\": ";
    AppendNumber(out, snap.Quantile(0.9));
    out += ", \"p99\": ";
    AppendNumber(out, snap.Quantile(0.99));
    out += "}";
  }
  out += "\n }\n}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace fluid::obs
