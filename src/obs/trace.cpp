#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>

namespace fluid::obs {

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

// splitmix64: turns the sequential trace counter into well-spread ids.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Tracer::Tracer(std::size_t ring_slots) : ring_(ring_slots) {}

Tracer& Tracer::Global() {
  static Tracer* g = new Tracer();  // leaked: serving threads may outlive exit
  return *g;
}

std::uint64_t Tracer::MaybeStartTrace() {
  const int n = sample_every_.load(std::memory_order_relaxed);
  if (n <= 0) return 0;
  const std::uint64_t tick = sample_tick_.fetch_add(1, std::memory_order_relaxed);
  if (tick % static_cast<std::uint64_t>(n) != 0) return 0;
  const std::uint64_t id = Mix(next_id_.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;
}

void Tracer::Record(std::uint64_t trace_id, std::uint64_t span_id,
                    std::uint64_t parent_id, const char* name,
                    std::string_view node, std::int64_t start_us,
                    std::int64_t dur_us) {
  if (trace_id == 0 || ring_.empty()) return;
  Span s;
  s.trace_id = trace_id;
  s.span_id = span_id;
  s.parent_id = parent_id;
  s.name = name;
  const std::size_t n = std::min(node.size(), sizeof(s.node) - 1);
  std::memcpy(s.node, node.data(), n);
  s.node[n] = '\0';
  s.start_us = start_us;
  s.dur_us = dur_us;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_slot_] = s;
  next_slot_ = (next_slot_ + 1) % ring_.size();
  ++recorded_;
}

std::vector<Span> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (const Span& s : ring_) {
    if (s.trace_id != 0) out.push_back(s);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Span& s : ring_) s = Span{};
  next_slot_ = 0;
  recorded_ = 0;
}

std::int64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::string Tracer::DumpJson() const {
  std::map<std::uint64_t, std::vector<Span>> by_trace;
  for (const Span& s : Snapshot()) by_trace[s.trace_id].push_back(s);
  std::string out = "{\"traces\": [";
  bool first_trace = true;
  for (auto& [trace_id, spans] : by_trace) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) {
                return a.start_us != b.start_us ? a.start_us < b.start_us
                                                : a.span_id < b.span_id;
              });
    out += first_trace ? "\n" : ",\n";
    first_trace = false;
    out += " {\"trace_id\": \"" + std::to_string(trace_id) +
           "\", \"spans\": [";
    bool first_span = true;
    for (const Span& s : spans) {
      out += first_span ? "\n" : ",\n";
      first_span = false;
      out += "  {\"name\": \"" + std::string(s.name) + "\", \"node\": \"" +
             std::string(s.node) + "\", \"span\": " +
             std::to_string(s.span_id) + ", \"parent\": " +
             std::to_string(s.parent_id) + ", \"start_us\": " +
             std::to_string(s.start_us) + ", \"dur_us\": " +
             std::to_string(s.dur_us) + "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace fluid::obs
