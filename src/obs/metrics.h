#pragma once
// Lock-light process-wide metrics registry: counters, gauges and
// log-linear histograms, all safe to update from any serving thread
// without a lock on the hot path.
//
// Write path: every metric is striped into cache-line-padded cells; a
// writing thread hashes its id to one stripe and bumps a relaxed atomic
// there, so two serving threads never contend on one cache line. Read
// path (`PrometheusText`, `DumpMetrics`, `Snap`) merges the stripes —
// scrapes are rare and pay the whole cost.
//
// Histograms are log-linear (HdrHistogram-style): 32 linear sub-buckets
// per power-of-two octave over a fixed micro-unit grid, giving ≤ ~3 %
// relative quantile error with a fixed 1920-bucket footprint and O(1)
// allocation-free recording. `bench/fig2_throughput` and the serving
// runtime report percentiles from this one implementation.
//
// Naming scheme (see docs/observability.md): series are registered under
// their full Prometheus identity including labels, e.g.
//   registry.GetHistogram("fluid_sched_queue_wait_ms{class=\"high\"}")
// so the registry itself stays a flat string → metric map.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fluid::obs {

/// Stripes per metric. Eight padded cells cover the handful of serving
/// threads a node runs without false sharing.
inline constexpr std::size_t kMetricStripes = 8;

namespace detail {

struct alignas(64) PaddedCell {
  std::atomic<std::int64_t> v{0};
};

/// Stable stripe index for the calling thread.
std::size_t ThisThreadStripe();

}  // namespace detail

/// Monotonic counter. Add is wait-free on the caller's stripe.
class Counter {
 public:
  void Add(std::int64_t d = 1) {
    cells_[detail::ThisThreadStripe()].v.fetch_add(d,
                                                   std::memory_order_relaxed);
  }
  std::int64_t Value() const;
  void Reset();

 private:
  detail::PaddedCell cells_[kMetricStripes];
};

/// Last-writer-wins gauge (double so occupancy/rates fit).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-linear histogram of non-negative doubles (latencies in ms by
/// convention; sub-millisecond precision is kept via a 1/1024 internal
/// unit). Record never allocates; quantiles come from a merged snapshot.
class Histogram {
 public:
  /// 32 linear sub-buckets per octave → worst-case quantile error 1/32.
  static constexpr int kSubBits = 5;
  static constexpr std::int64_t kSub = std::int64_t{1} << kSubBits;
  static constexpr std::size_t kBuckets = 1920;
  /// Internal micro-unit: recorded values are scaled by 1024 and rounded,
  /// so a histogram of milliseconds resolves ~1 µs.
  static constexpr double kScale = 1024.0;

  Histogram();
  ~Histogram();
  // Out of line: the defaulted bodies need the complete Shard type.
  Histogram(Histogram&&) noexcept;
  Histogram& operator=(Histogram&&) noexcept;

  void Record(double value);

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::vector<std::int64_t> buckets;  // merged, kBuckets wide

    /// Quantile in original units, linearly interpolated inside the
    /// winning bucket. q in [0,1]; returns 0 when empty.
    double Quantile(double q) const;
    double Mean() const { return count > 0 ? sum / count : 0.0; }
  };
  Snapshot Snap() const;
  std::int64_t Count() const;
  double Quantile(double q) const { return Snap().Quantile(q); }
  void Reset();

  /// Bucket index for a value already in internal units (exposed for
  /// tests pinning the bucket math).
  static std::size_t BucketIndex(std::int64_t u);
  /// [lo, hi) of a bucket in internal units.
  static void BucketBounds(std::size_t idx, std::int64_t& lo, std::int64_t& hi);

 private:
  struct Shard;
  std::unique_ptr<Shard[]> shards_;  // kMetricStripes shards
};

/// The process-wide registry. Get* registers on first use (one mutex
/// acquisition — callers cache the returned reference) and returns a
/// reference stable for the registry's lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Lookup without registering; nullptr when the series does not exist.
  const Histogram* FindHistogram(const std::string& name) const;

  /// Prometheus text exposition of every series (counters as _total-style
  /// plain samples, histograms as quantile/_count/_sum summaries).
  std::string PrometheusText() const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, max, p50, p90, p99}}}.
  std::string DumpMetrics() const;

  /// Zero every registered series (bench section boundaries, tests).
  /// References handed out stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fluid::obs
