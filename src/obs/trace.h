#pragma once
// Distributed request tracing: a per-request trace id plus span records
// (router dispatch, admission, READY wait, chunk serve, wire send/recv,
// worker service, reply) collected into a fixed-size ring buffer.
//
// Sampling is 1-in-N at trace creation (`MaybeStartTrace`): a sampled-out
// request costs one relaxed counter bump and nothing else — no clock
// reads, no ring writes, no allocations. A sampled request's spans are
// PODs copied into a preallocated ring (no per-span heap), so tracing is
// compatible with the serve path's pinned allocation budgets
// (tests/dist/serve_alloc_test.cpp).
//
// Across nodes the context rides the wire v6 trace block
// (dist/message.h): the master stamps sampled kInfer frames with
// (trace_id, parent span, send timestamp); the worker records its own
// service span under the same trace id and echoes the block on the
// reply with its service duration filled in, which lets the master
// separate pure link time from worker compute. Span names are static
// strings; node labels are short inline char arrays.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fluid::obs {

/// Steady-clock microseconds (monotonic, process-relative). All span
/// timestamps use this clock; cross-process spans are only comparable
/// within one process's dump.
std::int64_t NowUs();

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  const char* name = "";  // must point at static storage
  char node[16] = {};     // fleet node label ("router", "m0", "w1")
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t ring_slots = 8192);
  static Tracer& Global();

  /// 1-in-N sampling; 0 (the default) disables tracing entirely.
  void SetSampleEvery(int n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  int sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Returns a fresh nonzero trace id for 1 request in N, 0 otherwise.
  std::uint64_t MaybeStartTrace();

  /// Fresh process-unique span id (nonzero).
  std::uint64_t NewSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copy one span into the ring. No-op when trace_id == 0. Never
  /// allocates; wraps over the oldest spans when full.
  void Record(std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent_id, const char* name,
              std::string_view node, std::int64_t start_us,
              std::int64_t dur_us);

  /// Stable copy of every live span (unordered).
  std::vector<Span> Snapshot() const;

  /// JSON timelines: {"traces": [{"trace_id": ..., "spans": [...]}]},
  /// spans sorted by start time within each trace.
  std::string DumpJson() const;

  void Clear();
  std::int64_t recorded() const;  // total spans ever recorded

 private:
  std::atomic<int> sample_every_{0};
  std::atomic<std::uint64_t> sample_tick_{0};
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;  // ring writes are a tiny POD copy under this
  std::vector<Span> ring_;
  std::size_t next_slot_ = 0;
  std::int64_t recorded_ = 0;
};

/// RAII span: stamps start in the constructor, records on destruction.
/// Inert (and free of clock reads) when trace_id == 0.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::uint64_t trace_id, std::uint64_t parent_id,
             const char* name, std::string_view node)
      : tracer_(tracer),
        trace_id_(trace_id),
        parent_id_(parent_id),
        span_id_(trace_id != 0 ? tracer.NewSpanId() : 0),
        name_(name),
        start_us_(trace_id != 0 ? NowUs() : 0) {
    const std::size_t n = std::min(node.size(), sizeof(node_) - 1);
    std::memcpy(node_, node.data(), n);
    node_[n] = '\0';
  }
  ~ScopedSpan() {
    if (trace_id_ != 0) {
      tracer_.Record(trace_id_, span_id_, parent_id_, name_, node_, start_us_,
                     NowUs() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return span_id_; }

 private:
  Tracer& tracer_;
  const std::uint64_t trace_id_;
  const std::uint64_t parent_id_;
  const std::uint64_t span_id_;
  const char* name_;
  char node_[16] = {};
  const std::int64_t start_us_;
};

}  // namespace fluid::obs
