#pragma once
// Persistent thread-pool runtime for the compute hot path.
//
// Design (what callers may rely on):
//  * One process-wide pool, lazily started on first use. Worker count
//    defaults to the hardware concurrency and can be overridden by the
//    FLUID_NUM_THREADS environment variable or SetNumThreads().
//  * ParallelFor splits [begin, end) into contiguous chunks at fixed
//    `grain` granularity. Chunk boundaries depend only on the range and
//    the grain — never on the thread count — so a caller that does
//    per-chunk accumulation and reduces the chunks in order gets
//    bit-identical results at any thread count. Kernels that write
//    disjoint outputs (GEMM row panels, per-sample conv work, elementwise
//    ops) are deterministic for free.
//  * The calling thread participates in the work, so ParallelFor with one
//    thread (or a range smaller than the grain) runs inline with zero
//    synchronisation — small tensors never pay for the pool.
//  * Exceptions thrown by the body are captured; the first one is
//    rethrown on the calling thread after all chunks finish.
//  * Nested ParallelFor calls from inside a worker run sequentially
//    inline (no deadlock, no oversubscription).

#include <cstdint>
#include <vector>

#include "core/function_ref.h"

namespace fluid::core {

/// Grow-only resize for the thread_local scratch buffers of the blocked
/// kernels (GEMM packing, im2col columns, int8 panels): never shrinks, so
/// a steady-state serving loop stops allocating after the first batch of
/// each shape.
template <typename T>
inline void EnsureScratch(std::vector<T>& buf, std::int64_t n) {
  if (buf.size() < static_cast<std::size_t>(n)) {
    buf.resize(static_cast<std::size_t>(n));
  }
}

/// Worker count the pool will use (≥ 1). Resolution order:
/// SetNumThreads() override, then FLUID_NUM_THREADS, then
/// std::thread::hardware_concurrency().
int NumThreads();

/// Override the pool size (clamped to ≥ 1). Takes effect on the next
/// ParallelFor; safe to call between parallel regions (tests use this to
/// compare 1-thread vs N-thread runs). Not thread-safe against concurrent
/// ParallelFor calls.
void SetNumThreads(int n);

/// Invoke body(chunk_begin, chunk_end) over contiguous chunks that cover
/// [begin, end). The range is cut at fixed `grain` boundaries (last chunk
/// ragged) and chunks are handed to workers dynamically, so load balances
/// while chunk boundaries stay thread-count-independent. Ranges with
/// end - begin <= grain run inline on the caller.
///
/// The body is taken by non-owning FunctionRef (ParallelFor blocks until
/// every chunk ran, so the caller's callable always outlives the region).
/// This keeps the dispatch allocation-free: std::function would heap-
/// allocate for any capture list past its small-buffer limit, which on
/// the serve path meant allocations per layer per request.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 FunctionRef<void(std::int64_t, std::int64_t)> body);

/// ParallelFor over single indices: body(i) for i in [begin, end).
void ParallelForEach(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     FunctionRef<void(std::int64_t)> body);

/// Number of fixed-size chunks ParallelFor-style chunking produces for a
/// range; callers allocating per-chunk accumulators use this together with
/// ParallelForChunks.
std::int64_t NumChunks(std::int64_t begin, std::int64_t end,
                       std::int64_t grain);

/// Deterministic-reduction variant: the range is cut into exactly
/// NumChunks(...) chunks of `grain` (last one ragged) and body receives
/// (chunk_index, chunk_begin, chunk_end). Chunk indices are stable across
/// thread counts, so reducing per-chunk partials in index order is
/// bit-reproducible.
void ParallelForChunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    FunctionRef<void(std::int64_t, std::int64_t, std::int64_t)> body);

}  // namespace fluid::core
