#pragma once
// Non-owning callable reference (two raw pointers, trivially copyable).
//
// std::function type-erases by COPYING the callable, and any capture
// state past its small-buffer limit (16 bytes on libstdc++) heap-
// allocates on every conversion — which put one or two allocations on
// every ParallelFor call in the serve path. FunctionRef just points at
// the caller's callable; it is only safe while that callable outlives
// the call, which blocking APIs like ParallelFor guarantee by
// construction (they return only after every chunk ran).

#include <memory>
#include <type_traits>
#include <utility>

namespace fluid::core {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace fluid::core
