#include "core/csv.h"

#include <iomanip>

#include "core/serialize.h"

namespace fluid::core {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FLUID_CHECK_MSG(!header_.empty(), "CsvWriter needs at least one column");
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  FLUID_CHECK_MSG(cells.size() == header_.size(),
                  "CsvWriter row width mismatch: expected " +
                      std::to_string(header_.size()) + ", got " +
                      std::to_string(cells.size()));
  rows_.push_back(std::move(cells));
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Text(std::string_view value) {
  cells_.emplace_back(value);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Number(double value,
                                                     int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  cells_.push_back(os.str());
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Integer(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::RowBuilder::Done() { writer_.AddRow(std::move(cells_)); }

std::string CsvWriter::Quote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << Quote(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << Quote(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

Status CsvWriter::WriteTo(const std::string& path) const {
  const std::string text = ToString();
  return WriteFile(path,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size()));
}

}  // namespace fluid::core
