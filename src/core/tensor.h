#pragma once
// Dense row-major float32 tensor with value semantics.
//
// Design notes:
//  * float32 only — the paper's models are small CNNs; a dtype zoo would be
//    accidental complexity (Core Guidelines P.2: express intent).
//  * Value semantics with explicit moves; the library passes tensors by
//    const& / && so accidental deep copies don't occur on hot paths.
//  * Elementwise / linear-algebra helpers live in tensor_ops.h; this header
//    is only storage + indexing.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/shape.h"

namespace fluid::core {

class Rng;

class Tensor {
 public:
  /// Empty tensor: shape [0], no elements. (A default-constructed tensor
  /// is a consistent zero-element value, not a scalar — Tensor(Shape{})
  /// makes a rank-0 scalar with one element.)
  Tensor() : shape_({0}) {}

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(std::initializer_list<std::int64_t> dims);

  /// Tensor with the given shape and flat (row-major) contents.
  Tensor(Shape shape, std::vector<float> data);

  // -- factories -------------------------------------------------------
  static Tensor Zeros(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0F); }
  /// iid U(lo, hi).
  static Tensor UniformRandom(Shape shape, Rng& rng, float lo, float hi);
  /// iid N(0, stddev²).
  static Tensor NormalRandom(Shape shape, Rng& rng, float stddev);
  /// Kaiming-uniform init for a weight with `fan_in` inputs.
  static Tensor KaimingUniform(Shape shape, Rng& rng, std::int64_t fan_in);

  // -- observers -------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& at(std::int64_t flat);
  float at(std::int64_t flat) const;

  /// Multi-index access (checked).
  float& operator()(const std::vector<std::int64_t>& index);
  float operator()(const std::vector<std::int64_t>& index) const;

  // -- mutators --------------------------------------------------------
  void Fill(float value);
  void Zero() { Fill(0.0F); }

  /// Reinterpret with a new shape of identical numel. The const overload
  /// copies; the rvalue overload moves the storage (serve-path reshapes
  /// like Flatten use it to stay allocation-free).
  Tensor Reshaped(Shape new_shape) const&;
  Tensor Reshaped(Shape new_shape) &&;

  /// Steal the flat storage, leaving the tensor empty (shape [0]). The
  /// buffer-pool recycling path uses this to return activation storage
  /// without a copy.
  std::vector<float> TakeData() &&;

  /// Deep copy (explicit, so accidental copies are grep-able).
  Tensor Clone() const { return *this; }

  /// "Tensor[2, 3] {0.1, 0.2, ...}" — truncated for large tensors.
  std::string ToString(std::int64_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fluid::core
