#pragma once
// Free-function tensor math used by the NN layers.
//
// These operate on whole tensors; channel-sliced variants (the slimmable
// hot path) live in fluid::slim and reuse the GEMM kernel directly.

#include <cstdint>

#include "core/tensor.h"

namespace fluid::core {

/// c = a + b (elementwise, shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
/// c = a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// c = a ⊙ b (Hadamard).
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = a * scalar.
Tensor Scale(const Tensor& a, float scalar);

/// a += alpha * b, in place. Shapes must match.
void Axpy(float alpha, const Tensor& b, Tensor& a);

/// Sum of all elements.
double Sum(const Tensor& a);
/// Mean of all elements (0 for empty).
double Mean(const Tensor& a);
/// Max element value. Requires non-empty.
float Max(const Tensor& a);
/// Flat index of max element. Requires non-empty.
std::int64_t Argmax(const Tensor& a);

/// Argmax along the last axis of a rank-2 tensor [rows, cols] → per-row
/// class index.
std::vector<std::int64_t> ArgmaxRows(const Tensor& logits);

/// L2 norm of all elements.
double Norm(const Tensor& a);

/// Max |a - b| over all elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

/// Matrix multiply of rank-2 tensors: [m,k] × [k,n] → [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Concatenate along axis 0. All parts must be non-empty, share rank and
/// trailing dims. Used by the serving path to coalesce per-request inputs
/// into one fused batch (and the inverse, SliceAxis0, to scatter results).
Tensor ConcatAxis0(const std::vector<const Tensor*>& parts);

/// Copy rows [start, start+count) along axis 0 into a fresh tensor.
Tensor SliceAxis0(const Tensor& t, std::int64_t start, std::int64_t count);

/// True if shapes match and all elements within atol.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5F);

}  // namespace fluid::core
