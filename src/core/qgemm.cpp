#include "core/qgemm.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/simd/qgemm_kernel.h"

namespace fluid::core {

namespace {

// Writes (pc == 0) or accumulates (later k blocks) the rows×cols corner
// of the int32 accumulator tile into C.
inline void QWriteBack(const std::int32_t* acc, std::int64_t acc_ld,
                       bool overwrite, std::int64_t rows, std::int64_t cols,
                       std::int32_t* c, std::int64_t ldc) {
  for (std::int64_t mr = 0; mr < rows; ++mr) {
    std::int32_t* crow = c + mr * ldc;
    const std::int32_t* arow = acc + mr * acc_ld;
    if (overwrite) {
      for (std::int64_t nr = 0; nr < cols; ++nr) crow[nr] = arow[nr];
    } else {
      for (std::int64_t nr = 0; nr < cols; ++nr) crow[nr] += arow[nr];
    }
  }
}

// Per-thread packing scratch, grow-only like the fp32 driver's. Byte
// vectors: panel layout is the kernel's own (int16 pairs for the pmaddwd
// tiers, biased u8/s8 quads + comp row for vnni); the driver only strides
// between panels using the kernel's *_panel_bytes.
thread_local std::vector<std::uint8_t> tl_qapack;
thread_local std::vector<std::uint8_t> tl_qbpack;

// Packed-A reuse tags (see gemm.cpp): several (row block × jr group)
// tasks on one thread share a row block; repack only on a block change.
std::atomic<std::uint64_t> g_qpack_epoch{0};
thread_local std::uint64_t tl_qapack_epoch = 0;
thread_local std::int64_t tl_qapack_blk = -1;

}  // namespace

void QGemmInt8(std::int64_t m, std::int64_t n, std::int64_t k,
               const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
               std::int64_t ldb, std::int32_t* c, std::int64_t ldc) {
  FLUID_CHECK_MSG(m >= 0 && n >= 0 && k >= 0, "QGemmInt8: negative dimension");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    ParallelFor(0, m, 16, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0);
      }
    });
    return;
  }

  const simd::QGemmKernel& kern = simd::ActiveQGemmKernel();
  const std::int64_t MR = kern.mr, NR = kern.nr;
  const std::int64_t KC = kern.kc, MC = kern.mc, NC = kern.nc;

  auto& bpack = tl_qbpack;
  {
    // kc/nc only shrink on tail blocks, so the first block's panel count
    // and stride bound every later one.
    const std::int64_t kc0 = std::min(KC, k);
    const std::int64_t nc0 = (std::min(NC, n) + NR - 1) / NR * NR;
    EnsureScratch(bpack, (nc0 / NR) * kern.b_panel_bytes(kc0));
  }
  const std::int64_t m_blocks = (m + MC - 1) / MC;
  const std::int64_t jr_task_cols = 4 * NR;

  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_padded = (nc + NR - 1) / NR * NR;
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      const std::int64_t a_panel = kern.a_panel_bytes(kc);
      const std::int64_t b_panel = kern.b_panel_bytes(kc);
      kern.pack_b(b, ldb, pc, jc, kc, nc, bpack.data());

      const std::uint64_t epoch =
          g_qpack_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
      const std::int64_t jr_tasks =
          (nc_padded + jr_task_cols - 1) / jr_task_cols;
      const bool overwrite = pc == 0;
      ParallelForEach(0, m_blocks * jr_tasks, 1, [&](std::int64_t task) {
        const std::int64_t blk = task / jr_tasks;
        const std::int64_t jt = task % jr_tasks;
        const std::int64_t ic = blk * MC;
        const std::int64_t mc = std::min(MC, m - ic);
        const std::int64_t mc_padded = (mc + MR - 1) / MR * MR;
        auto& apack = tl_qapack;
        if (tl_qapack_epoch != epoch || tl_qapack_blk != blk) {
          EnsureScratch(apack, (mc_padded / MR) * a_panel);
          kern.pack_a(a, lda, ic, pc, mc, kc, apack.data());
          tl_qapack_epoch = epoch;
          tl_qapack_blk = blk;
        }

        alignas(64) std::int32_t acc[simd::kMaxQMr * simd::kMaxQNr];
        const std::int64_t jr_end =
            std::min(jr_task_cols * (jt + 1), nc_padded);
        for (std::int64_t jr = jt * jr_task_cols; jr < jr_end; jr += NR) {
          const std::uint8_t* bp = bpack.data() + (jr / NR) * b_panel;
          const std::int64_t cols = std::min(NR, nc - jr);
          for (std::int64_t ir = 0; ir < mc; ir += MR) {
            const std::int64_t rows = std::min(MR, mc - ir);
            kern.micro(kc, apack.data() + (ir / MR) * a_panel, bp, acc);
            QWriteBack(acc, NR, overwrite, rows, cols,
                       c + (ic + ir) * ldc + jc + jr, ldc);
          }
        }
      });
    }
  }
}

}  // namespace fluid::core
