// AVX-512 VNNI int8 tier: 6×32 int32 tile fed by vpdpbusd, which retires
// FOUR k steps per instruction (vs pmaddwd's two) — u8×s8 byte products
// summed pairwise in int16 and accumulated non-saturating into int32.
//
// vpdpbusd wants an unsigned left operand, so A is re-biased at pack time:
// each a is stored as u8 a+128 (= a XOR 0x80) and quad-interleaved; B
// stays s8, quad-interleaved, with a per-panel int32 compensation row
// comp[j] = Σ_k b[k][j] appended after the quads. The micro computes
//
//   Σ_k (a+128)·b  −  128·Σ_k b  =  Σ_k a·b        (exactly)
//
// Exactness: each u8·s8 byte product fits int16 (≤ 255·127 = 32385 <
// 2¹⁵−1), vpdpbusd sign-extends the four products to int32 before its
// non-saturating dword accumulate (VPDPBUSDS is the saturating variant;
// we use the plain one), and over a KC=256 block |Σ(a+128)b| ≤
// 256·255·127 ≈ 8.3e6 and 128·|Σb| ≤ 256·128·127 ≈ 4.2e6 both sit far
// below 2³¹ — so int32 accumulation is exact and the result is bitwise
// identical to the scalar tier.
//
// Padding: dead A rows and k-tail bytes store 0x80 (the biased encoding
// of 0); dead B columns and k tails store 0 with comp = Σ over real k
// only — every padding combination then contributes exactly zero after
// the compensation subtract.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "core/simd/qgemm_kernel.h"

namespace fluid::core::simd {

namespace {

constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 32;

std::int64_t APanelBytesVnni(std::int64_t kc) {
  return MR * ((kc + 3) / 4) * 4;  // kq quads × MR rows × 4 u8
}

std::int64_t BPanelBytesVnni(std::int64_t kc) {
  // kq quads × NR cols × 4 s8, then the int32 comp[NR] row.
  return NR * ((kc + 3) / 4) * 4 + NR * 4;
}

// A panel r (rows [r·MR, r·MR+MR)): ap[q·MR·4 + i·4 + s] = u8(a + 128),
// padding 0x80.
void QPackAVnni(const std::int8_t* a, std::int64_t lda, std::int64_t row0,
                std::int64_t p0, std::int64_t mc, std::int64_t kc,
                void* apack_) {
  std::uint8_t* apack = static_cast<std::uint8_t*>(apack_);
  const std::int64_t kq = (kc + 3) / 4;
  for (std::int64_t r = 0; r < mc; r += MR) {
    const std::int64_t rows = std::min(MR, mc - r);
    std::uint8_t* panel = apack + (r / MR) * kq * MR * 4;
    for (std::int64_t q = 0; q < kq; ++q) {
      std::uint8_t* dst = panel + q * MR * 4;
      for (std::int64_t mr = 0; mr < MR; ++mr) {
        const std::int8_t* src = a + (row0 + r + mr) * lda + p0 + q * 4;
        for (std::int64_t s = 0; s < 4; ++s) {
          const bool live = mr < rows && q * 4 + s < kc;
          dst[mr * 4 + s] =
              live ? static_cast<std::uint8_t>(
                         static_cast<std::uint8_t>(src[s]) ^ 0x80U)
                   : std::uint8_t{0x80};
        }
      }
    }
  }
}

// B panel c (cols [c·NR, c·NR+NR)): bp[q·NR·4 + j·4 + s] = s8 b, padding
// 0, followed at offset kq·NR·4 by int32 comp[NR] (column sums over the
// real kc steps; 0 for dead columns).
void QPackBVnni(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
                std::int64_t col0, std::int64_t kc, std::int64_t nc,
                void* bpack_) {
  std::uint8_t* bpack = static_cast<std::uint8_t*>(bpack_);
  const std::int64_t kq = (kc + 3) / 4;
  const std::int64_t panel_bytes = BPanelBytesVnni(kc);
  for (std::int64_t c = 0; c < nc; c += NR) {
    const std::int64_t cols = std::min(NR, nc - c);
    std::uint8_t* panel = bpack + (c / NR) * panel_bytes;
    std::int32_t comp[NR] = {};
    for (std::int64_t q = 0; q < kq; ++q) {
      std::int8_t* dst = reinterpret_cast<std::int8_t*>(panel + q * NR * 4);
      for (std::int64_t s = 0; s < 4; ++s) {
        const std::int64_t p = q * 4 + s;
        if (p < kc) {
          const std::int8_t* src = b + (p0 + p) * ldb + col0 + c;
          for (std::int64_t nr = 0; nr < cols; ++nr) {
            dst[nr * 4 + s] = src[nr];
            comp[nr] += src[nr];
          }
          for (std::int64_t nr = cols; nr < NR; ++nr) dst[nr * 4 + s] = 0;
        } else {
          for (std::int64_t nr = 0; nr < NR; ++nr) dst[nr * 4 + s] = 0;
        }
      }
    }
    std::memcpy(panel + kq * NR * 4, comp, sizeof(comp));
  }
}

__attribute__((target("avx512f,avx512bw,avx512vnni"))) void QMicroAvx512Vnni(
    std::int64_t kc, const void* ap_, const void* bp_, std::int32_t* acc) {
  const std::int64_t kq = (kc + 3) / 4;
  const std::uint8_t* ap = static_cast<const std::uint8_t*>(ap_);
  const std::uint8_t* bp = static_cast<const std::uint8_t*>(bp_);
  __m512i c[MR][2];
  for (int i = 0; i < MR; ++i) {
    c[i][0] = _mm512_setzero_si512();
    c[i][1] = _mm512_setzero_si512();
  }
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::uint8_t* a = ap + q * MR * 4;
    const std::uint8_t* b = bp + q * NR * 4;
    // 64 bytes = 16 column quads per register: b0 covers columns 0-15,
    // b1 columns 16-31, each 32-bit lane holding (b[k..k+3]) for one
    // column.
    const __m512i b0 = _mm512_loadu_si512(b);
    const __m512i b1 = _mm512_loadu_si512(b + 16 * 4);
#pragma GCC unroll 6
    for (int i = 0; i < MR; ++i) {
      std::uint32_t quad;  // (a[k..k+3] + 128) as one 32-bit broadcast
      std::memcpy(&quad, a + i * 4, sizeof(quad));
      const __m512i ai = _mm512_set1_epi32(static_cast<int>(quad));
      c[i][0] = _mm512_dpbusd_epi32(c[i][0], ai, b0);
      c[i][1] = _mm512_dpbusd_epi32(c[i][1], ai, b1);
    }
  }
  // Undo the +128 bias: acc = Σ(a+128)b − 128·Σb = Σab, exactly.
  const std::uint8_t* comp_row = bp + kq * NR * 4;
  const __m512i comp0 = _mm512_loadu_si512(comp_row);
  const __m512i comp1 = _mm512_loadu_si512(comp_row + 16 * 4);
  for (int i = 0; i < MR; ++i) {
    _mm512_storeu_si512(
        acc + i * NR, _mm512_sub_epi32(c[i][0], _mm512_slli_epi32(comp0, 7)));
    _mm512_storeu_si512(
        acc + i * NR + 16,
        _mm512_sub_epi32(c[i][1], _mm512_slli_epi32(comp1, 7)));
  }
}

bool Avx512VnniSupported() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vnni");
}

}  // namespace

extern const QGemmKernel kQGemmKernelAvx512Vnni = {
    .name = "avx512vnni",
    .mr = MR,
    .nr = NR,
    .kc = 256,  // kq=64; KC×NR s8 B panel ≈ 8 KB + 128 B comp, L1-resident
    .mc = 48,
    .nc = 1024,
    .a_panel_bytes = APanelBytesVnni,
    .b_panel_bytes = BPanelBytesVnni,
    .micro = QMicroAvx512Vnni,
    .pack_a = QPackAVnni,
    .pack_b = QPackBVnni,
    .supported = Avx512VnniSupported,
};

}  // namespace fluid::core::simd

#endif  // x86
