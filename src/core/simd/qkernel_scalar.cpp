// Portable int8 fallback tier: 6×16 int32 accumulator tile over the
// pair-interleaved int16 panels. Integer arithmetic is exact, so this
// kernel defines the result every SIMD tier must reproduce bitwise.

#include "core/simd/qgemm_kernel.h"
#include "core/simd/qpack.h"

namespace fluid::core::simd {

namespace {

constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 16;

void QMicroScalar(std::int64_t kc, const void* ap_, const void* bp_,
                  std::int32_t* __restrict__ acc) {
  const std::int64_t kp = (kc + 1) / 2;
  const std::int16_t* __restrict__ ap = static_cast<const std::int16_t*>(ap_);
  const std::int16_t* __restrict__ bp = static_cast<const std::int16_t*>(bp_);
  for (std::int64_t i = 0; i < MR * NR; ++i) acc[i] = 0;
  for (std::int64_t p2 = 0; p2 < kp; ++p2) {
    const std::int16_t* a = ap + p2 * MR * 2;
    const std::int16_t* b = bp + p2 * NR * 2;
    for (std::int64_t mr = 0; mr < MR; ++mr) {
      const std::int32_t a0 = a[mr * 2];
      const std::int32_t a1 = a[mr * 2 + 1];
      std::int32_t* row = acc + mr * NR;
      for (std::int64_t nr = 0; nr < NR; ++nr) {
        row[nr] += a0 * b[nr * 2] + a1 * b[nr * 2 + 1];
      }
    }
  }
}

bool AlwaysSupported() { return true; }

}  // namespace

extern const QGemmKernel kQGemmKernelScalar = {
    .name = "scalar",
    .mr = MR,
    .nr = NR,
    .kc = 256,  // KC×NR int16 B panel ≈ 8 KB, L1-resident
    .mc = 48,
    .nc = 1024,
    .a_panel_bytes = QPairPanelBytes<MR>,
    .b_panel_bytes = QPairPanelBytes<NR>,
    .micro = QMicroScalar,
    .pack_a = QPackA<MR>,
    .pack_b = QPackB<NR>,
    .supported = AlwaysSupported,
};

}  // namespace fluid::core::simd
