#pragma once
// Panel packing for the GEMM microkernels, templated on the register-tile
// extent so each dispatch tier gets fully-unrolled copy loops for its own
// MR/NR. All four transpose combinations are resolved here, so every tier
// has exactly one microkernel; ragged edges are zero-padded in the packed
// panels (computed and discarded, never written back).

#include <algorithm>
#include <cstdint>

namespace fluid::core::simd {

/// Reads element (i, j) of op(M) given storage pointer/stride.
inline float At(const float* m, std::int64_t ld, bool trans, std::int64_t i,
                std::int64_t j) {
  return trans ? m[j * ld + i] : m[i * ld + j];
}

/// Packs the mc×kc block of op(A) at (row0, p0) into MR-row panels:
/// panel r holds rows [r*MR, r*MR+MR), laid out k-major so the microkernel
/// streams it contiguously: apack[r][p*MR + mr]. Rows beyond mc are
/// zero-padded.
template <std::int64_t MR>
void PackA(const float* a, std::int64_t lda, bool trans, std::int64_t row0,
           std::int64_t p0, std::int64_t mc, std::int64_t kc, float* apack) {
  for (std::int64_t r = 0; r < mc; r += MR) {
    const std::int64_t rows = std::min(MR, mc - r);
    float* panel = apack + r * kc;
    if (trans && rows == MR) {
      // Hot case for op(A) = Aᵀ: a k-step reads MR contiguous floats.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * lda + row0 + r;
        float* dst = panel + p * MR;
        for (std::int64_t mr = 0; mr < MR; ++mr) dst[mr] = src[mr];
      }
      continue;
    }
    for (std::int64_t p = 0; p < kc; ++p) {
      float* dst = panel + p * MR;
      for (std::int64_t mr = 0; mr < rows; ++mr) {
        dst[mr] = At(a, lda, trans, row0 + r + mr, p0 + p);
      }
      for (std::int64_t mr = rows; mr < MR; ++mr) dst[mr] = 0.0F;
    }
  }
}

/// Packs the kc×nc block of op(B) at (p0, col0) into NR-column panels,
/// k-major: bpack[c][p*NR + nr]. Columns beyond nc are zero-padded.
template <std::int64_t NR>
void PackB(const float* b, std::int64_t ldb, bool trans, std::int64_t p0,
           std::int64_t col0, std::int64_t kc, std::int64_t nc, float* bpack) {
  for (std::int64_t c = 0; c < nc; c += NR) {
    const std::int64_t cols = std::min(NR, nc - c);
    float* panel = bpack + c * kc;
    if (!trans && cols == NR) {
      // Hot case: contiguous row segments of B.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + col0 + c;
        float* dst = panel + p * NR;
        for (std::int64_t nr = 0; nr < NR; ++nr) dst[nr] = src[nr];
      }
      continue;
    }
    for (std::int64_t p = 0; p < kc; ++p) {
      float* dst = panel + p * NR;
      for (std::int64_t nr = 0; nr < cols; ++nr) {
        dst[nr] = At(b, ldb, trans, p0 + p, col0 + c + nr);
      }
      for (std::int64_t nr = cols; nr < NR; ++nr) dst[nr] = 0.0F;
    }
  }
}

}  // namespace fluid::core::simd
