// AVX-512 tier: 8×48 register tile — 24 zmm accumulators, 3 zmm B loads
// and one broadcast per k-step (28 of the 32 zmm registers live). The
// tile shape is chosen for this library's GEMMs: Cout ∈ {8, 16} conv
// lowerings and the n=144 class dimension divide 8 and 48 exactly, so the
// hot shapes run at full tile utilisation. 24 independent FMA chains cover
// the 2-port × 4-cycle FMA latency×throughput product with room to spare.
//
// Compiled with a per-function target attribute so the object builds at
// any -march; dispatch only selects it when CPUID (incl. OS XSAVE state)
// reports AVX-512F.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "core/simd/gemm_kernel.h"
#include "core/simd/pack.h"

namespace fluid::core::simd {

namespace {

constexpr std::int64_t MR = 8;
constexpr std::int64_t NR = 48;

__attribute__((target("avx512f"))) void MicroAvx512(std::int64_t kc,
                                                    const float* ap,
                                                    const float* bp,
                                                    float* acc) {
  __m512 c[MR][3];
  for (int i = 0; i < MR; ++i) {
    c[i][0] = _mm512_setzero_ps();
    c[i][1] = _mm512_setzero_ps();
    c[i][2] = _mm512_setzero_ps();
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    const __m512 b0 = _mm512_loadu_ps(b);
    const __m512 b1 = _mm512_loadu_ps(b + 16);
    const __m512 b2 = _mm512_loadu_ps(b + 32);
#pragma GCC unroll 8
    for (int i = 0; i < MR; ++i) {
      const __m512 ai = _mm512_set1_ps(a[i]);
      c[i][0] = _mm512_fmadd_ps(ai, b0, c[i][0]);
      c[i][1] = _mm512_fmadd_ps(ai, b1, c[i][1]);
      c[i][2] = _mm512_fmadd_ps(ai, b2, c[i][2]);
    }
  }
  for (int i = 0; i < MR; ++i) {
    _mm512_storeu_ps(acc + i * NR, c[i][0]);
    _mm512_storeu_ps(acc + i * NR + 16, c[i][1]);
    _mm512_storeu_ps(acc + i * NR + 32, c[i][2]);
  }
}

bool Avx512Supported() { return __builtin_cpu_supports("avx512f"); }

}  // namespace

extern const GemmKernel kGemmKernelAvx512 = {
    .name = "avx512",
    .mr = MR,
    .nr = NR,
    .kc = 192,   // KC×NR B panel ≈ 36 KB, fits a 48 KB L1d
    .mc = 96,    // MC×KC A block ≈ 72 KB, L2-resident (12 MR-panels)
    .nc = 1920,  // packed-B working set ≈ 1.4 MB, L3-resident
    .micro = MicroAvx512,
    .pack_a = PackA<MR>,
    .pack_b = PackB<NR>,
    .supported = Avx512Supported,
};

}  // namespace fluid::core::simd

#endif  // x86
