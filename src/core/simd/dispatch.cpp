// Runtime kernel selection: CPUID-probed once at first Gemm, overridable
// with FLUID_SIMD=avx512|avx2|scalar (unknown/unsupported values warn and
// fall back to auto-detection).

#include "core/simd/gemm_kernel.h"

#include <atomic>
#include <cstdlib>

#include "core/error.h"
#include "core/logging.h"

namespace fluid::core::simd {

extern const GemmKernel kGemmKernelScalar;
#if defined(__x86_64__) || defined(__i386__)
extern const GemmKernel kGemmKernelAvx2;
extern const GemmKernel kGemmKernelAvx512;
#endif

namespace {

// Best first; resolution walks the table in order.
const GemmKernel* const kTable[] = {
#if defined(__x86_64__) || defined(__i386__)
    &kGemmKernelAvx512,
    &kGemmKernelAvx2,
#endif
    &kGemmKernelScalar,
};

// The kernel entries live in other translation units, so the tile/blocking
// invariants the driver relies on are checked once at first resolution
// rather than via static_assert.
void CheckTableInvariants() {
  [[maybe_unused]] static const bool checked = [] {
    for (const GemmKernel* k : kTable) {
      FLUID_CHECK_MSG(k->mr <= kMaxMr && k->nr <= kMaxNr,
                      "GemmKernel tile exceeds kMaxMr×kMaxNr");
      FLUID_CHECK_MSG(k->mc % k->mr == 0,
                      "GemmKernel MC must be a multiple of MR");
    }
    return true;
  }();
}

std::atomic<const GemmKernel*> g_active{nullptr};

const GemmKernel* ResolveFromEnvironment() {
  const char* env = std::getenv("FLUID_SIMD");
  if (env != nullptr && *env != '\0') {
    if (const GemmKernel* k = ResolveGemmKernel(env)) return k;
    FLUID_LOG(Warn) << "FLUID_SIMD=" << env
                    << " is unknown or unsupported on this CPU; "
                       "auto-detecting";
  }
  return ResolveGemmKernel(nullptr);
}

}  // namespace

std::span<const GemmKernel* const> AllGemmKernels() { return kTable; }

const GemmKernel* GemmKernelByName(std::string_view name) {
  for (const GemmKernel* k : kTable) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const GemmKernel* ResolveGemmKernel(const char* override_name) {
  if (override_name != nullptr && *override_name != '\0') {
    const GemmKernel* k = GemmKernelByName(override_name);
    return (k != nullptr && k->supported()) ? k : nullptr;
  }
  for (const GemmKernel* k : kTable) {
    if (k->supported()) return k;
  }
  return &kGemmKernelScalar;  // unreachable: scalar is always supported
}

const GemmKernel& ActiveGemmKernel() {
  const GemmKernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: resolution is idempotent, so concurrent first calls
    // agree on the result.
    CheckTableInvariants();
    k = ResolveFromEnvironment();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

void SetGemmKernelForTesting(const GemmKernel* kernel) {
  g_active.store(kernel, std::memory_order_release);
}

}  // namespace fluid::core::simd
