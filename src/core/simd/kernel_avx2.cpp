// AVX2+FMA tier: 6×16 register tile — 12 ymm accumulators, 2 ymm B loads
// and one broadcast per k-step (15 of the 16 ymm registers live). Compiled
// with a per-function target attribute so the object builds at any -march;
// dispatch only selects it when CPUID reports AVX2+FMA.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "core/simd/gemm_kernel.h"
#include "core/simd/pack.h"

namespace fluid::core::simd {

namespace {

constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 16;

__attribute__((target("avx2,fma"))) void MicroAvx2(std::int64_t kc,
                                                   const float* ap,
                                                   const float* bp,
                                                   float* acc) {
  __m256 c[MR][2];
  for (int i = 0; i < MR; ++i) {
    c[i][0] = _mm256_setzero_ps();
    c[i][1] = _mm256_setzero_ps();
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
#pragma GCC unroll 6
    for (int i = 0; i < MR; ++i) {
      const __m256 ai = _mm256_broadcast_ss(a + i);
      c[i][0] = _mm256_fmadd_ps(ai, b0, c[i][0]);
      c[i][1] = _mm256_fmadd_ps(ai, b1, c[i][1]);
    }
  }
  for (int i = 0; i < MR; ++i) {
    _mm256_storeu_ps(acc + i * NR, c[i][0]);
    _mm256_storeu_ps(acc + i * NR + 8, c[i][1]);
  }
}

bool Avx2Supported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

}  // namespace

extern const GemmKernel kGemmKernelAvx2 = {
    .name = "avx2",
    .mr = MR,
    .nr = NR,
    .kc = 256,  // KC×NR B panel ≈ 16 KB, L1-resident
    .mc = 48,   // MC×KC A block ≈ 48 KB, L2-resident
    .nc = 1024,
    .micro = MicroAvx2,
    .pack_a = PackA<MR>,
    .pack_b = PackB<NR>,
    .supported = Avx2Supported,
};

}  // namespace fluid::core::simd

#endif  // x86
