// Portable fallback tier: the PR 1 autovectorised 6×16 register tile.
// Fixed trip counts so the compiler keeps the accumulator block in vector
// registers on whatever ISA it targets; on hosts with AVX this tier still
// vectorises, it just leaves FMA scheduling to the compiler. No zero-skip
// branches: 0 × NaN must stay NaN.

#include "core/simd/gemm_kernel.h"
#include "core/simd/pack.h"

namespace fluid::core::simd {

namespace {

constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 16;

// __restrict__ matters here: behind the dispatch function pointer the
// compiler can no longer see the caller's disjoint buffers, and assumed
// aliasing between acc and the panels blocks autovectorisation entirely
// (~10× slower without it).
void MicroScalar(std::int64_t kc, const float* __restrict__ ap,
                 const float* __restrict__ bp, float* __restrict__ acc) {
  for (std::int64_t i = 0; i < MR * NR; ++i) acc[i] = 0.0F;
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::int64_t mr = 0; mr < MR; ++mr) {
      const float av = a[mr];
      float* row = acc + mr * NR;
      for (std::int64_t nr = 0; nr < NR; ++nr) row[nr] += av * b[nr];
    }
  }
}

bool AlwaysSupported() { return true; }

}  // namespace

extern const GemmKernel kGemmKernelScalar = {
    .name = "scalar",
    .mr = MR,
    .nr = NR,
    .kc = 256,  // KC×NR B panel ≈ 16 KB, L1-resident
    .mc = 48,   // MC×KC A block ≈ 48 KB, L2-resident
    .nc = 1024,
    .micro = MicroScalar,
    .pack_a = PackA<MR>,
    .pack_b = PackB<NR>,
    .supported = AlwaysSupported,
};

}  // namespace fluid::core::simd
