// AVX2 int8 tier: 6×16 int32 tile — 12 ymm accumulators, 2 ymm B loads
// and one 32-bit broadcast per k-PAIR step; pmaddwd retires two k steps
// per instruction. Per-function target attribute so the object builds at
// any -march; dispatch selects it only when CPUID reports AVX2.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "core/simd/qgemm_kernel.h"
#include "core/simd/qpack.h"

namespace fluid::core::simd {

namespace {

constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 16;

__attribute__((target("avx2"))) void QMicroAvx2(std::int64_t kc,
                                                const void* ap_,
                                                const void* bp_,
                                                std::int32_t* acc) {
  const std::int64_t kp = (kc + 1) / 2;
  const std::int16_t* ap = static_cast<const std::int16_t*>(ap_);
  const std::int16_t* bp = static_cast<const std::int16_t*>(bp_);
  __m256i c[MR][2];
  for (int i = 0; i < MR; ++i) {
    c[i][0] = _mm256_setzero_si256();
    c[i][1] = _mm256_setzero_si256();
  }
  for (std::int64_t p2 = 0; p2 < kp; ++p2) {
    const std::int16_t* a = ap + p2 * MR * 2;
    const std::int16_t* b = bp + p2 * NR * 2;
    // 16 int16 = 8 column pairs per register: b0 covers columns 0-7,
    // b1 columns 8-15, each lane holding (b[k], b[k+1]) for one column.
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + NR));
#pragma GCC unroll 6
    for (int i = 0; i < MR; ++i) {
      std::int32_t pair;  // (a[k], a[k+1]) as one 32-bit broadcast
      std::memcpy(&pair, a + i * 2, sizeof(pair));
      const __m256i ai = _mm256_set1_epi32(pair);
      c[i][0] = _mm256_add_epi32(c[i][0], _mm256_madd_epi16(ai, b0));
      c[i][1] = _mm256_add_epi32(c[i][1], _mm256_madd_epi16(ai, b1));
    }
  }
  for (int i = 0; i < MR; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * NR), c[i][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * NR + 8), c[i][1]);
  }
}

bool Avx2Supported() { return __builtin_cpu_supports("avx2"); }

}  // namespace

extern const QGemmKernel kQGemmKernelAvx2 = {
    .name = "avx2",
    .mr = MR,
    .nr = NR,
    .kc = 256,
    .mc = 48,
    .nc = 1024,
    .a_panel_bytes = QPairPanelBytes<MR>,
    .b_panel_bytes = QPairPanelBytes<NR>,
    .micro = QMicroAvx2,
    .pack_a = QPackA<MR>,
    .pack_b = QPackB<NR>,
    .supported = Avx2Supported,
};

}  // namespace fluid::core::simd

#endif  // x86
