// int8 kernel selection: tied to the fp32 tier so CPUID probing and the
// FLUID_SIMD override live in exactly one place (simd/dispatch.cpp).

#include "core/simd/qgemm_kernel.h"

#include "core/simd/gemm_kernel.h"

namespace fluid::core::simd {

extern const QGemmKernel kQGemmKernelScalar;
#if defined(__x86_64__) || defined(__i386__)
extern const QGemmKernel kQGemmKernelAvx2;
extern const QGemmKernel kQGemmKernelAvx512;
#endif

namespace {

const QGemmKernel* const kQTable[] = {
#if defined(__x86_64__) || defined(__i386__)
    &kQGemmKernelAvx512,
    &kQGemmKernelAvx2,
#endif
    &kQGemmKernelScalar,
};

}  // namespace

std::span<const QGemmKernel* const> AllQGemmKernels() { return kQTable; }

const QGemmKernel* QGemmKernelByName(std::string_view name) {
  for (const QGemmKernel* k : kQTable) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const QGemmKernel& ActiveQGemmKernel() {
  // Follow the fp32 tier every call (it is one atomic load there). Tests
  // that pin the fp32 kernel via SetGemmKernelForTesting pin this path
  // with it, so the two GEMMs can never run split across tiers.
  const QGemmKernel* k = QGemmKernelByName(ActiveGemmKernel().name);
  if (k != nullptr && k->supported()) return *k;
  return kQGemmKernelScalar;
}

}  // namespace fluid::core::simd
