// int8 kernel selection: tied to the fp32 tier so CPUID probing and the
// FLUID_SIMD override live in exactly one place (simd/dispatch.cpp). The
// one divergence is deliberate: an fp32 "avx512" tier upgrades the int8
// path to "avx512vnni" when the CPU has VNNI — there is no fp32 VNNI
// kernel to pair with, and vpdpbusd doubles int8 GEMM throughput while
// staying bitwise identical (integer-exact) to every other tier.

#include "core/simd/qgemm_kernel.h"

#include <atomic>

#include "core/simd/gemm_kernel.h"

namespace fluid::core::simd {

extern const QGemmKernel kQGemmKernelScalar;
#if defined(__x86_64__) || defined(__i386__)
extern const QGemmKernel kQGemmKernelAvx2;
extern const QGemmKernel kQGemmKernelAvx512;
extern const QGemmKernel kQGemmKernelAvx512Vnni;
#endif

namespace {

const QGemmKernel* const kQTable[] = {
#if defined(__x86_64__) || defined(__i386__)
    &kQGemmKernelAvx512Vnni,
    &kQGemmKernelAvx512,
    &kQGemmKernelAvx2,
#endif
    &kQGemmKernelScalar,
};

std::atomic<const QGemmKernel*> g_qoverride{nullptr};

}  // namespace

std::span<const QGemmKernel* const> AllQGemmKernels() { return kQTable; }

const QGemmKernel* QGemmKernelByName(std::string_view name) {
  for (const QGemmKernel* k : kQTable) {
    if (name == k->name) return k;
  }
  return nullptr;
}

void SetQGemmKernelForTesting(const QGemmKernel* kernel) {
  g_qoverride.store(kernel, std::memory_order_release);
}

const QGemmKernel& ActiveQGemmKernel() {
  if (const QGemmKernel* forced = g_qoverride.load(std::memory_order_acquire)) {
    return *forced;
  }
  // Follow the fp32 tier every call (it is one atomic load there). Tests
  // that pin the fp32 kernel via SetGemmKernelForTesting pin this path
  // with it, so the two GEMMs can never run split across tiers.
  const std::string_view tier = ActiveGemmKernel().name;
  if (tier == "avx512") {
    const QGemmKernel* vnni = QGemmKernelByName("avx512vnni");
    if (vnni != nullptr && vnni->supported()) return *vnni;
  }
  const QGemmKernel* k = QGemmKernelByName(tier);
  if (k != nullptr && k->supported()) return *k;
  return kQGemmKernelScalar;
}

}  // namespace fluid::core::simd
