#pragma once
// Panel packing for the pmaddwd-family int8 GEMM microkernels. Operands
// are widened to int16 at pack time and adjacent k steps are interleaved
// in pairs, so a microkernel k-pair step is one contiguous load per
// operand and the x86 tiers can feed pmaddwd directly:
//
//   A panel r (rows [r·MR, r·MR+MR)):  ap[p2·MR·2 + i·2 + s]
//   B panel c (cols [c·NR, c·NR+NR)):  bp[p2·NR·2 + j·2 + s]
//
// with p2 = k/2 the pair index and s ∈ {0,1} the step within the pair.
// Rows/columns beyond the block and the odd trailing k step are
// zero-padded (0 contributes 0 to an integer dot product — exact).
//
// The dispatch contract passes panels as opaque bytes; one TILE-row panel
// for a kc-deep block occupies QPairPanelBytes<TILE>(kc) bytes. The VNNI
// tier packs a different (quad-interleaved) family and lives entirely in
// qkernel_avx512vnni.cpp.

#include <algorithm>
#include <cstdint>

namespace fluid::core::simd {

/// Bytes of one pair-interleaved int16 panel covering TILE rows/columns:
/// (kc+1)/2 pairs × TILE lanes × 2 int16 × 2 bytes.
template <std::int64_t TILE>
std::int64_t QPairPanelBytes(std::int64_t kc) {
  return TILE * ((kc + 1) / 2) * 2 * 2;
}

template <std::int64_t MR>
void QPackA(const std::int8_t* a, std::int64_t lda, std::int64_t row0,
            std::int64_t p0, std::int64_t mc, std::int64_t kc, void* apack_) {
  std::int16_t* apack = static_cast<std::int16_t*>(apack_);
  const std::int64_t kp = (kc + 1) / 2;
  for (std::int64_t r = 0; r < mc; r += MR) {
    const std::int64_t rows = std::min(MR, mc - r);
    std::int16_t* panel = apack + (r / MR) * kp * MR * 2;
    for (std::int64_t p2 = 0; p2 < kp; ++p2) {
      const std::int64_t p = 2 * p2;
      std::int16_t* dst = panel + p2 * MR * 2;
      for (std::int64_t mr = 0; mr < MR; ++mr) {
        const bool live = mr < rows;
        const std::int8_t* src = a + (row0 + r + mr) * lda + p0 + p;
        dst[mr * 2] = live ? src[0] : std::int16_t{0};
        dst[mr * 2 + 1] = (live && p + 1 < kc) ? src[1] : std::int16_t{0};
      }
    }
  }
}

template <std::int64_t NR>
void QPackB(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
            std::int64_t col0, std::int64_t kc, std::int64_t nc,
            void* bpack_) {
  std::int16_t* bpack = static_cast<std::int16_t*>(bpack_);
  const std::int64_t kp = (kc + 1) / 2;
  for (std::int64_t c = 0; c < nc; c += NR) {
    const std::int64_t cols = std::min(NR, nc - c);
    std::int16_t* panel = bpack + (c / NR) * kp * NR * 2;
    for (std::int64_t p2 = 0; p2 < kp; ++p2) {
      const std::int64_t p = 2 * p2;
      const std::int8_t* src0 = b + (p0 + p) * ldb + col0 + c;
      const std::int8_t* src1 = src0 + ldb;
      const bool has_hi = p + 1 < kc;
      std::int16_t* dst = panel + p2 * NR * 2;
      for (std::int64_t nr = 0; nr < cols; ++nr) {
        dst[nr * 2] = src0[nr];
        dst[nr * 2 + 1] = has_hi ? src1[nr] : std::int16_t{0};
      }
      for (std::int64_t nr = cols; nr < NR; ++nr) {
        dst[nr * 2] = 0;
        dst[nr * 2 + 1] = 0;
      }
    }
  }
}

}  // namespace fluid::core::simd
