#pragma once
// int8×int8→int32 GEMM microkernel dispatch — the integer sibling of
// gemm_kernel.h, selected by the *same* tier resolution (CPUID once,
// FLUID_SIMD=avx512|avx2|scalar override honored): the active int8 kernel
// is the one whose name matches the active fp32 kernel, so one knob pins
// both paths to a tier.
//
// Kernel contract: operands are packed into int16 panels with adjacent k
// steps interleaved in pairs (see qpack.h) so the x86 tiers can feed
// pmaddwd — each madd instruction multiplies two (a, b) int16 pairs and
// adds both products into an int32 lane, i.e. two k steps per
// instruction. int8 values widened to int16 cannot overflow the madd
// (|a·b| ≤ 127² and the pair sum ≤ 2·127² « 2³¹), and int32 accumulation
// is exact, so every tier — and every thread count — produces bitwise
// identical results; tests compare tiers with equality, not tolerance.

#include <cstdint>
#include <span>
#include <string_view>

namespace fluid::core::simd {

/// One int8-GEMM dispatch entry. All function pointers are non-null.
struct QGemmKernel {
  const char* name;  // matches the fp32 GemmKernel tier names

  // Register tile (MR×NR int32 accumulators) and cache blocking, same
  // roles as GemmKernel. mc is a multiple of mr; kc is even (k pairs).
  std::int64_t mr, nr;
  std::int64_t kc, mc, nc;

  /// acc[mr*nr] (row-major int32, nr stride) = Apanel × Bpanel over
  /// `kp` k-PAIRS; overwrites acc. Panels per qpack.h:
  /// ap[p2*mr*2 + i*2 + lo/hi], bp[p2*nr*2 + j*2 + lo/hi].
  void (*micro)(std::int64_t kp, const std::int16_t* ap,
                const std::int16_t* bp, std::int32_t* acc);

  /// Packs the mc×kc block of A (row-major int8, no transpose) at
  /// (row0, p0) into widened mr-row k-pair panels, zero-padded.
  void (*pack_a)(const std::int8_t* a, std::int64_t lda, std::int64_t row0,
                 std::int64_t p0, std::int64_t mc, std::int64_t kc,
                 std::int16_t* apack);

  /// Packs the kc×nc block of B (row-major int8) at (p0, col0) into
  /// widened nr-column k-pair panels, zero-padded.
  void (*pack_b)(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
                 std::int64_t col0, std::int64_t kc, std::int64_t nc,
                 std::int16_t* bpack);

  bool (*supported)();
};

/// Largest int8 accumulator tile any registered kernel uses.
inline constexpr std::int64_t kMaxQMr = 6;
inline constexpr std::int64_t kMaxQNr = 32;

/// All registered int8 kernels, best first (avx512, avx2, scalar).
std::span<const QGemmKernel* const> AllQGemmKernels();

/// Kernel with the given tier name, or nullptr if unknown.
const QGemmKernel* QGemmKernelByName(std::string_view name);

/// The kernel QGemmInt8 uses: the entry named like the active fp32 GEMM
/// kernel (which already folded CPUID + FLUID_SIMD), falling back to
/// scalar if a tier ever lacks an int8 sibling.
const QGemmKernel& ActiveQGemmKernel();

}  // namespace fluid::core::simd
