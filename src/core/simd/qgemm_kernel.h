#pragma once
// int8×int8→int32 GEMM microkernel dispatch — the integer sibling of
// gemm_kernel.h, selected by the *same* tier resolution (CPUID once,
// FLUID_SIMD=avx512|avx2|scalar override honored): the active int8 kernel
// is the one whose name matches the active fp32 kernel — except that the
// "avx512" fp32 tier upgrades to "avx512vnni" when the CPU has AVX-512
// VNNI, so one knob still pins both paths to a tier.
//
// Kernel contract: pack_a/pack_b lower int8 operands into kernel-private
// byte panels whose per-panel stride the kernel reports via
// a_panel_bytes/b_panel_bytes — the driver treats panels as opaque bytes.
// Two panel families exist today:
//
//   pmaddwd tiers (scalar/avx2/avx512): operands widened to int16 with
//   adjacent k steps interleaved in pairs (see qpack.h) so each madd
//   instruction retires two k steps. int8 widened to int16 cannot
//   overflow the madd (pair sum ≤ 2·127² « 2³¹).
//
//   vnni tier (avx512vnni): A re-biased to u8 (a+128) and quad-interleaved,
//   B kept s8 and quad-interleaved with a per-panel int32 column-sum
//   compensation row; vpdpbusd retires four k steps per instruction and
//   the micro subtracts 128·Σb to undo the bias (see qkernel_avx512vnni.cpp
//   for the exactness argument).
//
// Every family accumulates exactly in int32, so every tier — and every
// thread count — produces bitwise identical results; tests compare tiers
// with equality, not tolerance.

#include <cstdint>
#include <span>
#include <string_view>

namespace fluid::core::simd {

/// One int8-GEMM dispatch entry. All function pointers are non-null.
struct QGemmKernel {
  const char* name;  // fp32 tier names, plus upgrade tiers like "avx512vnni"

  // Register tile (MR×NR int32 accumulators) and cache blocking, same
  // roles as GemmKernel. mc is a multiple of mr.
  std::int64_t mr, nr;
  std::int64_t kc, mc, nc;

  /// Bytes of one packed mr-row A panel / nr-column B panel for a block
  /// of depth `kc`. The driver sizes scratch and strides between panels
  /// with these; the panel interior is the kernel's own business.
  std::int64_t (*a_panel_bytes)(std::int64_t kc);
  std::int64_t (*b_panel_bytes)(std::int64_t kc);

  /// acc[mr*nr] (row-major int32, nr stride) = Apanel × Bpanel over `kc`
  /// k steps; overwrites acc. ap/bp point at one packed panel each.
  void (*micro)(std::int64_t kc, const void* ap, const void* bp,
                std::int32_t* acc);

  /// Packs the mc×kc block of A (row-major int8, no transpose) at
  /// (row0, p0) into consecutive mr-row panels, padded so dead rows and
  /// k tails contribute exactly zero.
  void (*pack_a)(const std::int8_t* a, std::int64_t lda, std::int64_t row0,
                 std::int64_t p0, std::int64_t mc, std::int64_t kc,
                 void* apack);

  /// Packs the kc×nc block of B (row-major int8) at (p0, col0) into
  /// consecutive nr-column panels, padded likewise.
  void (*pack_b)(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
                 std::int64_t col0, std::int64_t kc, std::int64_t nc,
                 void* bpack);

  bool (*supported)();
};

/// Largest int8 accumulator tile any registered kernel uses.
inline constexpr std::int64_t kMaxQMr = 6;
inline constexpr std::int64_t kMaxQNr = 32;

/// All registered int8 kernels, best first (avx512vnni, avx512, avx2,
/// scalar).
std::span<const QGemmKernel* const> AllQGemmKernels();

/// Kernel with the given tier name, or nullptr if unknown.
const QGemmKernel* QGemmKernelByName(std::string_view name);

/// The kernel QGemmInt8 uses: the entry named like the active fp32 GEMM
/// kernel (which already folded CPUID + FLUID_SIMD) — upgraded to
/// "avx512vnni" when the fp32 tier is "avx512" and the CPU has VNNI —
/// falling back to scalar if a tier ever lacks an int8 sibling.
const QGemmKernel& ActiveQGemmKernel();

/// Test-only: pin the int8 kernel directly (nullptr resumes following the
/// fp32 tier). Lets tests exercise tiers the auto upgrade would shadow
/// (plain "avx512" on a VNNI host). Not thread-safe against concurrent
/// QGemmInt8 callers, like its fp32 sibling.
void SetQGemmKernelForTesting(const QGemmKernel* kernel);

}  // namespace fluid::core::simd
