// AVX-512BW int8 tier: 6×32 int32 tile — 12 zmm accumulators, 2 zmm B
// loads (32 int16 = 16 column pairs each) and one 32-bit broadcast per
// k-pair step. Requires AVX512BW for the 512-bit pmaddwd.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "core/simd/qgemm_kernel.h"
#include "core/simd/qpack.h"

namespace fluid::core::simd {

namespace {

constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 32;

__attribute__((target("avx512f,avx512bw"))) void QMicroAvx512(
    std::int64_t kc, const void* ap_, const void* bp_, std::int32_t* acc) {
  const std::int64_t kp = (kc + 1) / 2;
  const std::int16_t* ap = static_cast<const std::int16_t*>(ap_);
  const std::int16_t* bp = static_cast<const std::int16_t*>(bp_);
  __m512i c[MR][2];
  for (int i = 0; i < MR; ++i) {
    c[i][0] = _mm512_setzero_si512();
    c[i][1] = _mm512_setzero_si512();
  }
  for (std::int64_t p2 = 0; p2 < kp; ++p2) {
    const std::int16_t* a = ap + p2 * MR * 2;
    const std::int16_t* b = bp + p2 * NR * 2;
    const __m512i b0 = _mm512_loadu_si512(b);
    const __m512i b1 = _mm512_loadu_si512(b + NR);
#pragma GCC unroll 6
    for (int i = 0; i < MR; ++i) {
      std::int32_t pair;
      std::memcpy(&pair, a + i * 2, sizeof(pair));
      const __m512i ai = _mm512_set1_epi32(pair);
      c[i][0] = _mm512_add_epi32(c[i][0], _mm512_madd_epi16(ai, b0));
      c[i][1] = _mm512_add_epi32(c[i][1], _mm512_madd_epi16(ai, b1));
    }
  }
  for (int i = 0; i < MR; ++i) {
    _mm512_storeu_si512(acc + i * NR, c[i][0]);
    _mm512_storeu_si512(acc + i * NR + 16, c[i][1]);
  }
}

bool Avx512Supported() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw");
}

}  // namespace

extern const QGemmKernel kQGemmKernelAvx512 = {
    .name = "avx512",
    .mr = MR,
    .nr = NR,
    .kc = 256,
    .mc = 48,
    .nc = 1024,
    .a_panel_bytes = QPairPanelBytes<MR>,
    .b_panel_bytes = QPairPanelBytes<NR>,
    .micro = QMicroAvx512,
    .pack_a = QPackA<MR>,
    .pack_b = QPackB<NR>,
    .supported = Avx512Supported,
};

}  // namespace fluid::core::simd

#endif  // x86
