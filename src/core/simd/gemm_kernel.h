#pragma once
// GEMM microkernel dispatch: hand-written FMA kernels selected once at
// startup by CPUID, overridable with FLUID_SIMD=avx512|avx2|scalar.
//
// Each kernel entry carries its own register-tile shape (MR×NR), its
// blocking parameters (KC/MC/NC), and pack routines specialised to that
// tile, so `core::Gemm` is a single generic driver: it packs with the
// kernel's routines, calls the kernel's microkernel on zero-padded panels,
// and clips ragged edges at write-back. Results are bitwise deterministic
// across thread counts *within* a dispatch tier (the blocking constants --
// and therefore every C element's accumulation order -- are fixed per
// tier); different tiers may round differently and are compared with a
// tolerance in tests.

#include <cstdint>
#include <span>
#include <string_view>

namespace fluid::core::simd {

/// One dispatch-table entry. All function pointers are non-null.
struct GemmKernel {
  const char* name;  // "avx512" | "avx2" | "scalar"; FLUID_SIMD values.

  // Register tile: the microkernel updates an mr×nr accumulator block.
  std::int64_t mr, nr;
  // Cache blocking: kc×nr B panel L1-resident, mc×kc A block L2-resident,
  // nc bounds the packed-B working set. mc is a multiple of mr.
  std::int64_t kc, mc, nc;

  /// acc[mr*nr] (row-major, nr stride) = Apanel × Bpanel over `kc` steps;
  /// overwrites acc. Panels are k-major, zero-padded: ap[p*mr + i],
  /// bp[p*nr + j].
  void (*micro)(std::int64_t kc, const float* ap, const float* bp,
                float* acc);

  /// Packs the mc×kc block of op(A) at (row0, p0) into mr-row, k-major,
  /// zero-padded panels: apack[(r/mr)*mr*kc + p*mr + i].
  void (*pack_a)(const float* a, std::int64_t lda, bool trans,
                 std::int64_t row0, std::int64_t p0, std::int64_t mc,
                 std::int64_t kc, float* apack);

  /// Packs the kc×nc block of op(B) at (p0, col0) into nr-column, k-major,
  /// zero-padded panels: bpack[(c/nr)*nr*kc + p*nr + j].
  void (*pack_b)(const float* b, std::int64_t ldb, bool trans,
                 std::int64_t p0, std::int64_t col0, std::int64_t kc,
                 std::int64_t nc, float* bpack);

  /// True when this host's CPU (and OS) can run the kernel.
  bool (*supported)();
};

/// Largest mr×nr accumulator any registered kernel uses; the driver's
/// stack tile is sized with this.
inline constexpr std::int64_t kMaxMr = 8;
inline constexpr std::int64_t kMaxNr = 48;

/// All registered kernels, best first (avx512, avx2, scalar). Entries are
/// present even when not supported on this host; check supported().
std::span<const GemmKernel* const> AllGemmKernels();

/// Kernel with the given FLUID_SIMD name, or nullptr if unknown.
const GemmKernel* GemmKernelByName(std::string_view name);

/// Selection logic, exposed for tests. `override_name` mirrors FLUID_SIMD:
/// nullptr/empty selects the best supported kernel; a known, supported
/// name selects that kernel; an unknown or unsupported name returns
/// nullptr (the env path logs a warning and falls back to auto).
const GemmKernel* ResolveGemmKernel(const char* override_name);

/// The kernel `core::Gemm` uses. Resolved once (CPUID + FLUID_SIMD) on
/// first use and cached.
const GemmKernel& ActiveGemmKernel();

/// Test hook: force a specific kernel (nullptr re-resolves from the
/// environment on next use). Not thread-safe against concurrent Gemm
/// calls; tests restore the previous state.
void SetGemmKernelForTesting(const GemmKernel* kernel);

}  // namespace fluid::core::simd
