#include "core/error.h"

#include <sstream>

namespace fluid::core {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

void Status::ThrowIfError() const {
  if (!ok()) throw Error(ToString());
}

namespace detail {

void ThrowCheckFailure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::ostringstream os;
  os << "FLUID_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace fluid::core
