#include "core/rng.h"

#include <cmath>
#include <numbers>

#include "core/error.h"

namespace fluid::core {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits → double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  FLUID_CHECK_MSG(lo <= hi, "Uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  FLUID_CHECK_MSG(n > 0, "UniformInt requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log is finite.
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace fluid::core
