#pragma once
// Heap-allocation counters for the memory-discipline tests and benches.
//
// Referencing any symbol from this header pulls alloc_count.cpp into the
// link, which REPLACES the global operator new/delete with counting
// wrappers over malloc/free. Binaries that never include it keep the
// toolchain's default allocator — the counting layer is opt-in per
// executable, not a property of libfluid.
//
// Counters are process-wide, monotonically increasing, and relaxed:
// the intended use is delta measurement around a steady-state loop
// (allocs-per-request), not exact attribution.

#include <cstdint>

namespace fluid::core {

/// Total operator-new calls (all forms) since process start.
std::uint64_t AllocCount();

/// Total bytes requested from operator new since process start.
std::uint64_t AllocBytes();

}  // namespace fluid::core
