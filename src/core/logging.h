#pragma once
// Minimal thread-safe leveled logger.
//
// Usage:  FLUID_LOG(Info) << "trained width " << w;
// Structured key=value fields (machine-greppable, appended in order):
//         FLUID_LOG(Warn).With("event", "stale_reply").With("seq", seq)
//             << "dropping stale reply";
// The global level defaults to Warn so tests and benches stay quiet;
// examples raise it to Info. The FLUID_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off, case-insensitive) overrides the
// default once at startup — SetLogLevel still wins afterwards.

#include <mutex>
#include <sstream>
#include <string>

namespace fluid::core {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded cheaply.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

std::string_view LogLevelName(LogLevel level);

/// Parse a FLUID_LOG_LEVEL-style name ("info", "WARN", ...). Returns
/// false (and leaves `out` alone) on anything unrecognised.
bool ParseLogLevel(std::string_view name, LogLevel& out);

/// Apply the FLUID_LOG_LEVEL environment override, if set and valid.
/// Runs automatically once at startup; exposed for tests.
void ApplyLogLevelFromEnv();

namespace detail {

/// Accumulates one log line and flushes it (with a timestamp and level tag)
/// to stderr on destruction. Not for use across statements.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Append a structured ` key=value` field. Fields render after any
  /// streamed free text in call order, e.g.
  ///   [WARN master.cpp:42] dropping reply event=stale_reply seq=17
  template <typename T>
  LogLine& With(std::string_view key, const T& value) {
    fields_ << ' ' << key << '=' << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
  std::ostringstream fields_;
};

bool LogEnabled(LogLevel level);

}  // namespace detail
}  // namespace fluid::core

#define FLUID_LOG(severity)                                                  \
  if (!::fluid::core::detail::LogEnabled(::fluid::core::LogLevel::k##severity)) \
    ;                                                                        \
  else                                                                       \
    ::fluid::core::detail::LogLine(::fluid::core::LogLevel::k##severity,     \
                                   __FILE__, __LINE__)
