#pragma once
// Minimal thread-safe leveled logger.
//
// Usage:  FLUID_LOG(Info) << "trained width " << w;
// The global level defaults to Warn so tests and benches stay quiet;
// examples raise it to Info.

#include <mutex>
#include <sstream>
#include <string>

namespace fluid::core {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded cheaply.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

std::string_view LogLevelName(LogLevel level);

namespace detail {

/// Accumulates one log line and flushes it (with a timestamp and level tag)
/// to stderr on destruction. Not for use across statements.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool LogEnabled(LogLevel level);

}  // namespace detail
}  // namespace fluid::core

#define FLUID_LOG(severity)                                                  \
  if (!::fluid::core::detail::LogEnabled(::fluid::core::LogLevel::k##severity)) \
    ;                                                                        \
  else                                                                       \
    ::fluid::core::detail::LogLine(::fluid::core::LogLevel::k##severity,     \
                                   __FILE__, __LINE__)
