#include "core/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fluid::core {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_flush_mutex;
// Namespace-scope initializer: the env override lands before main() and
// before any FLUID_LOG call from static initialisation can be filtered
// by the wrong level. g_level above is constant-initialized, so the
// ordering is well-defined.
const bool g_env_level_applied = [] {
  ApplyLogLevelFromEnv();
  return true;
}();
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool ParseLogLevel(std::string_view name, LogLevel& out) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") out = LogLevel::kTrace;
  else if (lower == "debug") out = LogLevel::kDebug;
  else if (lower == "info") out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") out = LogLevel::kWarn;
  else if (lower == "error") out = LogLevel::kError;
  else if (lower == "off") out = LogLevel::kOff;
  else return false;
  return true;
}

void ApplyLogLevelFromEnv() {
  const char* env = std::getenv("FLUID_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  LogLevel level = LogLevel::kWarn;
  if (ParseLogLevel(env, level)) {
    SetLogLevel(level);
  } else {
    std::fprintf(stderr,
                 "[WARN logging] unrecognised FLUID_LOG_LEVEL '%s' ignored "
                 "(want trace|debug|info|warn|error|off)\n",
                 env);
  }
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LogLevelName(level) << " " << (base ? base + 1 : file)
          << ":" << line << "] ";
}

LogLine::~LogLine() {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard<std::mutex> lock(g_flush_mutex);
  std::fprintf(stderr, "%lld %s%s\n", static_cast<long long>(now),
               stream_.str().c_str(), fields_.str().c_str());
}

}  // namespace detail
}  // namespace fluid::core
