#include "core/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace fluid::core {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_flush_mutex;
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LogLevelName(level) << " " << (base ? base + 1 : file)
          << ":" << line << "] ";
}

LogLine::~LogLine() {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard<std::mutex> lock(g_flush_mutex);
  std::fprintf(stderr, "%lld %s\n", static_cast<long long>(now),
               stream_.str().c_str());
}

}  // namespace detail
}  // namespace fluid::core
