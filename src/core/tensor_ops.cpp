#include "core/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "core/buffer_pool.h"
#include "core/error.h"
#include "core/gemm.h"
#include "core/parallel.h"

namespace fluid::core {

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  FLUID_CHECK_MSG(a.shape() == b.shape(),
                  std::string(op) + ": shape mismatch " +
                      a.shape().ToString() + " vs " + b.shape().ToString());
}

// Elementwise kernels below this size run inline; the pool only pays off
// once a tensor spans several cache lines per worker.
constexpr std::int64_t kElementGrain = 16384;
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out(a.shape());
  auto oa = a.data();
  auto ob = b.data();
  auto oo = out.data();
  ParallelFor(0, out.numel(), kElementGrain,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) oo[i] = oa[i] + ob[i];
              });
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out(a.shape());
  auto oa = a.data();
  auto ob = b.data();
  auto oo = out.data();
  ParallelFor(0, out.numel(), kElementGrain,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) oo[i] = oa[i] - ob[i];
              });
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out(a.shape());
  auto oa = a.data();
  auto ob = b.data();
  auto oo = out.data();
  ParallelFor(0, out.numel(), kElementGrain,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) oo[i] = oa[i] * ob[i];
              });
  return out;
}

Tensor Scale(const Tensor& a, float scalar) {
  Tensor out(a.shape());
  auto oa = a.data();
  auto oo = out.data();
  ParallelFor(0, out.numel(), kElementGrain,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) oo[i] = oa[i] * scalar;
              });
  return out;
}

void Axpy(float alpha, const Tensor& b, Tensor& a) {
  CheckSameShape(a, b, "Axpy");
  auto oa = a.data();
  auto ob = b.data();
  ParallelFor(0, a.numel(), kElementGrain,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) oa[i] += alpha * ob[i];
              });
}

double Sum(const Tensor& a) {
  double s = 0.0;
  for (const float v : a.data()) s += v;
  return s;
}

double Mean(const Tensor& a) {
  return a.numel() == 0 ? 0.0 : Sum(a) / static_cast<double>(a.numel());
}

float Max(const Tensor& a) {
  FLUID_CHECK_MSG(!a.empty(), "Max of empty tensor");
  return *std::max_element(a.data().begin(), a.data().end());
}

std::int64_t Argmax(const Tensor& a) {
  FLUID_CHECK_MSG(!a.empty(), "Argmax of empty tensor");
  const auto it = std::max_element(a.data().begin(), a.data().end());
  return static_cast<std::int64_t>(it - a.data().begin());
}

std::vector<std::int64_t> ArgmaxRows(const Tensor& logits) {
  FLUID_CHECK_MSG(logits.shape().rank() == 2, "ArgmaxRows needs rank-2");
  const std::int64_t rows = logits.shape()[0];
  const std::int64_t cols = logits.shape()[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  auto d = logits.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    float best_v = d[static_cast<std::size_t>(r * cols)];
    for (std::int64_t c = 1; c < cols; ++c) {
      const float v = d[static_cast<std::size_t>(r * cols + c)];
      if (v > best_v) {
        best_v = v;
        best = c;
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

double Norm(const Tensor& a) {
  double s = 0.0;
  for (const float v : a.data()) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "MaxAbsDiff");
  float m = 0.0F;
  auto oa = a.data();
  auto ob = b.data();
  for (std::size_t i = 0; i < oa.size(); ++i) {
    m = std::max(m, std::fabs(oa[i] - ob[i]));
  }
  return m;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FLUID_CHECK_MSG(a.shape().rank() == 2 && b.shape().rank() == 2,
                  "MatMul needs rank-2 operands");
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  FLUID_CHECK_MSG(b.shape()[0] == k, "MatMul inner dimension mismatch");
  const std::int64_t n = b.shape()[1];
  Tensor out({m, n});
  Gemm(false, false, m, n, k, 1.0F, a.data().data(), k, b.data().data(), n,
       0.0F, out.data().data(), n);
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  return MaxAbsDiff(a, b) <= atol;
}

Tensor ConcatAxis0(const std::vector<const Tensor*>& parts) {
  FLUID_CHECK_MSG(!parts.empty(), "ConcatAxis0: no parts");
  FLUID_CHECK_MSG(parts[0] != nullptr, "ConcatAxis0: empty part");
  const Shape& first = parts[0]->shape();
  FLUID_CHECK_MSG(first.rank() >= 1, "ConcatAxis0: parts must have rank >= 1");
  std::int64_t rows = 0;
  for (const Tensor* p : parts) {
    FLUID_CHECK_MSG(p != nullptr && !p->empty(), "ConcatAxis0: empty part");
    const Shape& s = p->shape();
    FLUID_CHECK_MSG(s.rank() == first.rank(), "ConcatAxis0: rank mismatch");
    for (std::size_t a = 1; a < first.rank(); ++a) {
      FLUID_CHECK_MSG(s[a] == first[a], "ConcatAxis0: trailing dim mismatch");
    }
    rows += s[0];
  }
  std::int64_t dims[Shape::kMaxRank];
  std::copy(first.dims().begin(), first.dims().end(), dims);
  dims[0] = rows;
  // Pooled: the copy loop below writes every element.
  Tensor out =
      AcquireTensor(Shape(std::span<const std::int64_t>(dims, first.rank())));
  float* dst = out.data().data();
  for (const Tensor* p : parts) {
    const auto src = p->data();
    std::copy(src.begin(), src.end(), dst);
    dst += src.size();
  }
  return out;
}

Tensor SliceAxis0(const Tensor& t, std::int64_t start, std::int64_t count) {
  FLUID_CHECK_MSG(t.shape().rank() >= 1, "SliceAxis0: rank must be >= 1");
  const std::int64_t rows = t.shape()[0];
  FLUID_CHECK_MSG(start >= 0 && count >= 0 && start + count <= rows,
                  "SliceAxis0: slice out of range");
  const std::int64_t row_elems = rows == 0 ? 0 : t.numel() / rows;
  std::int64_t dims[Shape::kMaxRank];
  std::copy(t.shape().dims().begin(), t.shape().dims().end(), dims);
  dims[0] = count;
  // Pooled: fully overwritten by the row copy.
  Tensor out = AcquireTensor(
      Shape(std::span<const std::int64_t>(dims, t.shape().rank())));
  const auto src = t.data().subspan(
      static_cast<std::size_t>(start * row_elems),
      static_cast<std::size_t>(count * row_elems));
  std::copy(src.begin(), src.end(), out.data().begin());
  return out;
}

}  // namespace fluid::core
