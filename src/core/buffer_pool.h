#pragma once
// Size-class buffer pools for the serve path.
//
// The steady-state serving loop churns the same handful of buffer shapes
// per request (activations, im2col columns, wire frames, int8 staging);
// allocating them fresh each time puts the allocator and page-zeroing on
// the latency tail. This pool keeps freed storage on per-thread free
// lists, bucketed by size class, so a buffer released by one request is
// handed — still warm, already committed — to the next.
//
// Design (what callers may rely on):
//  * Size classes are powers of two in element count, so `PoolGet<T>(n)`
//    always returns a vector whose capacity is the full class size. A
//    caller that resizes within the class (the "reuse after resize" case:
//    get 300, recycle, get 500) never triggers a reallocation.
//  * Each thread has a small local cache per class (fast path, no locks).
//    Overflow — and every buffer a thread still holds when it exits —
//    spills to a shared global free list, so storage circulates between
//    threads: a client thread's request buffer, released by the scheduler
//    drain thread, comes back to the client on its next acquire.
//  * Large classes (≥ 64 KiB of storage — batch activations, im2col
//    columns, wire frames) are "shared-first": releases go straight to
//    the global list instead of the releasing thread's cache. The thread
//    pool's dynamic chunk assignment means any pool thread may need any
//    large buffer next; parking them thread-locally made ~1% of acquires
//    miss (the releasing thread hoarded them), and one mutex hop is
//    noise next to filling a 64 KB+ buffer.
//  * Pools are storage-only: contents of an acquired buffer are
//    UNSPECIFIED (only its size is set). Callers must fully overwrite.
//    Debug builds (#ifndef NDEBUG) poison recycled bytes with 0xAB so a
//    read-before-write or use-after-recycle shows up as garbage instead
//    of stale-but-plausible data, and ASan still sees every pooled byte
//    as live vector storage (the pool never hands out raw memory).
//  * FLUID_POOL=0 disables pooling (acquire allocates, recycle frees) —
//    the escape hatch for leak hunting with valgrind/massif.
//  * Oversized requests (beyond the largest class) bypass the pool.
//
// AcquireTensor/RecycleTensor layer tensor recycling on the float pool;
// PooledTensor is the RAII handle. Layer::ForwardInference implementations
// acquire their output and recycle their input, which in steady state
// ping-pongs every activation between the two hot free-list entries
// instead of allocating per layer.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/shape.h"
#include "core/tensor.h"

namespace fluid::core {

/// False when FLUID_POOL=0 (resolved once, cached): every pool becomes a
/// plain allocate/free shim.
bool PoolingEnabled();

/// A vector of `n` elements with capacity rounded up to the size class
/// (unless pooling is disabled or `n` exceeds the largest class).
/// CONTENTS UNSPECIFIED — the caller must overwrite before reading.
template <typename T>
std::vector<T> PoolGet(std::size_t n);

/// Return a buffer's storage to the pool. The vector is consumed; its
/// capacity is binned by the largest class that fits, so grown buffers
/// keep serving the class they actually fit.
template <typename T>
void PoolPut(std::vector<T>&& v);

struct PoolStats {
  std::uint64_t gets = 0;      // PoolGet calls
  std::uint64_t hits = 0;      // gets satisfied from a free list
  std::uint64_t puts = 0;      // PoolPut calls that kept the storage
  std::uint64_t discards = 0;  // puts dropped (unpooled size / disabled)
};

/// Process-wide counters (relaxed; for tests and the bench report).
PoolStats PoolStatsSnapshot();

/// Pre-fill the size class serving `n`-element requests with `count`
/// freshly allocated buffers, so the first real acquires hit the pool
/// instead of the allocator. Large ("shared-first") classes land on the
/// global list — visible to every thread — and small classes in the
/// calling thread's local cache. Serving warmup uses this to keep the
/// first requests after a deploy off the allocator's latency tail.
template <typename T>
void PoolPrewarm(std::size_t n, std::size_t count);

/// Spill the calling thread's local caches (all element types) to the
/// global lists — tests use this to hand buffers across threads
/// deterministically; thread exit does the same automatically.
void PoolFlushThisThread();

/// Drop every globally pooled buffer (local caches are untouched).
void PoolTrimGlobal();

// -- tensor recycling ----------------------------------------------------

/// Tensor whose storage comes from the float pool. CONTENTS UNSPECIFIED —
/// only for outputs that are fully overwritten before being read.
Tensor AcquireTensor(Shape shape);

/// Pooled tensor cleared to zero (for accumulator-style outputs).
Tensor AcquireZeroedTensor(Shape shape);

/// Pooled deep copy of `src` — what Tensor::Clone would produce, but with
/// storage from the float pool. The owning-copy of choice on the serve
/// path (wire submissions, shard fan-out).
Tensor AcquireTensorCopy(const Tensor& src);

/// Return a tensor's storage to the float pool. The tensor is consumed.
void RecycleTensor(Tensor&& t);

/// RAII handle: a pooled tensor that recycles itself on destruction.
/// Move-only; `release()` detaches the tensor (e.g. to return it).
class PooledTensor {
 public:
  explicit PooledTensor(Shape shape) : t_(AcquireTensor(std::move(shape))) {}
  explicit PooledTensor(Tensor&& t) : t_(std::move(t)) {}
  PooledTensor(PooledTensor&& other) noexcept : t_(std::move(other.t_)) {
    other.t_ = Tensor();
  }
  PooledTensor& operator=(PooledTensor&& other) noexcept {
    if (this != &other) {
      Recycle();
      t_ = std::move(other.t_);
      other.t_ = Tensor();
    }
    return *this;
  }
  PooledTensor(const PooledTensor&) = delete;
  PooledTensor& operator=(const PooledTensor&) = delete;
  ~PooledTensor() { Recycle(); }

  Tensor& get() { return t_; }
  const Tensor& get() const { return t_; }
  Tensor* operator->() { return &t_; }

  /// Detach: the caller now owns the tensor; the handle recycles nothing.
  Tensor release() {
    Tensor out = std::move(t_);
    t_ = Tensor();
    return out;
  }

 private:
  void Recycle() {
    if (!t_.empty()) RecycleTensor(std::move(t_));
  }
  Tensor t_;
};

}  // namespace fluid::core
