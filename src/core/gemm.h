#pragma once
// Single-precision GEMM: C = alpha * op(A) * op(B) + beta * C.
//
// A portable cache-blocked kernel — no BLAS dependency so the library
// builds offline on any box. Good enough for the paper's kernels (the
// biggest GEMM in the 100 % model is 16×144 by 144×batch).

#include <cstdint>

namespace fluid::core {

/// Row-major GEMM.
///   trans_a / trans_b: whether to use Aᵀ / Bᵀ.
///   m, n, k: dimensions of op(A) [m×k], op(B) [k×n], C [m×n].
///   lda/ldb/ldc: leading (row) strides of the *stored* matrices.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

}  // namespace fluid::core
