#pragma once
// Single-precision GEMM: C = alpha * op(A) * op(B) + beta * C.
//
// A cache-blocked, packed driver over hand-written FMA microkernels with
// runtime CPUID dispatch (AVX-512 / AVX2 / portable scalar — see
// core/simd/gemm_kernel.h and FLUID_SIMD). No BLAS dependency, so the
// library builds offline on any box.

#include <cstdint>

namespace fluid::core {

/// Row-major GEMM.
///   trans_a / trans_b: whether to use Aᵀ / Bᵀ.
///   m, n, k: dimensions of op(A) [m×k], op(B) [k×n], C [m×n].
///   lda/ldb/ldc: leading (row) strides of the *stored* matrices.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

}  // namespace fluid::core
