#pragma once
// Integer GEMM for the INT8 inference path: C[int32] = A[int8] × B[int8].
//
// The cache-blocked, packed driver mirrors core::Gemm but is integer-
// exact: int32 accumulation has no rounding, so results are bitwise
// identical across SIMD tiers AND thread counts (tests assert equality,
// not tolerance). Scaling back to float (dequantization) is the caller's
// job — quant/quant_layers.cpp folds it into the bias pass.
//
// No transpose parameters: the quantization sites control both operand
// layouts (weights are packed at quantization time), so op(A)/op(B)
// plumbing would be dead weight.

#include <cstdint>

namespace fluid::core {

/// Row-major integer GEMM, overwrite semantics:
///   C [m×n, int32, ldc] = A [m×k, int8, lda] × B [k×n, int8, ldb].
void QGemmInt8(std::int64_t m, std::int64_t n, std::int64_t k,
               const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
               std::int64_t ldb, std::int32_t* c, std::int64_t ldc);

}  // namespace fluid::core
