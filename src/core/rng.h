#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All stochastic code in the library (weight init, data synthesis,
// shuffling, failure injection) draws from an explicitly seeded Rng so every
// experiment is reproducible from a single seed. The generator is
// xoshiro256++ (Blackman & Vigna), which is far faster than std::mt19937 and
// has no measurable bias for our use.

#include <cstdint>
#include <vector>

namespace fluid::core {

class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64 so that nearby
  /// seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  std::uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double Normal();

  /// Normal with given mean / stddev.
  double Normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Derive an independent child stream (for per-worker determinism).
  Rng Split();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fluid::core
