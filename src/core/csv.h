#pragma once
// Minimal CSV writer for experiment results (RFC-4180-style quoting).
// Benches write their tables through this so EXPERIMENTS.md numbers can be
// regenerated and diffed mechanically.

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"

namespace fluid::core {

class CsvWriter {
 public:
  /// Column headers fix the row width; every row must match.
  explicit CsvWriter(std::vector<std::string> header);

  /// Append one row of cells (stringified; quoting applied on render).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: mixed text/number row.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& writer) : writer_(writer) {}
    RowBuilder& Text(std::string_view value);
    RowBuilder& Number(double value, int precision = 4);
    RowBuilder& Integer(std::int64_t value);
    /// Commits the row; the builder must not be reused afterwards.
    void Done();

   private:
    CsvWriter& writer_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(*this); }

  std::size_t num_rows() const { return rows_.size(); }

  /// Render the whole document.
  std::string ToString() const;

  /// Write to a file (atomic).
  Status WriteTo(const std::string& path) const;

 private:
  static std::string Quote(const std::string& cell);
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fluid::core
