#include "core/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded == 0 ? align : padded);
}

}  // namespace

namespace fluid::core {

std::uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t AllocBytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

}  // namespace fluid::core

// Replaceable global allocation functions ([new.delete]): counting
// wrappers over malloc/free. malloc is still the underlying allocator, so
// sanitizers (ASan/TSan) keep intercepting every allocation as usual.

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
