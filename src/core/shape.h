#pragma once
// Dense tensor shape: an ordered list of extents, row-major semantics.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fluid::core {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  /// Number of axes.
  std::size_t rank() const { return dims_.size(); }

  /// Extent of axis `axis` (supports negative axes, Python style).
  std::int64_t dim(std::int64_t axis) const;

  std::int64_t operator[](std::size_t axis) const { return dims_[axis]; }

  /// Total element count (1 for rank-0).
  std::int64_t numel() const;

  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Row-major strides, in elements.
  std::vector<std::int64_t> Strides() const;

  /// Flat offset of a multi-index; checked.
  std::int64_t Offset(const std::vector<std::int64_t>& index) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 28, 28]"
  std::string ToString() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace fluid::core
