#pragma once
// Dense tensor shape: an ordered list of extents, row-major semantics.
//
// Extents live in a fixed inline array (kMaxRank) rather than a heap
// vector: tensors are created on the per-request serve path (pooled
// activations, wire decode, batch slices), and a heap-allocating Shape
// would put one malloc under every Tensor even when the data storage
// itself comes from the buffer pool. Rank 4 ([n, C, H, W]) is the deepest
// shape the library uses; 6 leaves headroom.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace fluid::core {

class Shape {
 public:
  /// Deepest representable shape. Constructing a deeper one throws.
  static constexpr std::size_t kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(const std::vector<std::int64_t>& dims);
  explicit Shape(std::span<const std::int64_t> dims);

  /// Number of axes.
  std::size_t rank() const { return rank_; }

  /// Extent of axis `axis` (supports negative axes, Python style).
  std::int64_t dim(std::int64_t axis) const;

  std::int64_t operator[](std::size_t axis) const { return dims_[axis]; }

  /// Total element count (1 for rank-0).
  std::int64_t numel() const;

  std::span<const std::int64_t> dims() const { return {dims_, rank_}; }

  /// Row-major strides, in elements.
  std::vector<std::int64_t> Strides() const;

  /// Flat offset of a multi-index; checked.
  std::int64_t Offset(const std::vector<std::int64_t>& index) const;

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 28, 28]"
  std::string ToString() const;

 private:
  void Init(std::span<const std::int64_t> dims);

  std::int64_t dims_[kMaxRank] = {};
  std::size_t rank_ = 0;
};

}  // namespace fluid::core
