#pragma once
// Binary serialization used for checkpoints and the distributed wire
// protocol. Little-endian, length-prefixed, versioned by the caller.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/tensor.h"

namespace fluid::core {

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopt an existing buffer's storage: the contents are cleared but the
  /// capacity is kept, so encode paths that recycle frame buffers (the
  /// pooled wire path) append without reallocating.
  explicit ByteWriter(std::vector<std::uint8_t> buffer)
      : buffer_(std::move(buffer)) {
    buffer_.clear();
  }

  void WriteU8(std::uint8_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  /// Length-prefixed (u32) string.
  void WriteString(std::string_view s);
  /// Length-prefixed (u64) raw bytes.
  void WriteBytes(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u64 count) float block.
  void WriteFloats(std::span<const float> values);
  /// Shape (rank + dims) then the float payload.
  void WriteTensor(const Tensor& t);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked reader over a byte span. All Read* methods return a
/// Status-checked value via StatusOr-free API: they throw-free fail by
/// returning Status from TryRead*; convenience Read* throw on corruption.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool AtEnd() const { return remaining() == 0; }

  Status TryReadU8(std::uint8_t& out);
  Status TryReadU32(std::uint32_t& out);
  Status TryReadU64(std::uint64_t& out);
  Status TryReadI64(std::int64_t& out);
  Status TryReadF32(float& out);
  Status TryReadF64(double& out);
  Status TryReadString(std::string& out);
  /// Byte/float block readers fill `out` from the buffer pool when it has
  /// no usable capacity, so steady-state decode paths stop allocating;
  /// int8 overload decodes quantized payloads without a staging copy.
  Status TryReadBytes(std::vector<std::uint8_t>& out);
  Status TryReadBytes(std::vector<std::int8_t>& out);
  Status TryReadFloats(std::vector<float>& out);
  Status TryReadTensor(Tensor& out);

  // Throwing conveniences for checkpoint paths where corruption is fatal.
  std::uint8_t ReadU8();
  std::uint32_t ReadU32();
  std::uint64_t ReadU64();
  std::int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  Tensor ReadTensor();

 private:
  Status Take(std::size_t n, const std::uint8_t*& ptr);
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Write a byte buffer to a file, atomically (tmp + rename).
Status WriteFile(const std::string& path, std::span<const std::uint8_t> bytes);

/// Read a whole file into a byte buffer.
StatusOr<std::vector<std::uint8_t>> ReadFile(const std::string& path);

}  // namespace fluid::core
