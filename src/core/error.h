#pragma once
// Error handling primitives for the fluid library.
//
// Policy (see DESIGN.md §6): construction/programmer errors throw
// fluid::core::Error; recoverable runtime conditions on hot or distributed
// paths use Status / StatusOr so callers can branch without unwinding.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace fluid::core {

/// Exception type thrown for precondition violations and unrecoverable
/// misuse of the API (shape mismatches, out-of-range slices, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Category of a Status; deliberately small — this is a research library,
/// not an RPC framework.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnavailable,    // peer dead / link down
  kDeadlineExceeded,
  kDataLoss,       // corrupt frame / truncated file
  kInternal,
};

/// Human-readable name of a status code (stable, for logs and tests).
std::string_view StatusCodeName(StatusCode code);

/// Lightweight success-or-error value. Cheap to copy when OK.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status DataLoss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  /// Throws Error if not OK. For call sites where failure is a bug.
  void ThrowIfError() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or a Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    require();
    return *value_;
  }
  const T& value() const& {
    require();
    return *value_;
  }
  T&& value() && {
    require();
    return std::move(*value_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void require() const {
    if (!value_.has_value()) {
      throw Error("StatusOr has no value: " + status_.ToString());
    }
  }
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

namespace detail {
[[noreturn]] void ThrowCheckFailure(const char* expr, const char* file, int line,
                                    const std::string& message);
}  // namespace detail

}  // namespace fluid::core

/// Precondition check: throws fluid::core::Error with location info.
/// Always on (not compiled out in release) — this library favours loud
/// failure over silent corruption; the hot loops avoid per-element checks
/// by checking once per call instead.
#define FLUID_CHECK(expr)                                                        \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::fluid::core::detail::ThrowCheckFailure(#expr, __FILE__, __LINE__, "");   \
    }                                                                            \
  } while (false)

#define FLUID_CHECK_MSG(expr, msg)                                               \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::fluid::core::detail::ThrowCheckFailure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                            \
  } while (false)

/// Propagate a non-OK Status to the caller.
#define FLUID_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::fluid::core::Status _st = (expr);      \
    if (!_st.ok()) return _st;               \
  } while (false)
