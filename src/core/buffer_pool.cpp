#include "core/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fluid::core {

namespace {

// Classes are 2^8 .. 2^26 elements; smaller requests round up to the
// smallest class, larger ones bypass the pool entirely.
constexpr int kMinClassLog = 8;
constexpr int kMaxClassLog = 26;
constexpr int kNumClasses = kMaxClassLog - kMinClassLog + 1;

// Per-thread buffers kept per class before spilling to the global list,
// and the global bound per class (beyond which puts free the storage).
constexpr std::size_t kLocalCap = 8;
constexpr std::size_t kGlobalCap = 64;

// Classes whose storage is at least this many bytes are shared-first:
// puts go straight to the global list so no thread hoards them. The
// threshold is in bytes, not elements — hoarding cost scales with the
// storage a thread parks, and a 128 KB float buffer is exactly as
// expensive to re-fill as a 128 KB int8 one. Below this, the lock-free
// local cache wins (one mutex hop is noise next to filling a 64 KB+
// buffer, but not next to a 2 KB one).
constexpr std::size_t kSharedFirstBytes = std::size_t{1} << 16;  // 64 KiB

constexpr std::size_t ClassSize(int c);

template <typename T>
constexpr bool SharedFirstClass(int c) {
  return ClassSize(c) * sizeof(T) >= kSharedFirstBytes;
}

constexpr std::size_t ClassSize(int c) {
  return std::size_t{1} << (kMinClassLog + c);
}

// Smallest class holding `n` elements, or -1 when `n` is beyond the
// largest class (unpooled).
int ClassForRequest(std::size_t n) {
  int log = std::bit_width(n - 1);  // callers guarantee n >= 1
  if (log < kMinClassLog) log = kMinClassLog;
  if (log > kMaxClassLog) return -1;
  return log - kMinClassLog;
}

// Largest class a buffer of `capacity` elements can serve, or -1 when it
// is smaller than the smallest class. Oversized capacities bin at the top
// class (capacity >= class size still holds).
int ClassForCapacity(std::size_t capacity) {
  if (capacity < ClassSize(0)) return -1;
  int log = std::bit_width(capacity) - 1;  // floor log2
  if (log > kMaxClassLog) log = kMaxClassLog;
  return log - kMinClassLog;
}

std::atomic<std::uint64_t> g_gets{0};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_puts{0};
std::atomic<std::uint64_t> g_discards{0};

template <typename T>
struct GlobalPool {
  std::mutex mu;
  std::vector<std::vector<T>> lists[kNumClasses];

  static GlobalPool& Instance() {
    static GlobalPool* pool = new GlobalPool();  // leaked: outlives
    return *pool;                                // thread_local caches
  }
};

template <typename T>
struct LocalCache {
  std::vector<std::vector<T>> slots[kNumClasses];

  // Thread exit spills to the global lists so storage keeps circulating
  // (a short-lived client thread's buffers serve the next thread).
  ~LocalCache() { Flush(); }

  void Flush() {
    auto& global = GlobalPool<T>::Instance();
    std::lock_guard<std::mutex> lock(global.mu);
    for (int c = 0; c < kNumClasses; ++c) {
      for (auto& v : slots[c]) {
        if (global.lists[c].size() < kGlobalCap) {
          global.lists[c].push_back(std::move(v));
        }
      }
      slots[c].clear();
    }
  }
};

template <typename T>
LocalCache<T>& Local() {
  thread_local LocalCache<T> cache;
  return cache;
}

}  // namespace

bool PoolingEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("FLUID_POOL");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

template <typename T>
std::vector<T> PoolGet(std::size_t n) {
  if (n == 0) return {};
  g_gets.fetch_add(1, std::memory_order_relaxed);
  const int c = PoolingEnabled() ? ClassForRequest(n) : -1;
  if (c < 0) return std::vector<T>(n);

  std::vector<T> v;
  auto& slot = Local<T>().slots[c];
  if (!slot.empty()) {
    v = std::move(slot.back());
    slot.pop_back();
    g_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto& global = GlobalPool<T>::Instance();
    std::lock_guard<std::mutex> lock(global.mu);
    if (!global.lists[c].empty()) {
      v = std::move(global.lists[c].back());
      global.lists[c].pop_back();
      g_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (v.capacity() < ClassSize(c)) v.reserve(ClassSize(c));
  // Shrinking is free for the trivially-destructible element types the
  // pool serves; only growing past the recycled size value-initialises
  // the tail. Contents stay unspecified either way.
  v.resize(n);
  return v;
}

template <typename T>
void PoolPut(std::vector<T>&& v) {
  std::vector<T> victim = std::move(v);
  const int c =
      PoolingEnabled() ? ClassForCapacity(victim.capacity()) : -1;
  if (c < 0) {
    g_discards.fetch_add(1, std::memory_order_relaxed);
    return;  // victim's destructor frees the storage
  }
#ifndef NDEBUG
  // Poison recycled contents so a use-after-recycle reads garbage, not
  // stale-but-plausible data. Release builds skip this (it is O(n) on
  // the hot path); the ASan CI job runs the pools with poisoning on.
  if (!victim.empty()) {
    std::memset(victim.data(), 0xAB, victim.size() * sizeof(T));
  }
#endif
  if (!SharedFirstClass<T>(c)) {
    auto& slot = Local<T>().slots[c];
    if (slot.size() < kLocalCap) {
      slot.push_back(std::move(victim));
      g_puts.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  auto& global = GlobalPool<T>::Instance();
  std::lock_guard<std::mutex> lock(global.mu);
  if (global.lists[c].size() < kGlobalCap) {
    global.lists[c].push_back(std::move(victim));
    g_puts.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_discards.fetch_add(1, std::memory_order_relaxed);
  }
}

template <typename T>
void PoolPrewarm(std::size_t n, std::size_t count) {
  if (n == 0 || !PoolingEnabled()) return;
  const int c = ClassForRequest(n);
  if (c < 0) return;  // beyond the largest class: unpooled anyway
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<T> v;
    v.reserve(ClassSize(c));
    PoolPut(std::move(v));
  }
}

template std::vector<float> PoolGet<float>(std::size_t);
template std::vector<std::int8_t> PoolGet<std::int8_t>(std::size_t);
template std::vector<std::uint8_t> PoolGet<std::uint8_t>(std::size_t);
template std::vector<std::int16_t> PoolGet<std::int16_t>(std::size_t);
template std::vector<std::int32_t> PoolGet<std::int32_t>(std::size_t);
template void PoolPut<float>(std::vector<float>&&);
template void PoolPut<std::int8_t>(std::vector<std::int8_t>&&);
template void PoolPut<std::uint8_t>(std::vector<std::uint8_t>&&);
template void PoolPut<std::int16_t>(std::vector<std::int16_t>&&);
template void PoolPut<std::int32_t>(std::vector<std::int32_t>&&);
template void PoolPrewarm<float>(std::size_t, std::size_t);
template void PoolPrewarm<std::int8_t>(std::size_t, std::size_t);
template void PoolPrewarm<std::uint8_t>(std::size_t, std::size_t);
template void PoolPrewarm<std::int16_t>(std::size_t, std::size_t);
template void PoolPrewarm<std::int32_t>(std::size_t, std::size_t);

PoolStats PoolStatsSnapshot() {
  PoolStats s;
  s.gets = g_gets.load(std::memory_order_relaxed);
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.puts = g_puts.load(std::memory_order_relaxed);
  s.discards = g_discards.load(std::memory_order_relaxed);
  return s;
}

void PoolFlushThisThread() {
  Local<float>().Flush();
  Local<std::int8_t>().Flush();
  Local<std::uint8_t>().Flush();
  Local<std::int16_t>().Flush();
  Local<std::int32_t>().Flush();
}

namespace {
template <typename T>
void TrimGlobal() {
  auto& global = GlobalPool<T>::Instance();
  std::lock_guard<std::mutex> lock(global.mu);
  for (auto& list : global.lists) list.clear();
}
}  // namespace

void PoolTrimGlobal() {
  TrimGlobal<float>();
  TrimGlobal<std::int8_t>();
  TrimGlobal<std::uint8_t>();
  TrimGlobal<std::int16_t>();
  TrimGlobal<std::int32_t>();
}

Tensor AcquireTensor(Shape shape) {
  const auto n = static_cast<std::size_t>(shape.numel());
  return Tensor(std::move(shape), PoolGet<float>(n));
}

Tensor AcquireZeroedTensor(Shape shape) {
  Tensor t = AcquireTensor(std::move(shape));
  auto d = t.data();
  std::memset(d.data(), 0, d.size() * sizeof(float));
  return t;
}

Tensor AcquireTensorCopy(const Tensor& src) {
  Tensor t = AcquireTensor(src.shape());
  const auto s = src.data();
  std::copy(s.begin(), s.end(), t.data().begin());
  return t;
}

void RecycleTensor(Tensor&& t) { PoolPut(std::move(t).TakeData()); }

}  // namespace fluid::core
