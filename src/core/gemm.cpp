#include "core/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/simd/gemm_kernel.h"

namespace fluid::core {

namespace {

// Accumulates alpha·acc into the rows×cols corner of C at the given
// pointer. `acc_ld` is the kernel's NR (the packed accumulator stride).
inline void WriteBack(const float* acc, std::int64_t acc_ld, float alpha,
                      std::int64_t rows, std::int64_t cols, float* c,
                      std::int64_t ldc) {
  for (std::int64_t mr = 0; mr < rows; ++mr) {
    float* crow = c + mr * ldc;
    const float* arow = acc + mr * acc_ld;
    for (std::int64_t nr = 0; nr < cols; ++nr) {
      crow[nr] += alpha * arow[nr];
    }
  }
}

// Per-thread packing scratch; reused across calls so small GEMMs (the
// library's common case: 16×144-ish conv lowerings) never allocate.
thread_local std::vector<float> tl_apack;
thread_local std::vector<float> tl_bpack;

// Tags for the packed-A cache: parallel tasks are (row block × jr group)
// pairs, so several tasks on one thread may share a row block. Each
// (jc, pc) iteration gets a fresh epoch; a task repacks A only when its
// thread's scratch holds a different (epoch, block). Task indices are
// blk-major, so consecutive tasks on a thread usually hit the cache and a
// single-threaded run packs each A block exactly once, like the pure
// M-partitioned driver did.
std::atomic<std::uint64_t> g_pack_epoch{0};
thread_local std::uint64_t tl_apack_epoch = 0;
thread_local std::int64_t tl_apack_blk = -1;

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  FLUID_CHECK_MSG(m >= 0 && n >= 0 && k >= 0, "Gemm: negative dimension");
  if (m == 0 || n == 0) return;

  // Scale / clear C first so the accumulation passes are pure adds.
  // (beta == 0 overwrites C even if it holds garbage or NaN; beta == 1
  // skips the pass — accumulate-GEMMs shouldn't pay a pool dispatch for
  // an empty loop.)
  if (beta != 1.0F) {
    ParallelFor(0, m, 16, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        float* row = c + i * ldc;
        if (beta == 0.0F) {
          for (std::int64_t j = 0; j < n; ++j) row[j] = 0.0F;
        } else {
          for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
        }
      }
    });
  }
  if (k == 0 || alpha == 0.0F) return;

  // Blocking parameters, pack formats, and the microkernel all come from
  // the dispatch entry (CPUID-selected once, FLUID_SIMD override); the
  // driver below is tier-agnostic. Within a tier the blocking constants
  // are fixed, so every C element's accumulation order — and therefore
  // the result — is bitwise independent of the thread count.
  const simd::GemmKernel& kern = simd::ActiveGemmKernel();
  const std::int64_t MR = kern.mr, NR = kern.nr;
  const std::int64_t KC = kern.kc, MC = kern.mc, NC = kern.nc;

  // Shared packed-B block, sized to the actual problem (not the blocking
  // maxima). The buffer is only read inside the parallel region below, and
  // each (jc, pc) block finishes before the next is packed, so sharing the
  // caller's thread-local buffer is safe.
  auto& bpack = tl_bpack;
  core::EnsureScratch(bpack, std::min(KC, k) *
                                 ((std::min(NC, n) + NR - 1) / NR * NR));
  const std::int64_t m_blocks = (m + MC - 1) / MC;
  // Parallel tasks are (MC row block × jr panel group) pairs, so short,
  // wide GEMMs — the fused conv lowerings have only Cout ≤ MC rows —
  // still spread across cores. Group extent is a fixed multiple of NR,
  // so task boundaries never depend on the thread count.
  const std::int64_t jr_task_cols = 4 * NR;

  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_padded = (nc + NR - 1) / NR * NR;
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      kern.pack_b(b, ldb, trans_b, pc, jc, kc, nc, bpack.data());

      // Tasks own disjoint (row block, column group) tiles of C; packed B
      // is shared read-only. Every C element is accumulated by exactly
      // one task, in strictly increasing k order, so the floating-point
      // order per element never depends on the thread count.
      const std::uint64_t epoch =
          g_pack_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
      const std::int64_t jr_tasks =
          (nc_padded + jr_task_cols - 1) / jr_task_cols;
      ParallelForEach(0, m_blocks * jr_tasks, 1, [&](std::int64_t task) {
        const std::int64_t blk = task / jr_tasks;
        const std::int64_t jt = task % jr_tasks;
        const std::int64_t ic = blk * MC;
        const std::int64_t mc = std::min(MC, m - ic);
        const std::int64_t mc_padded = (mc + MR - 1) / MR * MR;
        auto& apack = tl_apack;
        if (tl_apack_epoch != epoch || tl_apack_blk != blk) {
          core::EnsureScratch(apack, mc_padded * kc);
          kern.pack_a(a, lda, trans_a, ic, pc, mc, kc, apack.data());
          tl_apack_epoch = epoch;
          tl_apack_blk = blk;
        }

        alignas(64) float acc[simd::kMaxMr * simd::kMaxNr];
        const std::int64_t jr_end =
            std::min(jr_task_cols * (jt + 1), nc_padded);
        for (std::int64_t jr = jt * jr_task_cols; jr < jr_end; jr += NR) {
          const float* bp = bpack.data() + jr * kc;
          const std::int64_t cols = std::min(NR, nc - jr);
          for (std::int64_t ir = 0; ir < mc; ir += MR) {
            const std::int64_t rows = std::min(MR, mc - ir);
            kern.micro(kc, apack.data() + ir * kc, bp, acc);
            WriteBack(acc, NR, alpha, rows, cols,
                      c + (ic + ir) * ldc + jc + jr, ldc);
          }
        }
      });
    }
  }
}

}  // namespace fluid::core
