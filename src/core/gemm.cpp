#include "core/gemm.h"

#include <algorithm>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"

namespace fluid::core {

namespace {

// BLIS-style blocking parameters, sized for the L1/L2 of a typical
// desktop/server core (see docs/perf.md for the derivation):
//   * the microkernel updates an MR×NR tile of C held in registers;
//   * a KC×NR panel of packed B (~16 KB) stays L1-resident;
//   * an MC×KC block of packed A (~48 KB) stays L2-resident;
//   * NC bounds the packed-B working set (~NC×KC floats) to L3.
constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 16;
constexpr std::int64_t KC = 256;
constexpr std::int64_t MC = 48;
constexpr std::int64_t NC = 1024;

// Reads element (i, j) of op(M) given storage pointer/stride.
inline float At(const float* m, std::int64_t ld, bool trans, std::int64_t i,
                std::int64_t j) {
  return trans ? m[j * ld + i] : m[i * ld + j];
}

// Packs the mc×kc block of op(A) at (row0, p0) into MR-row panels:
// panel r holds rows [r*MR, r*MR+MR), laid out k-major so the microkernel
// streams it contiguously: apack[r][p*MR + mr]. Rows beyond mc are
// zero-padded (they are computed and discarded, never written back).
void PackA(const float* a, std::int64_t lda, bool trans, std::int64_t row0,
           std::int64_t p0, std::int64_t mc, std::int64_t kc, float* apack) {
  for (std::int64_t r = 0; r < mc; r += MR) {
    const std::int64_t rows = std::min(MR, mc - r);
    float* panel = apack + r * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      float* dst = panel + p * MR;
      for (std::int64_t mr = 0; mr < rows; ++mr) {
        dst[mr] = At(a, lda, trans, row0 + r + mr, p0 + p);
      }
      for (std::int64_t mr = rows; mr < MR; ++mr) dst[mr] = 0.0F;
    }
  }
}

// Packs the kc×nc block of op(B) at (p0, col0) into NR-column panels,
// k-major: bpack[c][p*NR + nr]. Columns beyond nc are zero-padded.
void PackB(const float* b, std::int64_t ldb, bool trans, std::int64_t p0,
           std::int64_t col0, std::int64_t kc, std::int64_t nc, float* bpack) {
  for (std::int64_t c = 0; c < nc; c += NR) {
    const std::int64_t cols = std::min(NR, nc - c);
    float* panel = bpack + c * kc;
    if (!trans && cols == NR) {
      // Hot case: contiguous row segments of B.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + col0 + c;
        float* dst = panel + p * NR;
        for (std::int64_t nr = 0; nr < NR; ++nr) dst[nr] = src[nr];
      }
      continue;
    }
    for (std::int64_t p = 0; p < kc; ++p) {
      float* dst = panel + p * NR;
      for (std::int64_t nr = 0; nr < cols; ++nr) {
        dst[nr] = At(b, ldb, trans, p0 + p, col0 + c + nr);
      }
      for (std::int64_t nr = cols; nr < NR; ++nr) dst[nr] = 0.0F;
    }
  }
}

// Register-tiled microkernel: acc[MR][NR] = Apanel × Bpanel over kc steps.
// Fixed trip counts so the compiler keeps the tile in vector registers;
// the k-loop runs in strictly increasing p order, which (together with the
// fixed KC block boundaries) is what makes results independent of the
// thread count. No zero-skip branches: 0 × NaN must stay NaN.
inline void MicroKernel(std::int64_t kc, const float* ap, const float* bp,
                        float* acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::int64_t mr = 0; mr < MR; ++mr) {
      const float av = a[mr];
      float* row = acc + mr * NR;
      for (std::int64_t nr = 0; nr < NR; ++nr) row[nr] += av * b[nr];
    }
  }
}

// Accumulates alpha·acc into the rows×cols corner of C at (i0, j0).
inline void WriteBack(const float* acc, float alpha, std::int64_t rows,
                      std::int64_t cols, float* c, std::int64_t ldc) {
  for (std::int64_t mr = 0; mr < rows; ++mr) {
    float* crow = c + mr * ldc;
    const float* arow = acc + mr * NR;
    for (std::int64_t nr = 0; nr < cols; ++nr) {
      crow[nr] += alpha * arow[nr];
    }
  }
}

// Per-thread packing scratch; reused across calls so small GEMMs (the
// library's common case: 16×144-ish conv lowerings) never allocate.
thread_local std::vector<float> tl_apack;
thread_local std::vector<float> tl_bpack;


}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  FLUID_CHECK_MSG(m >= 0 && n >= 0 && k >= 0, "Gemm: negative dimension");
  if (m == 0 || n == 0) return;

  // Scale / clear C first so the accumulation passes are pure adds.
  // (beta == 0 overwrites C even if it holds garbage or NaN; beta == 1
  // skips the pass — accumulate-GEMMs shouldn't pay a pool dispatch for
  // an empty loop.)
  if (beta != 1.0F) {
    ParallelFor(0, m, 16, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        float* row = c + i * ldc;
        if (beta == 0.0F) {
          for (std::int64_t j = 0; j < n; ++j) row[j] = 0.0F;
        } else {
          for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
        }
      }
    });
  }
  if (k == 0 || alpha == 0.0F) return;

  // Shared packed-B block, sized to the actual problem (not the blocking
  // maxima). The buffer is only read inside the parallel region below, and
  // each (jc, pc) block finishes before the next is packed, so sharing the
  // caller's thread-local buffer is safe.
  auto& bpack = tl_bpack;
  core::EnsureScratch(bpack, std::min(KC, k) * ((std::min(NC, n) + NR - 1) / NR * NR));
  const std::int64_t m_blocks = (m + MC - 1) / MC;

  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_padded = (nc + NR - 1) / NR * NR;
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      PackB(b, ldb, trans_b, pc, jc, kc, nc, bpack.data());

      // Threads own disjoint MC row blocks of C; packed B is shared
      // read-only. Block boundaries are fixed by MC, so the floating-point
      // order per C element never depends on the thread count.
      ParallelForEach(0, m_blocks, 1, [&](std::int64_t blk) {
        const std::int64_t ic = blk * MC;
        const std::int64_t mc = std::min(MC, m - ic);
        const std::int64_t mc_padded = (mc + MR - 1) / MR * MR;
        auto& apack = tl_apack;
        core::EnsureScratch(apack, mc_padded * kc);
        PackA(a, lda, trans_a, ic, pc, mc, kc, apack.data());

        alignas(64) float acc[MR * NR];
        for (std::int64_t jr = 0; jr < nc_padded; jr += NR) {
          const float* bp = bpack.data() + jr * kc;
          const std::int64_t cols = std::min(NR, nc - jr);
          for (std::int64_t ir = 0; ir < mc; ir += MR) {
            const std::int64_t rows = std::min(MR, mc - ir);
            std::fill(acc, acc + MR * NR, 0.0F);
            MicroKernel(kc, apack.data() + ir * kc, bp, acc);
            WriteBack(acc, alpha, rows, cols, c + (ic + ir) * ldc + jc + jr,
                      ldc);
          }
        }
      });
    }
  }
}

}  // namespace fluid::core
