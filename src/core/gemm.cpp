#include "core/gemm.h"

#include <vector>

#include "core/error.h"

namespace fluid::core {

namespace {

// Reads element (i, j) of op(M) given storage pointer/stride.
inline float At(const float* m, std::int64_t ld, bool trans, std::int64_t i,
                std::int64_t j) {
  return trans ? m[j * ld + i] : m[i * ld + j];
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  FLUID_CHECK_MSG(m >= 0 && n >= 0 && k >= 0, "Gemm: negative dimension");
  if (m == 0 || n == 0) return;

  // Scale / clear C first so the accumulation loop is pure adds.
  for (std::int64_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    if (beta == 0.0F) {
      for (std::int64_t j = 0; j < n; ++j) row[j] = 0.0F;
    } else if (beta != 1.0F) {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0F) return;

  // Fast path: no transposes — i,p,j loop order streams B and C rows.
  if (!trans_a && !trans_b) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0F) continue;
        const float* brow = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }

  // Transposed paths: pack op(A) rows / access op(B) via At().
  // Pack Bᵀ columns once when B is transposed and reasonably small; this
  // turns the inner loop into a contiguous stream.
  if (trans_b) {
    std::vector<float> bpack(static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(n));
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t j = 0; j < n; ++j) {
        bpack[static_cast<std::size_t>(p * n + j)] = b[j * ldb + p];
      }
    }
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = alpha * At(a, lda, trans_a, i, p);
        if (av == 0.0F) continue;
        const float* brow = bpack.data() + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }

  // trans_a only.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = alpha * a[p * lda + i];
      if (av == 0.0F) continue;
      const float* brow = b + p * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace fluid::core
