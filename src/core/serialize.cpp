#include "core/serialize.h"

#include <cstdio>
#include <cstring>

#include "core/buffer_pool.h"

namespace fluid::core {

namespace {

template <typename T>
void AppendLE(std::vector<std::uint8_t>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));  // host is little-endian on all targets we support
  buf.insert(buf.end(), raw, raw + sizeof(T));
}

}  // namespace

void ByteWriter::WriteU8(std::uint8_t v) { buffer_.push_back(v); }
void ByteWriter::WriteU32(std::uint32_t v) { AppendLE(buffer_, v); }
void ByteWriter::WriteU64(std::uint64_t v) { AppendLE(buffer_, v); }
void ByteWriter::WriteI64(std::int64_t v) { AppendLE(buffer_, v); }
void ByteWriter::WriteF32(float v) { AppendLE(buffer_, v); }
void ByteWriter::WriteF64(double v) { AppendLE(buffer_, v); }

void ByteWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::WriteBytes(std::span<const std::uint8_t> bytes) {
  WriteU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteFloats(std::span<const float> values) {
  WriteU64(values.size());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(values.data());
  buffer_.insert(buffer_.end(), raw, raw + values.size() * sizeof(float));
}

void ByteWriter::WriteTensor(const Tensor& t) {
  WriteU32(static_cast<std::uint32_t>(t.shape().rank()));
  for (const auto d : t.shape().dims()) WriteI64(d);
  WriteFloats(t.data());
}

Status ByteReader::Take(std::size_t n, const std::uint8_t*& ptr) {
  if (remaining() < n) {
    return Status::DataLoss("ByteReader: truncated input (need " +
                            std::to_string(n) + " bytes, have " +
                            std::to_string(remaining()) + ")");
  }
  ptr = bytes_.data() + pos_;
  pos_ += n;
  return Status::Ok();
}

#define FLUID_DEFINE_TRYREAD(NAME, TYPE)                      \
  Status ByteReader::TryRead##NAME(TYPE& out) {               \
    const std::uint8_t* p = nullptr;                          \
    FLUID_RETURN_IF_ERROR(Take(sizeof(TYPE), p));             \
    std::memcpy(&out, p, sizeof(TYPE));                       \
    return Status::Ok();                                      \
  }

FLUID_DEFINE_TRYREAD(U8, std::uint8_t)
FLUID_DEFINE_TRYREAD(U32, std::uint32_t)
FLUID_DEFINE_TRYREAD(U64, std::uint64_t)
FLUID_DEFINE_TRYREAD(I64, std::int64_t)
FLUID_DEFINE_TRYREAD(F32, float)
FLUID_DEFINE_TRYREAD(F64, double)
#undef FLUID_DEFINE_TRYREAD

Status ByteReader::TryReadString(std::string& out) {
  std::uint32_t len = 0;
  FLUID_RETURN_IF_ERROR(TryReadU32(len));
  const std::uint8_t* p = nullptr;
  FLUID_RETURN_IF_ERROR(Take(len, p));
  out.assign(reinterpret_cast<const char*>(p), len);
  return Status::Ok();
}

namespace {

// Fill `out` with `len` elements copied from `p`, pulling pooled storage
// when the current capacity cannot hold them. The length is already
// bounds-checked against the input by the caller's Take, so pool sizing
// here cannot be driven past the frame size by a hostile length.
template <typename T>
void FillFromPool(std::vector<T>& out, const std::uint8_t* p,
                  std::size_t len) {
  if (out.capacity() < len) {
    out = PoolGet<T>(len);
  } else {
    out.resize(len);
  }
  std::memcpy(out.data(), p, len * sizeof(T));
}

}  // namespace

Status ByteReader::TryReadBytes(std::vector<std::uint8_t>& out) {
  std::uint64_t len = 0;
  FLUID_RETURN_IF_ERROR(TryReadU64(len));
  const std::uint8_t* p = nullptr;
  FLUID_RETURN_IF_ERROR(Take(static_cast<std::size_t>(len), p));
  FillFromPool(out, p, static_cast<std::size_t>(len));
  return Status::Ok();
}

Status ByteReader::TryReadBytes(std::vector<std::int8_t>& out) {
  std::uint64_t len = 0;
  FLUID_RETURN_IF_ERROR(TryReadU64(len));
  const std::uint8_t* p = nullptr;
  FLUID_RETURN_IF_ERROR(Take(static_cast<std::size_t>(len), p));
  FillFromPool(out, p, static_cast<std::size_t>(len));
  return Status::Ok();
}

Status ByteReader::TryReadFloats(std::vector<float>& out) {
  std::uint64_t count = 0;
  FLUID_RETURN_IF_ERROR(TryReadU64(count));
  // Bound the count before multiplying: count * sizeof(float) can wrap
  // size_t for a hostile frame, sneaking past Take's remaining() check and
  // into a throwing resize.
  if (count > remaining() / sizeof(float)) {
    return Status::DataLoss("float block larger than remaining input");
  }
  const std::uint8_t* p = nullptr;
  FLUID_RETURN_IF_ERROR(Take(static_cast<std::size_t>(count) * sizeof(float), p));
  FillFromPool(out, p, static_cast<std::size_t>(count));
  return Status::Ok();
}

Status ByteReader::TryReadTensor(Tensor& out) {
  std::uint32_t rank = 0;
  FLUID_RETURN_IF_ERROR(TryReadU32(rank));
  if (rank > 8) return Status::DataLoss("tensor rank implausibly large");
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) {
    FLUID_RETURN_IF_ERROR(TryReadI64(d));
    if (d < 0) return Status::DataLoss("negative tensor dim");
  }
  std::vector<float> values;
  FLUID_RETURN_IF_ERROR(TryReadFloats(values));
  Shape shape(std::move(dims));
  if (shape.numel() != static_cast<std::int64_t>(values.size())) {
    return Status::DataLoss("tensor payload size does not match shape");
  }
  out = Tensor(std::move(shape), std::move(values));
  return Status::Ok();
}

std::uint8_t ByteReader::ReadU8() { std::uint8_t v = 0; TryReadU8(v).ThrowIfError(); return v; }
std::uint32_t ByteReader::ReadU32() { std::uint32_t v = 0; TryReadU32(v).ThrowIfError(); return v; }
std::uint64_t ByteReader::ReadU64() { std::uint64_t v = 0; TryReadU64(v).ThrowIfError(); return v; }
std::int64_t ByteReader::ReadI64() { std::int64_t v = 0; TryReadI64(v).ThrowIfError(); return v; }
float ByteReader::ReadF32() { float v = 0; TryReadF32(v).ThrowIfError(); return v; }
double ByteReader::ReadF64() { double v = 0; TryReadF64(v).ThrowIfError(); return v; }
std::string ByteReader::ReadString() { std::string v; TryReadString(v).ThrowIfError(); return v; }
Tensor ByteReader::ReadTensor() { Tensor t; TryReadTensor(t).ThrowIfError(); return t; }

Status WriteFile(const std::string& path, std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Status::Internal("cannot open " + tmp + " for writing");
  const std::size_t written = bytes.empty()
                                  ? 0
                                  : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flush_ok = std::fclose(f) == 0;
  if (written != bytes.size() || !flush_ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("ftell failed on " + path);
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  const std::size_t read = buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::DataLoss("short read from " + path);
  return buf;
}

}  // namespace fluid::core
