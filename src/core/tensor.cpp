#include "core/tensor.h"

#include <cmath>
#include <sstream>

#include "core/error.h"
#include "core/rng.h"

namespace fluid::core {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0F) {}

Tensor::Tensor(std::initializer_list<std::int64_t> dims)
    : Tensor(Shape(dims)) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FLUID_CHECK_MSG(
      static_cast<std::int64_t>(data_.size()) == shape_.numel(),
      "Tensor data size does not match shape " + shape_.ToString());
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::UniformRandom(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::NormalRandom(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Normal(0.0, stddev));
  return t;
}

Tensor Tensor::KaimingUniform(Shape shape, Rng& rng, std::int64_t fan_in) {
  FLUID_CHECK_MSG(fan_in > 0, "KaimingUniform requires fan_in > 0");
  const float bound =
      std::sqrt(6.0F / static_cast<float>(fan_in));  // gain √2, U(-b, b)
  return UniformRandom(std::move(shape), rng, -bound, bound);
}

float& Tensor::at(std::int64_t flat) {
  FLUID_CHECK_MSG(flat >= 0 && flat < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(flat)];
}

float Tensor::at(std::int64_t flat) const {
  FLUID_CHECK_MSG(flat >= 0 && flat < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(flat)];
}

float& Tensor::operator()(const std::vector<std::int64_t>& index) {
  return data_[static_cast<std::size_t>(shape_.Offset(index))];
}

float Tensor::operator()(const std::vector<std::int64_t>& index) const {
  return data_[static_cast<std::size_t>(shape_.Offset(index))];
}

void Tensor::Fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor Tensor::Reshaped(Shape new_shape) const& {
  FLUID_CHECK_MSG(new_shape.numel() == shape_.numel(),
                  "Reshaped: numel mismatch " + shape_.ToString() + " -> " +
                      new_shape.ToString());
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::Reshaped(Shape new_shape) && {
  FLUID_CHECK_MSG(new_shape.numel() == shape_.numel(),
                  "Reshaped: numel mismatch " + shape_.ToString() + " -> " +
                      new_shape.ToString());
  return Tensor(std::move(new_shape), std::move(data_));
}

std::vector<float> Tensor::TakeData() && {
  std::vector<float> out = std::move(data_);
  data_.clear();
  shape_ = Shape({0});
  return out;
}

std::string Tensor::ToString(std::int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elements);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace fluid::core
