#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/error.h"

namespace fluid::core {

namespace {

int DefaultNumThreads() {
  if (const char* env = std::getenv("FLUID_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// No-op callable Region's FunctionRef member is initialised with before
// RunRegion points it at the real body.
constexpr auto kNoopBody = [](std::int64_t, std::int64_t, std::int64_t) {};

// The task a parallel region broadcasts to the pool: workers grab chunk
// indices from a shared counter until the range is drained.
struct Region {
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t num_chunks = 0;
  // Non-owning: points at the caller's callable, which outlives the
  // region because RunRegion blocks until every chunk ran.
  FunctionRef<void(std::int64_t, std::int64_t, std::int64_t)> body =
      kNoopBody;
  std::atomic<std::int64_t> next_chunk{0};
  std::mutex error_mu;
  std::exception_ptr error;

  void RunChunks(std::int64_t end) {
    for (;;) {
      const std::int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      try {
        body(c, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    }
  }
};

// True while the current thread is executing region chunks (caller or
// worker); nested ParallelFor calls from such a thread run inline — both
// to avoid oversubscription and because re-entering Run() from a worker
// would deadlock on the region-in-progress serialization.
thread_local bool in_parallel_region = false;

class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: outlives statics
    return *pool;
  }

  int num_threads() const { return num_threads_; }

  void set_num_threads(int n) {
    if (n < 1) n = 1;
    if (n == num_threads_) return;
    StopWorkers();
    num_threads_ = n;
    // Workers restart lazily on the next Run().
  }

  // Executes `region` (its chunk range vs `end`), with the calling thread
  // participating. Returns only after every chunk has finished AND no
  // worker still holds a pointer to `region` — workers check in/out under
  // mu_, so the caller can safely destroy the (stack-allocated) Region
  // the moment this returns.
  void Run(Region& region, std::int64_t end) {
    // One broadcast region at a time; concurrent top-level callers
    // serialize here (nested regions never reach Run — they run inline).
    std::lock_guard<std::mutex> run_lock(run_mu_);
    EnsureWorkers();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_region_ = &region;
      region_end_ = end;
      ++generation_;
    }
    cv_.notify_all();

    region.RunChunks(end);
    {
      // No new workers may enter once active_region_ is cleared; wait for
      // the ones already checked in to finish their in-flight chunks.
      std::unique_lock<std::mutex> lock(mu_);
      active_region_ = nullptr;
      idle_cv_.wait(lock, [&] { return workers_in_region_ == 0; });
    }
    if (region.error) std::rethrow_exception(region.error);
  }

 private:
  ThreadPool() : num_threads_(DefaultNumThreads()) {}

  void EnsureWorkers() {
    const std::size_t want =
        static_cast<std::size_t>(num_threads_ > 0 ? num_threads_ - 1 : 0);
    if (workers_.size() == want) return;
    StopWorkers();
    stop_ = false;
    workers_.reserve(want);
    for (std::size_t i = 0; i < want; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
  }

  void WorkerLoop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      Region* region = nullptr;
      std::int64_t end = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
        seen_generation = generation_;
        if (stop_) return;
        region = active_region_;
        end = region_end_;
        // Check in under the same lock acquisition that read the pointer:
        // Run() cannot observe workers_in_region_ == 0 and destroy the
        // region while we hold a reference to it.
        if (region != nullptr) ++workers_in_region_;
      }
      if (region != nullptr) {
        in_parallel_region = true;
        region->RunChunks(end);
        in_parallel_region = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          --workers_in_region_;
        }
        idle_cv_.notify_all();
      }
    }
  }

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex run_mu_;  // serializes top-level parallel regions
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int workers_in_region_ = 0;
  Region* active_region_ = nullptr;
  std::int64_t region_end_ = 0;
};

void RunRegion(std::int64_t begin, std::int64_t end, std::int64_t grain,
               FunctionRef<void(std::int64_t, std::int64_t, std::int64_t)>
                   body) {
  FLUID_CHECK_MSG(grain >= 1, "ParallelFor: grain must be >= 1");
  if (end <= begin) return;
  const std::int64_t range = end - begin;
  const std::int64_t num_chunks = (range + grain - 1) / grain;

  ThreadPool& pool = ThreadPool::Instance();
  if (in_parallel_region || pool.num_threads() == 1 || num_chunks == 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::int64_t lo = begin + c * grain;
      body(c, lo, std::min(end, lo + grain));
    }
    return;
  }

  Region region;
  region.begin = begin;
  region.grain = grain;
  region.num_chunks = num_chunks;
  region.body = body;

  in_parallel_region = true;
  try {
    pool.Run(region, end);
  } catch (...) {
    in_parallel_region = false;
    throw;
  }
  in_parallel_region = false;
}

}  // namespace

int NumThreads() { return ThreadPool::Instance().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Instance().set_num_threads(n); }

std::int64_t NumChunks(std::int64_t begin, std::int64_t end,
                       std::int64_t grain) {
  FLUID_CHECK_MSG(grain >= 1, "NumChunks: grain must be >= 1");
  return end <= begin ? 0 : (end - begin + grain - 1) / grain;
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 FunctionRef<void(std::int64_t, std::int64_t)> body) {
  const auto adapter = [body](std::int64_t, std::int64_t lo,
                              std::int64_t hi) { body(lo, hi); };
  RunRegion(begin, end, grain, adapter);
}

void ParallelForEach(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     FunctionRef<void(std::int64_t)> body) {
  const auto adapter = [body](std::int64_t, std::int64_t lo,
                              std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  };
  RunRegion(begin, end, grain, adapter);
}

void ParallelForChunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    FunctionRef<void(std::int64_t, std::int64_t, std::int64_t)> body) {
  RunRegion(begin, end, grain, body);
}

}  // namespace fluid::core
