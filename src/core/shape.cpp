#include "core/shape.h"

#include <sstream>

#include "core/error.h"

namespace fluid::core {

void Shape::Init(std::span<const std::int64_t> dims) {
  FLUID_CHECK_MSG(dims.size() <= kMaxRank, "Shape rank exceeds kMaxRank");
  rank_ = dims.size();
  for (std::size_t i = 0; i < rank_; ++i) {
    FLUID_CHECK_MSG(dims[i] >= 0, "Shape extents must be non-negative");
    dims_[i] = dims[i];
  }
}

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  Init({dims.begin(), dims.size()});
}

Shape::Shape(const std::vector<std::int64_t>& dims) { Init(dims); }

Shape::Shape(std::span<const std::int64_t> dims) { Init(dims); }

std::int64_t Shape::dim(std::int64_t axis) const {
  const auto r = static_cast<std::int64_t>(rank());
  if (axis < 0) axis += r;
  FLUID_CHECK_MSG(axis >= 0 && axis < r, "Shape::dim axis out of range");
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

std::vector<std::int64_t> Shape::Strides() const {
  std::vector<std::int64_t> strides(rank(), 1);
  for (std::size_t i = rank(); i-- > 1;) {
    strides[i - 1] = strides[i] * dims_[i];
  }
  return strides;
}

std::int64_t Shape::Offset(const std::vector<std::int64_t>& index) const {
  FLUID_CHECK_MSG(index.size() == rank(), "index rank mismatch");
  std::int64_t offset = 0;
  std::int64_t stride = 1;
  for (std::size_t i = rank(); i-- > 0;) {
    FLUID_CHECK_MSG(index[i] >= 0 && index[i] < dims_[i],
                    "index out of bounds");
    offset += index[i] * stride;
    stride *= dims_[i];
  }
  return offset;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace fluid::core
