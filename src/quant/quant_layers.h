#pragma once
// INT8 inference layers: the quantized counterparts of nn::Dense and
// nn::Conv2d, plus QuantizeModel to convert a deployed fp32 Sequential.
//
// Both layers snapshot per-output-channel int8 weights at construction
// (the fp32 layer is left untouched) and quantize activations on the fly
// with one per-tensor absmax scale, so the hot loop is the int8×int8→int32
// GEMM of core/qgemm.h; dequantization (scale_x · scale_w[channel]) folds
// into the bias pass that already touches every output element. They are
// inference-only: Forward(training=true) and Backward throw — the paper's
// training schedules stay fp32, quantization is a deployment transform.

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/layer.h"
#include "nn/sequential.h"
#include "quant/quantize.h"

namespace fluid::quant {

class QuantDense : public nn::Layer {
 public:
  /// Snapshot `dense`'s weights as int8 (one scale per output feature).
  explicit QuantDense(nn::Dense& dense);

  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::string Kind() const override { return "QuantDense"; }
  std::string ToString() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  /// Weight transposed to [in, out] at quantization time so the forward
  /// is one straight [N,in]×[in,out] GEMM; scales_ stay per out feature
  /// (per column of the stored matrix).
  std::vector<std::int8_t> wq_t_;
  std::vector<float> scales_;
  core::Tensor bias_;
};

class QuantConv2d : public nn::Layer {
 public:
  /// Snapshot `conv`'s packed [out_ch, patch] weight as int8 (one scale
  /// per output channel). `fused_leaky` != 1 folds a LeakyReLU of that
  /// slope into the dequantizing bias scatter (QuantizeModel's peephole).
  explicit QuantConv2d(nn::Conv2d& conv, float fused_leaky = 1.0F);

  core::Tensor Forward(const core::Tensor& input, bool training) override;
  core::Tensor Backward(const core::Tensor& grad_output) override;
  std::string Kind() const override { return "QuantConv2d"; }
  std::string ToString() const override;

  std::int64_t out_channels() const { return weight_.rows; }

 private:
  std::int64_t in_ch_, kernel_, stride_, pad_;
  float leaky_;
  QuantizedMatrix weight_;  // [out_ch, patch]
  core::Tensor bias_;
};

/// Convert a deployed fp32 model into its int8 serving form: Conv2d →
/// QuantConv2d (absorbing a directly following LeakyReLU), Dense →
/// QuantDense; ReLU/LeakyReLU/MaxPool2d/Flatten are rebuilt as-is. Throws
/// core::Error on a layer kind it cannot map, so a hostile blueprint
/// fails the deploy instead of silently serving fp32.
nn::Sequential QuantizeModel(nn::Sequential& model);

}  // namespace fluid::quant
