#include "quant/quantize.h"

#include <cmath>
#include <limits>

#include "core/buffer_pool.h"
#include "core/parallel.h"

namespace fluid::quant {

float AbsMaxScale(std::span<const float> values) {
  float m = 0.0F;
  for (const float v : values) {
    const float a = std::fabs(v);
    if (a > m) m = a;  // NaN fails the compare and is ignored
  }
  if (m == 0.0F) return 1.0F;
  // A denormal absmax would make the scale itself denormal (or flush to
  // zero under -ffast-math-style FTZ), turning x/scale into inf; the
  // smallest normal float keeps the division finite and the round-trip
  // error below anything representable.
  return std::max(m / kQMax, std::numeric_limits<float>::min());
}

std::int8_t QuantizeValue(float x, float inv_scale) {
  const float r = x * inv_scale;
  if (!(r > -kQMax)) {
    // NaN fails both this compare and the next: map it to 0, not to a
    // clamp rail (lrintf(NaN) is unspecified).
    return std::isnan(r) ? std::int8_t{0} : std::int8_t{-127};
  }
  if (r > kQMax) return std::int8_t{127};
  return static_cast<std::int8_t>(std::lrintf(r));
}

void QuantizeSpan(std::span<const float> src, float scale,
                  std::span<std::int8_t> dst) {
  FLUID_CHECK_MSG(src.size() == dst.size(), "QuantizeSpan: size mismatch");
  FLUID_CHECK_MSG(scale > 0.0F, "QuantizeSpan: scale must be positive");
  const float inv = 1.0F / scale;
  core::ParallelFor(0, static_cast<std::int64_t>(src.size()), 4096,
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        dst[static_cast<std::size_t>(i)] =
                            QuantizeValue(src[static_cast<std::size_t>(i)], inv);
                      }
                    });
}

QuantizedTensor QuantizeTensor(const core::Tensor& t, float scale) {
  QuantizedTensor q;
  q.shape = t.shape();
  q.scale = scale > 0.0F ? scale : AbsMaxScale(t.data());
  // Pooled payload (fully overwritten by QuantizeSpan); the wire path
  // recycles it via RecycleMessage after the frame is sent.
  q.data = core::PoolGet<std::int8_t>(static_cast<std::size_t>(t.numel()));
  QuantizeSpan(t.data(), q.scale, q.data);
  return q;
}

core::Tensor DequantizeTensor(const QuantizedTensor& q) {
  FLUID_CHECK_MSG(q.shape.numel() == q.numel(),
                  "DequantizeTensor: shape / payload mismatch");
  core::Tensor t = core::AcquireTensor(q.shape);
  auto out = t.data();
  const float scale = q.scale;
  core::ParallelFor(0, q.numel(), 4096, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      out[static_cast<std::size_t>(i)] =
          scale * static_cast<float>(q.data[static_cast<std::size_t>(i)]);
    }
  });
  return t;
}

void QuantizedTensor::Encode(core::ByteWriter& w) const {
  w.WriteF32(scale);
  w.WriteU32(static_cast<std::uint32_t>(shape.rank()));
  for (const auto d : shape.dims()) w.WriteI64(d);
  w.WriteBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

core::Status QuantizedTensor::Decode(core::ByteReader& r, QuantizedTensor& out) {
  QuantizedTensor q;
  FLUID_RETURN_IF_ERROR(r.TryReadF32(q.scale));
  if (!std::isfinite(q.scale) || q.scale <= 0.0F) {
    return core::Status::DataLoss("QuantizedTensor: implausible scale");
  }
  std::uint32_t rank = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU32(rank));
  if (rank > 8) {
    return core::Status::DataLoss("QuantizedTensor: rank implausibly large");
  }
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) {
    FLUID_RETURN_IF_ERROR(r.TryReadI64(d));
    if (d < 0) return core::Status::DataLoss("QuantizedTensor: negative dim");
  }
  // Decode straight into the (pooled) int8 payload — no staging copy;
  // the length is still bounded by the reader's remaining().
  FLUID_RETURN_IF_ERROR(r.TryReadBytes(q.data));
  core::Shape shape(std::move(dims));
  if (shape.numel() != q.numel()) {
    return core::Status::DataLoss(
        "QuantizedTensor: payload size does not match shape");
  }
  q.shape = std::move(shape);
  out = std::move(q);
  return core::Status::Ok();
}

QuantizedMatrix QuantizeRowsPerChannel(const float* w, std::int64_t rows,
                                       std::int64_t cols) {
  FLUID_CHECK_MSG(rows >= 0 && cols >= 0,
                  "QuantizeRowsPerChannel: negative dimension");
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<std::size_t>(rows * cols));
  q.scales.resize(static_cast<std::size_t>(rows));
  core::ParallelForEach(0, rows, 1, [&](std::int64_t r) {
    const float* row = w + r * cols;
    const float scale =
        AbsMaxScale(std::span<const float>(row, static_cast<std::size_t>(cols)));
    q.scales[static_cast<std::size_t>(r)] = scale;
    const float inv = 1.0F / scale;
    std::int8_t* dst = q.data.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      dst[c] = QuantizeValue(row[c], inv);
    }
  });
  return q;
}

std::int64_t QuantizedWireBytes(std::size_t rank, std::int64_t n) {
  // scale + rank + dims + u64 byte count + int8 payload.
  return 4 + 4 + 8 * static_cast<std::int64_t>(rank) + 8 + n;
}

}  // namespace fluid::quant
