#pragma once
// INT8 quantization primitives: symmetric per-tensor activation
// quantization and per-output-channel weight quantization.
//
// Scheme (docs/quant.md has the full story):
//  * Activations: one float scale per tensor, x ≈ scale · q with
//    q ∈ [-127, 127] (symmetric — the -128 code is unused so negation
//    round-trips). The scale is absmax/127, computed on the fly at the
//    quantization site or supplied from calibration. All-zero tensors get
//    scale 1 (so they round-trip exactly); a denormal absmax clamps the
//    scale to the smallest normal float so q = x/scale never divides by
//    a flushed-to-zero denominator.
//  * Weights: one scale per output channel (matrix row), which is what
//    keeps per-channel dynamic-range differences — the classifier rows
//    and conv filters of a trained net vary by an order of magnitude —
//    from eating the 8-bit budget of every other channel.
//
// QuantizedTensor also carries the wire format of the v3 quantized
// cut-activation frames (dist/message.h): [f32 scale][u32 rank]
// [i64 dims…][u64 count][int8 bytes], little-endian like everything in
// core/serialize.h. Decode never throws and bounds every length against
// the remaining input, so hostile frames fail as Status, not bad_alloc.

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.h"
#include "core/serialize.h"
#include "core/shape.h"
#include "core/tensor.h"

namespace fluid::quant {

/// Largest magnitude an int8 code represents (symmetric: [-127, 127]).
inline constexpr float kQMax = 127.0F;

/// Symmetric per-tensor scale: absmax(values)/127, clamped to the
/// smallest normal float (all-zero input gets scale 1 so zeros round-trip
/// exactly; NaNs are ignored — quantizing them yields 0).
float AbsMaxScale(std::span<const float> values);

/// Quantize one value against a scale: round(x/scale) clamped to
/// [-127, 127]; NaN maps to 0.
std::int8_t QuantizeValue(float x, float inv_scale);

/// A tensor quantized symmetrically with one scale: x ≈ scale · q.
struct QuantizedTensor {
  core::Shape shape;
  float scale = 1.0F;
  std::vector<std::int8_t> data;

  std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }
  bool empty() const { return data.empty(); }

  void Encode(core::ByteWriter& w) const;
  static core::Status Decode(core::ByteReader& r, QuantizedTensor& out);
};

/// Quantize a tensor with the given scale, or (scale <= 0) an on-the-fly
/// AbsMaxScale of its contents.
QuantizedTensor QuantizeTensor(const core::Tensor& t, float scale = 0.0F);

/// Reconstruct the float tensor: x = scale · q.
core::Tensor DequantizeTensor(const QuantizedTensor& q);

/// Quantize a span in place against a caller-chosen scale (the batched
/// int8 conv path quantizes its im2col buffer group by group with one
/// whole-input scale).
void QuantizeSpan(std::span<const float> src, float scale,
                  std::span<std::int8_t> dst);

/// A [rows, cols] int8 matrix with one scale per row:
/// w[r][c] ≈ scales[r] · data[r*cols + c]. This is the per-output-channel
/// weight format: rows are output channels for conv patch matrices and
/// output features for dense weights.
struct QuantizedMatrix {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int8_t> data;  // row-major [rows, cols]
  std::vector<float> scales;      // [rows]
};

/// Per-row symmetric quantization of a row-major [rows, cols] matrix.
QuantizedMatrix QuantizeRowsPerChannel(const float* w, std::int64_t rows,
                                       std::int64_t cols);

/// Bytes the quantized form of an `n`-element tensor occupies on the wire
/// (scale + rank/dims + count + int8 payload) — the comm-cost accounting
/// counterpart of the fp32 tensor encoding.
std::int64_t QuantizedWireBytes(std::size_t rank, std::int64_t n);

}  // namespace fluid::quant
