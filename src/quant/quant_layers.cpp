#include "quant/quant_layers.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/buffer_pool.h"
#include "core/error.h"
#include "core/parallel.h"
#include "core/qgemm.h"
#include "nn/activations.h"
#include "nn/conv_gemm.h"
#include "nn/flatten.h"
#include "nn/im2col.h"
#include "nn/pooling.h"

namespace fluid::quant {

QuantDense::QuantDense(nn::Dense& dense)
    : in_(dense.in_features()),
      out_(dense.out_features()),
      bias_(dense.bias().Clone()) {
  // Quantize per output feature (per weight row), then store transposed
  // [in, out] so the forward GEMM needs no transpose plumbing.
  const QuantizedMatrix rows =
      QuantizeRowsPerChannel(dense.weight().data().data(), out_, in_);
  scales_ = rows.scales;
  wq_t_.resize(static_cast<std::size_t>(in_ * out_));
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int8_t* src = rows.data.data() + o * in_;
    for (std::int64_t i = 0; i < in_; ++i) {
      wq_t_[static_cast<std::size_t>(i * out_ + o)] = src[i];
    }
  }
}

core::Tensor QuantDense::Forward(const core::Tensor& input, bool training) {
  FLUID_CHECK_MSG(!training, "QuantDense is inference-only");
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 2 && s[1] == in_,
                  "QuantDense: expected [N," + std::to_string(in_) +
                      "], got " + s.ToString());
  const std::int64_t n = s[0];

  const float in_scale = AbsMaxScale(input.data());
  // Bound to local references before any parallel region: a thread_local
  // NAME inside a lambda is not captured — it resolves to the executing
  // pool worker's (empty) instance — while a local reference is captured
  // and keeps pointing at the caller's buffer (see conv_gemm.cpp).
  thread_local std::vector<std::int8_t> tl_xq;
  thread_local std::vector<std::int32_t> tl_acc;
  auto& xq = tl_xq;
  auto& acc = tl_acc;
  core::EnsureScratch(xq, n * in_);
  core::EnsureScratch(acc, n * out_);
  QuantizeSpan(input.data(), in_scale,
               std::span<std::int8_t>(xq.data(),
                                      static_cast<std::size_t>(n * in_)));

  core::QGemmInt8(n, out_, in_, xq.data(), in_, wq_t_.data(), out_,
                  acc.data(), out_);

  // Pooled output: the dequantizing scatter writes every element.
  core::Tensor output = core::AcquireTensor({n, out_});
  auto out = output.data();
  const auto bias = bias_.data();
  core::ParallelForEach(0, n, 1, [&](std::int64_t r) {
    const std::int32_t* row = acc.data() + r * out_;
    float* dst = out.data() + r * out_;
    for (std::int64_t o = 0; o < out_; ++o) {
      dst[o] = static_cast<float>(row[o]) * (in_scale * scales_[o]) +
               bias[static_cast<std::size_t>(o)];
    }
  });
  return output;
}

core::Tensor QuantDense::Backward(const core::Tensor&) {
  FLUID_CHECK_MSG(false, "QuantDense has no backward (inference-only)");
  return {};
}

std::string QuantDense::ToString() const {
  std::ostringstream os;
  os << "QuantDense(" << in_ << "->" << out_ << ", int8 per-channel)";
  return os.str();
}

QuantConv2d::QuantConv2d(nn::Conv2d& conv, float fused_leaky)
    : in_ch_(conv.in_channels()),
      kernel_(conv.kernel()),
      stride_(conv.stride()),
      pad_(conv.pad()),
      leaky_(fused_leaky),
      weight_(QuantizeRowsPerChannel(conv.weight().data().data(),
                                     conv.out_channels(),
                                     conv.in_channels() * conv.kernel() *
                                         conv.kernel())),
      bias_(conv.bias().Clone()) {}

core::Tensor QuantConv2d::Forward(const core::Tensor& input, bool training) {
  FLUID_CHECK_MSG(!training, "QuantConv2d is inference-only");
  const auto& s = input.shape();
  FLUID_CHECK_MSG(s.rank() == 4 && s[1] == in_ch_,
                  "QuantConv2d: expected input [N," + std::to_string(in_ch_) +
                      ",H,W], got " + s.ToString());
  const std::int64_t batch = s[0], height = s[2], width = s[3];
  const std::int64_t out_h = nn::ConvOutExtent(height, kernel_, stride_, pad_);
  const std::int64_t out_w = nn::ConvOutExtent(width, kernel_, stride_, pad_);
  const std::int64_t out_ch = weight_.rows;
  const std::int64_t patch = weight_.cols;
  const std::int64_t area = out_h * out_w;
  const std::int64_t in_plane = in_ch_ * height * width;

  // Pooled output: the dequantizing scatter writes every element.
  core::Tensor output = core::AcquireTensor({batch, out_ch, out_h, out_w});

  // One per-tensor activation scale for the whole forward: im2col only
  // copies input values (plus zero padding), so absmax(input) covers every
  // lowered column and the scale is independent of the fusion grouping.
  const float in_scale = AbsMaxScale(input.data());

  // Single-quantize int8 im2col: quantize the whole input ONCE into a
  // pooled int8 plane, then lower int8 directly into the int8 column
  // buffer. The lowered buffer is 4× smaller than the old fp32 lowering
  // and each input element is quantized once instead of the up-to-kernel²
  // times im2col replicates it. Bitwise-identical to quantizing after
  // fp32 lowering: lowering only copies values, and the padding code is
  // exactly QuantizeValue(0) == 0.
  std::vector<std::int8_t> qinput =
      core::PoolGet<std::int8_t>(static_cast<std::size_t>(input.numel()));
  QuantizeSpan(input.data(), in_scale, qinput);

  const std::int64_t per_sample_floats = (patch + out_ch) * area;
  const std::int64_t group =
      std::clamp(nn::kConvFusedBudgetFloats / per_sample_floats,
                 std::int64_t{1}, nn::kConvFusedBatch);

  thread_local std::vector<std::int8_t> tl_qcols;
  thread_local std::vector<std::int32_t> tl_acc;
  auto& qcols = tl_qcols;
  auto& acc = tl_acc;

  for (std::int64_t lo = 0; lo < batch; lo += group) {
    const std::int64_t hi = std::min(lo + group, batch);
    const std::int64_t cnt = hi - lo;
    const std::int64_t ncols = cnt * area;
    core::EnsureScratch(qcols, patch * ncols);
    core::EnsureScratch(acc, out_ch * ncols);
    nn::Im2ColFusedInt8(
        std::span<const std::int8_t>(qinput).subspan(
            static_cast<std::size_t>(lo * in_plane),
            static_cast<std::size_t>(cnt * in_plane)),
        cnt, in_ch_, height, width, 0, in_ch_, kernel_, stride_, pad_,
        std::span<std::int8_t>(qcols.data(),
                               static_cast<std::size_t>(patch * ncols)));
    //   acc [out_ch, cnt·area] = Wq [out_ch, patch] × Xq [patch, cnt·area]
    core::QGemmInt8(out_ch, ncols, patch, weight_.data.data(), patch,
                    qcols.data(), ncols, acc.data(), ncols);

    // Dequantize + bias (+ folded LeakyReLU) scatter back into per-sample
    // [out_ch, area] planes — the same pass the fp32 fused conv runs.
    const float slope = leaky_;
    const auto bias = bias_.data();
    core::ParallelForEach(0, cnt, 1, [&](std::int64_t i) {
      float* out_sample = output.data().data() + (lo + i) * out_ch * area;
      for (std::int64_t c = 0; c < out_ch; ++c) {
        const float scale = in_scale * weight_.scales[static_cast<std::size_t>(c)];
        const float b = bias[static_cast<std::size_t>(c)];
        const std::int32_t* src = acc.data() + c * ncols + i * area;
        float* dst = out_sample + c * area;
        if (slope == 1.0F) {
          for (std::int64_t j = 0; j < area; ++j) {
            dst[j] = static_cast<float>(src[j]) * scale + b;
          }
        } else {
          for (std::int64_t j = 0; j < area; ++j) {
            const float v = static_cast<float>(src[j]) * scale + b;
            dst[j] = v > 0.0F ? v : slope * v;
          }
        }
      }
    });
  }
  core::PoolPut(std::move(qinput));
  return output;
}

core::Tensor QuantConv2d::Backward(const core::Tensor&) {
  FLUID_CHECK_MSG(false, "QuantConv2d has no backward (inference-only)");
  return {};
}

std::string QuantConv2d::ToString() const {
  std::ostringstream os;
  os << "QuantConv2d(" << in_ch_ << "->" << weight_.rows << ", k=" << kernel_
     << ", s=" << stride_ << ", p=" << pad_ << ", int8 per-channel";
  if (leaky_ != 1.0F) os << ", leaky=" << leaky_;
  os << ")";
  return os.str();
}

nn::Sequential QuantizeModel(nn::Sequential& model) {
  nn::Sequential q;
  const std::size_t n = model.size();
  for (std::size_t i = 0; i < n; ++i) {
    nn::Layer& layer = model.layer(i);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      // Peephole: absorb a directly following LeakyReLU into the
      // dequantizing scatter (same fold the fp32 serve path does).
      if (i + 1 < n) {
        if (auto* leaky = dynamic_cast<nn::LeakyReLU*>(&model.layer(i + 1))) {
          q.Emplace<QuantConv2d>(*conv, leaky->slope());
          ++i;
          continue;
        }
      }
      q.Emplace<QuantConv2d>(*conv);
      continue;
    }
    if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      q.Emplace<QuantDense>(*dense);
      continue;
    }
    if (auto* leaky = dynamic_cast<nn::LeakyReLU*>(&layer)) {
      q.Emplace<nn::LeakyReLU>(leaky->slope());
      continue;
    }
    if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      q.Emplace<nn::ReLU>();
      continue;
    }
    if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
      q.Emplace<nn::MaxPool2d>(pool->window());
      continue;
    }
    if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
      q.Emplace<nn::Flatten>();
      continue;
    }
    FLUID_CHECK_MSG(false,
                    "QuantizeModel: no int8 mapping for layer " +
                        layer.ToString());
  }
  return q;
}

}  // namespace fluid::quant
