#include "dist/blueprint.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pooling.h"

namespace fluid::dist {

namespace {
// v1: no quant options. v2: trailing [u8 quant_flags] — emitted only when
// a flag is set, so fp32 deploys stay byte-identical to v1 and old peers
// keep decoding them.
constexpr std::uint8_t kBlueprintVersion = 1;
constexpr std::uint8_t kBlueprintVersionV2 = 2;
constexpr std::uint8_t kQuantInt8Wire = 1u << 0;
constexpr std::uint8_t kQuantInt8Compute = 1u << 1;
constexpr std::uint8_t kQuantInt8InputWire = 1u << 2;
}  // namespace

ModelBlueprint ModelBlueprint::Standalone(const slim::FluidNetConfig& config,
                                          std::int64_t width) {
  ModelBlueprint bp;
  bp.kind = Kind::kStandalone;
  bp.config = config;
  bp.width = width;
  return bp;
}

ModelBlueprint ModelBlueprint::PipelineBack(const slim::FluidNetConfig& config,
                                            std::int64_t width,
                                            std::int64_t cut_stage) {
  ModelBlueprint bp;
  bp.kind = Kind::kPipelineBack;
  bp.config = config;
  bp.width = width;
  bp.cut_stage = cut_stage;
  return bp;
}

nn::Sequential ModelBlueprint::Build() const {
  FLUID_CHECK_MSG(width > 0, "ModelBlueprint: width must be positive");
  const std::int64_t first =
      (kind == Kind::kStandalone) ? 0 : cut_stage;
  FLUID_CHECK_MSG(first >= 0 && first < config.num_conv_layers,
                  "ModelBlueprint: cut_stage out of range");
  core::Rng dummy(0);  // weights arrive via LoadState
  nn::Sequential model;
  for (std::int64_t i = first; i < config.num_conv_layers; ++i) {
    const std::int64_t in_ch =
        (kind == Kind::kStandalone && i == 0) ? config.image_channels : width;
    model.Emplace<nn::Conv2d>(in_ch, width, config.kernel, config.stride,
                              config.pad, dummy, "conv" + std::to_string(i + 1));
    model.Emplace<nn::LeakyReLU>(config.relu_leak);
    model.Emplace<nn::MaxPool2d>(config.pool);
  }
  model.Emplace<nn::Flatten>();
  model.Emplace<nn::Dense>(width * config.FeaturesPerChannel(),
                           config.num_classes, dummy, "fc");
  return model;
}

void ModelBlueprint::Encode(core::ByteWriter& w) const {
  w.WriteU8(quant.any() ? kBlueprintVersionV2 : kBlueprintVersion);
  w.WriteU8(static_cast<std::uint8_t>(kind));
  w.WriteI64(config.image_channels);
  w.WriteI64(config.image_size);
  w.WriteI64(config.num_classes);
  w.WriteI64(config.kernel);
  w.WriteI64(config.stride);
  w.WriteI64(config.pad);
  w.WriteI64(config.pool);
  w.WriteI64(config.num_conv_layers);
  w.WriteF32(config.relu_leak);
  w.WriteI64(width);
  w.WriteI64(cut_stage);
  if (quant.any()) {
    std::uint8_t flags = 0;
    if (quant.int8_wire) flags |= kQuantInt8Wire;
    if (quant.int8_compute) flags |= kQuantInt8Compute;
    if (quant.int8_input_wire) flags |= kQuantInt8InputWire;
    w.WriteU8(flags);
  }
}

core::Status ModelBlueprint::Decode(core::ByteReader& r, ModelBlueprint& out) {
  std::uint8_t version = 0, kind = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU8(version));
  if (version != kBlueprintVersion && version != kBlueprintVersionV2) {
    return core::Status::DataLoss("ModelBlueprint: unsupported version " +
                                  std::to_string(version));
  }
  FLUID_RETURN_IF_ERROR(r.TryReadU8(kind));
  if (kind > static_cast<std::uint8_t>(Kind::kPipelineBack)) {
    return core::Status::DataLoss("ModelBlueprint: unknown kind " +
                                  std::to_string(kind));
  }
  ModelBlueprint bp;
  bp.kind = static_cast<Kind>(kind);
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.image_channels));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.image_size));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.num_classes));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.kernel));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.stride));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.pad));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.pool));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.config.num_conv_layers));
  FLUID_RETURN_IF_ERROR(r.TryReadF32(bp.config.relu_leak));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.width));
  FLUID_RETURN_IF_ERROR(r.TryReadI64(bp.cut_stage));
  if (version >= kBlueprintVersionV2) {
    std::uint8_t flags = 0;
    FLUID_RETURN_IF_ERROR(r.TryReadU8(flags));
    if ((flags &
         ~(kQuantInt8Wire | kQuantInt8Compute | kQuantInt8InputWire)) != 0) {
      return core::Status::DataLoss("ModelBlueprint: unknown quant flags " +
                                    std::to_string(flags));
    }
    bp.quant.int8_wire = (flags & kQuantInt8Wire) != 0;
    bp.quant.int8_compute = (flags & kQuantInt8Compute) != 0;
    bp.quant.int8_input_wire = (flags & kQuantInt8InputWire) != 0;
  }
  // Bound magnitudes as well as signs: a corrupt-but-positive width must
  // be rejected here, not discovered as std::bad_alloc inside Build().
  constexpr std::int64_t kMaxExtent = 1 << 16;
  if (bp.width <= 0 || bp.width > kMaxExtent ||
      bp.config.num_conv_layers <= 0 || bp.config.num_conv_layers > 64 ||
      bp.config.num_classes <= 0 || bp.config.num_classes > kMaxExtent ||
      bp.config.image_channels <= 0 || bp.config.image_channels > kMaxExtent ||
      bp.config.image_size <= 0 || bp.config.image_size > kMaxExtent ||
      bp.config.kernel <= 0 || bp.config.kernel > 1024 ||
      bp.config.stride <= 0 || bp.config.pad < 0 || bp.config.pool <= 0 ||
      bp.cut_stage < 0 ||
      (bp.kind == Kind::kPipelineBack &&
       bp.cut_stage >= bp.config.num_conv_layers)) {
    return core::Status::DataLoss("ModelBlueprint: implausible geometry");
  }
  out = bp;
  return core::Status::Ok();
}

std::string DeployRequest::EncodeToTag() const {
  core::ByteWriter w;
  w.WriteString(name);
  blueprint.Encode(w);
  const auto state_bytes = nn::SerializeState(state);
  w.WriteBytes(state_bytes);
  const auto& buf = w.buffer();
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

core::Status DeployRequest::DecodeFromTag(const std::string& tag,
                                          DeployRequest& out) {
  core::ByteReader r(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(tag.data()), tag.size()));
  DeployRequest req;
  FLUID_RETURN_IF_ERROR(r.TryReadString(req.name));
  FLUID_RETURN_IF_ERROR(ModelBlueprint::Decode(r, req.blueprint));
  std::vector<std::uint8_t> state_bytes;
  FLUID_RETURN_IF_ERROR(r.TryReadBytes(state_bytes));
  auto state = nn::ParseState(state_bytes);
  if (!state.ok()) return state.status();
  req.state = std::move(*state);
  out = std::move(req);
  return core::Status::Ok();
}

}  // namespace fluid::dist
