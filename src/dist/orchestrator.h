#pragma once
// Orchestrator: the control loop closing the master over demand and
// device health.
//
// Once per tick it (1) heartbeats every believed-alive worker through the
// master, (2) feeds the demand estimate — joined with the serving queue's
// depth and batch-occupancy telemetry, the direct evidence of whether the
// current operating point keeps up — to the ModeController, and
// (3) pushes the decided mode onto the MasterNode, which routes each
// coalesced batch across the master-resident and worker-resident slices
// accordingly. The request path stays in the MasterNode's serving core;
// the orchestrator is pure control plane, so a stalled tick can never
// stall serving. Modelled on the scheduler/orchestrator split in
// heterogeneous serving systems (cf. the NeuPIMs request orchestrator).

#include <chrono>
#include <cstdint>

#include "dist/master.h"
#include "dist/mode_controller.h"

namespace fluid::dist {

struct OrchestratorConfig {
  double ha_capacity = 0.0;  // img/s of the HA pipeline operating point
  double ht_capacity = 0.0;  // img/s of the full-fleet HT operating point
  double hysteresis = 0.1;
  std::chrono::milliseconds probe_timeout{250};
};

class Orchestrator {
 public:
  struct Report {
    sim::Mode mode = sim::Mode::kHighAccuracy;
    std::size_t alive_workers = 0;
    bool degraded = false;     // no worker left: the master serves alone
    double demand = 0.0;       // what this tick was asked to plan for
    double capacity = 0.0;     // estimated sustainable img/s right now
    double queue_depth = 0.0;  // backlog rows not yet in any chunk
    double pool_occupancy = 0.0;  // EMA active_requests / max_active_reqs
    /// Snapshot of the request pool this tick.
    std::int64_t active_requests = 0;
    std::int64_t running_requests = 0;
    /// Lifetime counters (monotone across ticks).
    std::int64_t deadline_misses = 0;
    std::int64_t preemptions = 0;
    /// Misses per completed request over the last control interval.
    double deadline_miss_rate = 0.0;
  };

  Orchestrator(MasterNode& master, OrchestratorConfig config);

  /// One control iteration for the given demand estimate (img/s).
  Report Tick(double demand);

  std::int64_t ticks() const { return ticks_; }
  const ModeController& controller() const { return controller_; }

 private:
  MasterNode& master_;
  OrchestratorConfig config_;
  ModeController controller_;
  std::int64_t ticks_ = 0;
  // Last tick's lifetime counters, for per-interval rates.
  std::int64_t last_misses_ = 0;
  std::int64_t last_completed_ = 0;
};

}  // namespace fluid::dist
