#pragma once
// Orchestrator: the control loop closing the master over demand and
// device health.
//
// Once per tick it (1) heartbeats every believed-alive worker through the
// master, (2) feeds the demand estimate — joined with the serving queue's
// depth and batch-occupancy telemetry, the direct evidence of whether the
// current operating point keeps up — to the ModeController, and
// (3) pushes the decided mode onto the MasterNode, which routes each
// coalesced batch across the master-resident and worker-resident slices
// accordingly. The request path stays in the MasterNode's serving core;
// the orchestrator is pure control plane, so a stalled tick can never
// stall serving. Modelled on the scheduler/orchestrator split in
// heterogeneous serving systems (cf. the NeuPIMs request orchestrator).

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/buffer_pool.h"
#include "dist/master.h"
#include "dist/mode_controller.h"
#include "dist/router.h"

namespace fluid::dist {

/// One fleet-wide telemetry snapshot: the wire, scheduler, buffer-pool
/// and router counters that used to travel as separate bespoke structs,
/// rolled up at the FleetOrchestrator tick. The same numbers are
/// published into the global obs::MetricsRegistry as `fluid_fleet_*`
/// series, so one `DumpMetrics()` scrape sees what the tick saw.
struct FleetSnapshot {
  WireStats wire;       // summed over every partition's worker links
  SchedulerStats sched; // summed across partitions (router's fleet view)
  core::PoolStats pool; // process-wide buffer-pool counters
  RouterStats router;   // dispatch/reroute/failure counters
};

struct OrchestratorConfig {
  double ha_capacity = 0.0;  // img/s of the HA pipeline operating point
  double ht_capacity = 0.0;  // img/s of the full-fleet HT operating point
  double hysteresis = 0.1;
  std::chrono::milliseconds probe_timeout{250};
};

class Orchestrator {
 public:
  struct Report {
    sim::Mode mode = sim::Mode::kHighAccuracy;
    std::size_t alive_workers = 0;
    bool degraded = false;     // no worker left: the master serves alone
    double demand = 0.0;       // what this tick was asked to plan for
    double capacity = 0.0;     // estimated sustainable img/s right now
    double queue_depth = 0.0;  // backlog rows not yet in any chunk
    double pool_occupancy = 0.0;  // EMA active_requests / max_active_reqs
    /// Snapshot of the request pool this tick.
    std::int64_t active_requests = 0;
    std::int64_t running_requests = 0;
    /// Lifetime counters (monotone across ticks).
    std::int64_t deadline_misses = 0;
    std::int64_t preemptions = 0;
    /// Misses per completed request over the last control interval.
    double deadline_miss_rate = 0.0;
  };

  Orchestrator(MasterNode& master, OrchestratorConfig config);

  /// One control iteration for the given demand estimate (img/s).
  Report Tick(double demand);

  std::int64_t ticks() const { return ticks_; }
  const ModeController& controller() const { return controller_; }

 private:
  MasterNode& master_;
  OrchestratorConfig config_;
  ModeController controller_;
  std::int64_t ticks_ = 0;
  // Last tick's lifetime counters, for per-interval rates.
  std::int64_t last_misses_ = 0;
  std::int64_t last_completed_ = 0;
};

/// Fleet-level control loop over a partitioned deployment: one
/// Orchestrator per partition behind one RequestRouter. Each tick splits
/// the fleet demand estimate evenly across the live partitions, runs each
/// partition's own control iteration (heartbeats, mode decision, capacity
/// estimate — per-partition mode is a feature: a degraded partition can
/// drop to HT while its siblings stay HA), and rolls the results up into
/// one fleet view with aggregate wire and scheduler telemetry from the
/// router. Pure control plane, like the per-partition Orchestrator: a
/// stalled fleet tick never stalls serving. Partition orchestrators are
/// created lazily as partitions appear, and keep their controller
/// hysteresis state across ticks; a removed partition's slot reports
/// live=false and its controller state is dropped.
class FleetOrchestrator {
 public:
  struct PartitionReport {
    std::size_t partition = 0;
    bool live = false;
    bool draining = false;
    Orchestrator::Report report;  // meaningful only when live
  };

  struct FleetReport {
    double demand = 0.0;              // fleet demand this tick planned for
    std::size_t serving_partitions = 0;  // live and not draining
    std::size_t alive_workers = 0;       // across every live partition
    double capacity = 0.0;               // summed partition estimates
    /// Aggregate telemetry over the fleet, one snapshot instead of the
    /// old separate wire/sched members (also published as fluid_fleet_*).
    FleetSnapshot snapshot;
    std::vector<PartitionReport> partitions;
  };

  /// `config` is the PER-PARTITION operating point (each partition owns a
  /// disjoint worker set, so capacities do not divide across siblings).
  FleetOrchestrator(RequestRouter& router, OrchestratorConfig config);

  /// One fleet control iteration for the given total demand (img/s).
  FleetReport Tick(double fleet_demand);

  std::int64_t ticks() const { return ticks_; }

 private:
  RequestRouter& router_;
  OrchestratorConfig config_;
  /// Index = partition id; null until that partition first appears (or
  /// after it is removed).
  std::vector<std::unique_ptr<Orchestrator>> partitions_;
  std::int64_t ticks_ = 0;
};

}  // namespace fluid::dist
