#pragma once
// Transport: the byte-level channel a master and a worker talk over.
//
// A Transport endpoint carries whole dist::Message frames in both
// directions. Implementations are duplex and connection-oriented; once
// either side closes (or the process behind it dies) every subsequent
// Send/Recv fails with a Status instead of throwing, so the serving loops
// can treat peer death as data, not control flow. The two implementations
// are the in-memory pair below (tests, single-process benches) and the
// TCP transport in dist/tcp_transport.h (real deployments).
//
// Failure taxonomy every implementation honours:
//   kDeadlineExceeded — nothing arrived within the Recv timeout;
//                       the connection is still usable.
//   kUnavailable      — the peer is gone (closed, crashed, reset);
//                       terminal for this endpoint.
//   kDataLoss         — the byte stream desynchronised (bad magic, bogus
//                       length, truncated frame); terminal: the endpoint
//                       closes itself because framing cannot recover.

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "core/error.h"
#include "dist/message.h"

namespace fluid::dist {

/// Wire-level counters every transport keeps: the serving stack surfaces
/// them per master/worker and the benches record them, so byte costs are
/// a first-class, regression-pinned metric.
struct WireStats {
  std::int64_t bytes_sent = 0;    // full frames (header + body) shipped
  std::int64_t bytes_recv = 0;    // full frames received and decoded
  std::int64_t frames_sent = 0;
  std::int64_t frames_recv = 0;
  std::int64_t batched_sends = 0;  // SendBatch calls that shipped > 1 frame

  WireStats& operator+=(const WireStats& o) {
    bytes_sent += o.bytes_sent;
    bytes_recv += o.bytes_recv;
    frames_sent += o.frames_sent;
    frames_recv += o.frames_recv;
    batched_sends += o.batched_sends;
    return *this;
  }

  /// Value form of +=, for fleet-level aggregation (router/orchestrator
  /// summing per-partition wire costs).
  friend WireStats operator+(WireStats a, const WireStats& b) {
    a += b;
    return a;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueue one frame to the peer. Never throws; never blocks on the
  /// peer's application (only on flow control).
  virtual core::Status Send(const Message& msg) = 0;

  /// Ship several frames as one link transaction, in order. The contract
  /// is all-or-prefix: on failure some prefix of `msgs` may have reached
  /// the wire, and the connection is in whatever state a failed Send
  /// leaves it — callers treat the whole batch as suspect, exactly like a
  /// failed Send. The base implementation is the trivial loop; TCP sends
  /// one scatter-gather writev (one syscall, no bulk memcpy) and the
  /// emulated link charges its latency once per batch.
  virtual core::Status SendBatch(std::span<const Message> msgs);

  /// Wait up to `timeout` for one complete frame.
  virtual core::Status Recv(Message& out, std::chrono::milliseconds timeout) = 0;

  /// Byte/frame counters since construction. Implementations that cannot
  /// count return zeros.
  virtual WireStats wire_stats() const { return {}; }

  /// Idempotent. After Close, the peer's Recv drains buffered frames and
  /// then reports kUnavailable.
  virtual void Close() = 0;

  /// True once this endpoint can no longer exchange frames.
  virtual bool closed() const = 0;

  /// Human-readable endpoint description for logs ("mem", "tcp:127.0.0.1:...").
  virtual std::string Describe() const = 0;
};

using TransportPtr = std::unique_ptr<Transport>;

/// Time left until `deadline`, clamped at zero — the shared idiom for
/// threading one caller timeout through a sequence of blocking calls.
inline std::chrono::milliseconds RemainingMs(
    std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? left : std::chrono::milliseconds(0);
}

/// A connected pair of in-process endpoints. Frames are encoded to bytes
/// and decoded on receipt — the codec is exercised exactly as on a real
/// wire, so byte-level accounting (EncodedSize) and decode-never-throws
/// semantics hold here too.
std::pair<TransportPtr, TransportPtr> MakeInMemoryPair();

/// An in-process pair whose frames pay a link cost before delivery:
/// each direction is a serial link with per-frame `latency` plus
/// bytes / `bandwidth_bytes_per_s` of transfer time, frames queueing
/// behind each other exactly like sim::LinkModel charges them. This is
/// the live counterpart of the paper's offline-measured TCP link (the
/// DESIGN.md §3 substitution): benches and tests get wire-realistic
/// serving behaviour — coalescing amortises per-frame latency, windowed
/// sends overlap it — without a real radio in the loop. latency <= 0 and
/// infinite bandwidth degrade to MakeInMemoryPair behaviour. SendBatch
/// charges the link as one transaction: one latency head start for the
/// whole batch, each frame deliverable as its own bytes finish
/// serialising behind its predecessors'.
std::pair<TransportPtr, TransportPtr> MakeEmulatedLinkPair(
    std::chrono::duration<double> latency, double bandwidth_bytes_per_s);

}  // namespace fluid::dist
