#pragma once
// TCP transport: dist::Message frames over a real socket — the paper's
// master↔worker wire.
//
// Framing is exactly the dist/message codec ([magic][body_len][body]); the
// receive path accumulates bytes across calls, so slow or bursty peers
// never desynchronise a reader. All stream corruption (bad magic, absurd
// frame length, EOF mid-frame) surfaces as Status::DataLoss and closes the
// connection — decode never throws, which is what lets the failover path
// in dist::MasterNode treat a flaky link like a dead device instead of
// unwinding through the serving loop.

#include <chrono>
#include <cstdint>
#include <string>

#include "core/error.h"
#include "dist/transport.h"

namespace fluid::dist {

/// Listening socket. Construction throws core::Error on bind failure
/// (construction errors are bugs); Accept failures are recoverable
/// Statuses. Pass port 0 for an ephemeral port and read it back.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Wait up to `timeout` for one inbound connection.
  core::StatusOr<TransportPtr> Accept(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to `host:port` within `timeout`. Loopback connects complete
/// without a matching Accept (the kernel backlog holds them), so a
/// single-threaded "connect then accept" setup does not deadlock.
core::StatusOr<TransportPtr> TcpConnect(const std::string& host,
                                        std::uint16_t port,
                                        std::chrono::milliseconds timeout);

}  // namespace fluid::dist
