#pragma once
// ModelBlueprint: the architecture half of a deployment.
//
// A deploy ships two things to a worker: a recipe for *building* the model
// (this blueprint — pure architecture, a few integers) and the weights (an
// nn::StateDict). Shipping the recipe instead of code keeps the worker
// generic: it can host any slice the master extracts — a standalone
// sub-network of any width, or the back half of the Static pipeline —
// without knowing about slimmable stores at all.

#include <cstdint>
#include <string>

#include "core/error.h"
#include "core/serialize.h"
#include "nn/checkpoint.h"
#include "nn/sequential.h"
#include "slim/fluid_model.h"

namespace fluid::dist {

/// Per-deploy INT8 options — the quant negotiation the wire format keys
/// on. Shipping them in the blueprint makes the contract per-deployment:
/// a worker that ACKs a deploy with `int8_wire` set has decoded a v2
/// blueprint and therefore speaks wire v3, so the master may ship that
/// deployment quantized cut-activation frames; every other deployment
/// keeps receiving v2 fp32 frames, and an all-default QuantOptions
/// encodes as the v1 blueprint bytes so fp32-only peers are untouched.
struct QuantOptions {
  /// Cut activations cross the link as int8 (wire v3) for this deploy.
  bool int8_wire = false;
  /// The worker serves this deploy through the int8 layer path
  /// (quant::QuantizeModel after LoadState): per-channel int8 weights +
  /// on-the-fly activation quantization.
  bool int8_compute = false;
  /// Input shards cross the link as int8 (wire v5) for this deploy: the
  /// master quantizes each HighThroughput fan-out shard per-frame
  /// (absmax), the worker dequantizes before the forward — 4× fewer
  /// bytes on the fan-out's dominant wire cost. A worker that ACKs a
  /// deploy with this set demonstrably decodes v5 frames.
  bool int8_input_wire = false;

  bool any() const { return int8_wire || int8_compute || int8_input_wire; }
};

struct ModelBlueprint {
  enum class Kind : std::uint8_t {
    kStandalone = 0,    // full net input → logits at a fixed width
    kPipelineBack = 1,  // conv stages [cut_stage, n) + classifier
  };

  Kind kind = Kind::kStandalone;
  slim::FluidNetConfig config;
  std::int64_t width = 0;
  std::int64_t cut_stage = 0;  // meaningful for kPipelineBack only
  QuantOptions quant;          // per-deploy INT8 negotiation

  /// A standalone model at `width` channels (e.g. the upper-50 % slice a
  /// worker keeps serving after the master dies — paper Fig. 1c).
  static ModelBlueprint Standalone(const slim::FluidNetConfig& config,
                                   std::int64_t width);

  /// The worker half of the Static pipeline: conv stages [cut_stage, n)
  /// plus the classifier, consuming the front half's activation.
  static ModelBlueprint PipelineBack(const slim::FluidNetConfig& config,
                                     std::int64_t width, std::int64_t cut_stage);

  /// Instantiate the architecture (weights uninitialised — LoadState next).
  /// Layer names match train::BuildConvNet / train::SplitConvNet so the
  /// master's ExtractState dict loads strictly, catching layout drift.
  nn::Sequential Build() const;

  void Encode(core::ByteWriter& w) const;
  static core::Status Decode(core::ByteReader& r, ModelBlueprint& out);
};

/// Everything one kDeploy frame carries, packed into the frame tag (the
/// tag is length-prefixed and binary-safe end to end).
struct DeployRequest {
  std::string name;  // deployment name the master will route by
  ModelBlueprint blueprint;
  nn::StateDict state;

  std::string EncodeToTag() const;
  static core::Status DecodeFromTag(const std::string& tag, DeployRequest& out);
};

}  // namespace fluid::dist
