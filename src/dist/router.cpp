#include "dist/router.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "core/buffer_pool.h"
#include "core/error.h"
#include "core/logging.h"
#include "obs/trace.h"

namespace fluid::dist {

using namespace std::chrono_literals;

namespace {
/// Least-loaded score: the ISSUE-spec signal pair — how full the active
/// pool runs plus how often the partition blows deadlines. Lower is
/// better; ties broken on instantaneous pool state, then id (stable).
std::tuple<double, std::int64_t, std::int64_t> LoadKey(
    const LoadSnapshot& s) {
  return {s.pool_occupancy + s.miss_rate, s.active_requests, s.queue_depth};
}

core::Status NoPartition() {
  return core::Status::Unavailable("router: no live partition to serve");
}
}  // namespace

std::string_view RoutePolicyName(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kConsistentHash: return "consistent_hash";
    case RoutePolicy::kLeastLoaded: return "least_loaded";
  }
  return "unknown";
}

// ---- HashRing --------------------------------------------------------------

HashRing::HashRing(std::size_t points_per_node)
    : points_(points_per_node == 0 ? 1 : points_per_node) {}

std::uint64_t HashRing::Mix(std::uint64_t x) {
  // splitmix64 finalizer: cheap, well-spread, and stable across builds
  // (ring placement must be reproducible — tests pin remap fractions).
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void HashRing::AddNode(std::size_t id) {
  for (std::size_t v = 0; v < points_; ++v) {
    // Per-point hash chains the node hash with the point index so every
    // virtual point lands independently.
    const std::uint64_t point =
        Mix(Mix(static_cast<std::uint64_t>(id) + 1) ^
            (static_cast<std::uint64_t>(v) * 0xd1b54a32d192ed03ull));
    ring_.emplace_back(point, id);
  }
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::RemoveNode(std::size_t id) {
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [&](const auto& p) { return p.second == id; }),
              ring_.end());
}

std::size_t HashRing::NodeFor(std::uint64_t key) const {
  FLUID_CHECK_MSG(!ring_.empty(), "HashRing::NodeFor on an empty ring");
  const std::uint64_t h = Mix(key);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t v, const auto& p) { return v < p.first; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

void HashRing::WalkFrom(std::uint64_t key,
                        std::vector<std::size_t>& order) const {
  order.clear();
  if (ring_.empty()) return;
  const std::uint64_t h = Mix(key);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t v, const auto& p) { return v < p.first; });
  for (std::size_t seen = 0; seen < ring_.size(); ++seen, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(order.begin(), order.end(), it->second) == order.end()) {
      order.push_back(it->second);
    }
  }
}

// ---- RequestRouter ---------------------------------------------------------

RequestRouter::RequestRouter(RouterOptions options)
    : options_(options), ring_(options.ring_points) {
  collector_ = std::thread(&RequestRouter::CollectLoop, this);
}

RequestRouter::~RequestRouter() { Stop(); }

void RequestRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (stop_) return;
    stop_ = true;
  }
  pending_cv_.notify_all();
  if (collector_.joinable()) collector_.join();
}

std::size_t RequestRouter::AddPartition(MasterNode* master) {
  FLUID_CHECK_MSG(master != nullptr, "AddPartition: null master");
  std::lock_guard<std::mutex> lock(mu_);
  FLUID_CHECK_MSG(partitions_.size() < kMaxPartitions,
                  "AddPartition: partition limit reached");
  const std::size_t id = partitions_.size();
  Partition p;
  p.master = master;
  partitions_.push_back(p);
  ring_.AddNode(id);
  return id;
}

void RequestRouter::RemovePartition(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= partitions_.size() || partitions_[id].master == nullptr) return;
  partitions_[id].master = nullptr;
  ring_.RemoveNode(id);
}

void RequestRouter::SetDraining(std::size_t id, bool draining) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= partitions_.size()) return;
  partitions_[id].draining = draining;
}

bool RequestRouter::draining(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < partitions_.size() && partitions_[id].draining;
}

std::size_t RequestRouter::num_partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Partition& p : partitions_) n += p.master != nullptr ? 1 : 0;
  return n;
}

MasterNode* RequestRouter::partition(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < partitions_.size() ? partitions_[id].master : nullptr;
}

std::size_t RequestRouter::PartitionForKey(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.NodeFor(key);
}

void RequestRouter::SetLoadProbeForTesting(LoadProbe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probe_ = std::move(probe);
}

LoadSnapshot RequestRouter::ProbeLoad(std::size_t id) const {
  if (probe_) return probe_(id);
  return partitions_[id].master->ProbeLoad();
}

void RequestRouter::PlanOrderLocked(std::uint64_t key,
                                    std::vector<std::size_t>& order) const {
  order.clear();
  if (options_.policy == RoutePolicy::kConsistentHash) {
    // Ring walk: the key's owner first, then its successors — which is
    // exactly the failover order that keeps sibling spill deterministic.
    ring_.WalkFrom(key, order);
    return;
  }
  // Least-loaded: every live partition, ascending load score.
  std::vector<std::pair<std::tuple<double, std::int64_t, std::int64_t>,
                        std::size_t>> scored;
  for (std::size_t id = 0; id < partitions_.size(); ++id) {
    if (partitions_[id].master == nullptr) continue;
    scored.emplace_back(LoadKey(ProbeLoad(id)), id);
  }
  std::sort(scored.begin(), scored.end());
  for (const auto& [score, id] : scored) order.push_back(id);
}

bool RequestRouter::ChooseLocked(const std::vector<std::size_t>& order,
                                 std::uint64_t tried, std::size_t& chosen) {
  // First pass: an untried partition that is live, not draining, and has
  // open admission (cheap lock-free probe).
  for (const std::size_t id : order) {
    if (tried & (1ull << id)) continue;
    const Partition& p = partitions_[id];
    if (p.master == nullptr || p.draining) continue;
    if (!ProbeLoad(id).admission_open) continue;
    chosen = id;
    return true;
  }
  // Every admission is closed (or everything live is draining): take the
  // first live untried candidate anyway — the submit blocks on admission
  // backpressure bounded by the request's own budget, which beats
  // refusing a request the fleet could still serve late.
  for (const std::size_t id : order) {
    if (tried & (1ull << id)) continue;
    if (partitions_[id].master == nullptr) continue;
    chosen = id;
    return true;
  }
  return false;
}

std::future<core::StatusOr<InferReply>> RequestRouter::InferAsync(
    core::Tensor input, std::chrono::milliseconds timeout) {
  SubmitOptions opts;
  opts.timeout = timeout;
  return InferAsync(std::move(input), opts);
}

std::future<core::StatusOr<InferReply>> RequestRouter::InferAsync(
    core::Tensor input, const SubmitOptions& opts) {
  return InferAsync(std::move(input), opts,
                    next_key_.fetch_add(1, std::memory_order_relaxed));
}

std::future<core::StatusOr<InferReply>> RequestRouter::InferAsync(
    core::Tensor input, const SubmitOptions& opts, std::uint64_t key) {
  // Trace sampling happens here, at the fleet's front door: 1-in-N
  // requests get a trace id that rides SubmitOptions into the partition's
  // scheduler and (on trace_wire links) across the wire. A caller-set id
  // is respected (the request was sampled upstream).
  auto& tracer = obs::Tracer::Global();
  auto p = std::make_unique<Pending>();
  p->opts = opts;
  if (p->opts.trace_id == 0) p->opts.trace_id = tracer.MaybeStartTrace();
  const std::int64_t dispatch_start =
      p->opts.trace_id != 0 ? obs::NowUs() : 0;
  p->deadline = Clock::now() + opts.timeout;
  p->input = std::move(input);
  auto future = p->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (stop_) {
      p->promise.set_value(
          core::Status::Unavailable("router stopped before submit"));
      return future;
    }
  }

  std::size_t chosen = 0;
  MasterNode* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++routed_reqs_;
    PlanOrderLocked(key, p->order);
    if (!ChooseLocked(p->order, /*tried=*/0, chosen)) {
      ++failed_reqs_;
      p->promise.set_value(NoPartition());
      return future;
    }
    if (!p->order.empty() && chosen != p->order.front()) {
      // The key's first choice could not take it (draining, removed, or
      // admission-full): diverted to a sibling partition.
      ++rerouted_reqs_;
      ++partitions_[chosen].rerouted_in;
    }
    ++partitions_[chosen].routed;
    p->tried |= 1ull << chosen;
    target = partitions_[chosen].master;
  }

  if (p->opts.trace_id != 0) {
    // router.dispatch is the trace's root span: it covers partition
    // choice and submission, and everything downstream parents under it.
    const std::uint64_t span = tracer.NewSpanId();
    tracer.Record(p->opts.trace_id, span, 0, "router.dispatch", "router",
                  dispatch_start, obs::NowUs() - dispatch_start);
    p->opts.trace_parent = span;
  }

  // Submit OUTSIDE mu_: the partition's admission backpressure may block
  // for the request's whole budget, and routing must not stall behind it.
  // The partition gets a pooled copy; the original is retained for
  // resubmission on an in-flight failure.
  p->inner = target->InferAsync(core::AcquireTensorCopy(p->input), p->opts);

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    // Even if Stop() raced in, enqueueing is safe: the collector only
    // exits once the pending set is empty.
    pending_.push_back(std::move(p));
  }
  pending_cv_.notify_one();
  return future;
}

core::StatusOr<InferReply> RequestRouter::Infer(
    const core::Tensor& input, std::chrono::milliseconds timeout) {
  return InferAsync(core::AcquireTensorCopy(input), timeout).get();
}

void RequestRouter::CollectLoop() {
  for (;;) {
    std::unique_ptr<Pending> ready;
    {
      std::unique_lock<std::mutex> lock(pending_mu_);
      pending_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop_ and nothing left to resolve
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if ((*it)->inner.wait_for(0s) == std::future_status::ready) {
          ready = std::move(*it);
          pending_.erase(it);
          break;
        }
      }
    }
    if (ready) {
      auto result = ready->inner.get();
      FinishPending(std::move(ready), std::move(result));
    } else {
      // Requests in flight but none resolved: doze instead of spinning
      // the lock (the partitions' own schedulers pace completion).
      std::this_thread::sleep_for(200us);
    }
  }
}

void RequestRouter::FinishPending(std::unique_ptr<Pending> p,
                                  core::StatusOr<InferReply> result) {
  // A partition that answers kUnavailable (its transport died with no
  // local fallback, or its scheduler stopped) is not the fleet's last
  // word: with budget left and an untried sibling, resubmit there.
  if (!result.ok() &&
      result.status().code() == core::StatusCode::kUnavailable &&
      Clock::now() < p->deadline) {
    std::size_t chosen = 0;
    MasterNode* target = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (ChooseLocked(p->order, p->tried, chosen)) {
        target = partitions_[chosen].master;
        p->tried |= 1ull << chosen;
        ++partitions_[chosen].routed;
        ++partitions_[chosen].rerouted_in;
        ++rerouted_reqs_;
        ++retries_;
      }
    }
    if (target != nullptr) {
      SubmitOptions opts = p->opts;
      opts.timeout = RemainingMs(p->deadline);
      FLUID_LOG(Warn)
              .With("event", "reroute")
              .With("partition", chosen)
              .With("budget_ms", opts.timeout.count())
          << "router: partition failed in flight, resubmitting to sibling";
      if (opts.trace_id != 0) {
        // Mark the reroute in the timeline; the retried leg parents under
        // it so the two submissions stay distinguishable.
        auto& tracer = obs::Tracer::Global();
        const std::uint64_t span = tracer.NewSpanId();
        tracer.Record(opts.trace_id, span, opts.trace_parent,
                      "router.reroute", "router", obs::NowUs(), 0);
        opts.trace_parent = span;
      }
      p->inner = target->InferAsync(core::AcquireTensorCopy(p->input), opts);
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(std::move(p));
      return;
    }
  }
  // Final: resolve the caller's promise exactly once, retire the retained
  // input to the pool.
  if (!p->input.empty()) core::RecycleTensor(std::move(p->input));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) {
      ++completed_reqs_;
    } else {
      ++failed_reqs_;
    }
  }
  p->promise.set_value(std::move(result));
}

// ---- Fleet deployment ------------------------------------------------------

core::Status RequestRouter::DeployEverywhere(
    const std::string& name, const ModelBlueprint& blueprint,
    const nn::StateDict& state, std::chrono::milliseconds timeout) {
  std::vector<std::pair<std::size_t, MasterNode*>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t id = 0; id < partitions_.size(); ++id) {
      if (partitions_[id].master != nullptr) {
        live.emplace_back(id, partitions_[id].master);
      }
    }
  }
  for (const auto& [id, master] : live) {
    for (std::size_t w = 0; w < master->num_workers(); ++w) {
      if (!master->WorkerAlive(w)) continue;
      auto st = master->DeployToWorker(name, blueprint, state, timeout, w);
      if (!st.ok()) {
        return core::Status(st.code(),
                            "DeployEverywhere: partition " +
                                std::to_string(id) + " worker " +
                                std::to_string(w) + ": " + st.message());
      }
    }
  }
  return core::Status::Ok();
}

core::Status RequestRouter::RollingDeploy(
    const std::string& name, const ModelBlueprint& blueprint,
    const nn::StateDict& state, std::chrono::milliseconds timeout) {
  std::vector<std::pair<std::size_t, MasterNode*>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t id = 0; id < partitions_.size(); ++id) {
      if (partitions_[id].master != nullptr) {
        live.emplace_back(id, partitions_[id].master);
      }
    }
  }
  for (const auto& [id, master] : live) {
    // Drain: new requests route to siblings while this partition rolls;
    // what it already admitted keeps serving on the old deployment.
    SetDraining(id, true);
    core::Status st = core::Status::Ok();
    for (std::size_t w = 0; w < master->num_workers() && st.ok(); ++w) {
      if (!master->WorkerAlive(w)) continue;
      st = master->DeployToWorker(name, blueprint, state, timeout, w);
    }
    SetDraining(id, false);
    if (!st.ok()) {
      // The partition rejoins on its previous deployment; the roll stops
      // here so the operator sees a half-upgraded fleet loudly.
      return core::Status(st.code(), "RollingDeploy: partition " +
                                         std::to_string(id) + ": " +
                                         st.message());
    }
  }
  return core::Status::Ok();
}

// ---- Fleet telemetry -------------------------------------------------------

RouterStats RequestRouter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterStats s;
  s.routed_reqs = routed_reqs_;
  s.rerouted_reqs = rerouted_reqs_;
  s.retries = retries_;
  s.completed_reqs = completed_reqs_;
  s.failed_reqs = failed_reqs_;
  s.partitions.reserve(partitions_.size());
  for (std::size_t id = 0; id < partitions_.size(); ++id) {
    RouterPartitionStats ps;
    ps.id = id;
    ps.live = partitions_[id].master != nullptr;
    ps.draining = partitions_[id].draining;
    ps.routed = partitions_[id].routed;
    ps.rerouted_in = partitions_[id].rerouted_in;
    if (ps.live) ps.load = ProbeLoad(id);
    s.partitions.push_back(std::move(ps));
  }
  return s;
}

WireStats RequestRouter::wire_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WireStats total;
  for (const Partition& p : partitions_) {
    if (p.master != nullptr) total += p.master->wire_stats();
  }
  return total;
}

SchedulerStats RequestRouter::scheduler_stats() const {
  std::vector<MasterNode*> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Partition& p : partitions_) {
      if (p.master != nullptr) live.push_back(p.master);
    }
  }
  SchedulerStats total;
  double occupancy_sum = 0.0;
  std::size_t serving = 0;
  for (MasterNode* m : live) {
    const SchedulerStats s = m->scheduler_stats();
    total.submitted += s.submitted;
    total.completed += s.completed;
    total.batches += s.batches;
    total.coalesced_samples += s.coalesced_samples;
    total.queue_depth += s.queue_depth;
    total.active_requests += s.active_requests;
    total.running_requests += s.running_requests;
    total.max_active_seen += s.max_active_seen;
    total.deadline_misses += s.deadline_misses;
    total.preemptions += s.preemptions;
    for (std::size_t c = 0; c < kNumPriorityClasses; ++c) {
      total.class_submitted[c] += s.class_submitted[c];
      total.class_active[c] += s.class_active[c];
    }
    if (m->serving()) {
      occupancy_sum += s.occupancy;
      ++serving;
    }
  }
  total.avg_batch = total.batches > 0
                        ? static_cast<double>(total.coalesced_samples) /
                              static_cast<double>(total.batches)
                        : 0.0;
  total.occupancy =
      serving > 0 ? occupancy_sum / static_cast<double>(serving) : 0.0;
  return total;
}

}  // namespace fluid::dist
