#pragma once
// RequestRouter: the partitioned fleet's front door.
//
// One MasterNode is one serialization domain — its serving core runs
// under a single lock and every request funnels through it. The router
// scales past that by fronting N masters, each owning a DISJOINT worker
// partition, and dispatching per request:
//
//   kConsistentHash — a hash ring over partitions (ring_points virtual
//                     points each) keyed on the request id: the same key
//                     lands on the same partition (cache/affinity), and
//                     adding or removing a partition remaps only ~1/N of
//                     the key space (the stability the tests pin).
//   kLeastLoaded    — per-dispatch probe of every partition's
//                     MasterNode::LoadSnapshot(); the request goes to the
//                     lowest pool occupancy + deadline-miss-rate score.
//
// The router speaks the MasterNode InferAsync surface and carries the SLO
// class/deadline through unchanged. Its futures are its OWN promises:
// the caller's future is resolved exactly once by the router, never by a
// partition directly. That indirection is what makes failover airtight —
// when a partition's admission is closed (or it is draining, or removed)
// the request is diverted to a sibling at submit time, and when a
// partition FAILS a request in flight (its transport died with no local
// fallback) the collector thread resubmits it to an untried sibling with
// whatever deadline budget remains. Both paths count `rerouted_reqs`; a
// request fails only when every partition has refused it or its budget is
// spent. Never a lost future, never a double-resolved one.
//
// Deployment model: blueprint deploys replicate across partitions via the
// existing deploy codec — DeployEverywhere ships one blueprint to every
// worker of every partition, so any partition can serve any request.
// RollingDeploy upgrades partition by partition: the partition is DRAINED
// (the router routes new requests to siblings), its workers re-deployed,
// then undrained — the fleet never stops serving during the roll.
// Master-local deployments stay per-master (the caller owns those).
//
// Ownership/threading: the router does not own its MasterNodes (they must
// outlive it, and RemovePartition must not race in-flight submits to that
// partition). All entry points are thread-safe. Stop() (or destruction)
// joins the collector after the pending set drains — every pending future
// is deadline-bounded by its master, so shutdown is bounded too. Stop the
// router BEFORE stopping the masters for a quiet shutdown (a stopped
// master fails its requests kUnavailable, which the collector treats as
// reroutable — correct, but noisy).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/error.h"
#include "dist/blueprint.h"
#include "dist/master.h"
#include "dist/serving_queue.h"
#include "dist/transport.h"
#include "nn/checkpoint.h"

namespace fluid::dist {

enum class RoutePolicy : std::uint8_t {
  kConsistentHash = 0,
  kLeastLoaded = 1,
};
std::string_view RoutePolicyName(RoutePolicy p);

struct RouterOptions {
  RoutePolicy policy = RoutePolicy::kConsistentHash;
  /// Virtual points per partition on the hash ring. More points spread
  /// keys more evenly and shrink the remapped fraction on membership
  /// change, at O(points · partitions) ring memory.
  std::size_t ring_points = 64;
};

/// Consistent-hash ring over partition ids. Pure and deterministic (the
/// point placement depends only on id and index), so key ownership is
/// reproducible across processes — and directly testable.
class HashRing {
 public:
  explicit HashRing(std::size_t points_per_node = 64);

  void AddNode(std::size_t id);
  void RemoveNode(std::size_t id);
  bool empty() const { return ring_.empty(); }

  /// Owner of `key` (the first ring point clockwise of Mix(key)).
  /// Requires a non-empty ring.
  std::size_t NodeFor(std::uint64_t key) const;
  /// Distinct nodes in ring order starting at key's owner — the failover
  /// order for that key. Appends to `order` (cleared first).
  void WalkFrom(std::uint64_t key, std::vector<std::size_t>& order) const;

  /// 64-bit finalizer (splitmix64) — the ring's point/key hash.
  static std::uint64_t Mix(std::uint64_t x);

 private:
  std::size_t points_;
  /// Sorted (point, node) pairs.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

struct RouterPartitionStats {
  std::size_t id = 0;
  bool live = false;      // attached, not removed
  bool draining = false;  // rolling upgrade in progress
  std::int64_t routed = 0;       // dispatches that chose this partition
  std::int64_t rerouted_in = 0;  // of those, diverted from a sibling
  LoadSnapshot load;             // probe at stats() time
};

struct RouterStats {
  std::int64_t routed_reqs = 0;    // requests accepted by the router
  std::int64_t rerouted_reqs = 0;  // diverted at submit or retried in flight
  std::int64_t retries = 0;        // in-flight failures resubmitted
  std::int64_t completed_reqs = 0;
  std::int64_t failed_reqs = 0;    // resolved with an error
  std::vector<RouterPartitionStats> partitions;
};

class RequestRouter {
 public:
  explicit RequestRouter(RouterOptions options = {});
  ~RequestRouter();
  RequestRouter(const RequestRouter&) = delete;
  RequestRouter& operator=(const RequestRouter&) = delete;

  /// Register a partition's master (non-owning). Returns its stable id.
  std::size_t AddPartition(MasterNode* master);
  /// Detach a partition: it leaves the ring and takes no new requests.
  /// In-flight requests already submitted to it still resolve through
  /// their futures (and may still reroute off it on failure).
  void RemovePartition(std::size_t id);
  /// Drain toggle (rolling upgrades): a draining partition takes no new
  /// first-choice requests but keeps serving what it already admitted.
  void SetDraining(std::size_t id, bool draining);
  bool draining(std::size_t id) const;

  std::size_t num_partitions() const;  // live (non-removed) partitions
  MasterNode* partition(std::size_t id) const;  // nullptr once removed

  /// Current owner of `key` under the hash policy (introspection/tests).
  std::size_t PartitionForKey(std::uint64_t key) const;

  // ---- The MasterNode serving surface -------------------------------

  std::future<core::StatusOr<InferReply>> InferAsync(
      core::Tensor input, std::chrono::milliseconds timeout);
  std::future<core::StatusOr<InferReply>> InferAsync(
      core::Tensor input, const SubmitOptions& opts);
  /// Affinity form: `key` pins the consistent-hash choice (e.g. a client
  /// or session id). The keyless overloads draw sequential keys.
  std::future<core::StatusOr<InferReply>> InferAsync(
      core::Tensor input, const SubmitOptions& opts, std::uint64_t key);
  core::StatusOr<InferReply> Infer(const core::Tensor& input,
                                   std::chrono::milliseconds timeout);

  // ---- Fleet deployment ----------------------------------------------

  /// Replicate one blueprint deploy to every alive worker of every live
  /// partition (the existing deploy codec, fanned out). Fails fast on the
  /// first rejected deploy.
  core::Status DeployEverywhere(
      const std::string& name, const ModelBlueprint& blueprint,
      const nn::StateDict& state,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));
  /// Rolling upgrade: partition by partition — drain (router redirects
  /// new requests to siblings), deploy to its workers, undrain. On a
  /// failed deploy the partition is undrained (it still serves its
  /// previous deployment) and the roll aborts with the error.
  core::Status RollingDeploy(
      const std::string& name, const ModelBlueprint& blueprint,
      const nn::StateDict& state,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  // ---- Fleet telemetry ------------------------------------------------

  RouterStats stats() const;
  /// Summed wire counters over every partition's worker links.
  WireStats wire_stats() const;
  /// Fleet scheduler view: counters summed across partitions, occupancy
  /// averaged over the partitions that are serving.
  SchedulerStats scheduler_stats() const;

  /// Join the collector after the pending set drains (each pending future
  /// is deadline-bounded). New submits fail kUnavailable. Idempotent.
  void Stop();

  /// Test seam: replace the per-partition load probe (id → snapshot).
  /// Pass nullptr to restore the real MasterNode::LoadSnapshot probe.
  using LoadProbe = std::function<LoadSnapshot(std::size_t)>;
  void SetLoadProbeForTesting(LoadProbe probe);

 private:
  using Clock = std::chrono::steady_clock;

  struct Partition {
    MasterNode* master = nullptr;  // nullptr once removed
    bool draining = false;
    std::int64_t routed = 0;
    std::int64_t rerouted_in = 0;
  };

  /// One request the router has accepted but not yet resolved. The input
  /// is RETAINED (the partition got a pooled copy) so an in-flight
  /// failure can be resubmitted to a sibling; it is recycled on resolve.
  struct Pending {
    std::promise<core::StatusOr<InferReply>> promise;
    std::future<core::StatusOr<InferReply>> inner;
    core::Tensor input;
    SubmitOptions opts;           // original class; timeout re-derived
    Clock::time_point deadline;   // submit time + original timeout
    std::uint64_t tried = 0;      // bitmask of partition ids attempted
    std::vector<std::size_t> order;  // candidate partitions, primary first
  };
  /// The tried-bitmask bounds the fleet size.
  static constexpr std::size_t kMaxPartitions = 64;

  LoadSnapshot ProbeLoad(std::size_t id) const;
  /// Candidate partitions for `key`, primary first (ring walk under the
  /// hash policy, ascending load score under least-loaded). mu_ held.
  void PlanOrderLocked(std::uint64_t key, std::vector<std::size_t>& order) const;
  /// First candidate that is live, not draining, and has open admission;
  /// falls back to the first live candidate when every admission is
  /// closed (bounded blocking beats refusal). Returns false when no live
  /// partition exists. mu_ held.
  bool ChooseLocked(const std::vector<std::size_t>& order, std::uint64_t tried,
                    std::size_t& chosen);
  void CollectLoop();
  /// Resolve or resubmit one completed pending entry (collector thread).
  void FinishPending(std::unique_ptr<Pending> p,
                     core::StatusOr<InferReply> result);

  RouterOptions options_;

  mutable std::mutex mu_;  // partitions_, ring_, counters
  std::vector<Partition> partitions_;
  HashRing ring_;
  std::atomic<std::uint64_t> next_key_{0};
  std::int64_t routed_reqs_ = 0;
  std::int64_t rerouted_reqs_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t completed_reqs_ = 0;
  std::int64_t failed_reqs_ = 0;
  LoadProbe probe_;  // test seam; empty = real probe

  mutable std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::list<std::unique_ptr<Pending>> pending_;
  bool stop_ = false;
  std::thread collector_;
};

}  // namespace fluid::dist
