#include "dist/orchestrator.h"

#include "core/logging.h"

namespace fluid::dist {

Orchestrator::Orchestrator(MasterNode& master, OrchestratorConfig config)
    : master_(master),
      config_(config),
      controller_(config.ha_capacity, config.ht_capacity, config.hysteresis) {}

Orchestrator::Report Orchestrator::Tick(double demand) {
  ++ticks_;
  Report report;
  report.demand = demand;
  report.alive_workers = master_.ProbeWorkers(config_.probe_timeout);

  // Join the external demand estimate with the serving queue's own
  // telemetry: a standing backlog of saturated batches means the current
  // operating point is too slow even if the estimate disagrees.
  const SchedulerStats serving = master_.scheduler_stats();
  report.queue_depth = static_cast<double>(serving.queue_depth);
  report.batch_occupancy = serving.occupancy;
  ModeController::DemandSignal signal;
  signal.demand = demand;
  signal.queue_depth = report.queue_depth;
  signal.batch_occupancy = report.batch_occupancy;
  report.mode = controller_.Decide(signal);

  // The controller expresses a preference; the fleet may not be able to
  // honour it. HA means the full-width pipeline, which needs its back
  // worker — if the plan has a pipeline and that worker is dead, the
  // system actually serves standalone slices (the master's Infer skips the
  // dead pipeline), so report and deploy HT rather than pretending the HA
  // operating point exists.
  const Plan& plan = master_.plan();
  const bool pipeline_planned =
      !plan.pipeline_front.empty() && !plan.pipeline_back.empty();
  if (report.mode == sim::Mode::kHighAccuracy && pipeline_planned &&
      !master_.WorkerAlive(plan.back_worker)) {
    report.mode = sim::Mode::kHighThroughput;
  }
  master_.SetMode(report.mode);
  report.degraded = report.alive_workers == 0;

  // Capacity estimate: HA is the fixed pipeline operating point (needs its
  // back worker); HT scales with the surviving fleet, the master counting
  // as one device. Both collapse to the master's own share once every
  // worker is gone.
  const std::size_t fleet = master_.num_workers() + 1;
  const double per_device = config_.ht_capacity / static_cast<double>(fleet);
  if (report.degraded) {
    report.capacity = per_device;
  } else if (report.mode == sim::Mode::kHighAccuracy) {
    report.capacity = config_.ha_capacity;
  } else {
    report.capacity =
        per_device * static_cast<double>(report.alive_workers + 1);
  }
  FLUID_LOG(Debug) << "orchestrator tick " << ticks_ << ": demand " << demand
                   << " mode " << sim::ModeName(report.mode) << " alive "
                   << report.alive_workers << " capacity " << report.capacity;
  return report;
}

}  // namespace fluid::dist
