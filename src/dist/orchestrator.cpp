#include "dist/orchestrator.h"

#include "core/logging.h"
#include "obs/metrics.h"

namespace fluid::dist {

namespace {
/// Publish one fleet tick's rolled-up snapshot as fluid_fleet_* series in
/// the global registry. Gauges throughout (last-writer-wins): every
/// source is already a lifetime counter or an instantaneous level, so a
/// scrape between ticks sees the latest tick's view.
void PublishFleetMetrics(const FleetOrchestrator::FleetReport& fleet) {
  auto& reg = obs::MetricsRegistry::Global();
  const auto set = [&reg](const char* name, double v) {
    reg.GetGauge(name).Set(v);
  };
  const auto seti = [&set](const char* name, std::int64_t v) {
    set(name, static_cast<double>(v));
  };
  set("fluid_fleet_demand", fleet.demand);
  set("fluid_fleet_capacity", fleet.capacity);
  seti("fluid_fleet_serving_partitions",
       static_cast<std::int64_t>(fleet.serving_partitions));
  seti("fluid_fleet_alive_workers",
       static_cast<std::int64_t>(fleet.alive_workers));
  const FleetSnapshot& s = fleet.snapshot;
  seti("fluid_fleet_wire_bytes_sent", s.wire.bytes_sent);
  seti("fluid_fleet_wire_bytes_recv", s.wire.bytes_recv);
  seti("fluid_fleet_wire_frames_sent", s.wire.frames_sent);
  seti("fluid_fleet_wire_frames_recv", s.wire.frames_recv);
  seti("fluid_fleet_wire_batched_sends", s.wire.batched_sends);
  seti("fluid_fleet_sched_submitted", s.sched.submitted);
  seti("fluid_fleet_sched_completed", s.sched.completed);
  seti("fluid_fleet_sched_queue_depth", s.sched.queue_depth);
  seti("fluid_fleet_sched_active_requests", s.sched.active_requests);
  seti("fluid_fleet_sched_deadline_misses", s.sched.deadline_misses);
  seti("fluid_fleet_sched_preemptions", s.sched.preemptions);
  set("fluid_fleet_sched_occupancy", s.sched.occupancy);
  seti("fluid_fleet_pool_gets", static_cast<std::int64_t>(s.pool.gets));
  seti("fluid_fleet_pool_hits", static_cast<std::int64_t>(s.pool.hits));
  seti("fluid_fleet_pool_puts", static_cast<std::int64_t>(s.pool.puts));
  seti("fluid_fleet_pool_discards",
       static_cast<std::int64_t>(s.pool.discards));
  seti("fluid_fleet_router_routed_reqs", s.router.routed_reqs);
  seti("fluid_fleet_router_rerouted_reqs", s.router.rerouted_reqs);
  seti("fluid_fleet_router_retries", s.router.retries);
  seti("fluid_fleet_router_completed_reqs", s.router.completed_reqs);
  seti("fluid_fleet_router_failed_reqs", s.router.failed_reqs);
}
}  // namespace

Orchestrator::Orchestrator(MasterNode& master, OrchestratorConfig config)
    : master_(master),
      config_(config),
      controller_(config.ha_capacity, config.ht_capacity, config.hysteresis) {}

Orchestrator::Report Orchestrator::Tick(double demand) {
  ++ticks_;
  Report report;
  report.demand = demand;
  report.alive_workers = master_.ProbeWorkers(config_.probe_timeout);

  // Join the external demand estimate with the request pool's own
  // telemetry: a standing backlog with a saturated active pool — or
  // requests provably missing deadlines — means the current operating
  // point is too slow even if the estimate disagrees.
  const SchedulerStats serving = master_.scheduler_stats();
  report.queue_depth = static_cast<double>(serving.queue_depth);
  report.pool_occupancy = serving.occupancy;
  report.active_requests = serving.active_requests;
  report.running_requests = serving.running_requests;
  report.deadline_misses = serving.deadline_misses;
  report.preemptions = serving.preemptions;
  const std::int64_t miss_delta = serving.deadline_misses - last_misses_;
  const std::int64_t done_delta = serving.completed - last_completed_;
  last_misses_ = serving.deadline_misses;
  last_completed_ = serving.completed;
  report.deadline_miss_rate =
      done_delta > 0 ? static_cast<double>(miss_delta) /
                           static_cast<double>(done_delta)
                     : (miss_delta > 0 ? 1.0 : 0.0);
  ModeController::DemandSignal signal;
  signal.demand = demand;
  signal.queue_depth = report.queue_depth;
  signal.pool_occupancy = report.pool_occupancy;
  signal.active_requests = static_cast<double>(serving.active_requests);
  signal.deadline_miss_rate = report.deadline_miss_rate;
  signal.high_class_share =
      serving.active_requests > 0
          ? static_cast<double>(serving.class_active[0]) /
                static_cast<double>(serving.active_requests)
          : 0.0;
  report.mode = controller_.Decide(signal);

  // The controller expresses a preference; the fleet may not be able to
  // honour it. HA means the full-width pipeline, which needs its back
  // worker — if the plan has a pipeline and that worker is dead, the
  // system actually serves standalone slices (the master's Infer skips the
  // dead pipeline), so report and deploy HT rather than pretending the HA
  // operating point exists.
  const Plan& plan = master_.plan();
  const bool pipeline_planned =
      !plan.pipeline_front.empty() && !plan.pipeline_back.empty();
  if (report.mode == sim::Mode::kHighAccuracy && pipeline_planned &&
      !master_.WorkerAlive(plan.back_worker)) {
    report.mode = sim::Mode::kHighThroughput;
  }
  master_.SetMode(report.mode);
  report.degraded = report.alive_workers == 0;

  // Capacity estimate: HA is the fixed pipeline operating point (needs its
  // back worker); HT scales with the surviving fleet, the master counting
  // as one device. Both collapse to the master's own share once every
  // worker is gone.
  const std::size_t fleet = master_.num_workers() + 1;
  const double per_device = config_.ht_capacity / static_cast<double>(fleet);
  if (report.degraded) {
    report.capacity = per_device;
  } else if (report.mode == sim::Mode::kHighAccuracy) {
    report.capacity = config_.ha_capacity;
  } else {
    report.capacity =
        per_device * static_cast<double>(report.alive_workers + 1);
  }
  FLUID_LOG(Debug) << "orchestrator tick " << ticks_ << ": demand " << demand
                   << " mode " << sim::ModeName(report.mode) << " alive "
                   << report.alive_workers << " capacity " << report.capacity;
  return report;
}

FleetOrchestrator::FleetOrchestrator(RequestRouter& router,
                                     OrchestratorConfig config)
    : router_(router), config_(config) {}

FleetOrchestrator::FleetReport FleetOrchestrator::Tick(double fleet_demand) {
  ++ticks_;
  FleetReport fleet;
  fleet.demand = fleet_demand;

  const RouterStats rs = router_.stats();
  if (partitions_.size() < rs.partitions.size()) {
    partitions_.resize(rs.partitions.size());
  }
  std::size_t live = 0;
  for (const RouterPartitionStats& p : rs.partitions) live += p.live ? 1 : 0;
  const double share =
      live > 0 ? fleet_demand / static_cast<double>(live) : fleet_demand;

  for (const RouterPartitionStats& p : rs.partitions) {
    PartitionReport pr;
    pr.partition = p.id;
    pr.live = p.live;
    pr.draining = p.draining;
    if (!p.live) {
      partitions_[p.id].reset();  // forget a removed partition's controller
      fleet.partitions.push_back(std::move(pr));
      continue;
    }
    MasterNode* master = router_.partition(p.id);
    if (master == nullptr) {  // removed between stats() and here
      pr.live = false;
      fleet.partitions.push_back(std::move(pr));
      continue;
    }
    if (!partitions_[p.id]) {
      partitions_[p.id] = std::make_unique<Orchestrator>(*master, config_);
    }
    pr.report = partitions_[p.id]->Tick(share);
    fleet.alive_workers += pr.report.alive_workers;
    fleet.capacity += pr.report.capacity;
    if (!p.draining) ++fleet.serving_partitions;
    fleet.partitions.push_back(std::move(pr));
  }

  fleet.snapshot.wire = router_.wire_stats();
  fleet.snapshot.sched = router_.scheduler_stats();
  fleet.snapshot.pool = core::PoolStatsSnapshot();
  fleet.snapshot.router = rs;
  PublishFleetMetrics(fleet);
  FLUID_LOG(Debug) << "fleet tick " << ticks_ << ": demand " << fleet_demand
                   << " partitions " << fleet.serving_partitions << "/"
                   << rs.partitions.size() << " capacity " << fleet.capacity;
  return fleet;
}

}  // namespace fluid::dist
