#pragma once
// WorkerNode: an edge device serving deployed sub-networks.
//
// A worker owns nothing but what the master ships it: each kDeploy frame
// carries a blueprint (architecture) plus a weight dict, which the worker
// instantiates and serves by name. Because the deployed weights live on
// the worker, they keep serving after the master dies — that ownership is
// exactly the paper's Fig. 1(c) argument for the Fluid upper slice, and
// LocalInfer is the surviving entry point.
//
// The serving loop runs on one background thread. It is not FIFO: frames
// already queued on the link are drained and served strict-class-then-EDF
// from their v4 SLO blocks — the same order the master's BatchScheduler
// assembles chunks in — so an urgent frame that lands behind a burst of
// low-class ones does not wait out the burst on the device. Control
// frames (deploy, heartbeat) always go first, in arrival order; frames
// without an SLO block serve as kNormal with no meaningful deadline. The
// master correlates replies by seq and parks out-of-order ones, so this
// reordering is invisible to the RPC layer. Stop() is a graceful
// shutdown; Crash() simulates a power failure (the transport drops with no
// goodbye), which is what the failover benches use to kill a device
// mid-stream.

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "dist/blueprint.h"
#include "dist/transport.h"
#include "nn/sequential.h"
#include "slim/fluid_model.h"

namespace fluid::dist {

class WorkerNode {
 public:
  WorkerNode(std::string name, slim::FluidNetConfig config,
             TransportPtr transport);
  ~WorkerNode();
  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  /// Announce (kHello) and start the serving loop.
  void Start();

  /// Graceful shutdown: stop serving, close the transport. Idempotent.
  void Stop();

  /// Simulated power failure: the serving loop dies and the transport
  /// closes without a goodbye — the master finds out the hard way.
  void Crash();

  bool running() const { return running_; }
  const std::string& name() const { return name_; }

  /// Run a deployed model directly (no master involved) — the Fig. 1(c)
  /// master-failure path.
  core::StatusOr<core::Tensor> LocalInfer(const std::string& model,
                                          const core::Tensor& input);
  /// Serving-path variant: consumes the input so the whole forward can
  /// ping-pong activations through the buffer pool (the input's storage
  /// is recycled by the first layer). Bitwise-identical results.
  core::StatusOr<core::Tensor> LocalInfer(const std::string& model,
                                          core::Tensor&& input);

  std::vector<std::string> DeploymentNames() const;

  /// Infer frames served over the transport since Start().
  std::int64_t served() const { return served_; }
  /// Samples served across those frames (a coalesced [N,...] batch frame
  /// counts N — the master's batched serving path ships these).
  std::int64_t samples_served() const { return samples_served_; }
  /// Infer frames that arrived with an int8 (wire v3) payload — the
  /// negotiation tests key on this to prove quantized frames really flow.
  std::int64_t quant_frames() const { return quant_frames_; }
  /// Infer frames that arrived with a v4 SLO block attached.
  std::int64_t slo_frames() const { return slo_frames_; }
  /// Infer frames whose int8 payload was a quantized *input shard* (wire
  /// v5, `int8_input_wire` negotiation) rather than cut activations.
  std::int64_t input_quant_frames() const { return input_quant_frames_; }
  /// Infer frames that arrived with a v6 trace block (and had it echoed,
  /// service duration filled, on the reply).
  std::int64_t trace_frames() const { return trace_frames_; }
  /// Wire byte/frame counters of this worker's link to the master.
  WireStats wire_stats() const { return transport_->wire_stats(); }
  /// Samples served per scheduling class (from v4 SLO blocks; frames
  /// without one are unclassified and counted nowhere here).
  std::int64_t samples_served_class(std::size_t cls) const {
    return cls < 3 ? samples_by_class_[cls].load() : 0;
  }
  /// Times the serving loop picked a queued frame over an older one —
  /// strict-class-then-EDF reorders actually exercised (0 on a link that
  /// never queued more than one frame).
  std::int64_t priority_reorders() const { return priority_reorders_; }

 private:
  void ServeLoop();
  // Handlers may strip the request's bulk payloads (move them into the
  // forward pass); ServeLoop recycles whatever storage remains afterwards.
  Message Handle(Message& msg);
  Message HandleDeploy(const Message& msg);
  Message HandleInfer(Message& msg);

  std::string name_;
  slim::FluidNetConfig config_;
  TransportPtr transport_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::int64_t> served_{0};
  std::atomic<std::int64_t> samples_served_{0};
  std::atomic<std::int64_t> quant_frames_{0};
  std::atomic<std::int64_t> slo_frames_{0};
  std::atomic<std::int64_t> input_quant_frames_{0};
  std::atomic<std::int64_t> trace_frames_{0};
  std::atomic<std::int64_t> samples_by_class_[3]{};
  std::atomic<std::int64_t> priority_reorders_{0};

  mutable std::mutex mu_;  // guards deployments_
  std::map<std::string, nn::Sequential> deployments_;
};

}  // namespace fluid::dist
