#pragma once
// MasterNode: the device that owns the trained Fluid store, deploys slices,
// and serves inference requests with failover.
//
// The master holds local deployments (its own resident sub-networks plus
// the pipeline front) and talks to one or more WorkerNodes over Transports.
// Request routing implements the paper's two modes, batch-first:
//
//   HighAccuracy  — pipeline: run the front half locally on the coalesced
//                   batch, ship cut activations to the worker hosting the
//                   back half in `ha_chunk`-sample frames with up to
//                   `ha_window` frames in flight — front compute of chunk
//                   k+1 overlaps the link and the worker's back compute of
//                   chunk k (the overlapped schedule sim/pipeline_sim
//                   models). Full-width accuracy, link-bound throughput.
//   HighThroughput — fan-out: the coalesced batch is sharded across every
//                   live device hosting a self-sufficient slice (master
//                   included); remote shards ship first so worker compute
//                   overlaps the master's own shard.
//
// Serving is asynchronous and iteration-level: InferAsync admits the
// request into a BatchScheduler pool (bounded by max_active_reqs, with
// per-request deadline + priority class — see dist/serving_queue.h) and
// returns a future. The drain thread pulls *chunks* — slices assembled
// across requests by class and deadline — and serves them continuously:
// in HA mode each `ha_chunk` cut-activation frame is a scheduling
// quantum, so frames from different requests share the `ha_window`
// in-flight window, new arrivals splice in at the next frame boundary
// (their time-to-first-chunk excludes the residual service of whatever
// was ahead), and an expiring high-class request preempts queued
// lower-class rows at frame granularity. The fused forward is bitwise
// deterministic per sample, so any chunk grouping yields results
// identical to serving each request alone. The blocking Infer shim rides
// the same path.
//
// Failover (paper Fig. 1b): any transport-level failure marks that worker
// dead and its whole shard (HT) or the whole batch (HA pipeline) is
// re-served from the surviving devices in the same serve pass — callers
// never see a worker death. A crashed worker can later be revived with
// ReattachWorker, which re-deploys everything it hosted.
//
// Thread safety: the node is internally locked — InferAsync/Infer may be
// called from any number of client threads while the orchestrator probes
// and redeploys. One mutex serializes the serving core; concurrency comes
// from batching, not from concurrent forwards.

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/error.h"
#include "dist/blueprint.h"
#include "dist/serving_queue.h"
#include "dist/transport.h"
#include "nn/checkpoint.h"
#include "nn/sequential.h"
#include "sim/scenario.h"
#include "slim/fluid_model.h"

namespace fluid::obs {
class Histogram;
}  // namespace fluid::obs

namespace fluid::dist {

/// Which deployment serves which role. Names refer to deployments made via
/// DeployLocal / DeployToWorker; empty names disable that role.
struct Plan {
  std::string master_standalone;  // master-resident self-sufficient slice
  std::string worker_standalone;  // worker-resident self-sufficient slice
  std::string pipeline_front;     // local front half (HighAccuracy mode)
  std::string pipeline_back;      // remote back half (HighAccuracy mode)
  std::size_t back_worker = 0;    // which worker hosts pipeline_back
};

/// Served-sample counters. served_* count samples (one blocking Infer of a
/// [1,...] input still counts 1); failovers/reattaches count events.
struct MasterStats {
  std::int64_t served_local = 0;     // master-resident standalone
  std::int64_t served_remote = 0;    // worker-resident standalone
  std::int64_t served_pipeline = 0;  // HA front+back pipeline
  std::int64_t failovers = 0;        // shards/chunks re-served after a death
  std::int64_t batches = 0;          // chunks (scheduling quanta) served
  std::int64_t coalesced_samples = 0;
  std::int64_t stale_replies = 0;    // replies dropped: seq matched nothing
  std::int64_t reattaches = 0;       // workers revived via ReattachWorker
  std::int64_t quant_cut_frames = 0; // HA cut frames shipped int8 (wire v3)
  std::int64_t quant_input_frames = 0;  // HT shards shipped int8 (wire v5)
};

/// A master's serving load, cheap enough to probe per routing decision.
/// Sourced from the scheduler's lock-free load mirror plus an atomic
/// alive-worker count — taking it NEVER touches the serving-core lock, so
/// a router probing every partition on every dispatch cannot contend with
/// chunk service. (It briefly takes the start/stop latch serving_mu_ to
/// copy the scheduler handle; that lock is never held while serving.)
struct LoadSnapshot {
  bool serving = false;         // scheduler running
  bool admission_open = true;   // a Submit now would not block on admission
  double pool_occupancy = 0.0;  // EMA active/max_active, [0, 1]
  std::int64_t active_requests = 0;
  std::int64_t queue_depth = 0;      // backlog rows
  std::int64_t deadline_misses = 0;  // lifetime
  std::int64_t completed = 0;        // lifetime
  double miss_rate = 0.0;            // lifetime misses / completed
  std::size_t alive_workers = 0;
};

class MasterNode {
 public:
  explicit MasterNode(slim::FluidNetConfig config);
  ~MasterNode();
  MasterNode(const MasterNode&) = delete;
  MasterNode& operator=(const MasterNode&) = delete;

  /// Adopt a connected transport as the next worker. Returns its index.
  std::size_t AttachWorker(TransportPtr transport);

  /// Revive a dead worker slot with a fresh transport: everything the slot
  /// ever hosted is re-deployed (blueprint + weights are kept master-side),
  /// then the slot rejoins routing. Fails — leaving the slot dead — if the
  /// new link cannot complete the re-deploys within `timeout` each.
  core::Status ReattachWorker(
      std::size_t index, TransportPtr transport,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  std::size_t num_workers() const;
  /// Workers currently believed alive (updated lazily by failed RPCs and
  /// eagerly by ProbeWorkers).
  std::size_t AliveWorkers() const;
  bool WorkerAlive(std::size_t index) const;

  /// Host a model on the master itself.
  void DeployLocal(std::string name, nn::Sequential model);

  /// Ship blueprint + weights to worker `worker` and wait for its ack.
  core::Status DeployToWorker(
      const std::string& name, const ModelBlueprint& blueprint,
      const nn::StateDict& state,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000),
      std::size_t worker = 0);

  void SetPlan(Plan plan);
  Plan plan() const;

  void SetMode(sim::Mode mode);
  sim::Mode mode() const;

  /// Start the async serving runtime with the given coalescing policy.
  /// Idempotent while running (the options of the first call win).
  void StartServing(BatchOptions options = {});
  /// Stop the scheduler; queued-but-unserved requests fail kUnavailable.
  void StopServing();
  bool serving() const;

  /// Enqueue one input ([n, C, S, S]) for continuous serving at kNormal
  /// priority; thread-safe. Starts the serving runtime with default
  /// options if not running. The future resolves when every row of this
  /// request has been served (failover included) — it fails only when no
  /// deployment anywhere can answer, or the request expired unserved.
  std::future<core::StatusOr<InferReply>> InferAsync(
      core::Tensor input, std::chrono::milliseconds timeout);

  /// Same, with an explicit priority class and deadline. The class rides
  /// the wire (v4 SLO block) with every frame that carries the request's
  /// rows; an expiring request preempts lower classes at chunk boundaries.
  std::future<core::StatusOr<InferReply>> InferAsync(
      core::Tensor input, const SubmitOptions& opts);

  /// Blocking shim over the same serving core: when the scheduler runs,
  /// equivalent to InferAsync(...).get() (the request coalesces with
  /// concurrent callers'); otherwise the input is served inline as a
  /// batch of one. For a multi-sample input, `served_by` reports the
  /// device that served the first sample.
  core::StatusOr<InferReply> Infer(const core::Tensor& input,
                                   std::chrono::milliseconds timeout);

  /// Allow wire v6 traced frames on worker `index`'s link. Off by default:
  /// a v5-or-older peer would reject version-6 frames and drop the
  /// connection, so only enable it for peers known to speak v6 (same
  /// binary, or a deploy that acked it). With the flag off a sampled
  /// request still traces master-side — its frames just ship untraced
  /// (byte-identical to v5) and the per-worker wire/service split is
  /// absent from the timeline.
  void EnableTraceWire(std::size_t index, bool on = true);

  /// Heartbeat every believed-alive worker; mark non-responders dead.
  /// Returns the number still alive. Used by the Orchestrator tick.
  std::size_t ProbeWorkers(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(250));

  /// Hot-path load probe for dispatchers (see struct LoadSnapshot above).
  LoadSnapshot ProbeLoad() const;

  MasterStats stats() const;
  /// Wire byte/frame counters summed over every attached worker link —
  /// the master-side half of the serving fleet's wire cost.
  WireStats wire_stats() const;
  /// Queue/coalescing counters for the control plane (zeros when the
  /// scheduler is not running).
  SchedulerStats scheduler_stats() const;
  const slim::FluidNetConfig& config() const { return config_; }

 private:
  /// One deployment a worker ACKed: the encoded DeployRequest tag is kept
  /// so ReattachWorker can replay the full deploy history onto a fresh
  /// link, and the negotiated quant options decide the wire format of
  /// this deployment's activation frames (int8_wire ⇒ v3 cut frames).
  struct Deployment {
    std::string name;
    std::string tag;
    QuantOptions quant;
  };

  struct WorkerHandle {
    TransportPtr transport;
    std::string name;  // from its kHello, if seen
    bool alive = true;
    /// Send wire v6 traced frames on this link (see EnableTraceWire).
    bool trace_wire = false;
    std::vector<Deployment> deployments;
    /// Correlation ids of RPCs currently in flight on this link.
    std::set<std::int64_t> pending;
    /// Replies that arrived for a pending seq other than the one being
    /// awaited (out-of-order delivery under windowed sends).
    std::map<std::int64_t, Message> reply_buffer;
  };

  /// Attribution for one contiguous run of a batch's rows: every sample
  /// in [row0, row0+rows) was served by `*label`. The label points at the
  /// cached per-device strings below (rebuilt on SetPlan/AttachWorker,
  /// guarded by mu_), so attributing a shard costs a pointer, not a
  /// string build — zero allocations on the serve path.
  struct Attribution {
    std::int64_t row0 = 0;
    std::int64_t rows = 0;
    const std::string* label = nullptr;
  };

  /// Result of serving one coalesced batch.
  struct BatchResult {
    core::Tensor logits;  // [N, classes]
    /// Sorted by row0, disjoint, covering every row of `logits`.
    std::vector<Attribution> served_by;
  };

  // All *Locked members require mu_ held.
  core::StatusOr<Message> RpcLocked(std::size_t w, Message msg,
                                    std::chrono::milliseconds timeout);
  core::Status SendLocked(std::size_t w, const Message& msg);
  /// Ship a group of frames to one worker as a single link transaction
  /// (Transport::SendBatch). Same failure semantics as SendLocked: any
  /// error marks the worker dead and the whole group is suspect.
  core::Status SendBatchLocked(std::size_t w, std::span<const Message> msgs);
  /// Wait for the reply correlated to `seq`; replies for other pending
  /// seqs are buffered, replies matching nothing are dropped and logged.
  core::StatusOr<Message> AwaitReplyLocked(
      std::size_t w, std::int64_t seq,
      std::chrono::steady_clock::time_point deadline);
  bool WorkerHasDeploymentLocked(std::size_t w, const std::string& name) const;
  const Deployment* FindDeploymentLocked(std::size_t w,
                                         const std::string& name) const;
  void MarkDeadLocked(std::size_t w, const core::Status& why);

  /// True while the HA pipeline can serve: HA mode, pipeline roles
  /// planned, the back worker alive and the front resident locally.
  bool HaViableLocked() const;
  /// Rebuild the cached attribution labels from plan_ + workers_.
  void RefreshLabelsLocked();

  core::StatusOr<BatchResult> ServeBatchLocked(
      const core::Tensor& input, std::chrono::steady_clock::time_point deadline);
  core::StatusOr<BatchResult> ServePipelineBatchLocked(
      const core::Tensor& input, std::chrono::steady_clock::time_point deadline);
  /// `slo` (when serving a scheduler chunk) stamps the v4 SLO block —
  /// class + remaining budget — onto every shard frame shipped; a traced
  /// chunk additionally stamps the v6 trace block (parented to
  /// `trace_parent`, the master.chunk span) on trace_wire links.
  core::StatusOr<BatchResult> ServeShardedLocked(
      const core::Tensor& input, std::chrono::steady_clock::time_point deadline,
      const BatchScheduler::WorkChunk* slo = nullptr,
      std::uint64_t trace_parent = 0);
  core::StatusOr<core::Tensor> ServeShardRemoteLocked(
      std::size_t w, const std::string& name, core::Tensor shard,
      std::chrono::steady_clock::time_point deadline);

  /// Scheduler drain-thread entry: pull chunks continuously and route
  /// each by mode, until the pool has nothing schedulable.
  void ServeActive(BatchScheduler& sched);
  /// Iteration-level HA serving: ha_chunk frames as scheduling quanta
  /// sharing the ha_window in-flight window. Returns false when the pool
  /// drained (return to the drain loop), true when the pipeline broke or
  /// the mode changed (caller re-checks and re-routes).
  bool ServePipelineContinuous(BatchScheduler& sched);
  /// Serve one chunk via the standalone fan-out (HT mode and the
  /// failover target for broken pipeline frames) and resolve its rows.
  void ServeChunkSharded(BatchScheduler& sched,
                         const BatchScheduler::WorkChunk& chunk);
  /// Stack a chunk's slices into one contiguous [rows, ...] tensor.
  /// A chunk that is exactly one whole request borrows that request's
  /// input (no copy, returns its address); otherwise `storage` is filled
  /// from the pool and its address returned.
  const core::Tensor* StackChunk(const BatchScheduler::WorkChunk& chunk,
                                 core::Tensor& storage);
  /// Requires serving_mu_ held. No-op while the scheduler runs.
  void StartServingLocked(BatchOptions options);

  slim::FluidNetConfig config_;

  mutable std::mutex mu_;  // guards everything below
  std::vector<WorkerHandle> workers_;
  std::map<std::string, nn::Sequential> local_;
  Plan plan_;
  sim::Mode mode_ = sim::Mode::kHighAccuracy;
  MasterStats stats_;
  std::int64_t next_seq_ = 1;
  std::size_t round_robin_ = 0;
  BatchOptions batch_options_;  // HA chunk/window knobs for the serve core
  /// Cached attribution labels (see Attribution): one per device role,
  /// rebuilt on SetPlan/AttachWorker instead of concatenated per shard.
  std::string label_local_;
  std::string label_pipeline_;
  std::vector<std::string> label_worker_;

  /// Guards scheduler start/stop; never held while serving (the scheduler
  /// thread takes mu_, and StopServing joins that thread) nor across
  /// Submit (backpressure can block there; the control plane — StopServing,
  /// scheduler_stats — must stay reachable meanwhile). Shared ownership
  /// lets Infer/InferAsync keep the scheduler alive across a Submit that
  /// races StopServing.
  mutable std::mutex serving_mu_;
  std::shared_ptr<BatchScheduler> scheduler_;

  /// Lock-free mirror of the alive-worker count (maintained wherever
  /// `WorkerHandle::alive` flips, always under mu_) so LoadSnapshot can
  /// read it without the serving-core lock.
  std::atomic<std::size_t> alive_count_{0};

  /// Per-class pure-wire-time histograms (obs/metrics.h), recorded when a
  /// traced reply's echoed service duration lets the observed round trip
  /// split into link time vs worker compute. Cached at construction.
  obs::Histogram* wire_ms_[kNumPriorityClasses] = {};
};

}  // namespace fluid::dist
