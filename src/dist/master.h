#pragma once
// MasterNode: the device that owns the trained Fluid store, deploys slices,
// and serves inference requests with failover.
//
// The master holds local deployments (its own resident sub-networks plus
// the pipeline front) and talks to one or more WorkerNodes over Transports.
// Request routing implements the paper's two modes:
//
//   HighAccuracy  — pipeline: run the front half locally, ship the cut
//                   activation to the worker hosting the back half, return
//                   its logits. Full-width accuracy, link-bound throughput.
//   HighThroughput — fan-out: every device serves a self-sufficient
//                   standalone slice; requests round-robin across the
//                   master's resident model and every live worker.
//
// Failover (paper Fig. 1b): any transport-level failure marks that worker
// dead and the request is re-served from the master's resident slice in
// the same Infer call — the caller never sees the failure. The master is
// driven from a single serving thread; it is not internally locked.

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "core/error.h"
#include "dist/blueprint.h"
#include "dist/transport.h"
#include "nn/checkpoint.h"
#include "nn/sequential.h"
#include "sim/scenario.h"
#include "slim/fluid_model.h"

namespace fluid::dist {

/// Which deployment serves which role. Names refer to deployments made via
/// DeployLocal / DeployToWorker; empty names disable that role.
struct Plan {
  std::string master_standalone;  // master-resident self-sufficient slice
  std::string worker_standalone;  // worker-resident self-sufficient slice
  std::string pipeline_front;     // local front half (HighAccuracy mode)
  std::string pipeline_back;      // remote back half (HighAccuracy mode)
  std::size_t back_worker = 0;    // which worker hosts pipeline_back
};

struct InferReply {
  core::Tensor logits;
  std::string served_by;  // e.g. "master:lower50", "worker[1]:upper50"
};

struct MasterStats {
  std::int64_t served_local = 0;     // master-resident standalone
  std::int64_t served_remote = 0;    // worker-resident standalone
  std::int64_t served_pipeline = 0;  // HA front+back pipeline
  std::int64_t failovers = 0;        // requests re-served after a worker died
};

class MasterNode {
 public:
  explicit MasterNode(slim::FluidNetConfig config);

  /// Adopt a connected transport as the next worker. Returns its index.
  std::size_t AttachWorker(TransportPtr transport);

  std::size_t num_workers() const { return workers_.size(); }
  /// Workers currently believed alive (updated lazily by failed RPCs and
  /// eagerly by ProbeWorkers).
  std::size_t AliveWorkers() const;
  bool WorkerAlive(std::size_t index) const;

  /// Host a model on the master itself.
  void DeployLocal(std::string name, nn::Sequential model);

  /// Ship blueprint + weights to worker `worker` and wait for its ack.
  core::Status DeployToWorker(
      const std::string& name, const ModelBlueprint& blueprint,
      const nn::StateDict& state,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000),
      std::size_t worker = 0);

  void SetPlan(Plan plan) { plan_ = std::move(plan); }
  const Plan& plan() const { return plan_; }

  void SetMode(sim::Mode mode) { mode_ = mode; }
  sim::Mode mode() const { return mode_; }

  /// Serve one input ([N, C, S, S]) under the current mode with failover.
  /// Fails only when no deployment anywhere can answer within `timeout`.
  core::StatusOr<InferReply> Infer(const core::Tensor& input,
                                   std::chrono::milliseconds timeout);

  /// Heartbeat every believed-alive worker; mark non-responders dead.
  /// Returns the number still alive. Used by the Orchestrator tick.
  std::size_t ProbeWorkers(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(250));

  const MasterStats& stats() const { return stats_; }
  const slim::FluidNetConfig& config() const { return config_; }

 private:
  struct WorkerHandle {
    TransportPtr transport;
    std::string name;  // from its kHello, if seen
    bool alive = true;
    std::vector<std::string> deployments;
  };

  /// Send `msg` to worker `w` and wait for the reply matching its seq.
  /// Any transport failure or timeout marks the worker dead.
  core::StatusOr<Message> Rpc(std::size_t w, Message msg,
                              std::chrono::milliseconds timeout);
  bool WorkerHasDeployment(std::size_t w, const std::string& name) const;
  core::StatusOr<InferReply> ServeLocal(const std::string& name,
                                        const core::Tensor& input);
  core::StatusOr<InferReply> ServeRemote(std::size_t w, const std::string& name,
                                         const core::Tensor& input,
                                         std::chrono::milliseconds timeout);
  void MarkDead(std::size_t w, const core::Status& why);

  slim::FluidNetConfig config_;
  std::vector<WorkerHandle> workers_;
  std::map<std::string, nn::Sequential> local_;
  Plan plan_;
  sim::Mode mode_ = sim::Mode::kHighAccuracy;
  MasterStats stats_;
  std::int64_t next_seq_ = 1;
  std::size_t round_robin_ = 0;
};

}  // namespace fluid::dist
