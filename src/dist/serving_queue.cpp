#include "dist/serving_queue.h"

#include <algorithm>
#include <utility>

#include "core/buffer_pool.h"
#include "core/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fluid::dist {

namespace {
using Clock = std::chrono::steady_clock;

// Weight of the newest sample in the occupancy moving average: the signal
// crosses ModeController's saturation threshold within a handful of
// chunks after a traffic shift.
constexpr double kOccupancyEmaAlpha = 0.25;

std::future<core::StatusOr<InferReply>> ReadyError(core::Status status) {
  std::promise<core::StatusOr<InferReply>> p;
  p.set_value(std::move(status));
  return p.get_future();
}
}  // namespace

std::string_view PriorityName(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "unknown";
}

BatchScheduler::BatchScheduler(BatchOptions options, ServeFn serve)
    : options_(options), serve_(std::move(serve)) {
  FLUID_CHECK_MSG(options_.max_batch >= 1, "BatchScheduler: max_batch < 1");
  FLUID_CHECK_MSG(options_.queue_capacity >= options_.max_batch,
                  "BatchScheduler: queue_capacity < max_batch");
  FLUID_CHECK_MSG(options_.max_active_reqs >= 1,
                  "BatchScheduler: max_active_reqs < 1");
  FLUID_CHECK_MSG(options_.ha_chunk >= 1 && options_.ha_window >= 1,
                  "BatchScheduler: ha_chunk/ha_window < 1");
  FLUID_CHECK_MSG(serve_ != nullptr, "BatchScheduler: null serve callback");
  // Latency-breakdown series, one pair per class. Registered once here so
  // the hot path records through cached pointers without the registry
  // mutex (see docs/observability.md for the naming scheme).
  auto& reg = obs::MetricsRegistry::Global();
  for (std::size_t c = 0; c < kNumPriorityClasses; ++c) {
    const std::string label{PriorityName(static_cast<Priority>(c))};
    queue_wait_ms_[c] = &reg.GetHistogram("fluid_sched_queue_wait_ms{class=\"" +
                                          label + "\"}");
    service_ms_[c] =
        &reg.GetHistogram("fluid_sched_service_ms{class=\"" + label + "\"}");
  }
  running_ = true;
  thread_ = std::thread(&BatchScheduler::DrainLoop, this);
}

BatchScheduler::~BatchScheduler() { Stop(); }

std::future<core::StatusOr<InferReply>> BatchScheduler::Submit(
    core::Tensor input, std::chrono::milliseconds timeout) {
  SubmitOptions opts;
  opts.timeout = timeout;
  return Submit(std::move(input), opts);
}

std::future<core::StatusOr<InferReply>> BatchScheduler::Submit(
    core::Tensor input, const SubmitOptions& opts) {
  if (input.empty() || input.shape().rank() < 1 || input.shape()[0] < 1) {
    return ReadyError(core::Status::InvalidArgument(
        "BatchScheduler::Submit: input needs a non-empty batch dim"));
  }
  const auto cls = static_cast<std::size_t>(opts.priority);
  if (cls >= kNumPriorityClasses) {
    return ReadyError(core::Status::InvalidArgument(
        "BatchScheduler::Submit: unknown priority class"));
  }
  const std::int64_t samples = input.shape()[0];
  const std::int64_t submit_us = obs::NowUs();
  const auto deadline = Clock::now() + opts.timeout;
  auto future = [&] {
    std::unique_lock<std::mutex> lock(mu_);
    // Admission control: the active pool (ready + running) is bounded by
    // max_active_reqs and the backlog by queue_capacity. Overload turns
    // into caller-visible latency instead of unbounded memory growth —
    // but only up to the request's own budget: a deadline it would blow
    // waiting for a slot fails here instead of blocking its caller
    // indefinitely.
    const bool admitted = space_cv_.wait_until(lock, deadline, [&] {
      const bool slot_room =
          active_requests_ <
          static_cast<std::int64_t>(options_.max_active_reqs);
      const bool sample_room =
          backlog_rows_ + samples <=
              static_cast<std::int64_t>(options_.queue_capacity) ||
          backlog_rows_ == 0;  // one oversized request may always enter
      return stop_ || (slot_room && sample_room);
    });
    if (stop_) {
      return ReadyError(
          core::Status::Unavailable("BatchScheduler stopped before Submit"));
    }
    if (!admitted) {
      return ReadyError(core::Status::DeadlineExceeded(
          "BatchScheduler::Submit: admission stayed blocked past the "
          "request's timeout"));
    }
    Request req;
    req.samples = samples;
    req.input = std::move(input);
    req.priority = opts.priority;
    req.deadline = deadline;
    req.trace_id = opts.trace_id;
    req.trace_parent = opts.trace_parent;
    req.submit_us = submit_us;
    req.admit_us = obs::NowUs();
    if (req.trace_id != 0) {
      auto& tracer = obs::Tracer::Global();
      tracer.Record(req.trace_id, tracer.NewSpanId(), req.trace_parent,
                    "sched.admission", "sched", submit_us,
                    req.admit_us - submit_us);
    }
    auto fut = req.promise.get_future();

    // EDF within the class: insert by deadline. Arrivals usually carry the
    // latest deadline, so the scan from the back is O(1) amortized.
    auto& list = ready_[cls];
    auto pos = list.end();
    while (pos != list.begin() && std::prev(pos)->deadline > req.deadline) {
      --pos;
    }
    auto it = list.insert(pos, std::move(req));
    it->self = it;

    backlog_rows_ += samples;
    ++active_requests_;
    ++class_active_[cls];
    ++submitted_;
    ++class_submitted_[cls];
    max_active_seen_ = std::max(max_active_seen_, active_requests_);
    PublishLoadLocked();
    return fut;
  }();
  cv_.notify_one();
  return future;
}

void BatchScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  if (thread_.joinable()) thread_.join();

  // The drain thread is gone; fail whatever it left unresolved (requests
  // still ready, plus any rows a serve callback dropped on the floor).
  std::lock_guard<std::mutex> lock(mu_);
  FailPoolLocked(core::Status::Unavailable(
      "BatchScheduler stopped with the request still queued"));
  running_ = false;
}

void BatchScheduler::FailPoolLocked(const core::Status& status) {
  for (auto& list : ready_) {
    while (!list.empty()) {
      Request* req = &list.front();
      req->failed = true;
      req->error = status;
      req->resolved_rows = req->samples;
      backlog_rows_ -= req->samples;
      FinalizeLocked(req);
    }
  }
  while (!service_.empty()) {
    Request* req = &service_.front();
    req->failed = true;
    if (req->error.ok()) req->error = status;
    backlog_rows_ -= req->samples - req->scheduled_rows;
    req->resolved_rows = req->samples;
    FinalizeLocked(req);
  }
}

SchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.batches = batches_;
  s.coalesced_samples = coalesced_samples_;
  s.queue_depth = backlog_rows_;
  s.active_requests = active_requests_;
  s.running_requests = static_cast<std::int64_t>(service_.size());
  s.max_active_seen = max_active_seen_;
  s.avg_batch = batches_ > 0 ? static_cast<double>(coalesced_samples_) /
                                   static_cast<double>(batches_)
                             : 0.0;
  s.occupancy = ema_occupancy_;
  s.deadline_misses = deadline_misses_;
  s.preemptions = preemptions_;
  for (std::size_t c = 0; c < kNumPriorityClasses; ++c) {
    s.class_submitted[c] = class_submitted_[c];
    s.class_active[c] = class_active_[c];
  }
  return s;
}

std::int64_t BatchScheduler::ActiveRequestsLocked() const {
  return active_requests_;
}

void BatchScheduler::PublishLoadLocked() {
  load_active_.store(active_requests_, std::memory_order_relaxed);
  load_backlog_.store(backlog_rows_, std::memory_order_relaxed);
  load_misses_.store(deadline_misses_, std::memory_order_relaxed);
  load_completed_.store(completed_, std::memory_order_relaxed);
  load_occupancy_.store(ema_occupancy_, std::memory_order_relaxed);
}

SchedulerLoad BatchScheduler::load() const {
  SchedulerLoad l;
  l.active_requests = load_active_.load(std::memory_order_relaxed);
  l.queue_depth = load_backlog_.load(std::memory_order_relaxed);
  l.deadline_misses = load_misses_.load(std::memory_order_relaxed);
  l.completed = load_completed_.load(std::memory_order_relaxed);
  l.max_active_reqs = static_cast<std::int64_t>(options_.max_active_reqs);
  l.occupancy = load_occupancy_.load(std::memory_order_relaxed);
  // Mirror Submit's admission predicate (modulo the oversized-request
  // allowance): a closed pool is a full active set or a full backlog.
  l.admission_open =
      l.active_requests < l.max_active_reqs &&
      (l.queue_depth < static_cast<std::int64_t>(options_.queue_capacity) ||
       l.queue_depth == 0);
  return l;
}

bool BatchScheduler::NextChunk(std::size_t max_samples,
                               std::chrono::milliseconds wait,
                               WorkChunk& chunk) {
  chunk.slices.clear();
  chunk.rows = 0;
  chunk.trace_id = 0;
  chunk.trace_parent = 0;
  FLUID_CHECK_MSG(max_samples >= 1, "NextChunk: max_samples < 1");
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_until(lock, Clock::now() + wait,
                      [&] { return stop_ || HasBacklogLocked(); })) {
    return false;  // waited out an empty pool
  }
  if (stop_) return false;  // Stop() fails the unresolved remainder
  // Straggler window (blocking grabs only — a window refill must not
  // stall the pipeline): with fewer rows on hand than the chunk could
  // take, wait up to max_delay for more before assembling.
  if (wait.count() > 0 && options_.max_delay.count() > 0 &&
      backlog_rows_ < static_cast<std::int64_t>(max_samples)) {
    const auto coalesce_deadline = Clock::now() + options_.max_delay;
    cv_.wait_until(lock, coalesce_deadline, [&] {
      return stop_ ||
             backlog_rows_ >= static_cast<std::int64_t>(max_samples);
    });
    if (stop_) return false;
  }
  AssembleLocked(max_samples, chunk);
  if (chunk.rows == 0) return false;  // everything on hand had expired
  lock.unlock();
  space_cv_.notify_all();  // backlog rows moved into the chunk
  return true;
}

void BatchScheduler::ExpireReadyLocked(Clock::time_point now) {
  // READY requests past their deadline fail instead of wasting service;
  // the lists are deadline-ordered, so expiry is a prefix scan. (A
  // RUNNING request past its deadline finishes and delivers late — its
  // miss is counted at completion.)
  for (auto& list : ready_) {
    while (!list.empty() && list.front().deadline < now) {
      Request* req = &list.front();
      req->failed = true;
      req->error = core::Status::DeadlineExceeded(
          "BatchScheduler: request expired before any chunk could serve it");
      req->resolved_rows = req->samples;
      backlog_rows_ -= req->samples;
      ++deadline_misses_;
      FinalizeLocked(req);
    }
  }
}

void BatchScheduler::AssembleLocked(std::size_t max_samples,
                                    WorkChunk& chunk) {
  const auto now = Clock::now();
  ExpireReadyLocked(now);

  chunk.top = Priority::kLow;
  int max_cls_included = -1;
  // Only the drain thread assembles, so one scratch vector serves every
  // grab without allocating in steady state.
  thread_local std::vector<Request*> tl_cands;

  const auto max_rows = static_cast<std::int64_t>(max_samples);
  for (std::size_t cls = 0;
       cls < kNumPriorityClasses && chunk.rows < max_rows; ++cls) {
    // Candidates of this class, EDF: partially scheduled RUNNING requests
    // (mid-service, their remaining rows compete on deadline) merged with
    // the READY list.
    tl_cands.clear();
    for (auto& req : service_) {
      if (static_cast<std::size_t>(req.priority) == cls &&
          req.scheduled_rows < req.samples) {
        tl_cands.push_back(&req);
      }
    }
    for (auto& req : ready_[cls]) tl_cands.push_back(&req);
    std::stable_sort(tl_cands.begin(), tl_cands.end(),
                     [](const Request* a, const Request* b) {
                       return a->deadline < b->deadline;
                     });
    for (Request* req : tl_cands) {
      if (chunk.rows >= max_rows) break;
      const std::int64_t take =
          std::min(max_rows - chunk.rows, req->samples - req->scheduled_rows);
      chunk.slices.push_back({req, req->scheduled_rows, take});
      if (chunk.trace_id == 0 && req->trace_id != 0) {
        chunk.trace_id = req->trace_id;
        chunk.trace_parent = req->trace_parent;
      }
      if (req->scheduled_rows == 0) {
        // First rows of a READY request: admit it into RUNNING. splice()
        // moves the node without invalidating iterators or the pointer.
        service_.splice(service_.end(), ready_[cls], req->self);
        req->first_us = obs::NowUs();
        if (req->trace_id != 0) {
          auto& tracer = obs::Tracer::Global();
          tracer.Record(req->trace_id, tracer.NewSpanId(), req->trace_parent,
                        "sched.ready_wait", "sched", req->admit_us,
                        req->first_us - req->admit_us);
        }
      }
      req->scheduled_rows += take;
      backlog_rows_ -= take;
      if (chunk.rows == 0) {
        chunk.top = req->priority;
        chunk.deadline = req->deadline;
        chunk.urgent_deadline = req->deadline;
      } else {
        chunk.deadline = std::max(chunk.deadline, req->deadline);
        chunk.urgent_deadline = std::min(chunk.urgent_deadline, req->deadline);
      }
      chunk.rows += take;
      max_cls_included = static_cast<int>(cls);
    }
  }
  if (chunk.rows == 0) return;

  // Preemption accounting: the chunk filled while strictly-lower-class
  // work waited — an iteration-level scheduling decision the old
  // serve-to-completion loop could never make.
  if (chunk.rows >= max_rows && backlog_rows_ > 0) {
    bool bypassed = false;
    for (std::size_t cls = static_cast<std::size_t>(max_cls_included) + 1;
         cls < kNumPriorityClasses && !bypassed; ++cls) {
      bypassed = !ready_[cls].empty();
    }
    if (!bypassed) {
      for (const auto& req : service_) {
        if (static_cast<int>(req.priority) > max_cls_included &&
            req.scheduled_rows < req.samples) {
          bypassed = true;
          break;
        }
      }
    }
    if (bypassed) ++preemptions_;
  }

  ++batches_;
  coalesced_samples_ += chunk.rows;
  const double sample =
      static_cast<double>(active_requests_) /
      static_cast<double>(options_.max_active_reqs);
  ema_occupancy_ = ema_seeded_
                       ? kOccupancyEmaAlpha * sample +
                             (1.0 - kOccupancyEmaAlpha) * ema_occupancy_
                       : sample;
  ema_seeded_ = true;
  PublishLoadLocked();
}

void BatchScheduler::CompleteRows(const Slice& slice, std::int64_t offset,
                                  std::int64_t rows, const float* logits,
                                  std::int64_t classes,
                                  const std::string& served_by) {
  std::lock_guard<std::mutex> lock(mu_);
  ResolveRowsLocked(slice.req, slice.row0 + offset, rows, logits, classes,
                    served_by);
}

void BatchScheduler::CompleteChunk(const WorkChunk& chunk,
                                   const core::Tensor& logits,
                                   const std::string& served_by) {
  const std::int64_t classes =
      chunk.rows > 0 ? logits.numel() / chunk.rows : 0;
  FLUID_CHECK_MSG(classes * chunk.rows == logits.numel(),
                  "CompleteChunk: result rows don't divide the chunk");
  std::lock_guard<std::mutex> lock(mu_);
  const float* data = logits.data().data();
  std::int64_t row = 0;
  for (const Slice& slice : chunk.slices) {
    ResolveRowsLocked(slice.req, slice.row0, slice.rows, data + row * classes,
                      classes, served_by);
    row += slice.rows;
  }
}

void BatchScheduler::FailChunk(const WorkChunk& chunk,
                               const core::Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slice& slice : chunk.slices) {
    Request* req = slice.req;
    req->failed = true;
    if (req->error.ok()) req->error = status;
    req->resolved_rows += slice.rows;
    if (req->resolved_rows >= req->samples) FinalizeLocked(req);
  }
}

void BatchScheduler::ResolveRowsLocked(Request* req, std::int64_t row0,
                                       std::int64_t rows, const float* logits,
                                       std::int64_t classes,
                                       const std::string& served_by) {
  if (!req->failed) {
    if (req->logits.empty()) {
      // Pooled: every row is written by a CompleteRows before the tensor
      // leaves in the reply (resolved_rows accounting guards it).
      req->logits = core::AcquireTensor({req->samples, classes});
    }
    std::copy(logits, logits + rows * classes,
              req->logits.data().begin() + row0 * classes);
    if (row0 == 0) req->served_by = served_by;
  }
  req->resolved_rows += rows;
  if (req->resolved_rows >= req->samples) FinalizeLocked(req);
}

void BatchScheduler::FinalizeLocked(Request* req) {
  if (Clock::now() > req->deadline && !req->failed) {
    // Delivered, but late: the compute wasn't wasted, the SLO was.
    ++deadline_misses_;
  }
  // Latency breakdown (always-on, lock-free): queue wait is
  // submit→first chunk (requests that never got one count their whole
  // life as wait), service is first chunk→now.
  const std::int64_t end_us = obs::NowUs();
  const auto cls = static_cast<std::size_t>(req->priority);
  const std::int64_t served_at = req->first_us != 0 ? req->first_us : end_us;
  queue_wait_ms_[cls]->Record(
      static_cast<double>(served_at - req->submit_us) / 1000.0);
  if (req->first_us != 0) {
    service_ms_[cls]->Record(static_cast<double>(end_us - req->first_us) /
                             1000.0);
  }
  if (req->trace_id != 0) {
    auto& tracer = obs::Tracer::Global();
    tracer.Record(req->trace_id, tracer.NewSpanId(), req->trace_parent,
                  req->failed ? "sched.request_failed" : "sched.request",
                  "sched", req->submit_us, end_us - req->submit_us);
  }
  if (!req->input.empty()) core::RecycleTensor(std::move(req->input));
  if (req->failed) {
    if (!req->logits.empty()) core::RecycleTensor(std::move(req->logits));
    req->promise.set_value(req->error.ok()
                               ? core::Status::Internal(
                                     "BatchScheduler: request failed with no "
                                     "recorded error")
                               : req->error);
  } else {
    InferReply reply;
    reply.logits = std::move(req->logits);
    reply.served_by = std::move(req->served_by);
    req->promise.set_value(std::move(reply));
  }
  --active_requests_;
  --class_active_[static_cast<std::size_t>(req->priority)];
  ++completed_;
  // The request's list node dies here; `self` knows which list owns it
  // (READY requests finalize only on expiry/stop, RUNNING on resolution).
  if (req->scheduled_rows > 0) {
    service_.erase(req->self);
  } else {
    ready_[static_cast<std::size_t>(req->priority)].erase(req->self);
  }
  PublishLoadLocked();
  space_cv_.notify_all();  // an admission slot freed
}

void BatchScheduler::DrainLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || HasBacklogLocked(); });
      if (stop_) return;  // Stop() fails the unresolved remainder
    }
    try {
      serve_(*this);
    } catch (const std::exception& e) {
      // A serve-callback throw (bad input shape, hostile payload) must
      // fail the in-service requests, never the drain thread. Rows
      // already resolved keep their results.
      FLUID_LOG(Warn) << "BatchScheduler: serve callback threw: " << e.what();
      std::lock_guard<std::mutex> lock(mu_);
      const auto status = core::Status::Internal(
          std::string("master: serve callback threw: ") + e.what());
      while (!service_.empty()) {
        Request* req = &service_.front();
        req->failed = true;
        if (req->error.ok()) req->error = status;
        backlog_rows_ -= req->samples - req->scheduled_rows;
        req->resolved_rows = req->samples;
        FinalizeLocked(req);
      }
    }
  }
}

}  // namespace fluid::dist
