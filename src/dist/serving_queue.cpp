#include "dist/serving_queue.h"

#include <algorithm>
#include <utility>

#include "core/logging.h"

namespace fluid::dist {

namespace {
using Clock = std::chrono::steady_clock;

// Weight of the newest batch in the occupancy moving average: the signal
// crosses ModeController's saturation threshold within a handful of
// batches after a traffic shift.
constexpr double kOccupancyEmaAlpha = 0.25;

std::future<core::StatusOr<InferReply>> ReadyError(core::Status status) {
  std::promise<core::StatusOr<InferReply>> p;
  p.set_value(std::move(status));
  return p.get_future();
}
}  // namespace

BatchScheduler::BatchScheduler(BatchOptions options, ServeFn serve)
    : options_(options), serve_(std::move(serve)) {
  FLUID_CHECK_MSG(options_.max_batch >= 1, "BatchScheduler: max_batch < 1");
  FLUID_CHECK_MSG(options_.queue_capacity >= options_.max_batch,
                  "BatchScheduler: queue_capacity < max_batch");
  FLUID_CHECK_MSG(options_.ha_chunk >= 1 && options_.ha_window >= 1,
                  "BatchScheduler: ha_chunk/ha_window < 1");
  FLUID_CHECK_MSG(serve_ != nullptr, "BatchScheduler: null serve callback");
  running_ = true;
  thread_ = std::thread(&BatchScheduler::DrainLoop, this);
}

BatchScheduler::~BatchScheduler() { Stop(); }

std::future<core::StatusOr<InferReply>> BatchScheduler::Submit(
    core::Tensor input, std::chrono::milliseconds timeout) {
  if (input.empty() || input.shape().rank() < 1 || input.shape()[0] < 1) {
    return ReadyError(core::Status::InvalidArgument(
        "BatchScheduler::Submit: input needs a non-empty batch dim"));
  }
  Request req;
  req.samples = input.shape()[0];
  req.input = std::move(input);
  req.deadline = Clock::now() + timeout;
  auto future = req.promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  // Backpressure: a bounded queue turns overload into caller-visible
  // latency instead of unbounded memory growth — but only up to the
  // request's own budget: a deadline it would blow waiting for queue
  // space fails here instead of blocking its caller indefinitely.
  const bool admitted = space_cv_.wait_until(lock, req.deadline, [&] {
    return stop_ ||
           queued_samples_ + req.samples <=
               static_cast<std::int64_t>(options_.queue_capacity) ||
           queue_.empty();  // one oversized request may always enter
  });
  if (stop_) {
    return ReadyError(
        core::Status::Unavailable("BatchScheduler stopped before Submit"));
  }
  if (!admitted) {
    return ReadyError(core::Status::DeadlineExceeded(
        "BatchScheduler::Submit: queue stayed full past the request's "
        "timeout"));
  }
  queued_samples_ += req.samples;
  ++submitted_;
  queue_.push_back(std::move(req));
  cv_.notify_one();
  return future;
}

void BatchScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  if (thread_.joinable()) thread_.join();

  // Fail whatever the drain loop left behind.
  std::deque<Request> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(queue_);
    queued_samples_ = 0;
  }
  for (auto& req : orphans) {
    req.promise.set_value(
        core::Status::Unavailable("BatchScheduler stopped with the request "
                                  "still queued"));
  }
  running_ = false;
}

SchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s;
  s.submitted = submitted_;
  s.batches = batches_;
  s.coalesced_samples = coalesced_samples_;
  s.max_batch_seen = max_batch_seen_;
  s.queue_depth = queued_samples_;
  s.avg_batch = batches_ > 0 ? static_cast<double>(coalesced_samples_) /
                                   static_cast<double>(batches_)
                             : 0.0;
  s.occupancy = ema_batch_ / static_cast<double>(options_.max_batch);
  return s;
}

void BatchScheduler::DrainLoop() {
  // One batch vector for the thread's lifetime: clear() keeps its capacity,
  // so steady-state coalescing stops allocating after the first batch.
  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    std::int64_t batch_samples = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // Stop() fails the queued remainder

      // First request in hand: coalesce until max_batch or max_delay.
      const auto coalesce_deadline = Clock::now() + options_.max_delay;
      for (;;) {
        while (!queue_.empty() &&
               (batch.empty() ||
                batch_samples + queue_.front().samples <=
                    static_cast<std::int64_t>(options_.max_batch))) {
          batch_samples += queue_.front().samples;
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        if (stop_ ||
            batch_samples >= static_cast<std::int64_t>(options_.max_batch) ||
            (!queue_.empty()))  // next request would overflow: serve now
          break;
        if (cv_.wait_until(lock, coalesce_deadline, [&] {
              return stop_ || !queue_.empty();
            })) {
          continue;  // more arrived (or stopping): take them / bail above
        }
        break;  // max_delay elapsed with nothing new
      }
      queued_samples_ -= batch_samples;
      ++batches_;
      coalesced_samples_ += batch_samples;
      max_batch_seen_ = std::max(max_batch_seen_, batch_samples);
      ema_batch_ = batches_ == 1
                       ? static_cast<double>(batch_samples)
                       : kOccupancyEmaAlpha * static_cast<double>(batch_samples) +
                             (1.0 - kOccupancyEmaAlpha) * ema_batch_;
    }
    space_cv_.notify_all();
    // Serve outside the lock so Submit never waits on model compute.
    serve_(batch);
  }
}

}  // namespace fluid::dist
