#include "dist/message.h"

#include "core/buffer_pool.h"
#include "core/serialize.h"

namespace fluid::dist {

namespace {

constexpr std::uint32_t kMagic = kFrameMagic;
// v1: no batch field. v2: [i64 batch] between seq and tag. v3: trailing
// [u8 has_qtensor][qtensor?] — emitted only when a quantized payload is
// present, so fp32 frames stay byte-identical to v2. v4: trailing
// [u8 priority][i64 slo_ms] — emitted only when an SLO is attached.
// v5: trailing [u8 input_quant] — the qpayload is a quantized input
// shard; a v5 body always carries the v3 flag and the v4 SLO block
// (slo_ms = -1 legal, meaning "no SLO"). v6: trailing [u8 has_trace]
// [trace block] — sampled distributed-tracing context; a v6 body always
// carries every lower block (the v5 marker may legitimately be 0 here).
constexpr std::uint8_t kVersionV1 = 1;
constexpr std::uint8_t kVersion = 2;
constexpr std::uint8_t kVersionV3 = 3;
constexpr std::uint8_t kVersionV4 = 4;
constexpr std::uint8_t kVersionV5 = 5;
constexpr std::uint8_t kVersionV6 = 6;
static_assert(kVersionV6 == kMaxWireVersion,
              "message.h kMaxWireVersion drifted from the codec");
constexpr std::uint8_t kMaxType = static_cast<std::uint8_t>(MsgType::kHeartbeat);

// The one version-selection rule both encoders and EncodedSize share:
// each optional trailing block forces the version that introduced it,
// so frames without a feature stay byte-identical to older encoders.
std::uint8_t WireVersion(const Message& msg) {
  if (msg.has_trace()) return kVersionV6;
  if (msg.input_quant) return kVersionV5;
  if (msg.has_slo()) return kVersionV4;
  if (msg.has_qpayload()) return kVersionV3;
  return kVersion;
}

}  // namespace

std::string_view MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kDeploy: return "DEPLOY";
    case MsgType::kInfer: return "INFER";
    case MsgType::kResult: return "RESULT";
    case MsgType::kAck: return "ACK";
    case MsgType::kError: return "ERROR";
    case MsgType::kHeartbeat: return "HEARTBEAT";
  }
  return "UNKNOWN";
}

Message Message::WithTensor(MsgType type, std::int64_t seq, std::string tag,
                            core::Tensor payload) {
  Message m;
  m.type = type;
  m.seq = seq;
  m.tag = std::move(tag);
  m.payload = std::move(payload);
  return m;
}

Message Message::WithBatch(MsgType type, std::int64_t seq, std::string tag,
                           core::Tensor payload) {
  FLUID_CHECK_MSG(payload.shape().rank() >= 1,
                  "Message::WithBatch: payload must have a batch dim");
  Message m = WithTensor(type, seq, std::move(tag), std::move(payload));
  m.batch = m.payload.shape()[0];
  return m;
}

Message Message::WithQuantBatch(MsgType type, std::int64_t seq,
                                std::string tag, quant::QuantizedTensor q) {
  FLUID_CHECK_MSG(q.shape.rank() >= 1,
                  "Message::WithQuantBatch: payload must have a batch dim");
  Message m;
  m.type = type;
  m.seq = seq;
  m.tag = std::move(tag);
  m.qpayload = std::move(q);
  m.batch = m.qpayload.shape[0];
  return m;
}

Message Message::WithQuantInput(MsgType type, std::int64_t seq,
                                std::string tag, quant::QuantizedTensor q) {
  Message m = WithQuantBatch(type, seq, std::move(tag), std::move(q));
  m.input_quant = true;
  return m;
}

Message Message::HeaderOnly(MsgType type, std::int64_t seq, std::string tag) {
  Message m;
  m.type = type;
  m.seq = seq;
  m.tag = std::move(tag);
  return m;
}

void EncodeMessageInto(const Message& msg, std::vector<std::uint8_t>& out) {
  // EncodedSize is exact (guarded by the trailing CHECK), so the length
  // prefix can be written up front and the body appended directly behind
  // it — one buffer, no header/body stitch, and a recycled `out` with
  // enough capacity makes the whole encode allocation-free.
  const std::int64_t total = EncodedSize(msg);
  const std::int64_t body_len = total - 8;
  // The length prefix is u32 by wire format; a body that would wrap it is
  // a programmer error (nothing legitimate ships multi-GiB frames — deploy
  // payloads are MBs), and silently truncating would desynchronise the
  // peer's stream reader.
  FLUID_CHECK_MSG(body_len < (1ll << 32),
                  "EncodeMessage: frame body exceeds the u32 length prefix");
  FLUID_CHECK_MSG(!msg.input_quant || msg.has_qpayload(),
                  "EncodeMessage: input_quant set without a quantized payload");
  core::ByteWriter w(std::move(out));
  w.WriteU32(kMagic);
  w.WriteU32(static_cast<std::uint32_t>(body_len));
  const std::uint8_t version = WireVersion(msg);
  w.WriteU8(version);
  w.WriteU8(static_cast<std::uint8_t>(msg.type));
  w.WriteI64(msg.seq);
  w.WriteI64(msg.batch);
  w.WriteString(msg.tag);
  w.WriteU8(msg.has_payload() ? 1 : 0);
  if (msg.has_payload()) w.WriteTensor(msg.payload);
  if (version >= kVersionV3) {
    // A v3+ body always carries the has_qtensor flag, present payload or
    // not — a v4 frame without a quantized payload still needs it so the
    // reader can find the SLO block.
    w.WriteU8(msg.has_qpayload() ? 1 : 0);
    if (msg.has_qpayload()) msg.qpayload.Encode(w);
  }
  if (version >= kVersionV4) {
    // v5+ bodies write the block unconditionally (slo_ms = -1 when
    // unset); a v4 body only exists because has_slo() held.
    w.WriteU8(msg.priority);
    w.WriteI64(msg.slo_ms);
  }
  if (version >= kVersionV5) {
    // A v5 body only exists because the marker is set; a v6 body carries
    // the byte unconditionally, so 0 is legal there.
    w.WriteU8(msg.input_quant ? 1 : 0);
  }
  if (version >= kVersionV6) {
    w.WriteU8(1);  // has_trace — a v6 body only exists because of it
    w.WriteU64(msg.trace_id);
    w.WriteU64(msg.trace_span);
    w.WriteI64(msg.trace_sent_us);
    w.WriteI64(msg.trace_service_us);
  }
  out = w.TakeBuffer();
  FLUID_CHECK_MSG(static_cast<std::int64_t>(out.size()) == total,
                  "EncodeMessageInto: encoder drifted from EncodedSize");
}

std::vector<std::uint8_t> EncodeMessage(const Message& msg) {
  std::vector<std::uint8_t> out;
  EncodeMessageInto(msg, out);
  return out;
}

std::int64_t EncodeMessageScatter(const Message& msg, core::ByteWriter& scaffold,
                                  std::vector<WireSegment>& segments) {
  // Mirrors EncodeMessageInto field for field — the trailing size CHECK
  // keeps the two encoders from drifting — but routes the two bulk blocks
  // (fp32 payload bytes, int8 qpayload bytes) around the scaffold: they
  // are referenced in place, never copied. The scaffold may already hold
  // earlier frames of the same batch; segments carry offsets into it, so
  // reallocation while it grows is harmless.
  const std::int64_t total = EncodedSize(msg);
  const std::int64_t body_len = total - 8;
  FLUID_CHECK_MSG(body_len < (1ll << 32),
                  "EncodeMessage: frame body exceeds the u32 length prefix");
  FLUID_CHECK_MSG(!msg.input_quant || msg.has_qpayload(),
                  "EncodeMessage: input_quant set without a quantized payload");
  std::size_t run_start = scaffold.size();
  std::int64_t emitted = 0;
  // Close the current scaffold run (if non-empty) as one segment.
  auto flush_scaffold = [&] {
    if (scaffold.size() > run_start) {
      segments.push_back({run_start, nullptr, scaffold.size() - run_start});
      emitted += static_cast<std::int64_t>(scaffold.size() - run_start);
    }
    run_start = scaffold.size();
  };
  auto bulk = [&](const void* data, std::size_t size) {
    flush_scaffold();
    if (size == 0) return;
    segments.push_back(
        {0, static_cast<const std::uint8_t*>(data), size});
    emitted += static_cast<std::int64_t>(size);
  };

  scaffold.WriteU32(kMagic);
  scaffold.WriteU32(static_cast<std::uint32_t>(body_len));
  const std::uint8_t version = WireVersion(msg);
  scaffold.WriteU8(version);
  scaffold.WriteU8(static_cast<std::uint8_t>(msg.type));
  scaffold.WriteI64(msg.seq);
  scaffold.WriteI64(msg.batch);
  scaffold.WriteString(msg.tag);
  scaffold.WriteU8(msg.has_payload() ? 1 : 0);
  if (msg.has_payload()) {
    // WriteTensor's layout: rank, dims, then WriteFloats (u64 count + raw
    // bytes) — everything up to the raw bytes is scaffold.
    const auto& shape = msg.payload.shape();
    scaffold.WriteU32(static_cast<std::uint32_t>(shape.rank()));
    for (const auto d : shape.dims()) scaffold.WriteI64(d);
    const auto data = msg.payload.data();
    scaffold.WriteU64(static_cast<std::uint64_t>(data.size()));
    bulk(data.data(), data.size() * sizeof(float));
  }
  if (version >= kVersionV3) {
    scaffold.WriteU8(msg.has_qpayload() ? 1 : 0);
    if (msg.has_qpayload()) {
      // QuantizedTensor::Encode's layout: scale, rank, dims, then
      // WriteBytes (u64 length + raw int8 bytes).
      scaffold.WriteF32(msg.qpayload.scale);
      scaffold.WriteU32(static_cast<std::uint32_t>(msg.qpayload.shape.rank()));
      for (const auto d : msg.qpayload.shape.dims()) scaffold.WriteI64(d);
      scaffold.WriteU64(static_cast<std::uint64_t>(msg.qpayload.data.size()));
      bulk(msg.qpayload.data.data(), msg.qpayload.data.size());
    }
  }
  if (version >= kVersionV4) {
    scaffold.WriteU8(msg.priority);
    scaffold.WriteI64(msg.slo_ms);
  }
  if (version >= kVersionV5) {
    scaffold.WriteU8(msg.input_quant ? 1 : 0);
  }
  if (version >= kVersionV6) {
    scaffold.WriteU8(1);
    scaffold.WriteU64(msg.trace_id);
    scaffold.WriteU64(msg.trace_span);
    scaffold.WriteI64(msg.trace_sent_us);
    scaffold.WriteI64(msg.trace_service_us);
  }
  flush_scaffold();
  FLUID_CHECK_MSG(emitted == total,
                  "EncodeMessageScatter: encoder drifted from EncodedSize");
  return total;
}

void RecycleMessage(Message&& msg) {
  if (msg.has_payload()) core::RecycleTensor(std::move(msg.payload));
  if (!msg.qpayload.data.empty()) core::PoolPut(std::move(msg.qpayload.data));
  msg.qpayload = {};
}

core::Status DecodeMessage(std::span<const std::uint8_t> bytes, Message& out) {
  core::ByteReader r(bytes);
  std::uint32_t magic = 0, body_len = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU32(magic));
  if (magic != kMagic) {
    return core::Status::DataLoss("Message: bad frame magic");
  }
  FLUID_RETURN_IF_ERROR(r.TryReadU32(body_len));
  if (r.remaining() < body_len) {
    return core::Status::DataLoss("Message: truncated frame body");
  }

  std::uint8_t version = 0, type = 0, has_tensor = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU8(version));
  if (version < kVersionV1 || version > kVersionV6) {
    return core::Status::DataLoss("Message: unsupported version " +
                                  std::to_string(version));
  }
  FLUID_RETURN_IF_ERROR(r.TryReadU8(type));
  if (type > kMaxType) {
    return core::Status::InvalidArgument("Message: unknown type " +
                                         std::to_string(type));
  }

  Message msg;
  msg.type = static_cast<MsgType>(type);
  FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.seq));
  if (version >= kVersion) {
    FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.batch));
  }
  FLUID_RETURN_IF_ERROR(r.TryReadString(msg.tag));
  FLUID_RETURN_IF_ERROR(r.TryReadU8(has_tensor));
  if (has_tensor != 0) {
    FLUID_RETURN_IF_ERROR(r.TryReadTensor(msg.payload));
  }
  if (version >= kVersionV3) {
    std::uint8_t has_qtensor = 0;
    FLUID_RETURN_IF_ERROR(r.TryReadU8(has_qtensor));
    if (has_qtensor != 0) {
      FLUID_RETURN_IF_ERROR(quant::QuantizedTensor::Decode(r, msg.qpayload));
    }
  }
  if (version >= kVersionV4) {
    FLUID_RETURN_IF_ERROR(r.TryReadU8(msg.priority));
    FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.slo_ms));
    // A v4 body only exists because an SLO was attached, so a negative
    // budget is corruption; a v5 body carries the block unconditionally
    // and uses exactly -1 for "no SLO".
    const std::int64_t floor = version >= kVersionV5 ? -1 : 0;
    if (msg.slo_ms < floor) {
      return core::Status::DataLoss("Message: frame with negative slo_ms");
    }
  }
  if (version >= kVersionV5) {
    std::uint8_t input_quant = 0;
    FLUID_RETURN_IF_ERROR(r.TryReadU8(input_quant));
    if (input_quant > 1) {
      return core::Status::DataLoss("Message: bogus input_quant marker");
    }
    if (input_quant != 0 && !msg.has_qpayload()) {
      return core::Status::DataLoss(
          "Message: input_quant set without a quantized payload");
    }
    msg.input_quant = input_quant != 0;
  }
  if (version >= kVersionV6) {
    std::uint8_t has_trace = 0;
    FLUID_RETURN_IF_ERROR(r.TryReadU8(has_trace));
    if (has_trace > 1) {
      return core::Status::DataLoss("Message: bogus has_trace flag");
    }
    if (has_trace != 0) {
      FLUID_RETURN_IF_ERROR(r.TryReadU64(msg.trace_id));
      FLUID_RETURN_IF_ERROR(r.TryReadU64(msg.trace_span));
      FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.trace_sent_us));
      FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.trace_service_us));
      if (msg.trace_id == 0) {
        return core::Status::DataLoss("Message: trace block without an id");
      }
      if (msg.trace_sent_us < 0 || msg.trace_service_us < 0) {
        return core::Status::DataLoss(
            "Message: trace block with negative timestamps");
      }
    }
  }
  out = std::move(msg);
  return core::Status::Ok();
}

std::int64_t EncodedSize(const Message& msg) {
  const std::uint8_t version = WireVersion(msg);
  // frame header (magic + body_len) + fixed body fields (incl. i64 batch).
  std::int64_t n = 4 + 4 + 1 + 1 + 8 + 8 + 4 +
                   static_cast<std::int64_t>(msg.tag.size()) + 1;
  if (msg.has_payload()) {
    // rank + dims + float count + data.
    n += 4 + 8 * msg.payload.shape().rank() + 8 + 4 * msg.payload.numel();
  }
  if (version >= kVersionV3) {
    // The has_qtensor flag every v3+ body carries, plus the quantized
    // block when present.
    n += 1;
    if (msg.has_qpayload()) {
      n += quant::QuantizedWireBytes(msg.qpayload.shape.rank(),
                                     msg.qpayload.numel());
    }
  }
  if (version >= kVersionV4) n += 1 + 8;  // SLO block
  if (version >= kVersionV5) n += 1;      // input_quant marker
  if (version >= kVersionV6) n += 1 + 8 + 8 + 8 + 8;  // trace block
  return n;
}

}  // namespace fluid::dist
