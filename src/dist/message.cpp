#include "dist/message.h"

#include "core/buffer_pool.h"
#include "core/serialize.h"

namespace fluid::dist {

namespace {

constexpr std::uint32_t kMagic = kFrameMagic;
// v1: no batch field. v2: [i64 batch] between seq and tag. v3: trailing
// [u8 has_qtensor][qtensor?] — emitted only when a quantized payload is
// present, so fp32 frames stay byte-identical to v2. v4: trailing
// [u8 priority][i64 slo_ms] — emitted only when an SLO is attached.
constexpr std::uint8_t kVersionV1 = 1;
constexpr std::uint8_t kVersion = 2;
constexpr std::uint8_t kVersionV3 = 3;
constexpr std::uint8_t kVersionV4 = 4;
constexpr std::uint8_t kMaxType = static_cast<std::uint8_t>(MsgType::kHeartbeat);

}  // namespace

std::string_view MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kDeploy: return "DEPLOY";
    case MsgType::kInfer: return "INFER";
    case MsgType::kResult: return "RESULT";
    case MsgType::kAck: return "ACK";
    case MsgType::kError: return "ERROR";
    case MsgType::kHeartbeat: return "HEARTBEAT";
  }
  return "UNKNOWN";
}

Message Message::WithTensor(MsgType type, std::int64_t seq, std::string tag,
                            core::Tensor payload) {
  Message m;
  m.type = type;
  m.seq = seq;
  m.tag = std::move(tag);
  m.payload = std::move(payload);
  return m;
}

Message Message::WithBatch(MsgType type, std::int64_t seq, std::string tag,
                           core::Tensor payload) {
  FLUID_CHECK_MSG(payload.shape().rank() >= 1,
                  "Message::WithBatch: payload must have a batch dim");
  Message m = WithTensor(type, seq, std::move(tag), std::move(payload));
  m.batch = m.payload.shape()[0];
  return m;
}

Message Message::WithQuantBatch(MsgType type, std::int64_t seq,
                                std::string tag, quant::QuantizedTensor q) {
  FLUID_CHECK_MSG(q.shape.rank() >= 1,
                  "Message::WithQuantBatch: payload must have a batch dim");
  Message m;
  m.type = type;
  m.seq = seq;
  m.tag = std::move(tag);
  m.qpayload = std::move(q);
  m.batch = m.qpayload.shape[0];
  return m;
}

Message Message::HeaderOnly(MsgType type, std::int64_t seq, std::string tag) {
  Message m;
  m.type = type;
  m.seq = seq;
  m.tag = std::move(tag);
  return m;
}

void EncodeMessageInto(const Message& msg, std::vector<std::uint8_t>& out) {
  // EncodedSize is exact (guarded by the trailing CHECK), so the length
  // prefix can be written up front and the body appended directly behind
  // it — one buffer, no header/body stitch, and a recycled `out` with
  // enough capacity makes the whole encode allocation-free.
  const std::int64_t total = EncodedSize(msg);
  const std::int64_t body_len = total - 8;
  // The length prefix is u32 by wire format; a body that would wrap it is
  // a programmer error (nothing legitimate ships multi-GiB frames — deploy
  // payloads are MBs), and silently truncating would desynchronise the
  // peer's stream reader.
  FLUID_CHECK_MSG(body_len < (1ll << 32),
                  "EncodeMessage: frame body exceeds the u32 length prefix");
  core::ByteWriter w(std::move(out));
  w.WriteU32(kMagic);
  w.WriteU32(static_cast<std::uint32_t>(body_len));
  const std::uint8_t version = msg.has_slo() ? kVersionV4
                               : msg.has_qpayload() ? kVersionV3
                                                    : kVersion;
  w.WriteU8(version);
  w.WriteU8(static_cast<std::uint8_t>(msg.type));
  w.WriteI64(msg.seq);
  w.WriteI64(msg.batch);
  w.WriteString(msg.tag);
  w.WriteU8(msg.has_payload() ? 1 : 0);
  if (msg.has_payload()) w.WriteTensor(msg.payload);
  if (version >= kVersionV3) {
    // A v3+ body always carries the has_qtensor flag, present payload or
    // not — a v4 frame without a quantized payload still needs it so the
    // reader can find the SLO block.
    w.WriteU8(msg.has_qpayload() ? 1 : 0);
    if (msg.has_qpayload()) msg.qpayload.Encode(w);
  }
  if (version >= kVersionV4) {
    w.WriteU8(msg.priority);
    w.WriteI64(msg.slo_ms);
  }
  out = w.TakeBuffer();
  FLUID_CHECK_MSG(static_cast<std::int64_t>(out.size()) == total,
                  "EncodeMessageInto: encoder drifted from EncodedSize");
}

std::vector<std::uint8_t> EncodeMessage(const Message& msg) {
  std::vector<std::uint8_t> out;
  EncodeMessageInto(msg, out);
  return out;
}

void RecycleMessage(Message&& msg) {
  if (msg.has_payload()) core::RecycleTensor(std::move(msg.payload));
  if (!msg.qpayload.data.empty()) core::PoolPut(std::move(msg.qpayload.data));
  msg.qpayload = {};
}

core::Status DecodeMessage(std::span<const std::uint8_t> bytes, Message& out) {
  core::ByteReader r(bytes);
  std::uint32_t magic = 0, body_len = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU32(magic));
  if (magic != kMagic) {
    return core::Status::DataLoss("Message: bad frame magic");
  }
  FLUID_RETURN_IF_ERROR(r.TryReadU32(body_len));
  if (r.remaining() < body_len) {
    return core::Status::DataLoss("Message: truncated frame body");
  }

  std::uint8_t version = 0, type = 0, has_tensor = 0;
  FLUID_RETURN_IF_ERROR(r.TryReadU8(version));
  if (version < kVersionV1 || version > kVersionV4) {
    return core::Status::DataLoss("Message: unsupported version " +
                                  std::to_string(version));
  }
  FLUID_RETURN_IF_ERROR(r.TryReadU8(type));
  if (type > kMaxType) {
    return core::Status::InvalidArgument("Message: unknown type " +
                                         std::to_string(type));
  }

  Message msg;
  msg.type = static_cast<MsgType>(type);
  FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.seq));
  if (version >= kVersion) {
    FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.batch));
  }
  FLUID_RETURN_IF_ERROR(r.TryReadString(msg.tag));
  FLUID_RETURN_IF_ERROR(r.TryReadU8(has_tensor));
  if (has_tensor != 0) {
    FLUID_RETURN_IF_ERROR(r.TryReadTensor(msg.payload));
  }
  if (version >= kVersionV3) {
    std::uint8_t has_qtensor = 0;
    FLUID_RETURN_IF_ERROR(r.TryReadU8(has_qtensor));
    if (has_qtensor != 0) {
      FLUID_RETURN_IF_ERROR(quant::QuantizedTensor::Decode(r, msg.qpayload));
    }
  }
  if (version >= kVersionV4) {
    FLUID_RETURN_IF_ERROR(r.TryReadU8(msg.priority));
    FLUID_RETURN_IF_ERROR(r.TryReadI64(msg.slo_ms));
    if (msg.slo_ms < 0) {
      return core::Status::DataLoss("Message: v4 frame with negative slo_ms");
    }
  }
  out = std::move(msg);
  return core::Status::Ok();
}

std::int64_t EncodedSize(const Message& msg) {
  // frame header (magic + body_len) + fixed body fields (incl. i64 batch).
  std::int64_t n = 4 + 4 + 1 + 1 + 8 + 8 + 4 +
                   static_cast<std::int64_t>(msg.tag.size()) + 1;
  if (msg.has_payload()) {
    // rank + dims + float count + data.
    n += 4 + 8 * msg.payload.shape().rank() + 8 + 4 * msg.payload.numel();
  }
  if (msg.has_qpayload()) {
    // v3 trailing has_qtensor flag + the quantized block.
    n += 1 + quant::QuantizedWireBytes(msg.qpayload.shape.rank(),
                                       msg.qpayload.numel());
  }
  if (msg.has_slo()) {
    // v4 SLO block, plus the has_qtensor flag a v3-less v4 body still
    // carries.
    n += (msg.has_qpayload() ? 0 : 1) + 1 + 8;
  }
  return n;
}

}  // namespace fluid::dist
