#include "dist/worker.h"

#include "core/logging.h"
#include "obs/trace.h"
#include "quant/quant_layers.h"

namespace fluid::dist {

namespace {
// Short poll so Stop()/Crash() are honoured promptly even on an idle link.
constexpr std::chrono::milliseconds kPollInterval{50};

// Bound on frames held for priority selection: past this the loop serves
// before draining further (the link's own flow control backs up instead).
constexpr std::size_t kMaxQueuedFrames = 256;

// One frame awaiting service, with its scheduling key decoded once.
struct PendingFrame {
  Message msg;
  std::chrono::steady_clock::time_point deadline;
  std::uint64_t arrival = 0;  // monotone admission index (FIFO tiebreak)
  std::uint8_t cls = 1;       // priority class (kNormal when unclassified)
  bool control = false;       // non-kInfer frames: deploy/heartbeat/hello
};

PendingFrame ClassifyFrame(Message msg, std::uint64_t arrival) {
  PendingFrame f;
  f.arrival = arrival;
  f.control = msg.type != MsgType::kInfer;
  if (!f.control && msg.has_slo() && msg.priority < 3) {
    f.cls = msg.priority;
    f.deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(msg.slo_ms);
  } else {
    // Unclassified work serves as kNormal; the deadline is set far enough
    // out that EDF degrades to arrival order among such frames.
    f.cls = 1;
    f.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(24);
  }
  f.msg = std::move(msg);
  return f;
}

// Strict-class-then-EDF, mirroring BatchScheduler's chunk-assembly order:
// control first (arrival order), then lower class value, then earlier
// deadline, then arrival.
bool FrameBefore(const PendingFrame& a, const PendingFrame& b) {
  if (a.control != b.control) return a.control;
  if (a.control) return a.arrival < b.arrival;
  if (a.cls != b.cls) return a.cls < b.cls;
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.arrival < b.arrival;
}
}  // namespace

WorkerNode::WorkerNode(std::string name, slim::FluidNetConfig config,
                       TransportPtr transport)
    : name_(std::move(name)), config_(config), transport_(std::move(transport)) {
  FLUID_CHECK_MSG(transport_ != nullptr, "WorkerNode: null transport");
}

WorkerNode::~WorkerNode() { Stop(); }

void WorkerNode::Start() {
  if (running_) return;
  stop_ = false;
  running_ = true;
  // Best-effort announcement; the master learns the name when it drains.
  (void)transport_->Send(Message::HeaderOnly(MsgType::kHello, 0, name_));
  thread_ = std::thread(&WorkerNode::ServeLoop, this);
}

void WorkerNode::Stop() {
  stop_ = true;
  transport_->Close();
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void WorkerNode::Crash() {
  if (crashed_) return;
  crashed_ = true;
  FLUID_LOG(Info) << "worker '" << name_ << "': simulated power failure";
  Stop();
}

void WorkerNode::ServeLoop() {
  std::vector<PendingFrame> queue;
  std::uint64_t arrivals = 0;
  bool link_down = false;
  while (!stop_ && !link_down) {
    // Drain: block (briefly) only when nothing is queued; with work in
    // hand, sweep whatever has already arrived without waiting so the
    // priority pick below sees the whole backlog, not just frame one.
    while (queue.size() < kMaxQueuedFrames) {
      Message msg;
      const auto timeout =
          queue.empty() ? kPollInterval : std::chrono::milliseconds(0);
      const auto st = transport_->Recv(msg, timeout);
      if (st.code() == core::StatusCode::kDeadlineExceeded) break;
      if (!st.ok()) {
        // Peer gone (kUnavailable) or stream corrupt (kDataLoss, transport
        // already closed itself). Either way this connection is done — note
        // it and retire; decode errors never unwind the loop. Anything
        // still queued is undeliverable (no link to reply on): the master
        // fails those RPCs and re-serves the rows elsewhere.
        if (!stop_) {
          FLUID_LOG(Warn) << "worker '" << name_
                          << "': link down: " << st.ToString();
        }
        link_down = true;
        break;
      }
      queue.push_back(ClassifyFrame(std::move(msg), arrivals++));
    }
    if (queue.empty() || link_down) continue;

    // Pick: strict class, then EDF, then arrival (see FrameBefore). The
    // queue is small and short-lived — linear scan, no heap.
    std::size_t best = 0;
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (FrameBefore(queue[i], queue[best])) best = i;
      if (queue[i].arrival < queue[oldest].arrival) oldest = i;
    }
    if (best != oldest) ++priority_reorders_;
    PendingFrame frame = std::move(queue[best]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));

    Message reply = Handle(frame.msg);
    // Recycle the request's remaining bulk storage (handlers move what
    // they consume) and, after the frame is on the wire, the reply's —
    // the next decode/forward on this connection reuses it.
    RecycleMessage(std::move(frame.msg));
    const auto send_st = transport_->Send(reply);
    RecycleMessage(std::move(reply));
    if (!send_st.ok()) break;
  }
  running_ = false;
}

Message WorkerNode::Handle(Message& msg) {
  switch (msg.type) {
    case MsgType::kDeploy:
      return HandleDeploy(msg);
    case MsgType::kInfer:
      return HandleInfer(msg);
    case MsgType::kHeartbeat:
      return Message::HeaderOnly(MsgType::kAck, msg.seq);
    case MsgType::kHello:
      return Message::HeaderOnly(MsgType::kAck, msg.seq);
    default:
      return Message::HeaderOnly(MsgType::kError, msg.seq,
                                 "unexpected frame " +
                                     std::string(MsgTypeName(msg.type)));
  }
}

Message WorkerNode::HandleDeploy(const Message& msg) {
  DeployRequest req;
  const auto st = DeployRequest::DecodeFromTag(msg.tag, req);
  if (!st.ok()) {
    return Message::HeaderOnly(MsgType::kError, msg.seq,
                               "deploy decode: " + st.ToString());
  }
  try {
    nn::Sequential model = req.blueprint.Build();
    const auto load = nn::LoadState(model, req.state, /*allow_partial=*/false);
    if (!load.ok()) {
      return Message::HeaderOnly(MsgType::kError, msg.seq,
                                 "deploy load: " + load.ToString());
    }
    // Weights always ship fp32 (the StateDict format); an int8_compute
    // deploy quantizes them *here*, per output channel, so the wire
    // payload stays checkpoint-compatible and the worker owns its own
    // quantization error.
    if (req.blueprint.quant.int8_compute) {
      model = quant::QuantizeModel(model);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      deployments_[req.name] = std::move(model);
    }
    FLUID_LOG(Info) << "worker '" << name_ << "': deployed '" << req.name
                    << (req.blueprint.quant.int8_compute ? "' (int8)" : "'");
    return Message::HeaderOnly(MsgType::kAck, msg.seq);
  } catch (const std::exception& e) {
    // A hostile/buggy blueprint must not take the serving loop down —
    // including std::bad_alloc/std::length_error from absurd dimensions,
    // not just the library's own core::Error.
    return Message::HeaderOnly(MsgType::kError, msg.seq,
                               std::string("deploy build: ") + e.what());
  }
}

Message WorkerNode::HandleInfer(Message& msg) {
  // Traced frame (wire v6): clock the service so the reply can echo the
  // block with the duration filled in. Untraced frames read no clocks.
  const std::int64_t svc_start = msg.has_trace() ? obs::NowUs() : 0;
  if (!msg.has_payload() && !msg.has_qpayload()) {
    return Message::HeaderOnly(MsgType::kError, msg.seq, "infer: no payload");
  }
  // A v3 frame carries the activations quantized: reconstruct the fp32
  // tensor at the cut (scale · q) and serve it like any other frame.
  // Replies stay fp32 v2 — logits are a few dozen bytes, the cut tensor
  // was the wire cost worth quantizing.
  const bool quantized = msg.has_qpayload();
  core::Tensor input;
  if (quantized) {
    if (msg.has_payload()) {
      return Message::HeaderOnly(MsgType::kError, msg.seq,
                                 "infer: frame carries fp32 AND int8 payloads");
    }
    input = quant::DequantizeTensor(msg.qpayload);
    ++quant_frames_;
    // v5 marks the quantized payload as an *input shard* (HT fan-out's
    // int8_input_wire negotiation) rather than cut activations; decode is
    // identical, only the accounting differs.
    if (msg.input_quant) ++input_quant_frames_;
  } else {
    // Take the decoded tensor: the forward pass consumes it and its
    // (pooled) storage is recycled by the first layer.
    input = std::move(msg.payload);
  }
  // Batch-aware frames: when the master declares how many samples the
  // shard covers, a disagreeing payload is a framing bug — reject it
  // before the model can mis-scatter results across requests.
  const std::int64_t samples =
      input.shape().rank() >= 1 ? input.shape()[0] : 1;
  if (msg.batch != 0 && msg.batch != samples) {
    return Message::HeaderOnly(
        MsgType::kError, msg.seq,
        "infer: batch header says " + std::to_string(msg.batch) +
            " samples but payload carries " + std::to_string(samples));
  }
  // The whole coalesced batch runs through one fused forward — this is
  // where the conv layers' batched [Cout, batch·area] GEMM earns its keep.
  auto logits = LocalInfer(msg.tag, std::move(input));
  if (!logits.ok()) {
    return Message::HeaderOnly(MsgType::kError, msg.seq,
                               logits.status().ToString());
  }
  ++served_;
  samples_served_ += samples;
  // v4 SLO block: per-class accounting. The class is the frame's most
  // urgent member's (chunks mix classes; the header carries the top).
  if (msg.has_slo() && msg.priority < 3) {
    ++slo_frames_;
    samples_by_class_[msg.priority] += samples;
  }
  Message reply = Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                     std::move(*logits));
  if (msg.has_trace()) {
    ++trace_frames_;
    const std::int64_t svc_us = obs::NowUs() - svc_start;
    // The span lands in *this* process's ring under the master's trace
    // id; the echoed block carries the duration back for the wire split.
    auto& tracer = obs::Tracer::Global();
    tracer.Record(msg.trace_id, tracer.NewSpanId(), msg.trace_span,
                  "worker.service", name_, svc_start, svc_us);
    reply.EchoTrace(msg, svc_us);
  }
  return reply;
}

core::StatusOr<core::Tensor> WorkerNode::LocalInfer(const std::string& model,
                                                    const core::Tensor& input) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(model);
  if (it == deployments_.end()) {
    return core::Status::NotFound("worker '" + name_ + "' has no model '" +
                                  model + "'");
  }
  try {
    return it->second.Forward(input, false);
  } catch (const std::exception& e) {
    return core::Status::InvalidArgument("worker '" + name_ + "' infer '" +
                                         model + "': " + e.what());
  }
}

core::StatusOr<core::Tensor> WorkerNode::LocalInfer(const std::string& model,
                                                    core::Tensor&& input) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(model);
  if (it == deployments_.end()) {
    return core::Status::NotFound("worker '" + name_ + "' has no model '" +
                                  model + "'");
  }
  try {
    // Same layers, same order as the const-ref path (RunInferenceFrom),
    // just consuming the input so every intermediate cycles the pool.
    return it->second.ForwardInference(std::move(input));
  } catch (const std::exception& e) {
    return core::Status::InvalidArgument("worker '" + name_ + "' infer '" +
                                         model + "': " + e.what());
  }
}

std::vector<std::string> WorkerNode::DeploymentNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(deployments_.size());
  for (const auto& [name, model] : deployments_) names.push_back(name);
  return names;
}

}  // namespace fluid::dist
