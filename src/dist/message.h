#pragma once
// Wire codec for master↔worker frames.
//
// A Message is the unit every transport (in-memory pair, TCP) carries:
// a small typed header plus an optional tensor payload. Encoding is the
// library-wide little-endian format of core/serialize.h wrapped in a
// length-prefixed frame, so a stream reader can split frames without
// understanding their contents:
//
//   [u32 magic "FLMS"] [u32 body_len] [body]
//   body = [u8 version] [u8 type] [i64 seq] [i64 batch] [string tag]
//          [u8 has_tensor] [tensor?] [u8 has_qtensor] [qtensor?]    (v3)
//
// Version 2 added the `batch` field: the number of samples a kInfer /
// kResult frame covers, so the batched serving path can validate that a
// reply answers the whole shard it shipped (and a worker can reject a
// payload whose leading dim disagrees with the header). Version-1 frames
// (no batch field) still decode, with batch = 0 ("unspecified").
//
// Version 3 adds an optional INT8 payload (quant::QuantizedTensor: one
// f32 scale + shape + int8 data — 4× fewer wire bytes than the fp32
// tensor) used for the HighAccuracy cut-activation frames. The encoder
// only emits version 3 when a quantized payload is present, so every
// frame without one stays byte-identical to v2 and fp32-only peers
// interoperate untouched; sending quantized frames to a peer is
// negotiated per-deploy via the blueprint's quant options (a peer that
// acked a quant deploy demonstrably speaks v3).
//
// Version 4 adds an optional trailing SLO block — [u8 priority]
// [i64 slo_ms] — carrying a kInfer frame's scheduling class and remaining
// deadline budget so a worker can account (and later schedule) per class.
// Same discipline as v3: the encoder emits version 4 only when an SLO is
// set, so every frame without one is byte-identical to what v2/v3 peers
// produced and expect.
//
// Version 5 adds a trailing [u8 input_quant] marker: the quantized
// payload is a quantized *input shard* (the HighThroughput fan-out's
// client tensors), not cut activations. A v5 body always carries the v3
// has_qtensor flag and the v4 SLO block (slo_ms = -1 when no SLO is
// attached — legal for v5 only), then the marker. The encoder emits
// version 5 only when the marker is set, so every frame without a
// quantized input stays byte-identical to what a v4 encoder produces;
// sending v5 frames is negotiated per-deploy via the blueprint's
// `int8_input_wire` option exactly like v3's cut-activation frames.
//
// Version 6 adds an optional trailing trace block — [u8 has_trace]
// [u64 trace_id][u64 trace_span][i64 trace_sent_us][i64 trace_service_us]
// — carrying a sampled request's distributed-tracing context
// (obs/trace.h) across nodes. On kInfer frames the master stamps the
// trace id, the parent span and its own steady-clock send timestamp; the
// worker echoes the block on the kResult reply with its service duration
// filled in, so the master can split the observed round trip into pure
// link time and worker compute. Same discipline as v3/v4/v5: the encoder
// emits version 6 only when a trace is attached (sampled 1-in-N), so
// every untraced frame stays byte-identical to what a v5 encoder
// produces. A v6 body always carries the v3 flag, the v4 SLO block
// (slo_ms = -1 legal) and the v5 marker (0 legal — v6 only).
//
// Decode never throws: corrupt or truncated frames come back as
// Status::DataLoss so a transport can drop the connection instead of
// unwinding through the serving loop.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/serialize.h"
#include "core/tensor.h"
#include "quant/quantize.h"

namespace fluid::dist {

/// Leading frame magic, "FLMS" little-endian. Exported so transports can
/// resynchronise/reject without re-parsing — one definition, no drift.
inline constexpr std::uint32_t kFrameMagic = 0x534D4C46;

/// Hard upper bound on one frame's body, enforced by senders and
/// receivers alike (deploy payloads are ~MBs at most; anything larger is
/// a bug or a corrupt length field).
inline constexpr std::uint32_t kMaxFrameBody = 64u << 20;  // 64 MiB

/// Highest wire version this codec understands. Exported so the TCP
/// streaming decoder rejects exactly the versions DecodeMessage would.
inline constexpr std::uint8_t kMaxWireVersion = 6;

/// Frame type. Values are wire-stable; append only.
enum class MsgType : std::uint8_t {
  kHello = 0,    // worker → master: name + capabilities
  kDeploy = 1,   // master → worker: model blueprint / weights
  kInfer = 2,    // master → worker: activation tensor to run
  kResult = 3,   // worker → master: logits / partial products
  kAck = 4,      // bare acknowledgement
  kError = 5,    // peer-side failure, tag carries the reason
  kHeartbeat = 6,
};

/// Stable name of a message type (logs, tests).
std::string_view MsgTypeName(MsgType type);

struct Message {
  MsgType type = MsgType::kAck;
  std::int64_t seq = 0;   // correlation id chosen by the sender
  std::int64_t batch = 0; // samples this frame covers (0 = unspecified)
  std::string tag;        // route / model name / error text
  core::Tensor payload;   // empty when the frame carries no tensor
  /// INT8 payload (v3): quantized cut activations. A frame carries the
  /// fp32 payload or the quantized one, never both.
  quant::QuantizedTensor qpayload;
  /// SLO block (v4): scheduling class of the samples this frame covers
  /// (0 = highest) and the remaining deadline budget in ms at send time.
  /// slo_ms < 0 means "no SLO attached" and the frame encodes ≤ v3.
  std::uint8_t priority = 0;
  std::int64_t slo_ms = -1;
  /// Input-shard marker (v5): the qpayload is a quantized *input* (HT
  /// fan-out shard), not cut activations. Forces wire version 5; requires
  /// a quantized payload.
  bool input_quant = false;
  /// Trace block (v6): sampled distributed-tracing context. A nonzero
  /// trace_id forces wire version 6. trace_span is the sender's parent
  /// span; trace_sent_us is the master's steady-clock stamp at send time
  /// (echoed unchanged by the worker so the master can compute the round
  /// trip on its own clock); trace_service_us is the worker's service
  /// duration, filled in on kResult replies only.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_span = 0;
  std::int64_t trace_sent_us = 0;
  std::int64_t trace_service_us = 0;

  /// Note: a zero-element tensor counts as "no payload" — its shape is not
  /// preserved on the wire. Frames that need data ship non-empty tensors.
  bool has_payload() const { return !payload.empty(); }
  bool has_qpayload() const { return !qpayload.empty(); }
  bool has_slo() const { return slo_ms >= 0; }
  bool has_trace() const { return trace_id != 0; }

  /// Attach a v4 SLO block: scheduling class + remaining budget (clamped
  /// to >= 0 so setting always takes effect).
  void SetSlo(std::uint8_t cls, std::int64_t remaining_ms) {
    priority = cls;
    slo_ms = remaining_ms < 0 ? 0 : remaining_ms;
  }

  /// Attach a v6 trace block (request direction: service duration 0).
  /// Ignored when `id` is 0 (the request was sampled out).
  void SetTrace(std::uint64_t id, std::uint64_t span, std::int64_t sent_us) {
    trace_id = id;
    trace_span = span;
    trace_sent_us = sent_us < 0 ? 0 : sent_us;
    trace_service_us = 0;
  }

  /// Echo a request frame's trace block onto this reply, stamping the
  /// worker's service duration. No-op for untraced requests.
  void EchoTrace(const Message& request, std::int64_t service_us) {
    if (!request.has_trace()) return;
    trace_id = request.trace_id;
    trace_span = request.trace_span;
    trace_sent_us = request.trace_sent_us;
    trace_service_us = service_us < 0 ? 0 : service_us;
  }

  static Message WithTensor(MsgType type, std::int64_t seq, std::string tag,
                            core::Tensor payload);
  /// A kInfer/kResult frame whose `batch` header mirrors the payload's
  /// leading dim, letting the receiver validate shard coverage.
  static Message WithBatch(MsgType type, std::int64_t seq, std::string tag,
                           core::Tensor payload);
  /// A kInfer frame carrying quantized activations; `batch` mirrors the
  /// quantized shape's leading dim. Encodes as wire version 3 — send only
  /// to peers that negotiated quant at deploy time.
  static Message WithQuantBatch(MsgType type, std::int64_t seq,
                                std::string tag, quant::QuantizedTensor q);
  /// A kInfer frame carrying a quantized *input shard* (HighThroughput
  /// fan-out). Encodes as wire version 5 — send only to peers whose
  /// deployment negotiated `int8_input_wire`.
  static Message WithQuantInput(MsgType type, std::int64_t seq,
                                std::string tag, quant::QuantizedTensor q);
  /// Header-only frame (kAck, kHeartbeat, kError, ...).
  static Message HeaderOnly(MsgType type, std::int64_t seq,
                            std::string tag = {});
};

/// Serialize one frame (header + body) into a fresh buffer.
std::vector<std::uint8_t> EncodeMessage(const Message& msg);

/// Serialize one frame into `out`, reusing its capacity (contents are
/// replaced). Byte-identical to EncodeMessage; the pooled wire path keys
/// a recycled frame buffer per connection so steady-state sends stop
/// allocating.
void EncodeMessageInto(const Message& msg, std::vector<std::uint8_t>& out);

/// Return a message's bulk storage (fp32 payload, int8 qpayload) to the
/// buffer pools and leave the message empty. Call once the frame's data
/// has been shipped or copied out; the next encode/decode on this
/// connection reuses the storage.
void RecycleMessage(Message&& msg);

/// Parse one complete frame. Returns DataLoss on bad magic / truncation /
/// unknown version, InvalidArgument on an out-of-range message type.
core::Status DecodeMessage(std::span<const std::uint8_t> bytes, Message& out);

/// One scatter-gather piece of an encoded frame: either a window of the
/// scaffold buffer (all the small framing/header fields, `bulk` null) or
/// a window straight into the message's own bulk storage (fp32 payload
/// bytes, int8 qpayload bytes). Concatenating the pieces in order yields
/// exactly EncodeMessage(msg).
struct WireSegment {
  std::size_t scaffold_off = 0;      // valid when bulk == nullptr
  const std::uint8_t* bulk = nullptr;
  std::size_t size = 0;
};

/// Encode `msg` without copying its bulk bytes: the non-bulk fields are
/// appended to `scaffold` (which may already hold earlier frames — the
/// segments reference it by offset, so growth never invalidates them) and
/// the segment list gains ≤ 5 entries describing the full frame in wire
/// order. Returns the frame's total size (== EncodedSize(msg)). This is
/// the vectored-send path: a transport turns the segments into iovecs and
/// ships tensor storage directly, no frame-buffer memcpy.
std::int64_t EncodeMessageScatter(const Message& msg, core::ByteWriter& scaffold,
                                  std::vector<WireSegment>& segments);

/// Bytes EncodeMessage would produce for `msg` without building the buffer
/// (header + body). Used by the comm-cost accounting in sim/ and bench/.
std::int64_t EncodedSize(const Message& msg);

}  // namespace fluid::dist
