#include "dist/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/buffer_pool.h"
#include "core/logging.h"
#include "core/serialize.h"
#include "core/shape.h"

namespace fluid::dist {

namespace {

using Clock = std::chrono::steady_clock;

// Bodies up to this size decode out of the receive accumulator (one
// DecodeMessage over a contiguous frame — cheap for control-plane frames
// and small replies, and naturally resumable across Recv deadlines).
// Larger bodies — the tensor-carrying data plane — go through the
// streaming decoder below, which reads the bulk payload bytes straight
// into pooled tensor/int8 storage instead of staging the frame.
constexpr std::uint32_t kStreamBody = 4096;

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Bound Send: a wedged (not closed) peer whose receive window fills
    // must surface as a failure, not block the serving thread forever.
    // This makes the EAGAIN branch in Send() live.
    struct timeval send_timeout {2, 0};  // 2 s
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
  }

  ~TcpTransport() override {
    Close();
    ::close(fd_);
  }

  core::Status Send(const Message& msg) override {
    // One frame is a batch of one: same scatter-gather path, so even
    // single-frame sends ship tensor storage without a bulk memcpy.
    return SendBatch(std::span<const Message>(&msg, 1));
  }

  core::Status SendBatch(std::span<const Message> msgs) override {
    if (msgs.empty()) return core::Status::Ok();
    if (closed_) {
      return core::Status::Unavailable("tcp: endpoint closed");
    }
    // Enforce the receiver's frame limit on the sender too: an oversized
    // frame would be rejected as corruption over there and cost us the
    // connection; failing fast here keeps a healthy link healthy.
    // EncodedSize is exact, so the check runs before any buffer exists.
    for (const Message& m : msgs) {
      const std::int64_t total = EncodedSize(m);
      if (total > static_cast<std::int64_t>(kMaxFrameBody) + 8) {
        return core::Status::InvalidArgument(
            "tcp: frame of " + std::to_string(total) + " bytes exceeds the " +
            std::to_string(kMaxFrameBody) + "-byte wire limit");
      }
    }
    // Scatter-encode the whole batch: small fields land in one pooled
    // scaffold buffer, bulk blocks (fp32 floats, int8 bytes) are
    // referenced in place. Segments carry scaffold offsets, so the
    // scaffold growing across frames never invalidates them.
    core::ByteWriter scaffold(
        core::PoolGet<std::uint8_t>(128 * msgs.size()));
    seg_scratch_.clear();
    std::int64_t batch_bytes = 0;
    for (const Message& m : msgs) {
      batch_bytes += EncodeMessageScatter(m, scaffold, seg_scratch_);
    }
    iov_scratch_.clear();
    iov_scratch_.reserve(seg_scratch_.size());
    const std::uint8_t* base = scaffold.buffer().data();
    for (const WireSegment& s : seg_scratch_) {
      struct iovec io;
      io.iov_base = const_cast<std::uint8_t*>(
          s.bulk != nullptr ? s.bulk : base + s.scaffold_off);
      io.iov_len = s.size;
      iov_scratch_.push_back(io);
    }
    // One writev per IOV_MAX window — for typical batches (≤ 5 iovecs per
    // frame) that is one syscall for the whole fan-out/window.
    core::Status st = core::Status::Ok();
    std::size_t idx = 0;
    while (idx < iov_scratch_.size()) {
      struct msghdr mh {};
      mh.msg_iov = iov_scratch_.data() + idx;
      mh.msg_iovlen = std::min<std::size_t>(
          iov_scratch_.size() - idx, static_cast<std::size_t>(IOV_MAX));
      // MSG_NOSIGNAL: a peer that died mid-write must produce EPIPE, not
      // kill the process with SIGPIPE.
      const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
      if (n > 0) {
        // Partial writes advance through the iovec list in place.
        std::size_t left = static_cast<std::size_t>(n);
        while (left > 0 && idx < iov_scratch_.size()) {
          struct iovec& io = iov_scratch_[idx];
          if (left >= io.iov_len) {
            left -= io.iov_len;
            ++idx;
          } else {
            io.iov_base = static_cast<std::uint8_t*>(io.iov_base) + left;
            io.iov_len -= left;
            left = 0;
          }
        }
        continue;
      }
      if (n < 0 && (errno == EINTR)) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Blocking socket: only reachable via SO_SNDTIMEO; treat a stalled
        // peer like a dead one.
        Close();
        st = core::Status::Unavailable("tcp: send stalled");
        break;
      }
      Close();
      st = core::Status::Unavailable(ErrnoText("tcp: send failed"));
      break;
    }
    core::PoolPut(scaffold.TakeBuffer());
    if (st.ok()) {
      bytes_sent_.fetch_add(batch_bytes, std::memory_order_relaxed);
      frames_sent_.fetch_add(static_cast<std::int64_t>(msgs.size()),
                             std::memory_order_relaxed);
      if (msgs.size() > 1) {
        batched_sends_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return st;
  }

  core::Status Recv(Message& out, std::chrono::milliseconds timeout) override {
    if (closed_) {
      return core::Status::Unavailable("tcp: endpoint closed");
    }
    const auto deadline = Clock::now() + timeout;
    // Frame header: u32 magic + u32 body_len.
    constexpr std::size_t kHeader = 8;
    for (;;) {
      // ---- Drain buffered bytes through the frame state machine. ----
      if (rx_phase_ == RxPhase::kFraming) {
        // Check the magic as soon as 4 bytes exist — before trusting the
        // length field. A desynced peer is cut off immediately instead of
        // stalling Recv on a garbage-derived body_len that never fills.
        if (rx_.size() >= 4) {
          std::uint32_t magic = 0;
          std::memcpy(&magic, rx_.data(), sizeof(magic));
          if (magic != kFrameMagic) {
            Close();
            return core::Status::DataLoss("tcp: bad frame magic");
          }
        }
        if (rx_.size() >= kHeader) {
          std::uint32_t body_len = 0;
          std::memcpy(&body_len, rx_.data() + 4, sizeof(body_len));
          if (body_len > kMaxFrameBody) {
            Close();
            return core::Status::DataLoss("tcp: frame length " +
                                          std::to_string(body_len) +
                                          " exceeds limit");
          }
          if (body_len <= kStreamBody || rx_force_staged_) {
            const std::size_t frame = kHeader + body_len;
            if (rx_.size() >= frame) {
              const auto st = DecodeMessage(
                  std::span<const std::uint8_t>(rx_.data(), frame), out);
              rx_.erase(rx_.begin(),
                        rx_.begin() + static_cast<std::ptrdiff_t>(frame));
              rx_force_staged_ = false;
              if (!st.ok()) {
                // Bogus body: the stream cannot be trusted to be
                // frame-aligned any more. Drop the connection.
                Close();
                return st;
              }
              bytes_recv_.fetch_add(static_cast<std::int64_t>(frame),
                                    std::memory_order_relaxed);
              frames_recv_.fetch_add(1, std::memory_order_relaxed);
              return st;
            }
          } else {
            const auto st = TryStartStream(body_len);
            if (!st.ok()) {
              Close();
              return st;
            }
            // Either the phase advanced, the frame fell back to the
            // staged path (huge tag / no bulk block), or the prelude
            // needs more bytes. The fallback re-runs framing now.
            if (rx_force_staged_) continue;
          }
        }
      }
      if (rx_phase_ == RxPhase::kBulk) {
        // Bytes that arrived buffered behind the prelude move into the
        // payload's final (pooled) storage; everything after them is
        // received straight into that storage below.
        if (!rx_.empty() && rx_bulk_left_ > 0) {
          const std::size_t take = std::min(rx_.size(), rx_bulk_left_);
          std::memcpy(rx_bulk_, rx_.data(), take);
          rx_bulk_ += take;
          rx_bulk_left_ -= take;
          rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(take));
        }
        if (rx_bulk_left_ == 0) rx_phase_ = RxPhase::kTrailer;
      }
      if (rx_phase_ == RxPhase::kTrailer && rx_.size() >= rx_trailer_left_) {
        const auto st = FinishStream(out);
        if (!st.ok()) {
          Close();
        }
        return st;
      }

      // ---- Need more bytes. ----
      const auto left = RemainingMs(deadline);
      struct pollfd pfd {fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr == 0) {
        return core::Status::DeadlineExceeded("tcp: Recv timeout");
      }
      if (pr < 0) {
        if (errno == EINTR) continue;
        Close();
        return core::Status::Unavailable(ErrnoText("tcp: poll failed"));
      }
      ssize_t n = 0;
      if (rx_phase_ == RxPhase::kBulk && rx_.empty()) {
        // Zero-copy: payload bytes land in the pooled tensor/int8 storage
        // directly from the kernel — no pass through the accumulator.
        n = ::recv(fd_, rx_bulk_, rx_bulk_left_, 0);
        if (n > 0) {
          rx_bulk_ += n;
          rx_bulk_left_ -= static_cast<std::size_t>(n);
          continue;
        }
      } else {
        std::uint8_t buf[16384];
        n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
          rx_.insert(rx_.end(), buf, buf + n);
          continue;
        }
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      // EOF or reset. EOF mid-frame is data loss: the peer vanished with a
      // frame half-sent and the remainder will never arrive.
      const bool mid_frame = !rx_.empty() || rx_phase_ != RxPhase::kFraming;
      Close();
      if (n == 0 && !mid_frame) {
        return core::Status::Unavailable("tcp: peer closed");
      }
      if (n == 0) {
        return core::Status::DataLoss("tcp: EOF inside a frame");
      }
      return core::Status::Unavailable(ErrnoText("tcp: recv failed"));
    }
  }

  void Close() override {
    // Close may race with a Recv poll on another thread (WorkerNode::Crash
    // closes the transport out from under the serving loop), so only
    // shutdown() here — it wakes the poller with EOF — and leave the fd
    // open until destruction to avoid fd-reuse races.
    if (!closed_.exchange(true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  bool closed() const override { return closed_; }

  std::string Describe() const override { return "tcp:" + peer_; }

  WireStats wire_stats() const override {
    WireStats s;
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.bytes_recv = bytes_recv_.load(std::memory_order_relaxed);
    s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    s.frames_recv = frames_recv_.load(std::memory_order_relaxed);
    s.batched_sends = batched_sends_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  enum class RxPhase : std::uint8_t {
    kFraming,  // accumulating header + prelude (or a whole staged frame)
    kBulk,     // receiving payload bytes straight into pooled storage
    kTrailer,  // accumulating the small post-bulk fields
  };

  // Bounds-checked little-endian cursor over the accumulator. Running out
  // of bytes is not corruption here — the body is known to extend past
  // what has arrived — so reads return false and the caller polls for
  // more instead of failing the connection.
  struct Cursor {
    const std::uint8_t* p;
    std::size_t left;
    template <typename T>
    bool Fixed(T& v) {
      if (left < sizeof(T)) return false;
      std::memcpy(&v, p, sizeof(T));
      p += sizeof(T);
      left -= sizeof(T);
      return true;
    }
    bool Skip(std::size_t n) {
      if (left < n) return false;
      p += n;
      left -= n;
      return true;
    }
  };

  // Parse the prelude of a large frame (everything before its first bulk
  // block) out of the accumulator and switch to streaming its payload
  // bytes directly into pooled storage. Three outcomes, all Status-ok:
  // phase advanced to kBulk; rx_force_staged_ set (frames whose bulk is
  // the tag — deploys — or that carry no bulk at all fall back to the
  // staged decoder); or nothing changed because the prelude needs more
  // bytes. A non-ok Status means the frame is corrupt and the caller
  // drops the connection, exactly like a staged DecodeMessage failure.
  core::Status TryStartStream(std::uint32_t body_len) {
    if (rx_.size() - 8 >= body_len) {
      // The whole body is already buffered: streaming would save nothing,
      // and the staged decoder is the authority on any corruption the
      // prelude parse below would only half-see. This also guarantees the
      // "need more bytes" returns below always make progress — more bytes
      // of *this* body are genuinely still in flight.
      rx_force_staged_ = true;
      return core::Status::Ok();
    }
    const std::size_t avail = rx_.size() - 8;
    Cursor c{rx_.data() + 8, avail};
    std::uint8_t version = 0, type = 0;
    if (!c.Fixed(version)) return core::Status::Ok();
    if (version < 1 || version > kMaxWireVersion) {
      return core::Status::DataLoss("tcp: unsupported frame version " +
                                    std::to_string(version));
    }
    if (!c.Fixed(type)) return core::Status::Ok();
    if (type > static_cast<std::uint8_t>(MsgType::kHeartbeat)) {
      return core::Status::InvalidArgument("tcp: unknown message type " +
                                           std::to_string(type));
    }
    Message msg;
    msg.type = static_cast<MsgType>(type);
    if (!c.Fixed(msg.seq)) return core::Status::Ok();
    if (version >= 2 && !c.Fixed(msg.batch)) return core::Status::Ok();
    std::uint32_t tag_len = 0;
    if (!c.Fixed(tag_len)) return core::Status::Ok();
    if (tag_len > body_len) {
      return core::Status::DataLoss("tcp: tag length exceeds frame body");
    }
    if (tag_len > kStreamBody) {
      // Deploy-style frame: the tag is the bulk. Stage it whole.
      rx_force_staged_ = true;
      return core::Status::Ok();
    }
    const std::uint8_t* tag_ptr = c.p;
    if (!c.Skip(tag_len)) return core::Status::Ok();
    std::uint8_t has_tensor = 0;
    if (!c.Fixed(has_tensor)) return core::Status::Ok();
    std::size_t bulk = 0;
    bool incomplete = false;
    if (has_tensor != 0) {
      std::vector<std::int64_t> dims;
      std::uint64_t count = 0;
      FLUID_RETURN_IF_ERROR(
          ParseBulkShape(c, body_len, 4, dims, count, incomplete));
      if (incomplete) return core::Status::Ok();
      msg.payload = core::AcquireTensor(core::Shape(std::move(dims)));
      rx_bulk_ = reinterpret_cast<std::uint8_t*>(msg.payload.data().data());
      bulk = static_cast<std::size_t>(count) * sizeof(float);
      rx_bulk_is_tensor_ = true;
    } else {
      // No fp32 payload: the only other bulk block is a quantized one
      // (v3+). A big body without either has nothing to stream — let the
      // staged decoder judge it once it is fully buffered.
      if (version < 3) {
        rx_force_staged_ = true;
        return core::Status::Ok();
      }
      std::uint8_t has_q = 0;
      if (!c.Fixed(has_q)) return core::Status::Ok();
      if (has_q == 0) {
        rx_force_staged_ = true;
        return core::Status::Ok();
      }
      float scale = 0.0F;
      if (!c.Fixed(scale)) return core::Status::Ok();
      if (!std::isfinite(scale) || scale <= 0.0F) {
        return core::Status::DataLoss("tcp: implausible quantized scale");
      }
      std::vector<std::int64_t> dims;
      std::uint64_t count = 0;
      FLUID_RETURN_IF_ERROR(
          ParseBulkShape(c, body_len, 1, dims, count, incomplete));
      if (incomplete) return core::Status::Ok();
      msg.qpayload.scale = scale;
      msg.qpayload.shape = core::Shape(std::move(dims));
      msg.qpayload.data =
          core::PoolGet<std::int8_t>(static_cast<std::size_t>(count));
      rx_bulk_ = reinterpret_cast<std::uint8_t*>(msg.qpayload.data.data());
      bulk = static_cast<std::size_t>(count);
      rx_bulk_is_tensor_ = false;
    }
    msg.tag.assign(reinterpret_cast<const char*>(tag_ptr), tag_len);
    const std::size_t prelude = avail - c.left;  // body bytes consumed
    if (prelude + bulk > body_len) {
      return core::Status::DataLoss("tcp: payload exceeds frame body");
    }
    rx_msg_ = std::move(msg);
    rx_version_ = version;
    rx_body_len_ = body_len;
    rx_bulk_left_ = bulk;
    rx_trailer_left_ = body_len - prelude - bulk;
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(8 + prelude));
    rx_phase_ = RxPhase::kBulk;
    return core::Status::Ok();
  }

  // Shared shape prelude of both bulk blocks: u32 rank, i64 dims, then a
  // u64 element count that must match the shape product and fit in the
  // body. `elem` is the wire size of one element (4 for fp32, 1 for int8).
  // Running out of buffered bytes sets `incomplete` (not an error).
  core::Status ParseBulkShape(Cursor& c, std::uint32_t body_len,
                              std::size_t elem, std::vector<std::int64_t>& dims,
                              std::uint64_t& count, bool& incomplete) {
    std::uint32_t rank = 0;
    if (!c.Fixed(rank)) {
      incomplete = true;
      return core::Status::Ok();
    }
    if (rank > core::Shape::kMaxRank) {
      return core::Status::DataLoss("tcp: payload rank implausibly large");
    }
    dims.resize(rank);
    std::int64_t prod = 1;
    for (auto& d : dims) {
      if (!c.Fixed(d)) {
        incomplete = true;
        return core::Status::Ok();
      }
      if (d < 0) return core::Status::DataLoss("tcp: negative payload dim");
      if (d > 0 && prod > static_cast<std::int64_t>(kMaxFrameBody) / d) {
        return core::Status::DataLoss("tcp: payload exceeds frame body");
      }
      prod *= d;
    }
    if (!c.Fixed(count)) {
      incomplete = true;
      return core::Status::Ok();
    }
    if (count != static_cast<std::uint64_t>(prod)) {
      return core::Status::DataLoss(
          "tcp: payload size does not match shape");
    }
    if (count * elem > body_len) {
      return core::Status::DataLoss("tcp: payload exceeds frame body");
    }
    return core::Status::Ok();
  }

  // The streamed frame's bulk is complete and all trailer bytes are
  // buffered: parse the small post-bulk fields with the same validation
  // DecodeMessage applies, hand the message out, and reset for the next
  // frame.
  core::Status FinishStream(Message& out) {
    core::ByteReader r(
        std::span<const std::uint8_t>(rx_.data(), rx_trailer_left_));
    if (rx_bulk_is_tensor_ && rx_version_ >= 3) {
      std::uint8_t has_q = 0;
      FLUID_RETURN_IF_ERROR(r.TryReadU8(has_q));
      if (has_q != 0) {
        FLUID_RETURN_IF_ERROR(
            quant::QuantizedTensor::Decode(r, rx_msg_.qpayload));
      }
    }
    if (rx_version_ >= 4) {
      FLUID_RETURN_IF_ERROR(r.TryReadU8(rx_msg_.priority));
      FLUID_RETURN_IF_ERROR(r.TryReadI64(rx_msg_.slo_ms));
      const std::int64_t floor = rx_version_ >= 5 ? -1 : 0;
      if (rx_msg_.slo_ms < floor) {
        return core::Status::DataLoss("tcp: frame with negative slo_ms");
      }
    }
    if (rx_version_ >= 5) {
      std::uint8_t input_quant = 0;
      FLUID_RETURN_IF_ERROR(r.TryReadU8(input_quant));
      if (input_quant > 1) {
        return core::Status::DataLoss("tcp: bogus input_quant marker");
      }
      if (input_quant != 0 && !rx_msg_.has_qpayload()) {
        return core::Status::DataLoss(
            "tcp: input_quant set without a quantized payload");
      }
      rx_msg_.input_quant = input_quant != 0;
    }
    if (rx_version_ >= 6) {
      std::uint8_t has_trace = 0;
      FLUID_RETURN_IF_ERROR(r.TryReadU8(has_trace));
      if (has_trace > 1) {
        return core::Status::DataLoss("tcp: bogus has_trace flag");
      }
      if (has_trace != 0) {
        FLUID_RETURN_IF_ERROR(r.TryReadU64(rx_msg_.trace_id));
        FLUID_RETURN_IF_ERROR(r.TryReadU64(rx_msg_.trace_span));
        FLUID_RETURN_IF_ERROR(r.TryReadI64(rx_msg_.trace_sent_us));
        FLUID_RETURN_IF_ERROR(r.TryReadI64(rx_msg_.trace_service_us));
        if (rx_msg_.trace_id == 0) {
          return core::Status::DataLoss("tcp: trace block without an id");
        }
        if (rx_msg_.trace_sent_us < 0 || rx_msg_.trace_service_us < 0) {
          return core::Status::DataLoss(
              "tcp: trace block with negative timestamps");
        }
      }
    }
    rx_.erase(rx_.begin(),
              rx_.begin() + static_cast<std::ptrdiff_t>(rx_trailer_left_));
    bytes_recv_.fetch_add(static_cast<std::int64_t>(8 + rx_body_len_),
                          std::memory_order_relaxed);
    frames_recv_.fetch_add(1, std::memory_order_relaxed);
    out = std::move(rx_msg_);
    rx_msg_ = Message{};
    rx_phase_ = RxPhase::kFraming;
    rx_bulk_ = nullptr;
    rx_bulk_left_ = 0;
    rx_trailer_left_ = 0;
    return core::Status::Ok();
  }

  const int fd_;
  std::string peer_;
  std::atomic<bool> closed_{false};
  std::vector<std::uint8_t> rx_;  // partial-frame / prelude accumulator
  // Streaming decode state; survives across Recv deadline returns.
  RxPhase rx_phase_ = RxPhase::kFraming;
  bool rx_force_staged_ = false;  // this frame decodes staged despite size
  Message rx_msg_;                // partially decoded streaming frame
  std::uint8_t rx_version_ = 0;
  std::uint32_t rx_body_len_ = 0;
  std::uint8_t* rx_bulk_ = nullptr;  // next payload byte to fill
  std::size_t rx_bulk_left_ = 0;
  std::size_t rx_trailer_left_ = 0;
  bool rx_bulk_is_tensor_ = false;
  // Send-side scratch, reused so steady-state batches stop allocating.
  std::vector<WireSegment> seg_scratch_;
  std::vector<struct iovec> iov_scratch_;
  // Wire counters; relaxed atomics so wire_stats() may race Send/Recv.
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> bytes_recv_{0};
  std::atomic<std::int64_t> frames_sent_{0};
  std::atomic<std::int64_t> frames_recv_{0};
  std::atomic<std::int64_t> batched_sends_{0};
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  FLUID_CHECK_MSG(fd_ >= 0, "TcpListener: socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  FLUID_CHECK_MSG(
      ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      ErrnoText("TcpListener: bind failed"));
  FLUID_CHECK_MSG(::listen(fd_, 16) == 0, ErrnoText("TcpListener: listen failed"));
  socklen_t len = sizeof(addr);
  FLUID_CHECK_MSG(
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      ErrnoText("TcpListener: getsockname failed"));
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

core::StatusOr<TransportPtr> TcpListener::Accept(
    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    struct pollfd pfd {fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(RemainingMs(deadline).count()));
    if (pr == 0) {
      return core::Status::DeadlineExceeded("TcpListener: Accept timeout");
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return core::Status::Unavailable(ErrnoText("TcpListener: poll failed"));
    }
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return core::Status::Unavailable(ErrnoText("TcpListener: accept failed"));
    }
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    return TransportPtr(std::make_unique<TcpTransport>(
        fd, std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port))));
  }
}

core::StatusOr<TransportPtr> TcpConnect(const std::string& host,
                                        std::uint16_t port,
                                        std::chrono::milliseconds timeout) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return core::Status::InvalidArgument("TcpConnect: bad IPv4 address " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return core::Status::Unavailable(ErrnoText("TcpConnect: socket failed"));
  }
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking for the transport's send path.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const auto deadline = Clock::now() + timeout;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const auto st = core::Status::Unavailable(ErrnoText("TcpConnect: connect"));
    ::close(fd);
    return st;
  }
  for (;;) {
    struct pollfd pfd {fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(RemainingMs(deadline).count()));
    if (pr == 0) {
      ::close(fd);
      return core::Status::DeadlineExceeded("TcpConnect: timeout");
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      const auto st = core::Status::Unavailable(ErrnoText("TcpConnect: poll"));
      ::close(fd);
      return st;
    }
    break;
  }
  int err = 0;
  socklen_t errlen = sizeof(err);
  ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
  if (err != 0) {
    ::close(fd);
    return core::Status::Unavailable(std::string("TcpConnect: ") +
                                     std::strerror(err));
  }
  ::fcntl(fd, F_SETFL, flags);
  return TransportPtr(std::make_unique<TcpTransport>(
      fd, host + ":" + std::to_string(port)));
}

}  // namespace fluid::dist
