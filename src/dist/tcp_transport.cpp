#include "dist/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

#include "core/buffer_pool.h"
#include "core/logging.h"
#include "core/serialize.h"

namespace fluid::dist {

namespace {

using Clock = std::chrono::steady_clock;

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Bound Send: a wedged (not closed) peer whose receive window fills
    // must surface as a failure, not block the serving thread forever.
    // This makes the EAGAIN branch in Send() live.
    struct timeval send_timeout {2, 0};  // 2 s
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
  }

  ~TcpTransport() override {
    Close();
    ::close(fd_);
  }

  core::Status Send(const Message& msg) override {
    if (closed_) {
      return core::Status::Unavailable("tcp: endpoint closed");
    }
    // Enforce the receiver's frame limit on the sender too: an oversized
    // frame would be rejected as corruption over there and cost us the
    // connection; failing fast here keeps a healthy link healthy.
    // EncodedSize is exact, so the check runs before any buffer exists.
    const std::int64_t total = EncodedSize(msg);
    if (total > static_cast<std::int64_t>(kMaxFrameBody) + 8) {
      return core::Status::InvalidArgument(
          "tcp: frame of " + std::to_string(total) + " bytes exceeds the " +
          std::to_string(kMaxFrameBody) + "-byte wire limit");
    }
    // Pooled frame buffer: encoded, shipped, recycled — repeat sends on a
    // connection stop allocating once the pool is warm.
    auto bytes = core::PoolGet<std::uint8_t>(static_cast<std::size_t>(total));
    EncodeMessageInto(msg, bytes);
    core::Status st = core::Status::Ok();
    std::size_t off = 0;
    while (off < bytes.size()) {
      // MSG_NOSIGNAL: a peer that died mid-write must produce EPIPE, not
      // kill the process with SIGPIPE.
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EINTR)) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Blocking socket: only reachable via SO_SNDTIMEO; treat a stalled
        // peer like a dead one.
        Close();
        st = core::Status::Unavailable("tcp: send stalled");
        break;
      }
      Close();
      st = core::Status::Unavailable(ErrnoText("tcp: send failed"));
      break;
    }
    core::PoolPut(std::move(bytes));
    return st;
  }

  core::Status Recv(Message& out, std::chrono::milliseconds timeout) override {
    if (closed_) {
      return core::Status::Unavailable("tcp: endpoint closed");
    }
    const auto deadline = Clock::now() + timeout;
    // Frame header: u32 magic + u32 body_len.
    constexpr std::size_t kHeader = 8;
    for (;;) {
      // Check the magic as soon as 4 bytes exist — before trusting the
      // length field. A desynced peer is cut off immediately instead of
      // stalling Recv on a garbage-derived body_len that never fills.
      if (rx_.size() >= 4) {
        std::uint32_t magic = 0;
        std::memcpy(&magic, rx_.data(), sizeof(magic));
        if (magic != kFrameMagic) {
          Close();
          return core::Status::DataLoss("tcp: bad frame magic");
        }
      }
      if (rx_.size() >= kHeader) {
        std::uint32_t body_len = 0;
        std::memcpy(&body_len, rx_.data() + 4, sizeof(body_len));
        if (body_len > kMaxFrameBody) {
          Close();
          return core::Status::DataLoss("tcp: frame length " +
                                        std::to_string(body_len) +
                                        " exceeds limit");
        }
        const std::size_t frame = kHeader + body_len;
        if (rx_.size() >= frame) {
          const auto st = DecodeMessage(
              std::span<const std::uint8_t>(rx_.data(), frame), out);
          rx_.erase(rx_.begin(),
                    rx_.begin() + static_cast<std::ptrdiff_t>(frame));
          if (!st.ok()) {
            // Bogus body: the stream cannot be trusted to be
            // frame-aligned any more. Drop the connection.
            Close();
          }
          return st;
        }
      }

      const auto left = RemainingMs(deadline);
      struct pollfd pfd {fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr == 0) {
        return core::Status::DeadlineExceeded("tcp: Recv timeout");
      }
      if (pr < 0) {
        if (errno == EINTR) continue;
        Close();
        return core::Status::Unavailable(ErrnoText("tcp: poll failed"));
      }
      std::uint8_t buf[16384];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        rx_.insert(rx_.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      // EOF or reset. EOF mid-frame is data loss: the peer vanished with a
      // frame half-sent and the remainder will never arrive.
      const bool mid_frame = !rx_.empty();
      Close();
      if (n == 0 && !mid_frame) {
        return core::Status::Unavailable("tcp: peer closed");
      }
      if (n == 0) {
        return core::Status::DataLoss("tcp: EOF inside a frame");
      }
      return core::Status::Unavailable(ErrnoText("tcp: recv failed"));
    }
  }

  void Close() override {
    // Close may race with a Recv poll on another thread (WorkerNode::Crash
    // closes the transport out from under the serving loop), so only
    // shutdown() here — it wakes the poller with EOF — and leave the fd
    // open until destruction to avoid fd-reuse races.
    if (!closed_.exchange(true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  bool closed() const override { return closed_; }

  std::string Describe() const override { return "tcp:" + peer_; }

 private:
  const int fd_;
  std::string peer_;
  std::atomic<bool> closed_{false};
  std::vector<std::uint8_t> rx_;  // partial-frame accumulator
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  FLUID_CHECK_MSG(fd_ >= 0, "TcpListener: socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  FLUID_CHECK_MSG(
      ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      ErrnoText("TcpListener: bind failed"));
  FLUID_CHECK_MSG(::listen(fd_, 16) == 0, ErrnoText("TcpListener: listen failed"));
  socklen_t len = sizeof(addr);
  FLUID_CHECK_MSG(
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      ErrnoText("TcpListener: getsockname failed"));
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

core::StatusOr<TransportPtr> TcpListener::Accept(
    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    struct pollfd pfd {fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(RemainingMs(deadline).count()));
    if (pr == 0) {
      return core::Status::DeadlineExceeded("TcpListener: Accept timeout");
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return core::Status::Unavailable(ErrnoText("TcpListener: poll failed"));
    }
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return core::Status::Unavailable(ErrnoText("TcpListener: accept failed"));
    }
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    return TransportPtr(std::make_unique<TcpTransport>(
        fd, std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port))));
  }
}

core::StatusOr<TransportPtr> TcpConnect(const std::string& host,
                                        std::uint16_t port,
                                        std::chrono::milliseconds timeout) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return core::Status::InvalidArgument("TcpConnect: bad IPv4 address " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return core::Status::Unavailable(ErrnoText("TcpConnect: socket failed"));
  }
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking for the transport's send path.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const auto deadline = Clock::now() + timeout;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const auto st = core::Status::Unavailable(ErrnoText("TcpConnect: connect"));
    ::close(fd);
    return st;
  }
  for (;;) {
    struct pollfd pfd {fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(RemainingMs(deadline).count()));
    if (pr == 0) {
      ::close(fd);
      return core::Status::DeadlineExceeded("TcpConnect: timeout");
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      const auto st = core::Status::Unavailable(ErrnoText("TcpConnect: poll"));
      ::close(fd);
      return st;
    }
    break;
  }
  int err = 0;
  socklen_t errlen = sizeof(err);
  ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
  if (err != 0) {
    ::close(fd);
    return core::Status::Unavailable(std::string("TcpConnect: ") +
                                     std::strerror(err));
  }
  ::fcntl(fd, F_SETFL, flags);
  return TransportPtr(std::make_unique<TcpTransport>(
      fd, host + ":" + std::to_string(port)));
}

}  // namespace fluid::dist
