#include "dist/master.h"

#include <algorithm>

#include "core/logging.h"

namespace fluid::dist {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

MasterNode::MasterNode(slim::FluidNetConfig config) : config_(config) {}

std::size_t MasterNode::AttachWorker(TransportPtr transport) {
  FLUID_CHECK_MSG(transport != nullptr, "AttachWorker: null transport");
  WorkerHandle handle;
  handle.transport = std::move(transport);
  workers_.push_back(std::move(handle));
  return workers_.size() - 1;
}

std::size_t MasterNode::AliveWorkers() const {
  std::size_t n = 0;
  for (const auto& w : workers_) n += w.alive ? 1 : 0;
  return n;
}

bool MasterNode::WorkerAlive(std::size_t index) const {
  return index < workers_.size() && workers_[index].alive;
}

void MasterNode::DeployLocal(std::string name, nn::Sequential model) {
  local_[std::move(name)] = std::move(model);
}

core::Status MasterNode::DeployToWorker(const std::string& name,
                                        const ModelBlueprint& blueprint,
                                        const nn::StateDict& state,
                                        std::chrono::milliseconds timeout,
                                        std::size_t worker) {
  if (worker >= workers_.size()) {
    return core::Status::InvalidArgument("DeployToWorker: no worker " +
                                         std::to_string(worker));
  }
  DeployRequest req;
  req.name = name;
  req.blueprint = blueprint;
  req.state = state;
  auto reply = Rpc(worker,
                   Message::HeaderOnly(MsgType::kDeploy, 0, req.EncodeToTag()),
                   timeout);
  if (!reply.ok()) return reply.status();
  if (reply->type == MsgType::kError) {
    return core::Status::Internal("DeployToWorker: worker rejected '" + name +
                                  "': " + reply->tag);
  }
  if (reply->type != MsgType::kAck) {
    return core::Status::Internal("DeployToWorker: unexpected reply " +
                                  std::string(MsgTypeName(reply->type)));
  }
  workers_[worker].deployments.push_back(name);
  return core::Status::Ok();
}

bool MasterNode::WorkerHasDeployment(std::size_t w,
                                     const std::string& name) const {
  const auto& d = workers_[w].deployments;
  return std::find(d.begin(), d.end(), name) != d.end();
}

void MasterNode::MarkDead(std::size_t w, const core::Status& why) {
  if (!workers_[w].alive) return;
  workers_[w].alive = false;
  FLUID_LOG(Warn) << "master: worker[" << w << "] ("
                  << workers_[w].transport->Describe()
                  << ") marked dead: " << why.ToString();
}

core::StatusOr<Message> MasterNode::Rpc(std::size_t w, Message msg,
                                        std::chrono::milliseconds timeout) {
  auto& handle = workers_[w];
  if (!handle.alive) {
    return core::Status::Unavailable("worker[" + std::to_string(w) + "] dead");
  }
  const auto deadline = Clock::now() + timeout;
  msg.seq = next_seq_++;
  auto st = handle.transport->Send(msg);
  if (!st.ok()) {
    MarkDead(w, st);
    return st;
  }
  for (;;) {
    Message reply;
    st = handle.transport->Recv(reply, RemainingMs(deadline));
    if (!st.ok()) {
      // Timeout, peer death and stream corruption all mean this worker
      // cannot be trusted to answer: fail over rather than wait.
      MarkDead(w, st);
      return st;
    }
    if (reply.type == MsgType::kHello) {
      handle.name = reply.tag;
      continue;
    }
    if (reply.seq != msg.seq) continue;  // stale reply from an abandoned RPC
    return reply;
  }
}

core::StatusOr<InferReply> MasterNode::ServeLocal(const std::string& name,
                                                  const core::Tensor& input) {
  const auto it = local_.find(name);
  if (it == local_.end()) {
    return core::Status::NotFound("master has no local deployment '" + name +
                                  "'");
  }
  InferReply reply;
  reply.logits = it->second.Forward(input, false);
  reply.served_by = "master:" + name;
  ++stats_.served_local;
  return reply;
}

core::StatusOr<InferReply> MasterNode::ServeRemote(
    std::size_t w, const std::string& name, const core::Tensor& input,
    std::chrono::milliseconds timeout) {
  auto reply =
      Rpc(w, Message::WithTensor(MsgType::kInfer, 0, name, input), timeout);
  if (!reply.ok()) return reply.status();
  if (reply->type == MsgType::kError) {
    return core::Status::Internal("worker[" + std::to_string(w) +
                                  "] failed '" + name + "': " + reply->tag);
  }
  if (reply->type != MsgType::kResult || !reply->has_payload()) {
    return core::Status::Internal("worker[" + std::to_string(w) +
                                  "]: malformed result");
  }
  InferReply out;
  out.logits = std::move(reply->payload);
  out.served_by = "worker[" + std::to_string(w) + "]:" + name;
  ++stats_.served_remote;
  return out;
}

core::StatusOr<InferReply> MasterNode::Infer(const core::Tensor& input,
                                             std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;

  // HighAccuracy: the full-width pipeline, while its back worker lives.
  if (mode_ == sim::Mode::kHighAccuracy && !plan_.pipeline_front.empty() &&
      !plan_.pipeline_back.empty() && WorkerAlive(plan_.back_worker) &&
      local_.count(plan_.pipeline_front) != 0) {
    core::Tensor cut = local_[plan_.pipeline_front].Forward(input, false);
    auto reply = Rpc(plan_.back_worker,
                     Message::WithTensor(MsgType::kInfer, 0,
                                         plan_.pipeline_back, std::move(cut)),
                     RemainingMs(deadline));
    if (reply.ok() && reply->type == MsgType::kResult && reply->has_payload()) {
      InferReply out;
      out.logits = std::move(reply->payload);
      out.served_by = "pipeline:" + plan_.pipeline_front + "+" +
                      plan_.pipeline_back + "@worker[" +
                      std::to_string(plan_.back_worker) + "]";
      ++stats_.served_pipeline;
      return out;
    }
    // The back half is gone (or answered garbage): this request fails over
    // to the master's own resident slice below.
    ++stats_.failovers;
    FLUID_LOG(Warn) << "master: pipeline failed ("
                    << (reply.ok() ? "bad reply" : reply.status().ToString())
                    << "), failing over to standalone";
  }

  // HighThroughput fan-out (and the failover target for every other path):
  // round-robin over the master's resident slice and every live worker
  // that hosts the worker-resident slice.
  struct Target {
    bool remote;
    std::size_t worker;
  };
  std::vector<Target> targets;
  if (!plan_.master_standalone.empty() &&
      local_.count(plan_.master_standalone) != 0) {
    targets.push_back({false, 0});
  }
  if (!plan_.worker_standalone.empty()) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].alive && WorkerHasDeployment(w, plan_.worker_standalone)) {
        targets.push_back({true, w});
      }
    }
  }
  if (targets.empty()) {
    return core::Status::Unavailable(
        "master: no live deployment can serve (plan empty or every device "
        "dead)");
  }

  // Serve from the round-robin target; if a remote dies mid-request, fail
  // over through every remaining candidate (paper Fig. 1b, "no request
  // dropped") — the local slice if present, else the other live workers.
  const std::size_t start = round_robin_++;
  core::Status last = core::Status::Unavailable("master: no target tried");
  for (std::size_t attempt = 0; attempt < targets.size(); ++attempt) {
    const Target t = targets[(start + attempt) % targets.size()];
    if (!t.remote) {
      // Local compute needs no link budget; serving late beats dropping.
      return ServeLocal(plan_.master_standalone, input);
    }
    if (!workers_[t.worker].alive) continue;  // died earlier this request
    if (RemainingMs(deadline).count() == 0) {
      // The caller's budget is spent: attempting an RPC now would time out
      // instantly and wrongly condemn a healthy worker. Skip remotes (a
      // local target later in the rotation may still serve).
      last = core::Status::DeadlineExceeded(
          "master: Infer deadline exhausted before a remote could serve");
      continue;
    }
    auto remote = ServeRemote(t.worker, plan_.worker_standalone, input,
                              RemainingMs(deadline));
    if (remote.ok()) return remote;
    ++stats_.failovers;
    last = remote.status();
  }
  return last;
}

std::size_t MasterNode::ProbeWorkers(std::chrono::milliseconds timeout) {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].alive) continue;
    auto reply =
        Rpc(w, Message::HeaderOnly(MsgType::kHeartbeat, 0), timeout);
    if (!reply.ok()) continue;  // Rpc already marked it dead
    if (reply->type != MsgType::kAck) {
      MarkDead(w, core::Status::Internal("heartbeat answered with " +
                                         std::string(MsgTypeName(reply->type))));
    }
  }
  return AliveWorkers();
}

}  // namespace fluid::dist
