#include "dist/master.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "core/buffer_pool.h"
#include "core/logging.h"
#include "core/tensor_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fluid::dist {

namespace {
using Clock = std::chrono::steady_clock;

/// Split a traced reply's observed round trip into pure link time: the
/// worker echoed the master's send stamp (so rtt computes on the master's
/// own clock) plus its service duration. Records the "wire" span under
/// the request frame's span and the per-class wire histogram. No-op for
/// untraced replies.
void RecordWireReply(const Message& reply, obs::Histogram* hist) {
  if (!reply.has_trace()) return;
  const std::int64_t rtt = obs::NowUs() - reply.trace_sent_us;
  const std::int64_t wire_us =
      std::max<std::int64_t>(0, rtt - reply.trace_service_us);
  auto& tracer = obs::Tracer::Global();
  tracer.Record(reply.trace_id, tracer.NewSpanId(), reply.trace_span, "wire",
                "master", reply.trace_sent_us, wire_us);
  if (hist != nullptr) hist->Record(static_cast<double>(wire_us) / 1000.0);
}

/// A structurally valid kResult for `rows` samples: payload present with a
/// batch dim of `rows`, and the v2 batch header (when set) agreeing. The
/// per-element size check against config num_classes happens at placement.
bool WellFormedResult(const Message& reply, std::int64_t rows) {
  return reply.type == MsgType::kResult && reply.has_payload() &&
         reply.payload.shape().rank() >= 2 &&
         reply.payload.shape()[0] == rows &&
         (reply.batch == 0 || reply.batch == rows);
}
}  // namespace

MasterNode::MasterNode(slim::FluidNetConfig config) : config_(config) {
  auto& reg = obs::MetricsRegistry::Global();
  for (std::size_t c = 0; c < kNumPriorityClasses; ++c) {
    const std::string label{PriorityName(static_cast<Priority>(c))};
    wire_ms_[c] = &reg.GetHistogram("fluid_wire_ms{class=\"" + label + "\"}");
  }
}

MasterNode::~MasterNode() { StopServing(); }

std::size_t MasterNode::AttachWorker(TransportPtr transport) {
  FLUID_CHECK_MSG(transport != nullptr, "AttachWorker: null transport");
  std::lock_guard<std::mutex> lock(mu_);
  WorkerHandle handle;
  handle.transport = std::move(transport);
  workers_.push_back(std::move(handle));
  alive_count_.fetch_add(1, std::memory_order_relaxed);
  RefreshLabelsLocked();
  return workers_.size() - 1;
}

core::Status MasterNode::ReattachWorker(std::size_t index,
                                        TransportPtr transport,
                                        std::chrono::milliseconds timeout) {
  if (transport == nullptr) {
    return core::Status::InvalidArgument("ReattachWorker: null transport");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= workers_.size()) {
    return core::Status::InvalidArgument("ReattachWorker: no worker " +
                                         std::to_string(index));
  }
  WorkerHandle& handle = workers_[index];
  if (handle.alive) {
    return core::Status::FailedPrecondition(
        "ReattachWorker: worker[" + std::to_string(index) +
        "] is still alive");
  }
  handle.transport = std::move(transport);
  handle.alive = true;
  alive_count_.fetch_add(1, std::memory_order_relaxed);
  handle.name.clear();
  handle.pending.clear();
  handle.reply_buffer.clear();

  // Replay the slot's deploy history so the fresh process serves exactly
  // what the dead one did. Any failure re-kills the slot: a half-deployed
  // worker must not rejoin routing.
  for (const auto& dep : handle.deployments) {
    auto reply =
        RpcLocked(index, Message::HeaderOnly(MsgType::kDeploy, 0, dep.tag),
                  timeout);
    if (!reply.ok()) return reply.status();  // RpcLocked marked it dead
    if (reply->type != MsgType::kAck) {
      auto st = core::Status::Internal("ReattachWorker: redeploy '" +
                                       dep.name + "' rejected: " + reply->tag);
      MarkDeadLocked(index, st);
      return st;
    }
  }
  ++stats_.reattaches;
  FLUID_LOG(Info) << "master: worker[" << index << "] reattached ("
                  << handle.transport->Describe() << "), "
                  << handle.deployments.size() << " deployments replayed";
  return core::Status::Ok();
}

std::size_t MasterNode::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

std::size_t MasterNode::AliveWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& w : workers_) n += w.alive ? 1 : 0;
  return n;
}

bool MasterNode::WorkerAlive(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < workers_.size() && workers_[index].alive;
}

void MasterNode::EnableTraceWire(std::size_t index, bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < workers_.size()) workers_[index].trace_wire = on;
}

void MasterNode::DeployLocal(std::string name, nn::Sequential model) {
  std::lock_guard<std::mutex> lock(mu_);
  local_[std::move(name)] = std::move(model);
}

core::Status MasterNode::DeployToWorker(const std::string& name,
                                        const ModelBlueprint& blueprint,
                                        const nn::StateDict& state,
                                        std::chrono::milliseconds timeout,
                                        std::size_t worker) {
  DeployRequest req;
  req.name = name;
  req.blueprint = blueprint;
  req.state = state;
  std::string tag = req.EncodeToTag();

  std::lock_guard<std::mutex> lock(mu_);
  if (worker >= workers_.size()) {
    return core::Status::InvalidArgument("DeployToWorker: no worker " +
                                         std::to_string(worker));
  }
  auto reply = RpcLocked(
      worker, Message::HeaderOnly(MsgType::kDeploy, 0, tag), timeout);
  if (!reply.ok()) return reply.status();
  if (reply->type == MsgType::kError) {
    return core::Status::Internal("DeployToWorker: worker rejected '" + name +
                                  "': " + reply->tag);
  }
  if (reply->type != MsgType::kAck) {
    return core::Status::Internal("DeployToWorker: unexpected reply " +
                                  std::string(MsgTypeName(reply->type)));
  }
  auto& deployments = workers_[worker].deployments;
  const auto it = std::find_if(
      deployments.begin(), deployments.end(),
      [&](const auto& d) { return d.name == name; });
  if (it != deployments.end()) {
    it->tag = std::move(tag);  // redeploy under the same name
    it->quant = blueprint.quant;
  } else {
    deployments.push_back({name, std::move(tag), blueprint.quant});
  }
  return core::Status::Ok();
}

void MasterNode::SetPlan(Plan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  RefreshLabelsLocked();
}

void MasterNode::RefreshLabelsLocked() {
  label_local_ = "master:" + plan_.master_standalone;
  label_pipeline_ = "pipeline:" + plan_.pipeline_front + "+" +
                    plan_.pipeline_back + "@worker[" +
                    std::to_string(plan_.back_worker) + "]";
  label_worker_.resize(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    label_worker_[w] =
        "worker[" + std::to_string(w) + "]:" + plan_.worker_standalone;
  }
}

Plan MasterNode::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

void MasterNode::SetMode(sim::Mode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = mode;
}

sim::Mode MasterNode::mode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mode_;
}

MasterStats MasterNode::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

LoadSnapshot MasterNode::ProbeLoad() const {
  LoadSnapshot snap;
  snap.alive_workers = alive_count_.load(std::memory_order_relaxed);
  std::shared_ptr<BatchScheduler> scheduler;
  {
    // serving_mu_ is the start/stop latch, never held while serving or
    // across Submit backpressure — this is NOT the serving-core lock
    // (mu_), which LoadSnapshot must never wait on.
    std::lock_guard<std::mutex> lock(serving_mu_);
    scheduler = scheduler_;
  }
  if (!scheduler) return snap;  // not serving: admission trivially open
  snap.serving = true;
  const SchedulerLoad load = scheduler->load();
  snap.admission_open = load.admission_open;
  snap.pool_occupancy = load.occupancy;
  snap.active_requests = load.active_requests;
  snap.queue_depth = load.queue_depth;
  snap.deadline_misses = load.deadline_misses;
  snap.completed = load.completed;
  snap.miss_rate = load.completed > 0
                       ? static_cast<double>(load.deadline_misses) /
                             static_cast<double>(load.completed)
                       : 0.0;
  return snap;
}

WireStats MasterNode::wire_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WireStats total;
  for (const WorkerHandle& handle : workers_) {
    total += handle.transport->wire_stats();
  }
  return total;
}

SchedulerStats MasterNode::scheduler_stats() const {
  std::lock_guard<std::mutex> lock(serving_mu_);
  return scheduler_ ? scheduler_->stats() : SchedulerStats{};
}

void MasterNode::StartServing(BatchOptions options) {
  std::lock_guard<std::mutex> lock(serving_mu_);
  StartServingLocked(options);
}

void MasterNode::StartServingLocked(BatchOptions options) {
  if (scheduler_) return;
  {
    std::lock_guard<std::mutex> inner(mu_);
    batch_options_ = options;
  }
  scheduler_ = std::make_shared<BatchScheduler>(
      options, [this](BatchScheduler& sched) { ServeActive(sched); });
}

void MasterNode::StopServing() {
  std::shared_ptr<BatchScheduler> scheduler;
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    scheduler = std::move(scheduler_);
  }
  if (scheduler) scheduler->Stop();
}

bool MasterNode::serving() const {
  std::lock_guard<std::mutex> lock(serving_mu_);
  return scheduler_ != nullptr;
}

std::future<core::StatusOr<InferReply>> MasterNode::InferAsync(
    core::Tensor input, std::chrono::milliseconds timeout) {
  SubmitOptions opts;
  opts.timeout = timeout;
  return InferAsync(std::move(input), opts);
}

std::future<core::StatusOr<InferReply>> MasterNode::InferAsync(
    core::Tensor input, const SubmitOptions& opts) {
  std::shared_ptr<BatchScheduler> scheduler;
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    StartServingLocked(BatchOptions{});
    scheduler = scheduler_;
  }
  // Submit outside serving_mu_: its backpressure wait may block for the
  // request's whole budget, and StopServing / scheduler_stats must not
  // stall behind it. A racing StopServing fails this request cleanly.
  return scheduler->Submit(std::move(input), opts);
}

core::StatusOr<InferReply> MasterNode::Infer(const core::Tensor& input,
                                             std::chrono::milliseconds timeout) {
  std::shared_ptr<BatchScheduler> scheduler;
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    scheduler = scheduler_;
  }
  if (scheduler) {
    return scheduler->Submit(core::AcquireTensorCopy(input), timeout).get();
  }

  // Scheduler off: serve inline as a batch of one request.
  const auto deadline = Clock::now() + timeout;
  std::lock_guard<std::mutex> lock(mu_);
  auto result = ServeBatchLocked(input, deadline);
  if (!result.ok()) return result.status();
  InferReply reply;
  reply.logits = std::move(result->logits);
  reply.served_by = result->served_by.empty()
                        ? std::string()
                        : *result->served_by.front().label;
  return reply;
}

void MasterNode::ServeActive(BatchScheduler& sched) {
  // Drain-thread entry: the pool has schedulable work. Pull chunks
  // continuously; the mode is re-checked at every chunk boundary, so an
  // orchestrator flip (or a pipeline death) re-routes the very next
  // quantum instead of waiting out a coalesced batch.
  for (;;) {
    bool ha = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ha = HaViableLocked();
    }
    if (ha) {
      if (!ServePipelineContinuous(sched)) return;  // pool drained
      continue;  // pipeline broke or mode changed: re-check the route
    }
    BatchScheduler::WorkChunk chunk;
    if (!sched.NextChunk(sched.options().max_batch,
                         std::chrono::milliseconds(1), chunk)) {
      return;
    }
    ServeChunkSharded(sched, chunk);
  }
}

bool MasterNode::ServePipelineContinuous(BatchScheduler& sched) {
  // Iteration-level HA serving: each ha_chunk cut-activation frame is one
  // scheduling quantum, so frames from *different* requests share the
  // ha_window in-flight window. Between frames the scheduler re-assembles
  // — a new arrival's rows ride the next frame (its time-to-first-chunk
  // excludes the residual service of the work ahead), and an expiring
  // high-class request displaces queued lower-class rows.
  const BatchOptions& opts = sched.options();
  const std::size_t window = std::max<std::size_t>(1, opts.ha_window);
  const std::size_t quantum = std::max<std::size_t>(1, opts.ha_chunk);

  struct Flight {
    std::int64_t seq = 0;
    std::size_t worker = 0;
    BatchScheduler::WorkChunk chunk;
  };
  std::deque<Flight> inflight;
  bool broken = false;   // pipeline failed / mode flipped: stop refilling
  bool drained = false;  // pool empty: serve out the window, then return

  // Front-half forwards + one batched cut-activation send for a group of
  // chunks: every frame the refill gathered goes out through SendBatch as
  // one link transaction. A chunk that cannot ship (expired budget,
  // pipeline no longer viable) fails over to the sharded path alone; a
  // send failure makes the whole group suspect — all of it fails over,
  // and `broken` bails out of the pipeline after the window drains.
  auto ship_group = [&](std::vector<BatchScheduler::WorkChunk>&& chunks) {
    std::vector<Message> frames;
    std::vector<Flight> flights;
    std::vector<BatchScheduler::WorkChunk> rejected;
    core::Status send_st = core::Status::Ok();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::size_t w = plan_.back_worker;
      for (BatchScheduler::WorkChunk& chunk : chunks) {
        if (!HaViableLocked() || RemainingMs(chunk.deadline).count() == 0) {
          rejected.push_back(std::move(chunk));
          continue;
        }
        core::Tensor storage;
        const core::Tensor* stacked = StackChunk(chunk, storage);
        core::Tensor cut = local_[plan_.pipeline_front].Forward(*stacked,
                                                               false);
        if (!storage.empty()) core::RecycleTensor(std::move(storage));
        const Deployment* back_dep =
            FindDeploymentLocked(w, plan_.pipeline_back);
        const bool quant_cut =
            back_dep != nullptr && back_dep->quant.int8_wire;
        const std::int64_t seq = next_seq_++;
        workers_[w].pending.insert(seq);
        Message frame;
        if (quant_cut) {
          frame = Message::WithQuantBatch(MsgType::kInfer, seq,
                                          plan_.pipeline_back,
                                          quant::QuantizeTensor(cut));
          core::RecycleTensor(std::move(cut));
          ++stats_.quant_cut_frames;
        } else {
          frame = Message::WithBatch(MsgType::kInfer, seq,
                                     plan_.pipeline_back, std::move(cut));
        }
        // v4 SLO block: the frame advertises its most urgent member's
        // class and remaining budget for per-class accounting downstream.
        frame.SetSlo(static_cast<std::uint8_t>(chunk.top),
                     RemainingMs(chunk.urgent_deadline).count());
        // v6 trace block, only on links negotiated for it: the worker
        // echoes stamp + service duration so the reply splits the round
        // trip into link time vs back-half compute.
        if (chunk.trace_id != 0 && workers_[w].trace_wire) {
          frame.SetTrace(chunk.trace_id, chunk.trace_parent, obs::NowUs());
        }
        frames.push_back(std::move(frame));
        flights.push_back({seq, w, std::move(chunk)});
      }
      if (!frames.empty()) {
        send_st = SendBatchLocked(
            w, std::span<const Message>(frames.data(), frames.size()));
        for (Message& f : frames) RecycleMessage(std::move(f));
        if (send_st.ok()) {
          for (const Flight& fl : flights) {
            ++stats_.batches;
            stats_.coalesced_samples += fl.chunk.rows;
          }
        } else {
          for (const Flight& fl : flights) {
            workers_[w].pending.erase(fl.seq);
            ++stats_.failovers;
          }
        }
      }
    }
    if (send_st.ok()) {
      for (Flight& fl : flights) inflight.push_back(std::move(fl));
    } else {
      broken = true;
      for (Flight& fl : flights) ServeChunkSharded(sched, fl.chunk);
    }
    for (BatchScheduler::WorkChunk& chunk : rejected) {
      broken = true;
      ServeChunkSharded(sched, chunk);
    }
  };

  // Await the oldest in-flight frame and resolve its rows; a bad reply
  // fails the *frame* over to the sharded path — the requests behind it
  // live on in the pool, untouched.
  auto await_oldest = [&] {
    Flight fl = std::move(inflight.front());
    inflight.pop_front();
    core::Status st = core::Status::Ok();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::size_t w = fl.worker;
      auto got = AwaitReplyLocked(w, fl.seq, fl.chunk.deadline);
      if (!got.ok()) {
        st = got.status();
      } else if (!WellFormedResult(*got, fl.chunk.rows) ||
                 got->payload.numel() !=
                     fl.chunk.rows * config_.num_classes) {
        st = core::Status::Internal(
            "worker[" + std::to_string(w) + "]: " +
            (got->type == MsgType::kError
                 ? "back half failed: " + got->tag
                 : "malformed pipeline chunk result"));
      } else {
        stats_.served_pipeline += fl.chunk.rows;
        RecordWireReply(*got,
                        wire_ms_[static_cast<std::size_t>(fl.chunk.top)]);
        // Resolve under mu_: the cached pipeline label is guarded by it,
        // and the scheduler lock only ever nests inside mu_.
        sched.CompleteChunk(fl.chunk, got->payload, label_pipeline_);
        RecycleMessage(std::move(*got));
        return;
      }
      ++stats_.failovers;
      FLUID_LOG(Warn) << "master: pipeline chunk failed (" << st.ToString()
                      << "), failing over to standalone";
    }
    broken = true;
    ServeChunkSharded(sched, fl.chunk);
  };

  // A frame just failed (send error, bad reply, or the pipeline stopped
  // being viable): the back half is suspect, so the rest of the window is
  // not trusted either. Deregister each outstanding seq — a late reply
  // takes the bounded, counted stale-drop path instead of a permanent
  // reply-buffer slot — and re-serve those rows through the standalone
  // fan-out. Failover granularity stays the frame: rows never ride a
  // reply from a peer that already misbehaved.
  auto abandon_window = [&] {
    if (inflight.empty()) return;
    std::deque<Flight> orphans;
    orphans.swap(inflight);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Flight& fl : orphans) {
        workers_[fl.worker].pending.erase(fl.seq);
        workers_[fl.worker].reply_buffer.erase(fl.seq);
      }
    }
    for (Flight& fl : orphans) ServeChunkSharded(sched, fl.chunk);
  };

  for (;;) {
    // Refill the window: non-blocking grabs while frames are in flight (a
    // refill must not stall the link), a short blocking grab only when
    // the link sits idle. Everything gathered in one refill ships as one
    // batched send — under backlog the whole window goes out together.
    std::vector<BatchScheduler::WorkChunk> fresh;
    while (!broken && !drained && inflight.size() + fresh.size() < window) {
      BatchScheduler::WorkChunk chunk;
      const auto wait = (inflight.empty() && fresh.empty())
                            ? std::chrono::milliseconds(1)
                            : std::chrono::milliseconds(0);
      if (!sched.NextChunk(quantum, wait, chunk)) {
        drained = true;
        break;
      }
      fresh.push_back(std::move(chunk));
    }
    if (!fresh.empty()) ship_group(std::move(fresh));
    if (broken) {
      abandon_window();
      return true;
    }
    if (inflight.empty()) return false;  // pool drained, window served out
    await_oldest();
    if (broken) {
      abandon_window();
      return true;
    }
  }
}

void MasterNode::ServeChunkSharded(BatchScheduler& sched,
                                   const BatchScheduler::WorkChunk& chunk) {
  // One span per chunk serve (inert when untraced): covers stack, shard
  // fan-out, remote waits and scatter; shard wire spans parent under it.
  obs::ScopedSpan chunk_span(obs::Tracer::Global(), chunk.trace_id,
                             chunk.trace_parent, "master.chunk", "master");
  core::Tensor storage;
  core::Status st = core::Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const core::Tensor* stacked = StackChunk(chunk, storage);
    ++stats_.batches;
    stats_.coalesced_samples += chunk.rows;
    auto result =
        ServeShardedLocked(*stacked, chunk.deadline, &chunk, chunk_span.id());
    if (result.ok()) {
      // Scatter shard results to the chunk's slices under mu_: the
      // attribution labels point at the cached strings it guards. Each
      // slice reports the device that served its first row.
      const std::int64_t classes = config_.num_classes;
      const float* data = result->logits.data().data();
      std::int64_t row = 0;
      std::size_t range = 0;
      for (const auto& slice : chunk.slices) {
        while (range + 1 < result->served_by.size() &&
               result->served_by[range].row0 +
                       result->served_by[range].rows <=
                   row) {
          ++range;
        }
        sched.CompleteRows(slice, 0, slice.rows, data + row * classes,
                           classes, *result->served_by[range].label);
        row += slice.rows;
      }
      core::RecycleTensor(std::move(result->logits));
    } else {
      st = result.status();
    }
  }
  if (!storage.empty()) core::RecycleTensor(std::move(storage));
  if (!st.ok()) sched.FailChunk(chunk, st);
}

const core::Tensor* MasterNode::StackChunk(
    const BatchScheduler::WorkChunk& chunk, core::Tensor& storage) {
  FLUID_CHECK_MSG(!chunk.slices.empty(), "StackChunk: empty chunk");
  const BatchScheduler::Request& first = *chunk.slices.front().req;
  if (chunk.slices.size() == 1 &&
      chunk.slices.front().rows == first.samples) {
    // The chunk is exactly one whole request: serve its input in place.
    // The input is immutable and outlives the chunk (its rows are still
    // unresolved), so borrowing is copy-free and safe.
    return &first.input;
  }
  const std::int64_t stride = first.input.numel() / first.samples;
  std::vector<std::int64_t> dims(first.input.shape().dims().begin(),
                                 first.input.shape().dims().end());
  dims[0] = chunk.rows;
  storage = core::AcquireTensor(core::Shape(dims));
  float* dst = storage.data().data();
  for (const auto& slice : chunk.slices) {
    const BatchScheduler::Request& req = *slice.req;
    // Mixed per-sample shapes in one pool are a caller bug; the throw
    // fails the in-service requests (drain loop catch), not the thread.
    FLUID_CHECK_MSG(
        req.input.shape().rank() == first.input.shape().rank() &&
            req.input.numel() / req.samples == stride,
        "master: chunk mixes inputs of different per-sample shapes");
    const float* src = req.input.data().data() + slice.row0 * stride;
    std::copy(src, src + slice.rows * stride, dst);
    dst += slice.rows * stride;
  }
  return &storage;
}

core::StatusOr<MasterNode::BatchResult> MasterNode::ServeBatchLocked(
    const core::Tensor& input, Clock::time_point deadline) {
  // Scheduler-fed batches were validated at Submit, but the inline (no
  // scheduler) Infer path lands here directly; an empty batch dim would
  // divide by zero in the shard split.
  if (input.empty() || input.shape().rank() < 1 || input.shape()[0] < 1) {
    return core::Status::InvalidArgument(
        "master: Infer input needs a non-empty batch dim");
  }
  // HighAccuracy: the full-width pipeline, while its back worker lives.
  if (HaViableLocked()) {
    auto piped = ServePipelineBatchLocked(input, deadline);
    if (piped.ok()) return piped;
    // The back half is gone (or answered garbage): the whole batch fails
    // over to the standalone fan-out below.
    ++stats_.failovers;
    FLUID_LOG(Warn) << "master: pipeline failed ("
                    << piped.status().ToString()
                    << "), failing over to standalone";
  }
  return ServeShardedLocked(input, deadline);
}

bool MasterNode::HaViableLocked() const {
  return mode_ == sim::Mode::kHighAccuracy && !plan_.pipeline_front.empty() &&
         !plan_.pipeline_back.empty() && plan_.back_worker < workers_.size() &&
         workers_[plan_.back_worker].alive &&
         local_.count(plan_.pipeline_front) != 0;
}

core::StatusOr<MasterNode::BatchResult> MasterNode::ServePipelineBatchLocked(
    const core::Tensor& input, Clock::time_point deadline) {
  const std::size_t w = plan_.back_worker;
  if (RemainingMs(deadline).count() == 0) {
    // A pre-expired budget (the request sat out its timeout in the queue)
    // must not start an RPC that times out instantly and wrongly condemns
    // a healthy back worker; the standalone fallback may still serve.
    return core::Status::DeadlineExceeded(
        "master: batch deadline exhausted before the pipeline could ship");
  }
  nn::Sequential& front = local_[plan_.pipeline_front];
  const std::int64_t n = input.shape()[0];
  const std::int64_t chunk =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(batch_options_.ha_chunk));
  const std::size_t window = std::max<std::size_t>(1, batch_options_.ha_window);
  // The negotiated wire format of this deployment's cut frames: a back
  // half deployed with int8_wire ACKed a v2 blueprint, so it speaks wire
  // v3 and the cut activations cross the link as int8 (4× fewer bytes on
  // the serial link — the HA throughput lever). Everything else about the
  // pipeline (chunking, windowing, failover) is format-agnostic.
  const Deployment* back_dep = FindDeploymentLocked(w, plan_.pipeline_back);
  const bool quant_cut = back_dep != nullptr && back_dep->quant.int8_wire;

  struct InFlight {
    std::int64_t seq;
    std::int64_t row0;
    std::int64_t rows;
  };
  std::vector<InFlight> inflight;
  BatchResult out;
  // Pooled: every row is filled by a chunk reply (the `filled == n` CHECK
  // below guards it) before the tensor leaves this function.
  out.logits = core::AcquireTensor({n, config_.num_classes});
  std::int64_t filled = 0;

  // On any error exit, the seqs still in flight must not stay pending:
  // their replies would be parked in the reply buffer with no awaiter,
  // forever. Deregistering them routes late replies to the (bounded,
  // logged) stale-drop path instead.
  auto abandon_inflight = [&] {
    for (const InFlight& fl : inflight) {
      workers_[w].pending.erase(fl.seq);
      workers_[w].reply_buffer.erase(fl.seq);
    }
    inflight.clear();
  };

  // Collect the oldest in-flight chunk's logits into `out`.
  auto await_oldest = [&]() -> core::Status {
    const InFlight fl = inflight.front();
    inflight.erase(inflight.begin());
    auto reply = AwaitReplyLocked(w, fl.seq, deadline);
    if (!reply.ok()) return reply.status();
    if (!WellFormedResult(*reply, fl.rows)) {
      return core::Status::Internal(
          "worker[" + std::to_string(w) + "]: " +
          (reply->type == MsgType::kError ? "back half failed: " + reply->tag
                                          : "malformed pipeline result"));
    }
    // Size the copy from the wire payload against the config's class
    // count, never the payload's own dims: a reply with the right row
    // count but different trailing dims (byzantine or buggy peer) must
    // fail over, not scribble past the end of out.logits.
    const std::int64_t classes = config_.num_classes;
    if (reply->payload.numel() != fl.rows * classes) {
      return core::Status::Internal(
          "worker[" + std::to_string(w) +
          "]: pipeline chunk result size mismatch");
    }
    const auto src = reply->payload.data();
    std::copy(src.begin(), src.end(),
              out.logits.data().begin() + fl.row0 * classes);
    filled += fl.rows;
    // The reply's logits are copied out; its storage feeds the next decode.
    RecycleMessage(std::move(*reply));
    return core::Status::Ok();
  };

  // Windowed send/recv queue: front compute of chunk k+1 overlaps the link
  // transfer and the worker's back compute of chunk k. Frames group into
  // half-window batches shipped through one SendBatch — one syscall and
  // one link transaction per group — while the in-flight cap stays
  // `window`: the link still sees at most `window` unacknowledged frames.
  const std::size_t group_max = std::max<std::size_t>(1, window / 2);
  std::vector<Message> group;
  std::vector<InFlight> group_fl;
  auto flush_group = [&]() -> core::Status {
    if (group.empty()) return core::Status::Ok();
    auto st = SendBatchLocked(
        w, std::span<const Message>(group.data(), group.size()));
    // The batch encoded straight out of the frames' payload storage; the
    // staging cycles back for the next group either way.
    for (Message& f : group) RecycleMessage(std::move(f));
    group.clear();
    if (!st.ok()) {
      // All-or-prefix: the whole group is suspect, none of it may be
      // awaited. Deregister before the caller abandons the older window.
      for (const InFlight& fl : group_fl) workers_[w].pending.erase(fl.seq);
      group_fl.clear();
      return st;
    }
    inflight.insert(inflight.end(), group_fl.begin(), group_fl.end());
    group_fl.clear();
    return core::Status::Ok();
  };

  for (std::int64_t row0 = 0; row0 < n; row0 += chunk) {
    const std::int64_t rows = std::min(chunk, n - row0);
    core::Tensor cut =
        rows == n ? front.Forward(input, false)
                  : front.Forward(core::SliceAxis0(input, row0, rows), false);
    const std::int64_t seq = next_seq_++;
    workers_[w].pending.insert(seq);
    Message frame;
    if (quant_cut) {
      frame = Message::WithQuantBatch(MsgType::kInfer, seq,
                                      plan_.pipeline_back,
                                      quant::QuantizeTensor(cut));
      // The fp32 cut staging is done with once quantized.
      core::RecycleTensor(std::move(cut));
      ++stats_.quant_cut_frames;
    } else {
      frame = Message::WithBatch(MsgType::kInfer, seq, plan_.pipeline_back,
                                 std::move(cut));
    }
    group.push_back(std::move(frame));
    group_fl.push_back({seq, row0, rows});
    if (group.size() >= group_max || row0 + rows >= n) {
      if (auto st = flush_group(); !st.ok()) {
        abandon_inflight();
        return st;
      }
    }
    while (inflight.size() >= window) {
      if (auto st2 = await_oldest(); !st2.ok()) {
        // Unsent group frames must not leave their seqs pending either.
        for (Message& f : group) RecycleMessage(std::move(f));
        for (const InFlight& fl : group_fl) workers_[w].pending.erase(fl.seq);
        abandon_inflight();
        return st2;
      }
    }
  }
  while (!inflight.empty()) {
    if (auto st2 = await_oldest(); !st2.ok()) {
      abandon_inflight();
      return st2;
    }
  }
  FLUID_CHECK_MSG(filled == n, "pipeline batch: rows lost");

  out.served_by.push_back({0, n, &label_pipeline_});
  stats_.served_pipeline += n;
  return out;
}

core::StatusOr<MasterNode::BatchResult> MasterNode::ServeShardedLocked(
    const core::Tensor& input, Clock::time_point deadline,
    const BatchScheduler::WorkChunk* slo, std::uint64_t trace_parent) {
  const std::int64_t n = input.shape()[0];

  // HighThroughput fan-out (and the failover target for every other path):
  // shard the batch across the master's resident slice and every live
  // worker that hosts the worker-resident slice.
  struct Target {
    bool remote;
    std::size_t worker;
  };
  // Per-request bookkeeping reuses per-thread storage: the serve path runs
  // under mu_, but each client thread may drive it inline (scheduler off),
  // so thread_local rather than a member keeps it race-free for free.
  thread_local std::vector<Target> targets;
  targets.clear();
  const bool has_local = !plan_.master_standalone.empty() &&
                         local_.count(plan_.master_standalone) != 0;
  if (has_local) targets.push_back({false, 0});
  if (!plan_.worker_standalone.empty()) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].alive &&
          WorkerHasDeploymentLocked(w, plan_.worker_standalone)) {
        targets.push_back({true, w});
      }
    }
  }
  if (targets.empty()) {
    return core::Status::Unavailable(
        "master: no live deployment can serve (plan empty or every device "
        "dead)");
  }

  // Contiguous shards, one per target, rotated so a stream of small
  // batches still round-robins the fleet. Remote shards ship first so the
  // workers compute while the master serves its own shard.
  struct Shard {
    std::int64_t row0 = 0;
    std::int64_t rows = 0;
    Target target{false, 0};
    std::int64_t seq = 0;
    bool sent = false;
    bool done = false;
    core::Status error = core::Status::Ok();
  };
  const std::size_t start = round_robin_++;
  const std::size_t num_shards =
      std::min(targets.size(), static_cast<std::size_t>(n));
  thread_local std::vector<Shard> shards;
  shards.clear();
  shards.resize(num_shards);
  {
    const std::int64_t base = n / static_cast<std::int64_t>(num_shards);
    const std::int64_t rem = n % static_cast<std::int64_t>(num_shards);
    std::int64_t row = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      shards[s].row0 = row;
      shards[s].rows = base + (static_cast<std::int64_t>(s) < rem ? 1 : 0);
      shards[s].target = targets[(start + s) % targets.size()];
      row += shards[s].rows;
    }
  }
  // An owning copy for the wire (Message moves its payload); local
  // forwards below take `input` by const ref instead — no copy. Pooled:
  // the frame encode consumes it and recycles the storage.
  auto shard_input = [&](const Shard& shard) {
    return shard.rows == n ? core::AcquireTensorCopy(input)
                           : core::SliceAxis0(input, shard.row0, shard.rows);
  };
  auto local_forward = [&](const Shard& shard) {
    nn::Sequential& model = local_[plan_.master_standalone];
    return shard.rows == n
               ? model.Forward(input, false)
               : model.Forward(core::SliceAxis0(input, shard.row0, shard.rows),
                               false);
  };

  BatchResult out;
  out.served_by.reserve(num_shards);
  // Pooled: every shard either places its rows or the whole batch errors
  // out before `out` escapes, so no row is ever read unwritten.
  out.logits = core::AcquireTensor({n, config_.num_classes});
  // False when `logits` doesn't hold exactly shard.rows rows of the
  // config's class count — the caller must treat that as a malformed
  // result and fail the shard over. Copying unchecked would let a
  // byzantine reply with the right row count but larger trailing dims
  // write past the end of out.logits; sizing against the config (not the
  // first reply) keeps one bad peer from poisoning the whole batch's
  // validation. On success the shard's attribution range is recorded —
  // one range pointing at a cached label per shard: no string is built
  // anywhere on this path.
  auto place = [&](const Shard& shard, const core::Tensor& logits,
                   const std::string& served_by) -> bool {
    const std::int64_t classes = config_.num_classes;
    if (logits.numel() != shard.rows * classes) return false;
    const auto src = logits.data();
    std::copy(src.begin(), src.end(),
              out.logits.data().begin() + shard.row0 * classes);
    out.served_by.push_back({shard.row0, shard.rows, &served_by});
    return true;
  };

  // Phase 1: ship every remote shard (no waiting).
  for (auto& shard : shards) {
    if (!shard.target.remote) continue;
    const std::size_t w = shard.target.worker;
    if (!workers_[w].alive) {
      shard.error = core::Status::Unavailable(
          "worker[" + std::to_string(w) + "] died earlier this batch");
      continue;
    }
    if (RemainingMs(deadline).count() == 0) {
      // The caller's budget is spent: attempting an RPC now would time out
      // instantly and wrongly condemn a healthy worker.
      shard.error = core::Status::DeadlineExceeded(
          "master: Infer deadline exhausted before a remote could serve");
      continue;
    }
    shard.seq = next_seq_++;
    workers_[w].pending.insert(shard.seq);
    // The negotiated wire format of this worker's input shards: a
    // deployment ACKed with int8_input_wire speaks wire v5, so the shard
    // quantizes per-frame (absmax) and crosses the link at 4× fewer
    // bytes — the HT fan-out's dominant wire cost. Workers without the
    // option keep receiving fp32 v2 frames, byte-identical to before.
    const Deployment* dep = FindDeploymentLocked(w, plan_.worker_standalone);
    Message frame;
    if (dep != nullptr && dep->quant.int8_input_wire) {
      quant::QuantizedTensor q;
      if (shard.rows == n) {
        q = quant::QuantizeTensor(input);  // whole batch: no staging copy
      } else {
        core::Tensor slice = core::SliceAxis0(input, shard.row0, shard.rows);
        q = quant::QuantizeTensor(slice);
        core::RecycleTensor(std::move(slice));
      }
      frame = Message::WithQuantInput(MsgType::kInfer, shard.seq,
                                      plan_.worker_standalone, std::move(q));
      ++stats_.quant_input_frames;
    } else {
      frame = Message::WithBatch(MsgType::kInfer, shard.seq,
                                 plan_.worker_standalone,
                                 shard_input(shard));
    }
    if (slo != nullptr) {
      // Serving a scheduler chunk: the frame carries the chunk's most
      // urgent class + remaining budget (wire v4) for per-class
      // accounting on the worker, and — on links negotiated for wire v6
      // — the trace block the worker echoes with its service duration.
      frame.SetSlo(static_cast<std::uint8_t>(slo->top),
                   RemainingMs(slo->urgent_deadline).count());
      if (slo->trace_id != 0 && workers_[w].trace_wire) {
        frame.SetTrace(slo->trace_id,
                       trace_parent != 0 ? trace_parent : slo->trace_parent,
                       obs::NowUs());
      }
    }
    auto st = SendLocked(w, frame);
    RecycleMessage(std::move(frame));
    if (!st.ok()) {
      shard.error = st;
      continue;
    }
    shard.sent = true;
  }

  // Erroring out of the batch before phase 3 has awaited the shards that
  // phase 1 shipped must deregister their seqs, or the replies would be
  // parked in the reply buffer with no awaiter, forever; deregistered,
  // late replies hit the bounded, logged stale-drop path instead.
  auto abandon_sent = [&] {
    for (const auto& shard : shards) {
      if (!shard.sent || shard.done) continue;
      workers_[shard.target.worker].pending.erase(shard.seq);
      workers_[shard.target.worker].reply_buffer.erase(shard.seq);
    }
  };

  // Phase 2: the master's own shard(s) compute while workers run theirs.
  // A local mismatch means the deployed local model's head disagrees with
  // the config — a deployment bug, not something failover can mend.
  for (auto& shard : shards) {
    if (shard.target.remote) continue;
    core::Tensor logits = local_forward(shard);
    if (!place(shard, logits, label_local_)) {
      abandon_sent();
      return core::Status::Internal(
          "master: local logits disagree with config num_classes");
    }
    core::RecycleTensor(std::move(logits));
    stats_.served_local += shard.rows;
    shard.done = true;
  }

  // Phase 3: collect remote shard results.
  for (auto& shard : shards) {
    if (!shard.sent) continue;
    const std::size_t w = shard.target.worker;
    auto reply = AwaitReplyLocked(w, shard.seq, deadline);
    if (!reply.ok()) {
      shard.error = reply.status();
      continue;
    }
    if (!WellFormedResult(*reply, shard.rows)) {
      shard.error = core::Status::Internal(
          "worker[" + std::to_string(w) + "]" +
          (reply->type == MsgType::kError
               ? " failed '" + plan_.worker_standalone + "': " + reply->tag
               : ": malformed result"));
      continue;
    }
    if (!place(shard, reply->payload, label_worker_[w])) {
      shard.error = core::Status::Internal(
          "worker[" + std::to_string(w) + "]: result size mismatch");
      continue;
    }
    RecordWireReply(*reply, wire_ms_[static_cast<std::size_t>(
                                slo != nullptr ? slo->top : Priority::kNormal)]);
    RecycleMessage(std::move(*reply));
    stats_.served_remote += shard.rows;
    shard.done = true;
  }

  // Phase 4: failover — re-serve each failed shard whole, local slice
  // first, then the surviving workers (paper Fig. 1b: no request dropped).
  core::Status last = core::Status::Ok();
  for (auto& shard : shards) {
    if (shard.done) continue;
    ++stats_.failovers;
    last = shard.error;
    FLUID_LOG(Warn) << "master: shard [" << shard.row0 << ", "
                    << shard.row0 + shard.rows << ") failed ("
                    << shard.error.ToString() << "), re-serving";
    if (has_local) {
      core::Tensor logits = local_forward(shard);
      if (!place(shard, logits, label_local_)) {
        abandon_sent();  // no-op unless phase 3 was skipped
        return core::Status::Internal(
            "master: local logits disagree with config num_classes");
      }
      core::RecycleTensor(std::move(logits));
      stats_.served_local += shard.rows;
      shard.done = true;
      continue;
    }
    for (std::size_t w = 0; w < workers_.size() && !shard.done; ++w) {
      if (!workers_[w].alive ||
          !WorkerHasDeploymentLocked(w, plan_.worker_standalone)) {
        continue;
      }
      if (RemainingMs(deadline).count() == 0) {
        last = core::Status::DeadlineExceeded(
            "master: Infer deadline exhausted before a remote could serve");
        continue;
      }
      auto retried = ServeShardRemoteLocked(w, plan_.worker_standalone,
                                            shard_input(shard), deadline);
      if (!retried.ok()) {
        last = retried.status();
        continue;
      }
      if (!place(shard, *retried, label_worker_[w])) {
        last = core::Status::Internal(
            "worker[" + std::to_string(w) + "]: result size mismatch");
        continue;
      }
      core::RecycleTensor(std::move(*retried));
      stats_.served_remote += shard.rows;
      shard.done = true;
    }
    if (!shard.done) {
      return last.ok() ? core::Status::Unavailable(
                             "master: no live deployment could re-serve a "
                             "failed shard")
                       : last;
    }
  }
  // Ranges were recorded in completion order (local shards, then remote
  // replies, then failovers); the scatter walks them by row.
  std::sort(out.served_by.begin(), out.served_by.end(),
            [](const Attribution& a, const Attribution& b) {
              return a.row0 < b.row0;
            });
  return out;
}

core::StatusOr<core::Tensor> MasterNode::ServeShardRemoteLocked(
    std::size_t w, const std::string& name, core::Tensor shard,
    Clock::time_point deadline) {
  const std::int64_t rows = shard.shape()[0];
  auto reply = RpcLocked(
      w, Message::WithBatch(MsgType::kInfer, 0, name, std::move(shard)),
      RemainingMs(deadline));
  if (!reply.ok()) return reply.status();
  if (!WellFormedResult(*reply, rows)) {
    return core::Status::Internal(
        "worker[" + std::to_string(w) + "]" +
        (reply->type == MsgType::kError ? " failed '" + name + "': " + reply->tag
                                        : ": malformed result"));
  }
  return std::move(reply->payload);
}

bool MasterNode::WorkerHasDeploymentLocked(std::size_t w,
                                           const std::string& name) const {
  return FindDeploymentLocked(w, name) != nullptr;
}

const MasterNode::Deployment* MasterNode::FindDeploymentLocked(
    std::size_t w, const std::string& name) const {
  const auto& deployments = workers_[w].deployments;
  const auto it =
      std::find_if(deployments.begin(), deployments.end(),
                   [&](const auto& d) { return d.name == name; });
  return it != deployments.end() ? &*it : nullptr;
}

void MasterNode::MarkDeadLocked(std::size_t w, const core::Status& why) {
  if (!workers_[w].alive) return;
  workers_[w].alive = false;
  alive_count_.fetch_sub(1, std::memory_order_relaxed);
  workers_[w].pending.clear();
  workers_[w].reply_buffer.clear();
  FLUID_LOG(Warn) << "master: worker[" << w << "] ("
                  << workers_[w].transport->Describe()
                  << ") marked dead: " << why.ToString();
}

core::Status MasterNode::SendLocked(std::size_t w, const Message& msg) {
  auto st = workers_[w].transport->Send(msg);
  if (!st.ok()) MarkDeadLocked(w, st);
  return st;
}

core::Status MasterNode::SendBatchLocked(std::size_t w,
                                         std::span<const Message> msgs) {
  auto st = workers_[w].transport->SendBatch(msgs);
  if (!st.ok()) MarkDeadLocked(w, st);
  return st;
}

core::StatusOr<Message> MasterNode::RpcLocked(std::size_t w, Message msg,
                                              std::chrono::milliseconds timeout) {
  auto& handle = workers_[w];
  if (!handle.alive) {
    return core::Status::Unavailable("worker[" + std::to_string(w) + "] dead");
  }
  const auto deadline = Clock::now() + timeout;
  const std::int64_t seq = next_seq_++;
  msg.seq = seq;
  handle.pending.insert(seq);
  auto st = handle.transport->Send(msg);
  // The frame is on the wire; its bulk payloads (e.g. a failover shard's
  // activations) cycle back to the pool before the reply wait.
  RecycleMessage(std::move(msg));
  if (!st.ok()) {
    MarkDeadLocked(w, st);
    return st;
  }
  return AwaitReplyLocked(w, seq, deadline);
}

core::StatusOr<Message> MasterNode::AwaitReplyLocked(
    std::size_t w, std::int64_t seq, Clock::time_point deadline) {
  WorkerHandle& handle = workers_[w];
  // A windowed peer may already have delivered it out of order.
  if (const auto it = handle.reply_buffer.find(seq);
      it != handle.reply_buffer.end()) {
    Message reply = std::move(it->second);
    handle.reply_buffer.erase(it);
    handle.pending.erase(seq);
    return reply;
  }
  if (!handle.alive) {
    return core::Status::Unavailable("worker[" + std::to_string(w) + "] dead");
  }
  for (;;) {
    Message reply;
    const auto wait = RemainingMs(deadline);
    auto st = handle.transport->Recv(reply, wait);
    if (!st.ok()) {
      if (st.code() == core::StatusCode::kDeadlineExceeded &&
          wait.count() == 0) {
        // The shared batch budget was spent before this reply got any
        // window (an earlier shard consumed it): fail the shard over, but
        // don't condemn a worker that never had a chance to answer.
        // Deregistering the seq routes its late reply to the counted
        // stale-drop path.
        handle.pending.erase(seq);
        handle.reply_buffer.erase(seq);
        return core::Status::DeadlineExceeded(
            "master: deadline exhausted before worker[" + std::to_string(w) +
            "]'s reply could be awaited");
      }
      // An in-window timeout, peer death and stream corruption all mean
      // this worker cannot be trusted to answer: fail over rather than
      // wait.
      MarkDeadLocked(w, st);
      return st;
    }
    if (reply.type == MsgType::kHello) {
      handle.name = reply.tag;
      continue;
    }
    if (reply.seq == seq) {
      handle.pending.erase(seq);
      return reply;
    }
    if (handle.pending.count(reply.seq) != 0) {
      // A reply for another in-flight RPC on this link: park it for its
      // awaiter instead of discarding it.
      handle.reply_buffer[reply.seq] = std::move(reply);
      continue;
    }
    // Correlation id matches nothing we sent (or an RPC long abandoned):
    // drop it loudly rather than mis-deliver.
    ++stats_.stale_replies;
    FLUID_LOG(Warn)
            .With("event", "stale_reply")
            .With("worker", w)
            .With("seq", reply.seq)
            .With("type", MsgTypeName(reply.type))
        << "master: dropping stale reply";
  }
}

std::size_t MasterNode::ProbeWorkers(std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t alive = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].alive) continue;
    auto reply =
        RpcLocked(w, Message::HeaderOnly(MsgType::kHeartbeat, 0), timeout);
    if (!reply.ok()) continue;  // RpcLocked already marked it dead
    if (reply->type != MsgType::kAck) {
      MarkDeadLocked(w, core::Status::Internal(
                            "heartbeat answered with " +
                            std::string(MsgTypeName(reply->type))));
      continue;
    }
    ++alive;
  }
  return alive;
}

}  // namespace fluid::dist
