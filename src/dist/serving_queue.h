#pragma once
// BatchScheduler: the async request queue in front of MasterNode.
//
// The compute layer is batch-native (one fused [Cout, batch·area] GEMM per
// conv stage), but a request arrives one tensor at a time. The scheduler
// closes that gap: callers Submit() from any thread and get a future; a
// single drain thread pops the bounded MPSC queue, coalesces waiting
// requests into one batch tensor (up to `max_batch` samples, waiting at
// most `max_delay` for stragglers once the first request is in hand), and
// hands the batch to a serve callback — MasterNode::ServeBatch — which
// routes the fused batch and scatters per-sample logits back to each
// request's promise. This is the request-coalescing lever batched serving
// systems (cf. NeuPIMs' batched scheduling) treat as the core throughput
// knob; here it is what lets PR 3's fused conv-GEMM reach the wire.
//
// Contract with the serve callback: it receives ownership of the requests
// and MUST resolve every promise (success or Status) — the scheduler never
// touches a request again after handing it over. The scheduler itself
// resolves promises only for requests still queued at Stop().

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/tensor.h"

namespace fluid::dist {

/// One answered inference request.
struct InferReply {
  core::Tensor logits;
  std::string served_by;  // e.g. "master:lower50", "worker[1]:upper50"
};

/// Knobs of the coalescing policy and the HA pipeline schedule.
struct BatchOptions {
  /// Coalesce at most this many samples into one fused batch.
  std::size_t max_batch = 16;
  /// Once the first request of a batch is in hand, wait at most this long
  /// for more before serving what we have.
  std::chrono::milliseconds max_delay{2};
  /// Bound on queued samples; Submit blocks (backpressure) when reached.
  std::size_t queue_capacity = 1024;
  /// HighAccuracy pipeline: samples per cut-activation frame. Smaller
  /// chunks overlap more front compute with the link at more per-frame
  /// overhead.
  std::size_t ha_chunk = 8;
  /// HighAccuracy pipeline: cut-activation frames in flight on the link
  /// before the sender waits for a result. 1 = store-and-forward.
  std::size_t ha_window = 2;
};

/// Counters the control plane consumes (ModeController backlog signal).
struct SchedulerStats {
  std::int64_t submitted = 0;         // requests ever accepted
  std::int64_t batches = 0;           // coalesced batches handed to serve
  std::int64_t coalesced_samples = 0; // samples across those batches
  std::int64_t max_batch_seen = 0;
  std::int64_t queue_depth = 0;       // samples waiting right now
  /// Lifetime mean samples per served batch (0 before the first batch).
  double avg_batch = 0.0;
  /// How full the coalesced batches run *lately*, in [0, 1]: an
  /// exponential moving average of batch size over max_batch, so the
  /// saturation signal tracks a traffic shift within a few batches
  /// instead of being diluted by hours of history. ~1 with a standing
  /// queue means the serving path is saturated.
  double occupancy = 0.0;
};

class BatchScheduler {
 public:
  struct Request {
    core::Tensor input;        // [n, C, S, S]; n >= 1
    std::int64_t samples = 0;  // input.shape()[0]
    std::chrono::steady_clock::time_point deadline;
    std::promise<core::StatusOr<InferReply>> promise;
  };
  /// Receives ownership of a coalesced batch's requests; must resolve
  /// every promise. The vector itself stays with the drain loop (passed by
  /// reference so one batch vector is recycled across batches); the
  /// callback may move individual requests out but must not hold the
  /// vector past its return.
  using ServeFn = std::function<void(std::vector<Request>&)>;

  BatchScheduler(BatchOptions options, ServeFn serve);
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueue one input ([n, C, S, S]) from any thread. Blocks only on
  /// backpressure (queue at capacity), and never past the request's own
  /// `timeout` — a queue still full then fails it kDeadlineExceeded. The
  /// future resolves when the batch containing this request is served, or
  /// with kUnavailable at Stop().
  std::future<core::StatusOr<InferReply>> Submit(
      core::Tensor input, std::chrono::milliseconds timeout);

  /// Stop the drain thread and fail everything still queued. Idempotent.
  void Stop();

  bool running() const { return running_; }
  SchedulerStats stats() const;
  const BatchOptions& options() const { return options_; }

 private:
  void DrainLoop();

  BatchOptions options_;
  ServeFn serve_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue became non-empty / stopped
  std::condition_variable space_cv_;  // queue has room again
  std::deque<Request> queue_;
  std::int64_t queued_samples_ = 0;
  bool stop_ = false;
  std::atomic<bool> running_{false};

  // Stats (guarded by mu_).
  std::int64_t submitted_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t coalesced_samples_ = 0;
  std::int64_t max_batch_seen_ = 0;
  double ema_batch_ = 0.0;  // recent batch size; seeds on the first batch

  std::thread thread_;
};

}  // namespace fluid::dist
