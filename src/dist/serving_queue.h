#pragma once
// BatchScheduler: the continuous, SLO-aware request pool in front of
// MasterNode.
//
// Serving used to coalesce one batch, hand it to a serve callback, and
// only admit the next batch when the whole thing completed — so a
// straggler shard or a long HighAccuracy pipeline stalled everything
// queued behind it. The scheduler is now iteration-level (Orca-style,
// cf. NeuPIMs' ready/running queues and `max_active_reqs`): requests are
// admitted into a bounded active pool, and the serve side repeatedly asks
// for the next *chunk* of work — up to `ha_chunk` samples in the HA
// pipeline, up to `max_batch` in the fan-out — assembled across requests
// by priority class (strict) and deadline (earliest first within a
// class). New arrivals splice in at the next chunk boundary instead of
// behind the batch ahead; an expiring high-class request preempts queued
// lower-class work at chunk granularity.
//
// Request lifecycle:
//
//   Submit ──admission (max_active_reqs, queue_capacity, backpressure
//            bounded by the request's own timeout)──▶ READY (per-class,
//   deadline-ordered) ──first chunk──▶ RUNNING (rows move chunk by
//   chunk; a multi-sample request may span several in-flight chunks)
//   ──all rows resolved──▶ promise resolves (late completion still
//   delivers, counted as a deadline miss; a request that expires while
//   still READY fails kDeadlineExceeded instead of wasting compute).
//
// Contract with the serve callback: it runs on the drain thread and pulls
// work via NextChunk(); for every chunk it takes it must eventually call
// CompleteRows/CompleteChunk (success) or FailChunk (failure) for every
// row, before returning. Rows it leaves unresolved are failed by Stop().
// The scheduler owns the requests throughout — the callback only ever
// sees slices and resolves them.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/tensor.h"

namespace fluid::obs {
class Histogram;
}  // namespace fluid::obs

namespace fluid::dist {

/// One answered inference request.
struct InferReply {
  core::Tensor logits;
  std::string served_by;  // e.g. "master:lower50", "worker[1]:upper50"
};

/// Scheduling class of a request. Lower value = more urgent. The
/// scheduler serves strictly by class and earliest-deadline-first within
/// a class; the class also rides the wire (v4 SLO block) so workers can
/// account per class.
enum class Priority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};
inline constexpr std::size_t kNumPriorityClasses = 3;

/// Stable name of a priority class (logs, bench JSON).
std::string_view PriorityName(Priority p);

/// Per-request submission knobs (InferAsync defaults to kNormal).
struct SubmitOptions {
  /// Budget: admission backpressure, queueing and service all count
  /// against it. The deadline is submit time + timeout.
  std::chrono::milliseconds timeout{5000};
  Priority priority = Priority::kNormal;
  /// Distributed-tracing context (obs/trace.h). 0 = untraced (the
  /// sampled-out common case); a nonzero id makes the scheduler record
  /// admission/ready-wait/chunk/request spans under it, parented to
  /// trace_parent (the submitter's span, e.g. router.dispatch).
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent = 0;
};

/// Knobs of the admission/scheduling policy and the HA pipeline schedule.
struct BatchOptions {
  /// Assemble at most this many samples into one fan-out chunk.
  std::size_t max_batch = 16;
  /// Straggler window: when a blocking chunk grab finds fewer rows than it
  /// could take, wait at most this long for more before serving.
  std::chrono::milliseconds max_delay{2};
  /// Bound on backlog samples (rows not yet handed to any chunk); Submit
  /// blocks (backpressure) when reached.
  std::size_t queue_capacity = 1024;
  /// Bound on requests in the active pool (ready + running) — the
  /// admission-control knob of iteration-level schedulers. Submit blocks
  /// until a slot frees, up to the request's own timeout.
  std::size_t max_active_reqs = 256;
  /// HighAccuracy pipeline: samples per cut-activation frame — the
  /// scheduling quantum. Smaller chunks overlap more front compute with
  /// the link and let arrivals/preemption cut in sooner, at more
  /// per-frame overhead.
  std::size_t ha_chunk = 8;
  /// HighAccuracy pipeline: cut-activation frames in flight on the link
  /// before the sender waits for a result. 1 = store-and-forward.
  std::size_t ha_window = 2;
};

/// Lock-free load mirror for dispatchers (the fleet router's least-loaded
/// policy probes this on every route). Published from relaxed atomics that
/// the scheduler updates wherever the locked counters change, so reading
/// it never contends with admission or chunk assembly.
struct SchedulerLoad {
  std::int64_t active_requests = 0;  // ready + running
  std::int64_t queue_depth = 0;      // backlog rows not yet in any chunk
  std::int64_t deadline_misses = 0;  // lifetime
  std::int64_t completed = 0;        // lifetime
  std::int64_t max_active_reqs = 0;  // the admission bound (static)
  double occupancy = 0.0;            // EMA active/max_active, [0, 1]
  /// False when a Submit right now would block on admission backpressure
  /// (active pool or backlog at its bound). Approximate by construction —
  /// a racing admission can flip it — but that is all a router needs.
  bool admission_open = true;
};

/// Counters the control plane consumes. Occupancy is now defined over the
/// *active pool* (continuous admission has no per-coalesce "batch size"
/// worth averaging): how full the ready+running pool runs against
/// max_active_reqs.
struct SchedulerStats {
  std::int64_t submitted = 0;   // requests ever admitted
  std::int64_t completed = 0;   // requests resolved (delivered or failed)
  std::int64_t batches = 0;     // chunks handed to the serve side
  std::int64_t coalesced_samples = 0;  // rows across those chunks
  std::int64_t queue_depth = 0;        // backlog rows not yet in any chunk
  std::int64_t active_requests = 0;    // ready + running right now
  std::int64_t running_requests = 0;   // requests with rows in service
  std::int64_t max_active_seen = 0;    // high-water mark of active_requests
  /// Lifetime mean rows per chunk (0 before the first chunk).
  double avg_batch = 0.0;
  /// Exponential moving average of active_requests / max_active_reqs,
  /// sampled at each chunk assembly, in [0, 1]. ~1 with a standing
  /// backlog means admission control is the limiter — the serving path
  /// is saturated.
  double occupancy = 0.0;
  /// Requests that blew their deadline: expired while READY (failed
  /// without service) or delivered late (served anyway — serving late
  /// beats dropping — but the SLO was missed).
  std::int64_t deadline_misses = 0;
  /// Chunk assemblies that filled entirely with higher-class rows while
  /// lower-class work waited — the count of preemptive scheduling
  /// decisions at chunk granularity.
  std::int64_t preemptions = 0;
  /// Per-class admissions and current active-pool occupancy.
  std::int64_t class_submitted[kNumPriorityClasses] = {0, 0, 0};
  std::int64_t class_active[kNumPriorityClasses] = {0, 0, 0};
};

class BatchScheduler {
 public:
  /// One admitted request in the pool. The serve side sees requests only
  /// through Slice pointers; `input` is immutable after admission and
  /// stays valid until every row is resolved.
  struct Request {
    core::Tensor input;        // [n, C, S, S]; n >= 1
    std::int64_t samples = 0;  // input.shape()[0]
    Priority priority = Priority::kNormal;
    std::chrono::steady_clock::time_point deadline;
    std::promise<core::StatusOr<InferReply>> promise;

    // Observability (obs/): trace context from SubmitOptions plus the
    // lifecycle timestamps (steady-clock µs) behind the latency
    // breakdown — submit→admit (admission), admit→first chunk (READY
    // wait / queue wait), first chunk→finalize (service).
    std::uint64_t trace_id = 0;
    std::uint64_t trace_parent = 0;
    std::int64_t submit_us = 0;
    std::int64_t admit_us = 0;
    std::int64_t first_us = 0;  // 0 until the first chunk takes rows

    // Scheduling/serve progress — touched only under the scheduler lock.
    std::int64_t scheduled_rows = 0;  // rows handed out in chunks
    std::int64_t resolved_rows = 0;   // rows completed or failed
    core::Tensor logits;              // [n, classes]; grows on first completion
    std::string served_by;            // device that served row 0
    bool failed = false;
    core::Status error = core::Status::Ok();
    std::list<Request>::iterator self;  // position in its ready/running list
  };

  /// A contiguous run of one request's rows inside a chunk.
  struct Slice {
    Request* req = nullptr;
    std::int64_t row0 = 0;  // first row of req->input this slice covers
    std::int64_t rows = 0;
  };

  /// One scheduling quantum: slices from one or more requests, assembled
  /// by class then deadline. `slices` is recycled across grabs (clear()
  /// keeps capacity).
  struct WorkChunk {
    std::vector<Slice> slices;
    std::int64_t rows = 0;
    /// Most urgent class present (rides the wire SLO block).
    Priority top = Priority::kLow;
    /// Max deadline across slices: the chunk serves under its most
    /// patient member's budget (serving late beats dropping).
    std::chrono::steady_clock::time_point deadline;
    /// Min deadline across slices: the tightest remaining budget (what
    /// the wire SLO block advertises).
    std::chrono::steady_clock::time_point urgent_deadline;
    /// Trace context of the first traced slice (0 when none): the serve
    /// side stamps wire frames and records master.chunk spans under it.
    std::uint64_t trace_id = 0;
    std::uint64_t trace_parent = 0;
  };

  /// Serve callback: runs on the drain thread whenever the pool has
  /// schedulable work; pulls chunks until NextChunk returns false.
  using ServeFn = std::function<void(BatchScheduler&)>;

  BatchScheduler(BatchOptions options, ServeFn serve);
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueue one input ([n, C, S, S]) from any thread at kNormal priority.
  std::future<core::StatusOr<InferReply>> Submit(
      core::Tensor input, std::chrono::milliseconds timeout);

  /// Enqueue with explicit priority/timeout. Blocks only on admission
  /// backpressure (active pool at max_active_reqs, or backlog at
  /// queue_capacity), and never past the request's own timeout — no slot
  /// by then fails it kDeadlineExceeded. The future resolves when every
  /// row of this request has been served (or failed), or with
  /// kUnavailable at Stop().
  std::future<core::StatusOr<InferReply>> Submit(core::Tensor input,
                                                 const SubmitOptions& opts);

  /// Stop the drain thread and fail everything still unresolved.
  /// Idempotent.
  void Stop();

  bool running() const { return running_; }
  SchedulerStats stats() const;
  /// Lock-free load snapshot (relaxed atomics only — never touches mu_).
  SchedulerLoad load() const;
  const BatchOptions& options() const { return options_; }

  // ---- Serve-side API: call only from the serve callback's thread. ----

  /// Assemble the next chunk of up to `max_samples` rows. Waits up to
  /// `wait` for schedulable work; a positive `wait` also grants the
  /// max_delay straggler window when fewer rows than `max_samples` are
  /// on hand (wait == 0 is the non-blocking window-refill grab). Expired
  /// READY requests are failed (and counted) here, at the chunk boundary.
  /// Returns false when nothing is schedulable (or stopping) — never an
  /// empty chunk.
  bool NextChunk(std::size_t max_samples, std::chrono::milliseconds wait,
                 WorkChunk& chunk);

  /// Resolve `rows` rows of `slice` starting at `offset` (slice-relative)
  /// with `logits` (row-major, `classes` floats per row). Records
  /// `served_by` when the request's first row resolves; resolves the
  /// promise when the request's last row does.
  void CompleteRows(const Slice& slice, std::int64_t offset,
                    std::int64_t rows, const float* logits,
                    std::int64_t classes, const std::string& served_by);

  /// Resolve a whole chunk from one contiguous result tensor
  /// ([chunk.rows, classes], rows in slice order).
  void CompleteChunk(const WorkChunk& chunk, const core::Tensor& logits,
                     const std::string& served_by);

  /// Fail every row of the chunk (after failover exhausted). A request
  /// with any failed row fails as a whole once its last row resolves.
  void FailChunk(const WorkChunk& chunk, const core::Status& status);

 private:
  void DrainLoop();
  /// Fail + finalize every request still in the pool (ready or running).
  void FailPoolLocked(const core::Status& status);
  void ExpireReadyLocked(std::chrono::steady_clock::time_point now);
  void AssembleLocked(std::size_t max_samples, WorkChunk& chunk);
  void ResolveRowsLocked(Request* req, std::int64_t row0, std::int64_t rows,
                         const float* logits, std::int64_t classes,
                         const std::string& served_by);
  void FinalizeLocked(Request* req);
  bool HasBacklogLocked() const { return backlog_rows_ > 0; }
  std::int64_t ActiveRequestsLocked() const;
  /// Mirror the locked load counters into the relaxed atomics load()
  /// reads. Called at the end of every locked region that moved them.
  void PublishLoadLocked();

  BatchOptions options_;
  ServeFn serve_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // backlog became non-empty / stopped
  std::condition_variable space_cv_;  // admission has room again
  /// READY requests per class, ordered by deadline (EDF insert).
  std::list<Request> ready_[kNumPriorityClasses];
  /// Requests with at least one row handed to a chunk, until resolved.
  std::list<Request> service_;
  std::int64_t backlog_rows_ = 0;  // rows not yet assembled into any chunk
  bool stop_ = false;
  std::atomic<bool> running_{false};

  // Stats (guarded by mu_).
  std::int64_t submitted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t coalesced_samples_ = 0;
  std::int64_t active_requests_ = 0;  // ready + running
  std::int64_t max_active_seen_ = 0;
  std::int64_t deadline_misses_ = 0;
  std::int64_t preemptions_ = 0;
  std::int64_t class_submitted_[kNumPriorityClasses] = {0, 0, 0};
  std::int64_t class_active_[kNumPriorityClasses] = {0, 0, 0};
  double ema_occupancy_ = 0.0;  // seeds on the first chunk
  bool ema_seeded_ = false;

  // Always-on latency-breakdown histograms (obs/metrics.h), one pair per
  // priority class: queue wait (submit→first chunk) and service (first
  // chunk→finalize). Cached at construction; recording is lock-free.
  obs::Histogram* queue_wait_ms_[kNumPriorityClasses] = {};
  obs::Histogram* service_ms_[kNumPriorityClasses] = {};

  // Lock-free mirrors of the load-relevant counters above, stored
  // (relaxed) by PublishLoadLocked and read by load() without mu_.
  std::atomic<std::int64_t> load_active_{0};
  std::atomic<std::int64_t> load_backlog_{0};
  std::atomic<std::int64_t> load_misses_{0};
  std::atomic<std::int64_t> load_completed_{0};
  std::atomic<double> load_occupancy_{0.0};

  std::thread thread_;
};

}  // namespace fluid::dist
