#include "dist/mode_controller.h"

#include <algorithm>

#include "core/error.h"

namespace fluid::dist {

ModeController::ModeController(double ha_capacity, double ht_capacity,
                               double hysteresis)
    : ha_capacity_(ha_capacity),
      ht_capacity_(ht_capacity),
      hysteresis_(hysteresis) {
  FLUID_CHECK_MSG(ha_capacity > 0 && ht_capacity > 0,
                  "ModeController: capacities must be positive");
  FLUID_CHECK_MSG(hysteresis >= 0 && hysteresis < 1,
                  "ModeController: hysteresis must be in [0, 1)");
}

sim::Mode ModeController::Decide(const DemandSignal& signal) {
  double effective = signal.demand;
  if (signal.queue_depth > 0 &&
      signal.pool_occupancy >= kSaturatedOccupancy) {
    effective = std::max(
        effective, ha_capacity_ * (1.0 + kBacklogGain * signal.queue_depth));
  }
  if (signal.deadline_miss_rate > kMissRateAlarm) {
    // Requests are provably missing their SLOs: lift effective demand past
    // the HA operating point (scaled by how hard they miss) so the scalar
    // policy flips to the faster fan-out if one exists. The high-class
    // share sharpens the response — misses while urgent work dominates
    // the pool are the worst case the paper's adaptation targets.
    const double pressure =
        1.0 + signal.deadline_miss_rate + signal.high_class_share;
    effective = std::max(effective, ha_capacity_ * pressure);
  }
  return Decide(effective);
}

sim::Mode ModeController::Decide(double demand) {
  if (mode_ == sim::Mode::kHighAccuracy) {
    // Flip only when HT actually adds headroom: on a deployment where the
    // fan-out point is no faster than the pipeline, trading accuracy for
    // nothing is never right.
    if (demand > ha_capacity_ && ht_capacity_ > ha_capacity_) {
      mode_ = sim::Mode::kHighThroughput;
      ++switches_;
    }
  } else {
    if (demand < ha_capacity_ * (1.0 - hysteresis_)) {
      mode_ = sim::Mode::kHighAccuracy;
      ++switches_;
    }
  }
  return mode_;
}

bool SurvivesFailure(sim::DnnType type, sim::Availability availability) {
  if (availability == sim::Availability::kBothOnline) return true;
  switch (type) {
    case sim::DnnType::kStatic:
      // Layer-split halves: neither classifies alone.
      return false;
    case sim::DnnType::kDynamic:
      // The master's lower slice is self-sufficient; the worker's upper
      // weights depend on the master's.
      return availability == sim::Availability::kOnlyMaster;
    case sim::DnnType::kFluid:
      // Both resident slices are self-sufficient.
      return true;
  }
  return false;
}

}  // namespace fluid::dist
