#include "dist/transport.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace fluid::dist {

namespace {

// Shared state of one connected pair. Two byte-frame queues (one per
// direction) under a single lock; each endpoint owns a "closed" flag.
// Closing either side wakes every waiter on both directions.
struct PairState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<std::uint8_t>> queue[2];  // queue[i]: frames for end i
  bool end_closed[2] = {false, false};
};

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::shared_ptr<PairState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~InMemoryTransport() override { Close(); }

  core::Status Send(const Message& msg) override {
    auto bytes = EncodeMessage(msg);
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->end_closed[side_]) {
      return core::Status::Unavailable("in-memory transport: endpoint closed");
    }
    if (state_->end_closed[1 - side_]) {
      return core::Status::Unavailable("in-memory transport: peer closed");
    }
    state_->queue[1 - side_].push_back(std::move(bytes));
    state_->cv.notify_all();
    return core::Status::Ok();
  }

  core::Status Recv(Message& out, std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    auto& inbox = state_->queue[side_];
    const bool got = state_->cv.wait_for(lock, timeout, [&] {
      return !inbox.empty() || state_->end_closed[side_] ||
             state_->end_closed[1 - side_];
    });
    // Buffered frames still deliver after the peer closed — a graceful
    // close must not drop in-flight replies.
    if (!inbox.empty()) {
      const auto bytes = std::move(inbox.front());
      inbox.pop_front();
      lock.unlock();
      return DecodeMessage(bytes, out);
    }
    if (state_->end_closed[side_] || state_->end_closed[1 - side_]) {
      return core::Status::Unavailable("in-memory transport: peer closed");
    }
    (void)got;
    return core::Status::DeadlineExceeded("in-memory transport: Recv timeout");
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->end_closed[side_] = true;
    state_->cv.notify_all();
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->end_closed[side_] ||
           (state_->end_closed[1 - side_] && state_->queue[side_].empty());
  }

  std::string Describe() const override {
    return side_ == 0 ? "mem:a" : "mem:b";
  }

 private:
  std::shared_ptr<PairState> state_;
  int side_;
};

}  // namespace

std::pair<TransportPtr, TransportPtr> MakeInMemoryPair() {
  auto state = std::make_shared<PairState>();
  return {std::make_unique<InMemoryTransport>(state, 0),
          std::make_unique<InMemoryTransport>(state, 1)};
}

}  // namespace fluid::dist
