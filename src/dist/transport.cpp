#include "dist/transport.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "core/buffer_pool.h"

namespace fluid::dist {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Shared state of one connected pair. Two byte-frame queues (one per
// direction) under a single lock; each endpoint owns a "closed" flag.
// Closing either side wakes every waiter on both directions.
// Each queued frame carries the time it becomes deliverable (`ready`):
// the plain in-memory pair delivers immediately; the emulated-link pair
// charges latency + serialisation onto a per-direction serial link.
struct PairState {
  std::mutex mu;
  std::condition_variable cv;
  struct Frame {
    std::vector<std::uint8_t> bytes;
    SteadyClock::time_point ready;
  };
  std::deque<Frame> queue[2];  // queue[i]: frames for end i
  SteadyClock::time_point link_free[2] = {};  // direction busy until
  bool end_closed[2] = {false, false};
  // Link model (zero-cost for the plain pair).
  std::chrono::duration<double> latency{0.0};
  double bandwidth_bytes_per_s = 0.0;  // <= 0: infinite
};

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::shared_ptr<PairState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~InMemoryTransport() override { Close(); }

  core::Status Send(const Message& msg) override {
    // Pooled frame buffer, encoded before taking the pair lock. The
    // matching PoolPut happens on the receiving side after decode, so a
    // steady send/recv loop cycles the same storage through the pool.
    auto bytes =
        core::PoolGet<std::uint8_t>(static_cast<std::size_t>(EncodedSize(msg)));
    EncodeMessageInto(msg, bytes);
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->end_closed[side_]) {
      return core::Status::Unavailable("in-memory transport: endpoint closed");
    }
    if (state_->end_closed[1 - side_]) {
      return core::Status::Unavailable("in-memory transport: peer closed");
    }
    // Deliverable once the direction's serial link has carried it:
    // latency head start, then the payload at the link's bandwidth,
    // queued behind whatever this direction is still transmitting.
    // Zero-cost link model: ready immediately.
    auto ready = SteadyClock::now();
    if (state_->latency.count() > 0 || state_->bandwidth_bytes_per_s > 0) {
      const int dir = 1 - side_;
      auto start = std::max(ready, state_->link_free[dir]);
      auto transfer = std::chrono::duration<double>(
          state_->bandwidth_bytes_per_s > 0
              ? static_cast<double>(bytes.size()) /
                    state_->bandwidth_bytes_per_s
              : 0.0);
      ready = start +
              std::chrono::duration_cast<SteadyClock::duration>(
                  state_->latency + transfer);
      state_->link_free[dir] =
          start + std::chrono::duration_cast<SteadyClock::duration>(transfer);
    }
    state_->queue[1 - side_].push_back({std::move(bytes), ready});
    state_->cv.notify_all();
    return core::Status::Ok();
  }

  core::Status Recv(Message& out, std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    auto& inbox = state_->queue[side_];
    const auto deadline = SteadyClock::now() + timeout;
    for (;;) {
      state_->cv.wait_until(lock, deadline, [&] {
        return !inbox.empty() || state_->end_closed[side_] ||
               state_->end_closed[1 - side_];
      });
      // Buffered frames still deliver after the peer closed — a graceful
      // close must not drop in-flight replies. A frame still "on the
      // link" (ready in the future) is not visible yet; wait for it, but
      // never past the caller's deadline.
      if (!inbox.empty()) {
        const auto now = SteadyClock::now();
        if (inbox.front().ready > now) {
          if (inbox.front().ready >= deadline) {
            if (now >= deadline) {
              return core::Status::DeadlineExceeded(
                  "in-memory transport: Recv timeout");
            }
            state_->cv.wait_until(lock, deadline, [] { return false; });
            continue;
          }
          state_->cv.wait_until(lock, inbox.front().ready, [] { return false; });
          continue;
        }
        auto bytes = std::move(inbox.front().bytes);
        inbox.pop_front();
        lock.unlock();
        const core::Status st = DecodeMessage(bytes, out);
        core::PoolPut(std::move(bytes));
        return st;
      }
      if (state_->end_closed[side_] || state_->end_closed[1 - side_]) {
        return core::Status::Unavailable("in-memory transport: peer closed");
      }
      if (SteadyClock::now() >= deadline) {
        return core::Status::DeadlineExceeded(
            "in-memory transport: Recv timeout");
      }
    }
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->end_closed[side_] = true;
    state_->cv.notify_all();
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->end_closed[side_] ||
           (state_->end_closed[1 - side_] && state_->queue[side_].empty());
  }

  std::string Describe() const override {
    const bool emulated = state_->latency.count() > 0 ||
                          state_->bandwidth_bytes_per_s > 0;
    return std::string(emulated ? "memlink" : "mem") +
           (side_ == 0 ? ":a" : ":b");
  }

 private:
  std::shared_ptr<PairState> state_;
  int side_;
};

}  // namespace

std::pair<TransportPtr, TransportPtr> MakeInMemoryPair() {
  auto state = std::make_shared<PairState>();
  return {std::make_unique<InMemoryTransport>(state, 0),
          std::make_unique<InMemoryTransport>(state, 1)};
}

std::pair<TransportPtr, TransportPtr> MakeEmulatedLinkPair(
    std::chrono::duration<double> latency, double bandwidth_bytes_per_s) {
  auto state = std::make_shared<PairState>();
  if (latency.count() > 0) state->latency = latency;
  if (bandwidth_bytes_per_s > 0) {
    state->bandwidth_bytes_per_s = bandwidth_bytes_per_s;
  }
  return {std::make_unique<InMemoryTransport>(state, 0),
          std::make_unique<InMemoryTransport>(state, 1)};
}

}  // namespace fluid::dist
