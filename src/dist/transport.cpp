#include "dist/transport.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "core/buffer_pool.h"

namespace fluid::dist {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Shared state of one connected pair. Two byte-frame queues (one per
// direction) under a single lock; each endpoint owns a "closed" flag.
// Closing either side wakes every waiter on both directions.
// Each queued frame carries the time it becomes deliverable (`ready`):
// the plain in-memory pair delivers immediately; the emulated-link pair
// charges latency + serialisation onto a per-direction serial link.
struct PairState {
  std::mutex mu;
  std::condition_variable cv;
  struct Frame {
    std::vector<std::uint8_t> bytes;
    SteadyClock::time_point ready;
  };
  std::deque<Frame> queue[2];  // queue[i]: frames for end i
  SteadyClock::time_point link_free[2] = {};  // direction busy until
  bool end_closed[2] = {false, false};
  WireStats stats[2];  // per-endpoint counters, guarded by mu
  // Link model (zero-cost for the plain pair).
  std::chrono::duration<double> latency{0.0};
  double bandwidth_bytes_per_s = 0.0;  // <= 0: infinite
};

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::shared_ptr<PairState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~InMemoryTransport() override { Close(); }

  core::Status Send(const Message& msg) override {
    return SendBatch(std::span<const Message>(&msg, 1));
  }

  core::Status SendBatch(std::span<const Message> msgs) override {
    if (msgs.empty()) return core::Status::Ok();
    // Pooled frame buffers, all encoded before taking the pair lock. The
    // matching PoolPut happens on the receiving side after decode, so a
    // steady send/recv loop cycles the same storage through the pool.
    thread_local std::vector<PairState::Frame> frames;
    frames.clear();
    frames.reserve(msgs.size());
    for (const Message& msg : msgs) {
      auto bytes = core::PoolGet<std::uint8_t>(
          static_cast<std::size_t>(EncodedSize(msg)));
      EncodeMessageInto(msg, bytes);
      frames.push_back({std::move(bytes), {}});
    }
    std::lock_guard<std::mutex> lock(state_->mu);
    auto recycle = [&] {
      for (auto& f : frames) core::PoolPut(std::move(f.bytes));
      frames.clear();
    };
    if (state_->end_closed[side_]) {
      recycle();
      return core::Status::Unavailable("in-memory transport: endpoint closed");
    }
    if (state_->end_closed[1 - side_]) {
      recycle();
      return core::Status::Unavailable("in-memory transport: peer closed");
    }
    // The whole batch is one link transaction: a single latency head
    // start, then the frames serialise back to back at the link's
    // bandwidth — frame k is deliverable as its own bytes finish behind
    // its predecessors', queued behind whatever this direction was still
    // transmitting. Zero-cost link model: everything ready immediately.
    const auto now = SteadyClock::now();
    const bool emulated =
        state_->latency.count() > 0 || state_->bandwidth_bytes_per_s > 0;
    const int dir = 1 - side_;
    const auto start = std::max(now, state_->link_free[dir]);
    std::chrono::duration<double> cumulative{0.0};
    WireStats& st = state_->stats[side_];
    for (auto& f : frames) {
      auto ready = now;
      if (emulated) {
        if (state_->bandwidth_bytes_per_s > 0) {
          cumulative += std::chrono::duration<double>(
              static_cast<double>(f.bytes.size()) /
              state_->bandwidth_bytes_per_s);
        }
        ready = start + std::chrono::duration_cast<SteadyClock::duration>(
                            state_->latency + cumulative);
      }
      st.bytes_sent += static_cast<std::int64_t>(f.bytes.size());
      ++st.frames_sent;
      f.ready = ready;
      state_->queue[1 - side_].push_back(std::move(f));
    }
    frames.clear();
    if (emulated) {
      state_->link_free[dir] =
          start + std::chrono::duration_cast<SteadyClock::duration>(cumulative);
    }
    if (msgs.size() > 1) ++st.batched_sends;
    state_->cv.notify_all();
    return core::Status::Ok();
  }

  core::Status Recv(Message& out, std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    auto& inbox = state_->queue[side_];
    const auto deadline = SteadyClock::now() + timeout;
    for (;;) {
      state_->cv.wait_until(lock, deadline, [&] {
        return !inbox.empty() || state_->end_closed[side_] ||
               state_->end_closed[1 - side_];
      });
      // Buffered frames still deliver after the peer closed — a graceful
      // close must not drop in-flight replies. A frame still "on the
      // link" (ready in the future) is not visible yet; wait for it, but
      // never past the caller's deadline.
      if (!inbox.empty()) {
        const auto now = SteadyClock::now();
        if (inbox.front().ready > now) {
          if (inbox.front().ready >= deadline) {
            if (now >= deadline) {
              return core::Status::DeadlineExceeded(
                  "in-memory transport: Recv timeout");
            }
            state_->cv.wait_until(lock, deadline, [] { return false; });
            continue;
          }
          state_->cv.wait_until(lock, inbox.front().ready, [] { return false; });
          continue;
        }
        auto bytes = std::move(inbox.front().bytes);
        inbox.pop_front();
        state_->stats[side_].bytes_recv +=
            static_cast<std::int64_t>(bytes.size());
        ++state_->stats[side_].frames_recv;
        lock.unlock();
        const core::Status st = DecodeMessage(bytes, out);
        core::PoolPut(std::move(bytes));
        return st;
      }
      if (state_->end_closed[side_] || state_->end_closed[1 - side_]) {
        return core::Status::Unavailable("in-memory transport: peer closed");
      }
      if (SteadyClock::now() >= deadline) {
        return core::Status::DeadlineExceeded(
            "in-memory transport: Recv timeout");
      }
    }
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->end_closed[side_] = true;
    state_->cv.notify_all();
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->end_closed[side_] ||
           (state_->end_closed[1 - side_] && state_->queue[side_].empty());
  }

  WireStats wire_stats() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->stats[side_];
  }

  std::string Describe() const override {
    const bool emulated = state_->latency.count() > 0 ||
                          state_->bandwidth_bytes_per_s > 0;
    return std::string(emulated ? "memlink" : "mem") +
           (side_ == 0 ? ":a" : ":b");
  }

 private:
  std::shared_ptr<PairState> state_;
  int side_;
};

}  // namespace

core::Status Transport::SendBatch(std::span<const Message> msgs) {
  // Contract-keeping default for transports without a vectored path: the
  // frames still go out in order, one Send each.
  for (const Message& msg : msgs) {
    FLUID_RETURN_IF_ERROR(Send(msg));
  }
  return core::Status::Ok();
}

std::pair<TransportPtr, TransportPtr> MakeInMemoryPair() {
  auto state = std::make_shared<PairState>();
  return {std::make_unique<InMemoryTransport>(state, 0),
          std::make_unique<InMemoryTransport>(state, 1)};
}

std::pair<TransportPtr, TransportPtr> MakeEmulatedLinkPair(
    std::chrono::duration<double> latency, double bandwidth_bytes_per_s) {
  auto state = std::make_shared<PairState>();
  if (latency.count() > 0) state->latency = latency;
  if (bandwidth_bytes_per_s > 0) {
    state->bandwidth_bytes_per_s = bandwidth_bytes_per_s;
  }
  return {std::make_unique<InMemoryTransport>(state, 0),
          std::make_unique<InMemoryTransport>(state, 1)};
}

}  // namespace fluid::dist
