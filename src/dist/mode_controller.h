#pragma once
// ModeController: the HA ↔ HT adaptation policy of paper §II-B, plus the
// survival matrix of Fig. 1 that motivates it.
//
// The controller is a deliberately small hysteresis loop: prefer
// HighAccuracy (the full-width pipeline) while it can keep up with demand,
// flip to HighThroughput (standalone slices fanned out over every device)
// when demand exceeds the HA operating point, and only flip back once
// demand has fallen clearly below it — the hysteresis band prevents mode
// thrash at the boundary, where every switch costs a deployment's warmup.

#include <cstdint>

#include "sim/scenario.h"

namespace fluid::dist {

class ModeController {
 public:
  /// What the controller sees each tick, now that serving is a continuous
  /// request pool: the external demand estimate plus the scheduler's own
  /// admission/backlog/SLO telemetry.
  struct DemandSignal {
    double demand = 0.0;       // img/s estimate
    double queue_depth = 0.0;  // backlog rows not yet in any chunk
    /// EMA of active_requests / max_active_reqs ([0,1]); ~1 with a
    /// standing backlog means admission control is the limiter.
    double pool_occupancy = 0.0;
    double active_requests = 0.0;  // ready + running in the pool right now
    /// Deadline misses per completed request over the last control
    /// interval — the ground-truth SLO violation signal.
    double deadline_miss_rate = 0.0;
    /// Fraction of the active pool in the highest class, [0,1].
    double high_class_share = 0.0;
  };

  /// Occupancy at or above which a standing queue is read as saturation.
  static constexpr double kSaturatedOccupancy = 0.5;
  /// How strongly each queued sample inflates effective demand past the
  /// HA operating point once the pool runs saturated.
  static constexpr double kBacklogGain = 0.05;
  /// Miss rate above which the SLO is considered violated: whatever the
  /// demand estimate says, requests are provably blowing deadlines, so
  /// the controller treats the operating point as over capacity.
  static constexpr double kMissRateAlarm = 0.01;

  /// `ha_capacity` / `ht_capacity`: sustainable img/s at each operating
  /// point (from sim::Fig2Evaluator or measurement). `hysteresis` is the
  /// fraction below ha_capacity demand must fall before returning to HA.
  ModeController(double ha_capacity, double ht_capacity,
                 double hysteresis = 0.1);

  /// Feed the current demand (img/s); returns the mode to run.
  sim::Mode Decide(double demand);

  /// Pool-aware decision: a standing backlog with a saturated active pool,
  /// or a nonzero deadline-miss rate, is direct evidence the current
  /// operating point cannot keep up, whatever the demand estimate claims —
  /// effective demand is lifted above ha_capacity (proportionally to the
  /// backlog, resp. past the miss alarm) so the hysteresis loop reacts,
  /// then the scalar policy runs unchanged.
  sim::Mode Decide(const DemandSignal& signal);

  sim::Mode mode() const { return mode_; }
  std::int64_t switches() const { return switches_; }
  double ha_capacity() const { return ha_capacity_; }
  double ht_capacity() const { return ht_capacity_; }

 private:
  double ha_capacity_;
  double ht_capacity_;
  double hysteresis_;
  sim::Mode mode_ = sim::Mode::kHighAccuracy;
  std::int64_t switches_ = 0;
};

/// The reliability matrix of paper Fig. 1(b)/(c): which model families
/// still serve under a given availability. Static's halves are useless
/// alone (survives nothing); Dynamic's master holds the self-sufficient
/// lower slice (survives a worker failure only); Fluid adds the
/// self-sufficient upper slice on the worker (survives either single
/// failure). This is the ground truth the live runtime is tested against;
/// sim::Fig2Evaluator derives the same matrix from its operating points.
bool SurvivesFailure(sim::DnnType type, sim::Availability availability);

}  // namespace fluid::dist
