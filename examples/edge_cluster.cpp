// Edge-cluster study: the DESIGN.md "beyond-the-paper" scenario — what the
// Fluid deployment buys on heterogeneous device pairs and flaky links,
// using the discrete-event simulator instead of real boards.
//
// Sweeps (a) worker/master speed ratios, (b) link quality, and (c) a long
// random failure trace, reporting throughput, accuracy and downtime for
// all three model families.

#include <cstdio>

#include "core/rng.h"
#include "sim/pipeline_sim.h"
#include "sim/scenario.h"
#include "sim/timeline.h"

using namespace fluid;

namespace {

sim::SystemProfile BaseProfile() {
  sim::SystemProfile p;
  // Compute costs from the paper model's exact FLOP counts on the
  // calibrated Jetson-class device model (matches the paper's testbed).
  const sim::ComputeProfile core = sim::EmulatedJetsonCpu();
  p.overlapped_pipeline = true;
  p.static_front_latency_s = core.LatencyFor(1'128'960);  // conv1+conv2 @16
  p.static_back_latency_s = core.LatencyFor(228'672);     // conv3+fc @16
  p.static_cut_bytes = 16 * 7 * 7 * 4;
  p.w50_latency_s = core.LatencyFor(396'576);      // 50% standalone
  p.upper50_latency_s = core.LatencyFor(396'576);  // upper-50% standalone
  p.acc_static = 0.989;
  p.acc_dynamic_full = 0.988;
  p.acc_dynamic_w50 = 0.976;
  p.acc_fluid_full = 0.992;
  p.acc_fluid_lower50 = 0.989;
  p.acc_fluid_upper50 = 0.988;
  p.link.latency_s = 0.012;
  p.link.bandwidth_bytes_per_s = 12.5e6;
  return p;
}

}  // namespace

int main() {
  std::printf("== Edge-cluster study (DES) ==\n\n");

  // (a) Heterogeneous speeds: a fast master paired with weaker workers.
  std::printf("-- heterogeneity: worker speed relative to master --\n");
  std::printf("%-12s %14s %14s %14s\n", "worker_speed", "Static[img/s]",
              "Fluid HT", "Fluid HA");
  for (const double speed : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    sim::SystemProfile p = BaseProfile();
    p.worker_speed = speed;
    sim::Fig2Evaluator eval(p);
    const auto st = eval.Evaluate(sim::DnnType::kStatic,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighAccuracy);
    const auto ht = eval.Evaluate(sim::DnnType::kFluid,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighThroughput);
    const auto ha = eval.Evaluate(sim::DnnType::kFluid,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighAccuracy);
    std::printf("%-12.2f %14.1f %14.1f %14.1f\n", speed,
                st.throughput_img_per_s, ht.throughput_img_per_s,
                ha.throughput_img_per_s);
  }
  std::printf("reading: HT degrades gracefully with a weak worker (the "
              "master's stream is unaffected); the pipeline is hostage to "
              "its slowest stage.\n\n");

  // (b) Link quality sweep at fixed compute.
  std::printf("-- link quality: one-way latency sweep --\n");
  std::printf("%-10s %14s %14s %14s\n", "link[ms]", "Static[img/s]",
              "Fluid HT", "Fluid HA");
  for (const double ms : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    sim::SystemProfile p = BaseProfile();
    p.link.latency_s = ms * 1e-3;
    sim::Fig2Evaluator eval(p);
    const auto st = eval.Evaluate(sim::DnnType::kStatic,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighAccuracy);
    const auto ht = eval.Evaluate(sim::DnnType::kFluid,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighThroughput);
    const auto ha = eval.Evaluate(sim::DnnType::kFluid,
                                  sim::Availability::kBothOnline,
                                  sim::Mode::kHighAccuracy);
    std::printf("%-10.0f %14.1f %14.1f %14.1f\n", ms,
                st.throughput_img_per_s, ht.throughput_img_per_s,
                ha.throughput_img_per_s);
  }
  std::printf("reading: HT never touches the link; everything pipelined "
              "collapses on slow networks.\n\n");

  // (c) A long random failure trace: availability economics.
  std::printf("-- 1000 s random failure trace (MTBF 120 s, MTTR 30 s) --\n");
  core::Rng rng(2024);
  std::vector<sim::AvailabilityEvent> events;
  for (const auto device : {sim::DeviceId::kMaster, sim::DeviceId::kWorker}) {
    double t = 0.0;
    while (t < 1000.0) {
      t += rng.Uniform(60.0, 180.0);  // up time
      if (t >= 1000.0) break;
      events.push_back({t, device, false});
      t += rng.Uniform(10.0, 50.0);  // repair time
      events.push_back({t, device, true});
    }
  }
  sim::Fig2Evaluator eval(BaseProfile());
  std::printf("%-9s %14s %12s %12s\n", "model", "images/1000s", "downtime[s]",
              "mean acc[%]");
  for (const auto type :
       {sim::DnnType::kStatic, sim::DnnType::kDynamic, sim::DnnType::kFluid}) {
    const auto summary = sim::SimulateTimeline(
        eval, type, sim::Mode::kHighThroughput, events, 1000.0);
    std::printf("%-9s %14.0f %12.1f %12.2f\n",
                std::string(sim::DnnTypeName(type)).c_str(),
                summary.total_images, summary.downtime_s,
                summary.mean_accuracy * 100);
  }
  std::printf("reading: under realistic churn, Static spends every partial "
              "outage down, Dynamic survives only worker outages, Fluid "
              "only goes dark when both devices are gone.\n");
  return 0;
}
