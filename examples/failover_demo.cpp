// Failover demo: the live distributed runtime surviving a device failure.
//
// Spins up a Master and a Worker connected over real localhost TCP (the
// paper's wire), deploys the Fluid plan (HT standalone halves + HA
// pipeline), streams inferences, crashes the worker mid-stream, and shows
// the Master failing over to its resident sub-network without dropping a
// request — paper Fig. 1(b) live. The dead slot is then REVIVED over a
// fresh TCP connection with MasterNode::ReattachWorker (the master
// replays the slot's whole deploy history) and serving resumes on the
// worker. Finally, Fig. 1(c): after a master failure the worker's
// upper-50 % slice keeps classifying on its own.

#include <cstdio>

#include "core/logging.h"
#include "core/rng.h"
#include "core/tensor_ops.h"
#include "data/synthetic_mnist.h"
#include "dist/master.h"
#include "dist/tcp_transport.h"
#include "dist/worker.h"
#include "nn/metrics.h"
#include "train/model_zoo.h"
#include "train/nested_trainer.h"

using namespace fluid;
using namespace std::chrono_literals;

int main() {
  core::SetLogLevel(core::LogLevel::kWarn);
  const slim::FluidNetConfig cfg;

  // Quick training pass so the demo classifies real digits.
  std::printf("[setup] training a Fluid DyDNN (small budget)...\n");
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(11);
  const data::Dataset train = data::MakeSyntheticMnist(1500, 5);
  const data::Dataset test = data::MakeSyntheticMnist(300, 6);
  {
    train::NestedIncrementalTrainer trainer(fluid);
    train::NestedTrainOptions opts;
    opts.niters = 2;
    opts.stage.epochs = 1;
    opts.stage.batch_size = 32;
    trainer.Fit(train, nullptr, opts);
  }

  // Wire up master and worker over loopback TCP.
  std::printf("[setup] connecting master and worker over TCP...\n");
  dist::TcpListener listener(0);
  auto master_side_fut = dist::TcpConnect("127.0.0.1", listener.port(), 2000ms);
  auto worker_side = listener.Accept(2000ms);
  master_side_fut.status().ThrowIfError();
  worker_side.status().ThrowIfError();

  dist::WorkerNode worker("edge-worker", cfg, std::move(*worker_side));
  worker.Start();
  dist::MasterNode master(cfg);
  master.AttachWorker(std::move(*master_side_fut));

  // Deploy the paper's plan.
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves = train::SplitConvNet(cfg, 16, combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  master
      .DeployToWorker("upper50", dist::ModelBlueprint::Standalone(cfg, 8),
                      nn::ExtractState(upper))
      .ThrowIfError();
  master
      .DeployToWorker("back", dist::ModelBlueprint::PipelineBack(cfg, 16, 2),
                      nn::ExtractState(halves.back))
      .ThrowIfError();
  master.SetPlan({"lower50", "upper50", "front", "back"});
  master.SetMode(sim::Mode::kHighThroughput);
  std::printf("[setup] worker deployments: ");
  for (const auto& name : worker.DeploymentNames()) {
    std::printf("'%s' ", name.c_str());
  }
  std::printf("\n\n");

  // Stream inferences; crash the worker halfway.
  const std::int64_t total = 40;
  const std::int64_t crash_at = 20;
  std::int64_t correct = 0;
  std::printf("[stream] classifying %lld digits in HT mode; worker dies "
              "after #%lld\n",
              static_cast<long long>(total),
              static_cast<long long>(crash_at));
  for (std::int64_t i = 0; i < total; ++i) {
    if (i == crash_at) {
      std::printf("[stream] !! simulated power failure on the worker !!\n");
      worker.Crash();
    }
    auto reply = master.Infer(test.Image(i), 500ms);
    reply.status().ThrowIfError();
    const auto pred = core::ArgmaxRows(reply->logits)[0];
    if (pred == test.Label(i)) ++correct;
    if (i < 4 || (i >= crash_at - 1 && i < crash_at + 3)) {
      std::printf("    #%02lld label %lld → pred %lld  served by %s\n",
                  static_cast<long long>(i),
                  static_cast<long long>(test.Label(i)),
                  static_cast<long long>(pred), reply->served_by.c_str());
    }
  }
  const auto& stats = master.stats();
  std::printf("\n[result] %lld/%lld correct; served local=%lld remote=%lld "
              "failovers=%lld — no request was dropped\n\n",
              static_cast<long long>(correct), static_cast<long long>(total),
              static_cast<long long>(stats.served_local),
              static_cast<long long>(stats.served_remote),
              static_cast<long long>(stats.failovers));

  // Revive the dead slot: a replacement process connects, and the master
  // replays the slot's deploy history (blueprints + weights are kept
  // master-side), so the worker rejoins routing with everything it had.
  std::printf("[reattach] a replacement worker connects on a fresh TCP "
              "link...\n");
  auto new_master_fut = dist::TcpConnect("127.0.0.1", listener.port(), 2000ms);
  auto new_worker_side = listener.Accept(2000ms);
  new_master_fut.status().ThrowIfError();
  new_worker_side.status().ThrowIfError();
  dist::WorkerNode revived("edge-worker-revived", cfg,
                           std::move(*new_worker_side));
  revived.Start();
  master.ReattachWorker(0, std::move(*new_master_fut)).ThrowIfError();
  std::printf("[reattach] worker[0] alive again; deployments replayed: ");
  for (const auto& name : revived.DeploymentNames()) {
    std::printf("'%s' ", name.c_str());
  }
  std::printf("\n");
  std::int64_t revived_remote = 0;
  for (std::int64_t i = 0; i < 8; ++i) {
    auto reply = master.Infer(test.Image(i), 500ms);
    reply.status().ThrowIfError();
    if (reply->served_by == "worker[0]:upper50") ++revived_remote;
  }
  std::printf("[reattach] 8 more requests: %lld served by the revived "
              "worker (reattaches=%lld)\n\n",
              static_cast<long long>(revived_remote),
              static_cast<long long>(master.stats().reattaches));

  // Fig. 1(c): master failure. The worker owns its deployed weights, so the
  // upper-50 % slice keeps serving its own input stream with no master.
  std::printf("[master-failure] the worker's upper-50%% slice classifies "
              "standalone:\n");
  nn::Sequential own = fluid.ExtractSubnet(fluid.family().WorkerResident());
  std::int64_t survivor_correct = 0;
  for (std::int64_t i = 0; i < 100; ++i) {
    const auto pred = core::ArgmaxRows(own.Forward(test.Image(i), false))[0];
    if (pred == test.Label(i)) ++survivor_correct;
  }
  std::printf("    100 images, %lld correct — the Fluid upper slice needs "
              "no master (Static/Dynamic score 0 here)\n",
              static_cast<long long>(survivor_correct));
  return 0;
}
