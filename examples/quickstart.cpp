// Quickstart: train a Fluid DyDNN with nested incremental training
// (Algorithm 1), inspect every runnable sub-network, and produce a
// deployable checkpoint of the slice a Worker device would host.
//
//   ./quickstart            # ~half a minute on one core
//
// Walks the whole public API surface: data → FluidModel → trainer →
// evaluation → extraction → checkpoint.

#include <cstdio>

#include "core/logging.h"
#include "core/rng.h"
#include "data/synthetic_mnist.h"
#include "nn/checkpoint.h"
#include "nn/metrics.h"
#include "slim/fluid_model.h"
#include "slim/model_io.h"
#include "train/nested_trainer.h"
#include "train/trainer_common.h"

using namespace fluid;

int main() {
  core::SetLogLevel(core::LogLevel::kInfo);

  // 1. Data. Synthetic MNIST is generated deterministically from a seed;
  //    put real IDX files under data/ to use genuine MNIST instead
  //    (data::LoadMnistOrSynthetic does that switch).
  std::printf("[1/5] generating synthetic MNIST...\n");
  const data::Dataset train = data::MakeSyntheticMnist(2000, /*seed=*/1);
  const data::Dataset test = data::MakeSyntheticMnist(500, /*seed=*/2);

  // 2. The paper's model: 3 conv stages + classifier over a shared
  //    slimmable weight store, width family [25, 50, 75, 100] %.
  std::printf("[2/5] building the Fluid model...\n");
  slim::FluidModel model = slim::FluidModel::PaperDefault(/*seed=*/42);
  for (const auto& spec : model.family().All()) {
    std::printf("    sub-network %-9s channels %-7s %7.3f MFLOP/img  %5.1f "
                "KB deployable\n",
                spec.name.c_str(), spec.range.ToString().c_str(),
                static_cast<double>(model.SubnetFlops(spec)) / 1e6,
                static_cast<double>(model.SubnetParamBytes(spec)) / 1024.0);
  }

  // 3. Train with Algorithm 1 (nested incremental training).
  std::printf("[3/5] nested incremental training...\n");
  train::NestedIncrementalTrainer trainer(model);
  train::NestedTrainOptions opts;
  opts.niters = 2;
  opts.stage.epochs = 2;
  opts.stage.batch_size = 32;
  opts.stage.learning_rate = 0.05F;
  const auto logs = trainer.Fit(train, &test, opts);
  for (const auto& log : logs) {
    std::printf("    %-16s train-loss %.3f  test-acc %5.1f%%\n",
                log.stage.c_str(), log.train_loss, log.eval_accuracy * 100);
  }

  // 4. Every sub-network is now independently deployable.
  std::printf("[4/5] final test accuracy of each sub-network:\n");
  for (const auto& spec : model.family().All()) {
    const auto result = train::EvaluateSubnet(model, spec, test);
    std::printf("    %-9s  %5.1f%%  (loss %.3f)\n", spec.name.c_str(),
                result.accuracy * 100, result.loss);
  }

  // Error analysis of the Worker-resident slice.
  const auto upper = model.family().WorkerResident();
  nn::ConfusionMatrix cm(10);
  cm.AddBatch(model.Forward(upper, test.images, false), test.labels);
  std::printf("\n    confusion matrix of %s (the slice that survives a "
              "master failure):\n%s\n",
              upper.name.c_str(), cm.ToString().c_str());

  // 5. Persist the artifacts: the whole Fluid model (what a master loads
  //    at startup) and the worker's extracted slice (what gets shipped to
  //    a device).
  std::printf("[5/5] checkpointing...\n");
  const std::string model_path = "fluid_model.bin";
  slim::SaveFluidModel(model, model_path).ThrowIfError();
  auto reloaded = slim::LoadFluidModel(model_path);
  reloaded.status().ThrowIfError();
  std::printf("    wrote %s and verified it reloads (upper50%% acc %.1f%%)\n",
              model_path.c_str(),
              train::EvaluateSubnet(*reloaded, upper, test).accuracy * 100);

  nn::Sequential deployable = model.ExtractSubnet(upper);
  const std::string path = "upper50_deployable.ckpt";
  nn::SaveCheckpoint(deployable, path).ThrowIfError();
  std::printf("    wrote %s (%lld parameters)\n", path.c_str(),
              static_cast<long long>(deployable.ParamCount()));
  std::printf("done.\n");
  return 0;
}
