// Mode switching: the HA ↔ HT adaptation of §II-B under a varying load.
//
// Builds the operating points from the calibrated Jetson-class device
// then drives a ModeController with a day-in-the-life demand trace
// (quiet → burst → quiet) and a failure window, printing which mode the
// system picks and what accuracy it pays for keeping up.

#include <cmath>
#include <cstdio>

#include "core/rng.h"
#include "dist/mode_controller.h"
#include "sim/scenario.h"
#include "sim/timeline.h"

using namespace fluid;

int main() {
  const slim::FluidNetConfig cfg;
  core::Rng rng(3);

  // Operating points for the paper's testbed: the calibrated Jetson-class
  // device model applied to this library's exact FLOP counts.
  slim::FluidModel fluid(cfg, slim::SubnetFamily::PaperDefault(), rng);
  const auto jetson = sim::EmulatedJetsonCpu();
  const auto& family = fluid.family();
  const slim::ChannelRange full{0, family.max_width()};

  sim::SystemProfile p;
  p.overlapped_pipeline = true;
  std::int64_t f_front = 0, f_back = 0;
  for (std::int64_t i = 0; i < cfg.num_conv_layers; ++i) {
    const slim::ChannelRange in =
        (i == 0) ? slim::ChannelRange{0, cfg.image_channels} : full;
    const std::int64_t sp = (i == 0) ? cfg.image_size : cfg.SpatialAfter(i - 1);
    (i < 2 ? f_front : f_back) +=
        fluid.conv(static_cast<std::size_t>(i)).SliceFlops(in, full, sp, sp);
  }
  f_back += fluid.fc().SliceFlops(fluid.FcColumns(full), {0, cfg.num_classes});
  p.static_front_latency_s = jetson.LatencyFor(f_front);
  p.static_back_latency_s = jetson.LatencyFor(f_back);
  p.static_cut_bytes = 16 * 7 * 7 * 4;
  p.w50_latency_s =
      jetson.LatencyFor(fluid.SubnetFlops(family.MasterResident()));
  p.upper50_latency_s =
      jetson.LatencyFor(fluid.SubnetFlops(family.WorkerResident()));
  p.link.latency_s = 0.012;
  p.link.bandwidth_bytes_per_s = 12.5e6;
  // Nominal accuracies (the paper band) — this example is about modes.
  p.acc_static = 0.989;
  p.acc_dynamic_full = 0.988;
  p.acc_dynamic_w50 = 0.976;
  p.acc_fluid_full = 0.992;
  p.acc_fluid_lower50 = 0.989;
  p.acc_fluid_upper50 = 0.988;

  sim::Fig2Evaluator eval(p);
  const auto ha = eval.Evaluate(sim::DnnType::kFluid,
                                sim::Availability::kBothOnline,
                                sim::Mode::kHighAccuracy);
  const auto ht = eval.Evaluate(sim::DnnType::kFluid,
                                sim::Availability::kBothOnline,
                                sim::Mode::kHighThroughput);
  std::printf("operating points (emulated Jetson-class devices):\n");
  std::printf("  HA: %6.1f img/s @ %.1f%%   (%s)\n",
              ha.throughput_img_per_s, ha.accuracy * 100, ha.note.c_str());
  std::printf("  HT: %6.1f img/s @ %.1f%%   (%s)\n\n",
              ht.throughput_img_per_s, ht.accuracy * 100, ht.note.c_str());

  // Demand trace: sinusoid with a burst, sampled once a second.
  dist::ModeController controller(ha.throughput_img_per_s,
                                  ht.throughput_img_per_s, 0.15);
  std::printf("%-6s %10s %6s %12s %10s %10s\n", "t[s]", "demand", "mode",
              "capacity", "served", "acc[%]");
  std::printf("%s\n", std::string(60, '-').c_str());
  double served_total = 0.0, demand_total = 0.0, acc_weighted = 0.0;
  for (int t = 0; t < 60; ++t) {
    const double base = ha.throughput_img_per_s * 0.7;
    const double swing =
        ha.throughput_img_per_s * 0.9 * std::sin(t * 0.15);
    double demand = std::max(1.0, base + swing);
    if (t >= 30 && t < 40) demand *= 2.2;  // burst window

    const sim::Mode mode = controller.Decide(demand);
    const auto op = eval.Evaluate(sim::DnnType::kFluid,
                                  sim::Availability::kBothOnline, mode);
    const double served = std::min(demand, op.throughput_img_per_s);
    served_total += served;
    demand_total += demand;
    acc_weighted += served * op.accuracy;
    if (t % 5 == 0 || t == 30 || t == 40) {
      std::printf("%-6d %10.1f %6s %12.1f %10.1f %10.1f\n", t, demand,
                  std::string(sim::ModeName(mode)).c_str(),
                  op.throughput_img_per_s, served, op.accuracy * 100);
    }
  }
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("served %.0f of %.0f offered images (%.1f%%), mean accuracy "
              "%.2f%%, %lld mode switches\n\n",
              served_total, demand_total, 100.0 * served_total / demand_total,
              100.0 * acc_weighted / served_total,
              static_cast<long long>(controller.switches()));

  // The same adaptation viewed as a failure timeline.
  const std::vector<sim::AvailabilityEvent> events{
      {20.0, sim::DeviceId::kWorker, false},
      {35.0, sim::DeviceId::kWorker, true},
  };
  const auto summary = sim::SimulateTimeline(
      eval, sim::DnnType::kFluid, sim::Mode::kHighThroughput, events, 50.0);
  std::printf("failure-window timeline (HT preference):\n%s",
              sim::FormatTimeline(summary).c_str());
  return 0;
}
