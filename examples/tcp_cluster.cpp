// TCP cluster: one Master + three Workers over real loopback sockets,
// governed by the Orchestrator — the paper's two-device system scaled to
// the multi-device deployment its introduction motivates.
//
// A demand trace rises past HA capacity (orchestrator flips to HT and the
// input stream fans out over all four devices), then workers are killed
// one by one; the system sheds capacity but never stops serving until the
// master itself is the only survivor.
//
// The HA pipeline back half is deployed with int8_wire negotiated, so the
// quiet phase serves QUANTIZED (wire v3) cut-activation frames over real
// TCP while the standalone slices fan out with int8_input_wire negotiated
// and ship QUANTIZED INPUT shards (wire v5) in the burst phase. A
// multi-sample HA batch additionally groups its cut frames into one
// vectored SendBatch (a single writev on the socket). This example doubles
// as CI's wire data-plane smoke run: it exits non-zero if no v3 cut frame,
// no v5 input frame, or no batched send flowed over the real sockets.

// Routed-fleet mode (`routed=1`): two PARTITIONS (master + its own TCP
// worker each) behind one RequestRouter — the partitioned scale-out path
// exercised over real loopback sockets. The deployment replicates through
// router.DeployEverywhere (the deploy codec fanned across partitions),
// then traffic flows two ways: spread keys that must land on BOTH
// partitions, and a burst pinned to partition 0's hash owner while a
// long-running batch holds its single admission slot — forcing the
// router's admission-full divert to the sibling, over real sockets. CI
// exits non-zero unless both partitions served traffic, at least one
// request was rerouted, and every future resolved OK.

#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/logging.h"
#include "core/rng.h"
#include "core/tensor_ops.h"
#include "data/synthetic_mnist.h"
#include "dist/master.h"
#include "dist/orchestrator.h"
#include "dist/router.h"
#include "dist/tcp_transport.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "slim/fluid_model.h"
#include "train/model_zoo.h"
#include "train/nested_trainer.h"

using namespace fluid;
using namespace std::chrono_literals;

namespace {

int RunRoutedFleet() {
  core::SetLogLevel(core::LogLevel::kWarn);
  const slim::FluidNetConfig cfg;
  constexpr std::size_t kPartitions = 2;

  // Observability smoke rides along: trace EVERY request (the router
  // front door samples 1-in-1) and put the wire v6 trace block on every
  // partition link, then assert below that the metrics dump carries the
  // fleet series and that at least one COMPLETE cross-node trace —
  // router → scheduler → wire → worker → reply — landed in the ring.
  obs::Tracer::Global().SetSampleEvery(1);

  // Untrained weights: this smoke asserts routing/reroute counters, not
  // accuracy, and CI wants it fast.
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(21);
  const auto upper = fluid.family().WorkerResident();
  nn::Sequential upper_net = fluid.ExtractSubnet(upper);

  std::printf("[setup] %zu partitions, each master + 1 worker over "
              "loopback TCP, one RequestRouter in front\n",
              kPartitions);
  dist::TcpListener listener(0);
  std::vector<std::unique_ptr<dist::MasterNode>> masters;
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  dist::RouterOptions ropts;
  ropts.policy = dist::RoutePolicy::kConsistentHash;
  dist::RequestRouter router(ropts);
  for (std::size_t p = 0; p < kPartitions; ++p) {
    masters.push_back(std::make_unique<dist::MasterNode>(cfg));
    auto master_end = dist::TcpConnect("127.0.0.1", listener.port(), 2000ms);
    auto worker_end = listener.Accept(2000ms);
    master_end.status().ThrowIfError();
    worker_end.status().ThrowIfError();
    workers.push_back(std::make_unique<dist::WorkerNode>(
        "p" + std::to_string(p) + "-edge", cfg, std::move(*worker_end)));
    workers.back()->Start();
    masters.back()->AttachWorker(std::move(*master_end));
    masters.back()->EnableTraceWire(0);  // this link speaks v6
    router.AddPartition(masters.back().get());
  }

  // One blueprint deploy replicated to every partition's workers through
  // the router — the fleet deployment path over real sockets.
  router
      .DeployEverywhere("up",
                        dist::ModelBlueprint::Standalone(cfg, upper.range.width()),
                        nn::ExtractState(upper_net), 5000ms)
      .ThrowIfError();
  for (std::size_t p = 0; p < kPartitions; ++p) {
    dist::Plan plan;
    plan.worker_standalone = "up";
    masters[p]->SetPlan(plan);
    masters[p]->SetMode(sim::Mode::kHighThroughput);
    dist::BatchOptions bopts;
    // Partition 0 gets a SINGLE admission slot so a long-running batch
    // provably closes it; partition 1 is the open sibling.
    bopts.max_batch = p == 0 ? 4 : 16;
    bopts.max_active_reqs = p == 0 ? 1 : 256;
    masters[p]->StartServing(bopts);
  }

  core::Rng rng(33);
  const core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);

  // Phase 1: spread traffic — sequential keys walk the hash ring, so both
  // partitions must see first-choice dispatches.
  std::vector<std::future<core::StatusOr<dist::InferReply>>> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(router.InferAsync(x, 10000ms));

  // Phase 2: forced admission-full reroute. A 32-sample batch (8 chunks
  // of 4, each a real socket round trip) occupies partition 0's only
  // admission slot; every single-sample request pinned to its hash owner
  // while it runs must divert to partition 1.
  std::uint64_t key0 = 0;
  while (router.PartitionForKey(key0) != 0) ++key0;
  const core::Tensor held =
      core::Tensor::UniformRandom({32, 1, 28, 28}, rng, 0, 1);
  dist::SubmitOptions so;
  so.timeout = 10000ms;
  futs.push_back(router.InferAsync(held, so, key0));
  for (int i = 0; i < 16; ++i) futs.push_back(router.InferAsync(x, so, key0));

  std::int64_t ok = 0;
  for (auto& f : futs) {
    auto reply = f.get();
    if (!reply.ok()) {
      std::fprintf(stderr, "error: routed request failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    ++ok;
  }

  const dist::RouterStats rs = router.stats();
  const dist::WireStats wire = router.wire_stats();
  std::printf("[result] %lld/%zu requests OK; routed %lld (p0 %lld, p1 "
              "%lld), rerouted %lld, retries %lld, failed %lld\n",
              static_cast<long long>(ok), futs.size(),
              static_cast<long long>(rs.routed_reqs),
              static_cast<long long>(rs.partitions[0].routed),
              static_cast<long long>(rs.partitions[1].routed),
              static_cast<long long>(rs.rerouted_reqs),
              static_cast<long long>(rs.retries),
              static_cast<long long>(rs.failed_reqs));
  std::printf("[result] fleet wire: %lld B sent / %lld B recv across %lld "
              "frames\n",
              static_cast<long long>(wire.bytes_sent),
              static_cast<long long>(wire.bytes_recv),
              static_cast<long long>(wire.frames_sent));

  // One fleet control tick: rolls the wire/scheduler/pool/router counters
  // into the FleetSnapshot and publishes them as fluid_fleet_* gauges, so
  // the dump assertion below sees the whole re-homed telemetry surface.
  dist::FleetOrchestrator forch(router,
                                {.ha_capacity = 500.0, .ht_capacity = 1000.0});
  forch.Tick(100.0);

  router.Stop();
  for (auto& m : masters) m->StopServing();
  for (auto& w : workers) w->Stop();
  obs::Tracer::Global().SetSampleEvery(0);

  if (rs.partitions[0].routed <= 0 || rs.partitions[1].routed <= 0) {
    std::fprintf(stderr, "error: a partition served no traffic — the hash "
                         "ring is not spreading keys\n");
    return 1;
  }
  if (rs.rerouted_reqs <= 0) {
    std::fprintf(stderr, "error: no request was rerouted — the admission-"
                         "full divert never engaged over TCP\n");
    return 1;
  }
  if (rs.failed_reqs != 0) {
    std::fprintf(stderr, "error: %lld routed requests failed\n",
                 static_cast<long long>(rs.failed_reqs));
    return 1;
  }

  // Observability gate 1: the one-scrape fleet snapshot must carry the
  // re-homed series — wire, scheduler, router rollups and the serving
  // path's per-class histograms.
  const std::string dump = obs::MetricsRegistry::Global().DumpMetrics();
  for (const char* series :
       {"fluid_fleet_wire_frames_sent", "fluid_fleet_sched_completed",
        "fluid_fleet_router_routed_reqs", "fluid_fleet_pool_gets",
        "fluid_sched_queue_wait_ms", "fluid_sched_service_ms",
        "fluid_wire_ms"}) {
    if (dump.find(series) == std::string::npos) {
      std::fprintf(stderr,
                   "error: metrics dump is missing series %s — the fleet "
                   "telemetry re-homing is broken\n",
                   series);
      return 1;
    }
  }

  // Observability gate 2: at least one trace must be COMPLETE across the
  // fleet — dispatched at the router, admitted by a scheduler, its chunk
  // shipped over TCP (wire span), served by a worker (master and workers
  // share this process, so both ends land in the same ring), and the
  // request finalized.
  std::map<std::uint64_t, unsigned> trace_parts;
  std::int64_t spans = 0;
  for (const obs::Span& s : obs::Tracer::Global().Snapshot()) {
    unsigned bit = 0;
    if (std::strcmp(s.name, "router.dispatch") == 0) bit = 1u;
    if (std::strcmp(s.name, "sched.admission") == 0) bit = 2u;
    if (std::strcmp(s.name, "wire") == 0) bit = 4u;
    if (std::strcmp(s.name, "worker.service") == 0) bit = 8u;
    if (std::strcmp(s.name, "sched.request") == 0) bit = 16u;
    trace_parts[s.trace_id] |= bit;
    ++spans;
  }
  std::int64_t complete = 0;
  for (const auto& [id, mask] : trace_parts) {
    if ((mask & 31u) == 31u) ++complete;
  }
  std::printf("[result] observability: %lld spans across %zu traces, %lld "
              "complete router->sched->wire->worker->reply timelines\n",
              static_cast<long long>(spans), trace_parts.size(),
              static_cast<long long>(complete));
  if (complete <= 0) {
    std::fprintf(stderr,
                 "error: no complete cross-node trace — a span stage never "
                 "recorded (router/scheduler/wire/worker/reply)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "routed=1") return RunRoutedFleet();
  }
  core::SetLogLevel(core::LogLevel::kWarn);
  const slim::FluidNetConfig cfg;
  constexpr std::size_t kWorkers = 3;

  std::printf("[setup] training a Fluid DyDNN (small budget)...\n");
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(21);
  const data::Dataset train = data::MakeSyntheticMnist(1200, 11);
  const data::Dataset test = data::MakeSyntheticMnist(400, 12);
  {
    train::NestedIncrementalTrainer trainer(fluid);
    train::NestedTrainOptions topts;
    topts.niters = 2;
    topts.stage.epochs = 1;
    topts.stage.batch_size = 32;
    trainer.Fit(train, nullptr, topts);
  }

  std::printf("[setup] starting %zu workers over loopback TCP...\n",
              kWorkers);
  dist::TcpListener listener(0);
  dist::MasterNode master(cfg);
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    auto master_end = dist::TcpConnect("127.0.0.1", listener.port(), 2000ms);
    auto worker_end = listener.Accept(2000ms);
    master_end.status().ThrowIfError();
    worker_end.status().ThrowIfError();
    workers.push_back(std::make_unique<dist::WorkerNode>(
        "edge-" + std::to_string(i), cfg, std::move(*worker_end)));
    workers.back()->Start();
    master.AttachWorker(std::move(*master_end));
  }

  // Deploy: every worker hosts the standalone upper-50 %; the master keeps
  // the lower-50 % plus the combined pipeline front; worker 0 also hosts
  // the pipeline back for HA mode.
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  auto upper_bp = dist::ModelBlueprint::Standalone(cfg, 8);
  upper_bp.quant.int8_input_wire = true;  // HT input shards cross TCP as v5
  for (std::size_t i = 0; i < kWorkers; ++i) {
    master
        .DeployToWorker("upper50", upper_bp, nn::ExtractState(upper), 2000ms,
                        i)
        .ThrowIfError();
  }
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves = train::SplitConvNet(cfg, 16, combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  auto back_bp = dist::ModelBlueprint::PipelineBack(cfg, 16, 2);
  back_bp.quant.int8_wire = true;  // HA cut activations cross TCP as int8
  master
      .DeployToWorker("back", back_bp, nn::ExtractState(halves.back), 2000ms,
                      0)
      .ThrowIfError();
  master.SetPlan({"lower50", "upper50", "front", "back", 0});

  // The serve core's HA chunk/window knobs live in BatchOptions; a
  // start/stop cycle pins them without leaving the scheduler running, so
  // the inline (sync) Infer path below runs a 16-frame window. With that,
  // a 16-sample HA batch spans two 8-sample cut frames which the pipeline
  // flushes as ONE vectored SendBatch — a single writev on the socket.
  {
    dist::BatchOptions bopts;
    bopts.ha_chunk = 8;
    bopts.ha_window = 16;
    master.StartServing(bopts);
    master.StopServing();
  }

  dist::Orchestrator orchestrator(
      master, {.ha_capacity = 11.1, .ht_capacity = 28.3 * 1.5});

  // Control epochs: (demand, worker to kill beforehand or -1).
  struct Phase {
    double demand;
    int kill;
    const char* note;
  };
  const std::vector<Phase> phases{
      {6.0, -1, "quiet: HA pipeline serves everything"},
      {22.0, -1, "burst: orchestrator flips to HT, fan-out over 4 devices"},
      {22.0, 2, "edge-2 loses power"},
      {22.0, 1, "edge-1 loses power"},
      {22.0, 0, "edge-0 loses power — master alone"},
      {6.0, -1, "load subsides; still serving locally"},
  };

  std::int64_t correct = 0, total = 0;
  for (const auto& phase : phases) {
    if (phase.kill >= 0) {
      workers[static_cast<std::size_t>(phase.kill)]->Crash();
    }
    const auto report = orchestrator.Tick(phase.demand);
    std::map<std::string, int> served;
    const int batch = 12;
    for (int i = 0; i < batch; ++i) {
      const std::int64_t idx = (total + i) % test.size();
      auto reply = master.Infer(test.Image(idx), 500ms);
      reply.status().ThrowIfError();
      ++served[reply->served_by];
      if (core::ArgmaxRows(reply->logits)[0] == test.Label(idx)) ++correct;
    }
    total += batch;
    // While the full fleet is up in HA, one multi-sample request: its 16
    // samples span two cut frames, shipped as a single batched (vectored)
    // send over the socket — the data plane CI asserts on below.
    if (report.mode == sim::Mode::kHighAccuracy &&
        report.alive_workers == kWorkers) {
      const data::Dataset stacked = test.Slice(0, 16);
      auto reply = master.Infer(stacked.images, 2000ms);
      reply.status().ThrowIfError();
      const auto preds = core::ArgmaxRows(reply->logits);
      served[reply->served_by] +=
          static_cast<int>(preds.size());
      for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == stacked.labels[i]) ++correct;
      }
      total += static_cast<std::int64_t>(preds.size());
    }
    std::printf("\n[phase] demand %.0f img/s — %s\n", phase.demand,
                phase.note);
    std::printf("        mode %s, %zu/%zu workers alive%s\n",
                std::string(sim::ModeName(report.mode)).c_str(),
                report.alive_workers, kWorkers,
                report.degraded ? " (degraded: serving locally)" : "");
    for (const auto& [who, count] : served) {
      std::printf("        %-22s %d\n", who.c_str(), count);
    }
  }

  const dist::WireStats wire = master.wire_stats();
  std::printf("\n[result] %lld/%lld correct across the whole degradation "
              "sequence; %lld failovers, %lld orchestrator ticks, %lld mode "
              "switches, %lld int8 cut frames + %lld int8 input frames over "
              "TCP\n",
              static_cast<long long>(correct), static_cast<long long>(total),
              static_cast<long long>(master.stats().failovers),
              static_cast<long long>(orchestrator.ticks()),
              static_cast<long long>(orchestrator.controller().switches()),
              static_cast<long long>(master.stats().quant_cut_frames),
              static_cast<long long>(master.stats().quant_input_frames));
  std::printf("[result] wire: %lld B sent / %lld B recv across %lld frames, "
              "%lld batched sends\n",
              static_cast<long long>(wire.bytes_sent),
              static_cast<long long>(wire.bytes_recv),
              static_cast<long long>(wire.frames_sent),
              static_cast<long long>(wire.batched_sends));
  for (auto& w : workers) w->Stop();
  if (master.stats().quant_cut_frames <= 0) {
    std::fprintf(stderr,
                 "error: HA phase never shipped a quantized cut frame — the "
                 "int8_wire negotiation is broken\n");
    return 1;
  }
  if (master.stats().quant_input_frames <= 0) {
    std::fprintf(stderr,
                 "error: HT fan-out never shipped a quantized input shard "
                 "(wire v5) — the int8_input_wire negotiation is broken\n");
    return 1;
  }
  if (wire.batched_sends <= 0) {
    std::fprintf(stderr,
                 "error: no batched (vectored) send flowed over TCP — the "
                 "pipeline's SendBatch grouping is broken\n");
    return 1;
  }
  return 0;
}
