// TCP cluster: one Master + three Workers over real loopback sockets,
// governed by the Orchestrator — the paper's two-device system scaled to
// the multi-device deployment its introduction motivates.
//
// A demand trace rises past HA capacity (orchestrator flips to HT and the
// input stream fans out over all four devices), then workers are killed
// one by one; the system sheds capacity but never stops serving until the
// master itself is the only survivor.
//
// The HA pipeline back half is deployed with int8_wire negotiated, so the
// quiet phase serves QUANTIZED (wire v3) cut-activation frames over real
// TCP while the standalone slices keep speaking fp32 v2 — this example
// doubles as CI's quantized-HA smoke run.

#include <cstdio>
#include <vector>

#include "core/logging.h"
#include "core/rng.h"
#include "core/tensor_ops.h"
#include "data/synthetic_mnist.h"
#include "dist/master.h"
#include "dist/orchestrator.h"
#include "dist/tcp_transport.h"
#include "dist/worker.h"
#include "slim/fluid_model.h"
#include "train/model_zoo.h"
#include "train/nested_trainer.h"

using namespace fluid;
using namespace std::chrono_literals;

int main() {
  core::SetLogLevel(core::LogLevel::kWarn);
  const slim::FluidNetConfig cfg;
  constexpr std::size_t kWorkers = 3;

  std::printf("[setup] training a Fluid DyDNN (small budget)...\n");
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(21);
  const data::Dataset train = data::MakeSyntheticMnist(1200, 11);
  const data::Dataset test = data::MakeSyntheticMnist(400, 12);
  {
    train::NestedIncrementalTrainer trainer(fluid);
    train::NestedTrainOptions topts;
    topts.niters = 2;
    topts.stage.epochs = 1;
    topts.stage.batch_size = 32;
    trainer.Fit(train, nullptr, topts);
  }

  std::printf("[setup] starting %zu workers over loopback TCP...\n",
              kWorkers);
  dist::TcpListener listener(0);
  dist::MasterNode master(cfg);
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    auto master_end = dist::TcpConnect("127.0.0.1", listener.port(), 2000ms);
    auto worker_end = listener.Accept(2000ms);
    master_end.status().ThrowIfError();
    worker_end.status().ThrowIfError();
    workers.push_back(std::make_unique<dist::WorkerNode>(
        "edge-" + std::to_string(i), cfg, std::move(*worker_end)));
    workers.back()->Start();
    master.AttachWorker(std::move(*master_end));
  }

  // Deploy: every worker hosts the standalone upper-50 %; the master keeps
  // the lower-50 % plus the combined pipeline front; worker 0 also hosts
  // the pipeline back for HA mode.
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  for (std::size_t i = 0; i < kWorkers; ++i) {
    master
        .DeployToWorker("upper50", dist::ModelBlueprint::Standalone(cfg, 8),
                        nn::ExtractState(upper), 2000ms, i)
        .ThrowIfError();
  }
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves = train::SplitConvNet(cfg, 16, combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  auto back_bp = dist::ModelBlueprint::PipelineBack(cfg, 16, 2);
  back_bp.quant.int8_wire = true;  // HA cut activations cross TCP as int8
  master
      .DeployToWorker("back", back_bp, nn::ExtractState(halves.back), 2000ms,
                      0)
      .ThrowIfError();
  master.SetPlan({"lower50", "upper50", "front", "back", 0});

  dist::Orchestrator orchestrator(
      master, {.ha_capacity = 11.1, .ht_capacity = 28.3 * 1.5});

  // Control epochs: (demand, worker to kill beforehand or -1).
  struct Phase {
    double demand;
    int kill;
    const char* note;
  };
  const std::vector<Phase> phases{
      {6.0, -1, "quiet: HA pipeline serves everything"},
      {22.0, -1, "burst: orchestrator flips to HT, fan-out over 4 devices"},
      {22.0, 2, "edge-2 loses power"},
      {22.0, 1, "edge-1 loses power"},
      {22.0, 0, "edge-0 loses power — master alone"},
      {6.0, -1, "load subsides; still serving locally"},
  };

  std::int64_t correct = 0, total = 0;
  for (const auto& phase : phases) {
    if (phase.kill >= 0) {
      workers[static_cast<std::size_t>(phase.kill)]->Crash();
    }
    const auto report = orchestrator.Tick(phase.demand);
    std::map<std::string, int> served;
    const int batch = 12;
    for (int i = 0; i < batch; ++i) {
      const std::int64_t idx = (total + i) % test.size();
      auto reply = master.Infer(test.Image(idx), 500ms);
      reply.status().ThrowIfError();
      ++served[reply->served_by];
      if (core::ArgmaxRows(reply->logits)[0] == test.Label(idx)) ++correct;
    }
    total += batch;
    std::printf("\n[phase] demand %.0f img/s — %s\n", phase.demand,
                phase.note);
    std::printf("        mode %s, %zu/%zu workers alive%s\n",
                std::string(sim::ModeName(report.mode)).c_str(),
                report.alive_workers, kWorkers,
                report.degraded ? " (degraded: serving locally)" : "");
    for (const auto& [who, count] : served) {
      std::printf("        %-22s %d\n", who.c_str(), count);
    }
  }

  std::printf("\n[result] %lld/%lld correct across the whole degradation "
              "sequence; %lld failovers, %lld orchestrator ticks, %lld mode "
              "switches, %lld int8 cut frames over TCP\n",
              static_cast<long long>(correct), static_cast<long long>(total),
              static_cast<long long>(master.stats().failovers),
              static_cast<long long>(orchestrator.ticks()),
              static_cast<long long>(orchestrator.controller().switches()),
              static_cast<long long>(master.stats().quant_cut_frames));
  for (auto& w : workers) w->Stop();
  if (master.stats().quant_cut_frames <= 0) {
    std::fprintf(stderr,
                 "error: HA phase never shipped a quantized cut frame — the "
                 "int8_wire negotiation is broken\n");
    return 1;
  }
  return 0;
}
