#include "slim/partitioned.h"

#include "core/error.h"
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"

namespace fluid::slim {
namespace {

TEST(ConcatChannelsTest, InterleavesPerSample) {
  core::Tensor a = core::Tensor::Full({2, 1, 2, 2}, 1.0F);
  core::Tensor b = core::Tensor::Full({2, 2, 2, 2}, 2.0F);
  core::Tensor c = ConcatChannels(a, b);
  ASSERT_EQ(c.shape(), core::Shape({2, 3, 2, 2}));
  EXPECT_EQ(c({0, 0, 0, 0}), 1.0F);
  EXPECT_EQ(c({0, 1, 0, 0}), 2.0F);
  EXPECT_EQ(c({1, 0, 1, 1}), 1.0F);
  EXPECT_EQ(c({1, 2, 1, 1}), 2.0F);
}

TEST(ConcatChannelsTest, MismatchThrows) {
  EXPECT_THROW(
      ConcatChannels(core::Tensor({1, 1, 2, 2}), core::Tensor({2, 1, 2, 2})),
      core::Error);
  EXPECT_THROW(
      ConcatChannels(core::Tensor({1, 1, 2, 2}), core::Tensor({1, 1, 3, 2})),
      core::Error);
}

TEST(PartitionedRunnerTest, BitExactAgainstCombinedForward) {
  FluidModel model = FluidModel::PaperDefault(99);
  core::Rng rng(5);
  core::Tensor x = core::Tensor::UniformRandom({3, 1, 28, 28}, rng, 0, 1);

  core::Tensor expected =
      model.Forward(model.family().Combined(), x, false);
  PartitionedRunner runner(model);
  PartitionStats stats;
  core::Tensor got = runner.Run(x, &stats);

  // Conv stages are bit-exact; the classifier merge re-associates the
  // float summation (partial products + bias), so allow float-ulp slack.
  EXPECT_LT(core::MaxAbsDiff(got, expected), 1e-5F)
      << "channel-partitioned HA execution diverged from the 100% model";
}

TEST(PartitionedRunnerTest, StatsCountExpectedBytes) {
  FluidModel model = FluidModel::PaperDefault(98);
  core::Rng rng(6);
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  PartitionedRunner runner(model);
  PartitionStats stats;
  runner.Run(x, &stats);

  // input: 28*28*4 = 3136 bytes M→W.
  // after stage 0 (14x14): 8ch*196*4 = 6272 each way.
  // after stage 1 (7x7):   8ch*49*4  = 1568 each way.
  // final partial logits:  10*4      = 40 W→M.
  EXPECT_EQ(stats.bytes_master_to_worker, 3136 + 6272 + 1568);
  EXPECT_EQ(stats.bytes_worker_to_master, 6272 + 1568 + 40);
  EXPECT_EQ(stats.exchanges, 4);
}

TEST(PartitionedRunnerTest, AnalyticStatsMatchMeasured) {
  FluidModel model = FluidModel::PaperDefault(97);
  core::Rng rng(7);
  for (const std::int64_t batch : {1, 4}) {
    core::Tensor x =
        core::Tensor::UniformRandom({batch, 1, 28, 28}, rng, 0, 1);
    PartitionedRunner runner(model);
    PartitionStats measured;
    runner.Run(x, &measured);
    const PartitionStats analytic = runner.AnalyticStats(batch);
    EXPECT_EQ(measured.bytes_master_to_worker,
              analytic.bytes_master_to_worker);
    EXPECT_EQ(measured.bytes_worker_to_master,
              analytic.bytes_worker_to_master);
    EXPECT_EQ(measured.exchanges, analytic.exchanges);
  }
}

TEST(PartitionedRunnerTest, TotalBytesIsSumOfDirections) {
  PartitionStats s;
  s.bytes_master_to_worker = 100;
  s.bytes_worker_to_master = 50;
  EXPECT_EQ(s.total_bytes(), 150);
}

}  // namespace
}  // namespace fluid::slim
