#include "slim/subnet_spec.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::slim {
namespace {

TEST(SubnetFamilyTest, PaperDefaultGeometry) {
  const auto family = SubnetFamily::PaperDefault();
  EXPECT_EQ(family.num_widths(), 4u);
  EXPECT_EQ(family.max_width(), 16);
  EXPECT_EQ(family.split_width(), 8);

  EXPECT_EQ(family.Lower(0).name, "25%");
  EXPECT_EQ(family.Lower(0).range, (ChannelRange{0, 4}));
  EXPECT_EQ(family.Lower(3).name, "100%");
  EXPECT_EQ(family.Lower(3).range, (ChannelRange{0, 16}));

  EXPECT_EQ(family.Upper(2).name, "upper25%");
  EXPECT_EQ(family.Upper(2).range, (ChannelRange{8, 12}));
  EXPECT_TRUE(family.Upper(2).is_upper);
  EXPECT_EQ(family.Upper(3).name, "upper50%");
  EXPECT_EQ(family.Upper(3).range, (ChannelRange{8, 16}));
}

TEST(SubnetFamilyTest, ResidentsAndCombined) {
  const auto family = SubnetFamily::PaperDefault();
  EXPECT_EQ(family.MasterResident().name, "50%");
  EXPECT_EQ(family.WorkerResident().name, "upper50%");
  EXPECT_EQ(family.Combined().name, "100%");
  EXPECT_EQ(family.Combined().range, (ChannelRange{0, 16}));
}

TEST(SubnetFamilyTest, AllListsLowerThenUpper) {
  const auto all = SubnetFamily::PaperDefault().All();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "25%");
  EXPECT_EQ(all[3].name, "100%");
  EXPECT_EQ(all[4].name, "upper25%");
  EXPECT_EQ(all[5].name, "upper50%");
}

TEST(SubnetFamilyTest, ByNameFindsAndThrows) {
  const auto family = SubnetFamily::PaperDefault();
  EXPECT_EQ(family.ByName("upper50%").range, (ChannelRange{8, 16}));
  EXPECT_THROW(family.ByName("60%"), core::Error);
}

TEST(SubnetFamilyTest, UpperFamilyRequiresWidthAboveSplit) {
  const auto family = SubnetFamily::PaperDefault();
  EXPECT_THROW(family.Upper(1), core::Error);
  EXPECT_THROW(family.Upper(0), core::Error);
}

TEST(SubnetFamilyTest, ValidatesWidths) {
  EXPECT_THROW(SubnetFamily({}, 0), core::Error);
  EXPECT_THROW(SubnetFamily({4, 4}, 0), core::Error);
  EXPECT_THROW(SubnetFamily({8, 4}, 0), core::Error);
  EXPECT_THROW(SubnetFamily({-4, 8}, 0), core::Error);
  EXPECT_THROW(SubnetFamily({4, 8}, 2), core::Error);
}

TEST(SubnetFamilyTest, NonPaperFamilyNamesScale) {
  // Six widths with the split in the middle.
  SubnetFamily family({2, 4, 6, 8, 10, 12}, 2);
  EXPECT_EQ(family.Lower(0).name, "17%");
  EXPECT_EQ(family.Lower(5).name, "100%");
  EXPECT_EQ(family.split_width(), 6);
  EXPECT_EQ(family.UpperFamily().size(), 3u);
  EXPECT_EQ(family.Upper(5).range, (ChannelRange{6, 12}));
}

}  // namespace
}  // namespace fluid::slim
