// Finite-difference validation of the slimmable backprop path — the
// gradients that every training schedule in the paper rests on. Checked
// through the full FluidModel (SlimConv2d → LeakyReLU → MaxPool →
// SlimDense → softmax-CE) for each sub-network of the family, including
// the offset upper slices whose indexing is the easiest thing to get
// wrong.

#include <cctype>
#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/conv2d.h"
#include "nn/softmax.h"
#include "slim/fluid_model.h"
#include "test_util.h"

namespace fluid::slim {
namespace {

struct GradCase {
  const char* subnet;
};

class SlimGradientTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(SlimGradientTest, AnalyticMatchesFiniteDifference) {
  // A small-but-real instance: 8×8 images, 2 conv stages, widths {2,4,6}.
  FluidNetConfig cfg;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.num_conv_layers = 2;
  SubnetFamily family({2, 4, 6}, 1);
  core::Rng rng(31);
  FluidModel model(cfg, family, rng);
  const auto spec = family.ByName(GetParam().subnet);

  core::Tensor input = core::Tensor::UniformRandom({3, 1, 8, 8}, rng, -1, 1);
  const std::vector<std::int64_t> labels{0, 1, 2};
  nn::SoftmaxCrossEntropy loss;

  const auto compute_loss = [&] {
    return loss.Forward(model.Forward(spec, input, true), labels);
  };
  compute_loss();
  model.ZeroGrad();
  model.Backward(loss.Backward());

  for (auto& p : model.Params()) {
    // Only check elements the slice actually uses; untouched regions are
    // covered by the confinement tests.
    fluid::testing::ExpectGradientsMatch(*p.value, *p.grad, compute_loss, 16);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSubnets, SlimGradientTest,
    ::testing::Values(GradCase{"33%"}, GradCase{"67%"}, GradCase{"100%"},
                      GradCase{"upper33%"}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      std::string name = info.param.subnet;
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

struct SliceCase {
  std::int64_t in_lo, in_hi, out_lo, out_hi;
};

class SliceEquivalenceTest : public ::testing::TestWithParam<SliceCase> {};

TEST_P(SliceEquivalenceTest, SliceForwardEqualsPackedConv) {
  const auto c = GetParam();
  core::Rng rng(17);
  SlimConv2d slim(8, 8, 3, 1, 1, rng, "s");
  const ChannelRange in{c.in_lo, c.in_hi}, out{c.out_lo, c.out_hi};
  core::Tensor x =
      core::Tensor::UniformRandom({2, in.width(), 6, 6}, rng, -1, 1);

  core::Tensor by_slice = slim.Forward(x, in, out, false);

  core::Rng dummy(0);
  nn::Conv2d packed(in.width(), out.width(), 3, 1, 1, dummy, "p");
  packed.weight() = slim.PackWeight(in, out);
  packed.bias() = slim.PackBias(out);
  EXPECT_LT(core::MaxAbsDiff(by_slice, packed.Forward(x, false)), 1e-6F)
      << "slice in" << in.ToString() << " out" << out.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    SliceGrid, SliceEquivalenceTest,
    ::testing::Values(SliceCase{0, 8, 0, 8},    // full
                      SliceCase{0, 4, 0, 4},    // lower half
                      SliceCase{4, 8, 4, 8},    // upper half
                      SliceCase{2, 6, 1, 7},    // misaligned
                      SliceCase{0, 1, 7, 8},    // minimal corners
                      SliceCase{3, 4, 0, 8},    // single input channel
                      SliceCase{0, 8, 3, 4}));  // single output channel

}  // namespace
}  // namespace fluid::slim
