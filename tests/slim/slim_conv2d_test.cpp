#include "slim/slim_conv2d.h"

#include "core/error.h"
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/conv2d.h"

namespace fluid::slim {
namespace {

TEST(SlimConv2dTest, FullSliceMatchesPlainConv2d) {
  core::Rng rng1(11), rng2(11);
  SlimConv2d slim(3, 4, 3, 1, 1, rng1, "s");
  nn::Conv2d plain(3, 4, 3, 1, 1, rng2, "p");
  // Same seed → same Kaiming init because both draw the identical stream.
  core::Tensor x = core::Tensor::UniformRandom({2, 3, 6, 6}, rng1, -1, 1);
  core::Tensor a = slim.Forward(x, {0, 3}, {0, 4}, false);
  core::Tensor b = plain.Forward(x, false);
  EXPECT_LT(core::MaxAbsDiff(a, b), 1e-6F);
}

TEST(SlimConv2dTest, SliceEqualsPackedStandaloneConv) {
  core::Rng rng(12);
  SlimConv2d slim(8, 8, 3, 1, 1, rng, "s");
  const ChannelRange in{2, 6}, out{4, 8};
  core::Tensor x = core::Tensor::UniformRandom({1, 4, 5, 5}, rng, -1, 1);

  core::Tensor slice_out = slim.Forward(x, in, out, false);

  core::Rng dummy(0);
  nn::Conv2d packed(4, 4, 3, 1, 1, dummy, "p");
  packed.weight() = slim.PackWeight(in, out);
  packed.bias() = slim.PackBias(out);
  core::Tensor packed_out = packed.Forward(x, false);

  EXPECT_LT(core::MaxAbsDiff(slice_out, packed_out), 1e-6F);
}

TEST(SlimConv2dTest, BackwardTouchesOnlySliceGradients) {
  core::Rng rng(13);
  SlimConv2d slim(8, 8, 3, 1, 1, rng, "s");
  const ChannelRange in{0, 4}, out{4, 8};
  core::Tensor x = core::Tensor::UniformRandom({1, 4, 5, 5}, rng, -1, 1);
  core::Tensor y = slim.Forward(x, in, out, true);
  slim.Backward(core::Tensor::Ones(y.shape()));

  const auto params = slim.Params();
  const core::Tensor& wg = *params[0].grad;
  const core::Tensor& bg = *params[1].grad;
  const core::Tensor wmask = ConvSliceMask(8, 8, 3, in, out);
  for (std::int64_t i = 0; i < wg.numel(); ++i) {
    if (wmask.at(i) == 0.0F) {
      EXPECT_EQ(wg.at(i), 0.0F) << "gradient leaked outside slice at " << i;
    }
  }
  for (std::int64_t c = 0; c < 8; ++c) {
    if (c < out.lo || c >= out.hi) EXPECT_EQ(bg.at(c), 0.0F);
  }
  // And the slice region is non-trivially populated.
  EXPECT_GT(core::Norm(wg), 0.0);
  EXPECT_GT(core::Norm(bg), 0.0);
}

TEST(SlimConv2dTest, PackUnpackRoundTrip) {
  core::Rng rng(14);
  SlimConv2d slim(8, 8, 3, 1, 1, rng, "s");
  const ChannelRange in{2, 6}, out{1, 7};
  const core::Tensor w = slim.PackWeight(in, out);
  const core::Tensor b = slim.PackBias(out);

  core::Rng rng2(999);
  SlimConv2d other(8, 8, 3, 1, 1, rng2, "o");
  other.UnpackWeight(w, in, out);
  other.UnpackBias(b, out);
  EXPECT_TRUE(core::AllClose(other.PackWeight(in, out), w));
  EXPECT_TRUE(core::AllClose(other.PackBias(out), b));
}

TEST(SlimConv2dTest, UnpackLeavesOutsideUntouched) {
  core::Rng rng(15);
  SlimConv2d slim(4, 4, 3, 1, 1, rng, "s");
  const float before = slim.weight().at(0);  // (out 0, in 0) — outside below
  core::Tensor patch = core::Tensor::Ones({2, 2, 3, 3});
  slim.UnpackWeight(patch, {2, 4}, {2, 4});
  EXPECT_EQ(slim.weight().at(0), before);
  EXPECT_EQ(slim.weight()({3, 3, 0, 0}), 1.0F);
}

TEST(SlimConv2dTest, InputWidthMismatchThrows) {
  core::Rng rng(16);
  SlimConv2d slim(8, 8, 3, 1, 1, rng, "s");
  core::Tensor x({1, 3, 5, 5});
  EXPECT_THROW(slim.Forward(x, {0, 4}, {0, 4}, false), core::Error);
}

TEST(SlimConv2dTest, SliceFlopsScaleWithWidths) {
  core::Rng rng(17);
  SlimConv2d slim(16, 16, 3, 1, 1, rng, "s");
  const auto full = slim.SliceFlops({0, 16}, {0, 16}, 28, 28);
  const auto half = slim.SliceFlops({0, 8}, {0, 8}, 28, 28);
  EXPECT_EQ(full, 4 * half);  // both fan-in and fan-out halve
}

TEST(SlimConv2dTest, BackwardWithoutForwardThrows) {
  core::Rng rng(18);
  SlimConv2d slim(2, 2, 3, 1, 1, rng, "s");
  EXPECT_THROW(slim.Backward(core::Tensor({1, 2, 4, 4})), core::Error);
}

}  // namespace
}  // namespace fluid::slim
