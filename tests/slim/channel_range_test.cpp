#include "slim/channel_range.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/tensor_ops.h"

namespace fluid::slim {
namespace {

TEST(ChannelRangeTest, BasicsAndPredicates) {
  ChannelRange r{4, 12};
  EXPECT_EQ(r.width(), 8);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.Contains({4, 12}));
  EXPECT_TRUE(r.Contains({6, 8}));
  EXPECT_FALSE(r.Contains({0, 8}));
  EXPECT_TRUE(r.Overlaps({0, 5}));
  EXPECT_FALSE(r.Overlaps({0, 4}));   // half-open: touching is disjoint
  EXPECT_FALSE(r.Overlaps({12, 16}));
  EXPECT_EQ(r.ToString(), "[4,12)");
}

TEST(ChannelRangeTest, CheckRangeValidation) {
  EXPECT_NO_THROW(CheckRange({0, 16}, 16, "t"));
  EXPECT_THROW(CheckRange({0, 17}, 16, "t"), core::Error);
  EXPECT_THROW(CheckRange({-1, 4}, 16, "t"), core::Error);
  EXPECT_THROW(CheckRange({4, 4}, 16, "t"), core::Error);
  EXPECT_THROW(CheckRange({8, 4}, 16, "t"), core::Error);
}

TEST(ConvSliceMaskTest, MarksExactlyTheSlice) {
  const core::Tensor mask = ConvSliceMask(4, 3, 2, {1, 3}, {2, 4});
  // ones = out channels {2,3} × in channels {1,2} × 2×2 kernel = 16.
  EXPECT_DOUBLE_EQ(core::Sum(mask), 16.0);
  EXPECT_EQ(mask({2, 1, 0, 0}), 1.0F);
  EXPECT_EQ(mask({2, 0, 0, 0}), 0.0F);  // in channel 0 outside
  EXPECT_EQ(mask({1, 1, 0, 0}), 0.0F);  // out channel 1 outside
  EXPECT_EQ(mask({3, 2, 1, 1}), 1.0F);
}

TEST(DenseSliceMaskTest, RowAndColumnBlock) {
  const core::Tensor mask = DenseSliceMask(4, 6, {2, 5}, {1, 3});
  EXPECT_DOUBLE_EQ(core::Sum(mask), 6.0);  // 2 rows × 3 cols
  EXPECT_EQ(mask({1, 2}), 1.0F);
  EXPECT_EQ(mask({1, 5}), 0.0F);
  EXPECT_EQ(mask({0, 3}), 0.0F);
  EXPECT_EQ(mask({2, 4}), 1.0F);
}

TEST(BiasSliceMaskTest, MarksRange) {
  const core::Tensor mask = BiasSliceMask(5, {1, 3});
  EXPECT_EQ(mask.at(0), 0.0F);
  EXPECT_EQ(mask.at(1), 1.0F);
  EXPECT_EQ(mask.at(2), 1.0F);
  EXPECT_EQ(mask.at(3), 0.0F);
}

TEST(MaskSubtractTest, RemovesInnerBlock) {
  core::Tensor a = BiasSliceMask(8, {0, 8});
  const core::Tensor b = BiasSliceMask(8, {0, 4});
  MaskSubtract(a, b);
  EXPECT_DOUBLE_EQ(core::Sum(a), 4.0);
  EXPECT_EQ(a.at(0), 0.0F);
  EXPECT_EQ(a.at(4), 1.0F);
}

TEST(MaskSubtractTest, ShapeMismatchThrows) {
  core::Tensor a({4});
  const core::Tensor b({5});
  EXPECT_THROW(MaskSubtract(a, b), core::Error);
}

}  // namespace
}  // namespace fluid::slim
