#include "slim/slim_dense.h"

#include "core/error.h"
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/dense.h"

namespace fluid::slim {
namespace {

TEST(SlimDenseTest, FullSliceMatchesPlainDense) {
  core::Rng rng1(21), rng2(21);
  SlimDense slim(6, 4, rng1, "s");
  nn::Dense plain(6, 4, rng2, "p");
  core::Tensor x = core::Tensor::UniformRandom({3, 6}, rng1, -1, 1);
  core::Tensor a = slim.Forward(x, {0, 6}, {0, 4}, false);
  core::Tensor b = plain.Forward(x, false);
  EXPECT_LT(core::MaxAbsDiff(a, b), 1e-6F);
}

TEST(SlimDenseTest, ColumnSliceUsesOnlyThoseColumns) {
  core::Rng rng(22);
  SlimDense slim(8, 2, rng, "s");
  // Zero all weights except the column block [4, 8).
  slim.weight().Zero();
  for (std::int64_t o = 0; o < 2; ++o) {
    for (std::int64_t i = 4; i < 8; ++i) slim.weight()({o, i}) = 1.0F;
  }
  slim.bias().Zero();
  core::Tensor x = core::Tensor::Ones({1, 4});
  core::Tensor y = slim.Forward(x, {4, 8}, {0, 2}, false);
  EXPECT_NEAR(y.at(0), 4.0F, 1e-6F);
  EXPECT_NEAR(y.at(1), 4.0F, 1e-6F);
}

TEST(SlimDenseTest, PartialProductSkipsBias) {
  core::Rng rng(23);
  SlimDense slim(4, 2, rng, "s");
  slim.bias() = core::Tensor(core::Shape{2}, {10.0F, 20.0F});
  core::Tensor x = core::Tensor::Zeros({1, 4});
  core::Tensor with_bias = slim.Forward(x, {0, 4}, {0, 2}, false, true);
  core::Tensor without = slim.Forward(x, {0, 4}, {0, 2}, false, false);
  EXPECT_NEAR(with_bias.at(0), 10.0F, 1e-6F);
  EXPECT_EQ(without.at(0), 0.0F);
}

TEST(SlimDenseTest, PartialSumsReconstructFullProduct) {
  // The HA-mode merge: lower-cols partial (with bias) + upper-cols partial
  // (without bias) must equal the full product.
  core::Rng rng(24);
  SlimDense slim(8, 3, rng, "s");
  core::Tensor x = core::Tensor::UniformRandom({2, 8}, rng, -1, 1);
  core::Tensor full = slim.Forward(x, {0, 8}, {0, 3}, false);

  core::Tensor xlo({2, 4}), xhi({2, 4});
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t i = 0; i < 4; ++i) {
      xlo({n, i}) = x({n, i});
      xhi({n, i}) = x({n, i + 4});
    }
  }
  core::Tensor plo = slim.Forward(xlo, {0, 4}, {0, 3}, false, true);
  core::Tensor phi = slim.Forward(xhi, {4, 8}, {0, 3}, false, false);
  EXPECT_LT(core::MaxAbsDiff(core::Add(plo, phi), full), 1e-5F);
}

TEST(SlimDenseTest, BackwardConfinedToSlice) {
  core::Rng rng(25);
  SlimDense slim(8, 4, rng, "s");
  const ChannelRange in{2, 6}, out{1, 3};
  core::Tensor x = core::Tensor::UniformRandom({2, 4}, rng, -1, 1);
  core::Tensor y = slim.Forward(x, in, out, true);
  slim.Backward(core::Tensor::Ones(y.shape()));

  const core::Tensor& wg = *slim.Params()[0].grad;
  const core::Tensor mask = DenseSliceMask(4, 8, in, out);
  for (std::int64_t i = 0; i < wg.numel(); ++i) {
    if (mask.at(i) == 0.0F) EXPECT_EQ(wg.at(i), 0.0F);
  }
  EXPECT_GT(core::Norm(wg), 0.0);
  const core::Tensor& bg = *slim.Params()[1].grad;
  EXPECT_EQ(bg.at(0), 0.0F);
  EXPECT_NE(bg.at(1), 0.0F);
  EXPECT_EQ(bg.at(3), 0.0F);
}

TEST(SlimDenseTest, PackUnpackRoundTrip) {
  core::Rng rng(26);
  SlimDense a(8, 4, rng, "a");
  core::Rng rng2(27);
  SlimDense b(8, 4, rng2, "b");
  const ChannelRange in{1, 5}, out{0, 4};
  b.UnpackWeight(a.PackWeight(in, out), in, out);
  b.UnpackBias(a.PackBias(out), out);
  EXPECT_TRUE(core::AllClose(a.PackWeight(in, out), b.PackWeight(in, out)));
}

TEST(SlimDenseTest, InputWidthMismatchThrows) {
  core::Rng rng(28);
  SlimDense slim(8, 4, rng, "s");
  EXPECT_THROW(slim.Forward(core::Tensor({1, 3}), {0, 4}, {0, 4}, false),
               core::Error);
}

}  // namespace
}  // namespace fluid::slim
