// Family-wide property sweeps: invariants that must hold for every width
// family, not just the paper's. Parameterized over family geometries.

#include <cctype>
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "slim/fluid_model.h"

namespace fluid::slim {
namespace {

struct FamilyCase {
  const char* label;
  std::vector<std::int64_t> widths;
  std::size_t split;
};

class FamilyPropertyTest : public ::testing::TestWithParam<FamilyCase> {
 protected:
  static FluidNetConfig SmallConfig() {
    FluidNetConfig cfg;
    cfg.image_size = 12;
    cfg.num_conv_layers = 2;
    cfg.num_classes = 4;
    return cfg;
  }
};

TEST_P(FamilyPropertyTest, EveryExtractedSubnetMatchesItsSlice) {
  const auto& fc = GetParam();
  SubnetFamily family(fc.widths, fc.split);
  core::Rng rng(41);
  FluidModel model(SmallConfig(), family, rng);
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 12, 12}, rng, -1, 1);
  for (const auto& spec : family.All()) {
    nn::Sequential extracted = model.ExtractSubnet(spec);
    EXPECT_EQ(core::MaxAbsDiff(model.Forward(spec, x, false),
                               extracted.Forward(x, false)),
              0.0F)
        << spec.ToString();
  }
}

TEST_P(FamilyPropertyTest, MaskBlocksPartitionEachNestedSlice) {
  // For nested lower specs, mask(k) must strictly contain mask(k-1), and
  // mask(k) minus frozen(k-1) plus mask(k-1) must reassemble mask(k).
  const auto& fc = GetParam();
  SubnetFamily family(fc.widths, fc.split);
  core::Rng rng(42);
  FluidModel model(SmallConfig(), family, rng);
  const auto lower = family.LowerFamily();
  for (std::size_t i = 1; i < lower.size(); ++i) {
    const auto whole =
        model.TrainableMasks(lower[i], std::nullopt, false);
    const auto exclusive =
        model.TrainableMasks(lower[i], lower[i - 1], false);
    const auto inner =
        model.TrainableMasks(lower[i - 1], std::nullopt, false);
    for (const auto& [name, whole_mask] : whole) {
      const auto& excl = exclusive.at(name);
      const auto& in = inner.at(name);
      for (std::int64_t j = 0; j < whole_mask.numel(); ++j) {
        // Partition: whole = exclusive ∪ inner, disjointly.
        EXPECT_EQ(whole_mask.at(j), std::min(1.0F, excl.at(j) + in.at(j)))
            << name << " at " << j << " (stage " << lower[i].name << ")";
        EXPECT_EQ(excl.at(j) * in.at(j), 0.0F)
            << name << " blocks overlap at " << j;
      }
    }
  }
}

TEST_P(FamilyPropertyTest, FlopsAndBytesMonotoneInWidth) {
  const auto& fc = GetParam();
  SubnetFamily family(fc.widths, fc.split);
  core::Rng rng(43);
  FluidModel model(SmallConfig(), family, rng);
  std::int64_t prev_flops = 0, prev_bytes = 0;
  for (const auto& spec : family.LowerFamily()) {
    EXPECT_GT(model.SubnetFlops(spec), prev_flops);
    EXPECT_GT(model.SubnetParamBytes(spec), prev_bytes);
    prev_flops = model.SubnetFlops(spec);
    prev_bytes = model.SubnetParamBytes(spec);
  }
}

TEST_P(FamilyPropertyTest, UpperSlicesDisjointFromMasterResident) {
  const auto& fc = GetParam();
  SubnetFamily family(fc.widths, fc.split);
  const auto master = family.MasterResident();
  for (const auto& u : family.UpperFamily()) {
    EXPECT_FALSE(u.range.Overlaps(master.range))
        << u.ToString() << " overlaps " << master.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyPropertyTest,
    ::testing::Values(FamilyCase{"paper_like", {2, 4, 6, 8}, 1},
                      FamilyCase{"two_widths", {3, 7}, 0},
                      FamilyCase{"many_widths", {1, 2, 3, 4, 5, 6}, 2},
                      FamilyCase{"uneven", {2, 3, 8}, 1}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace fluid::slim
