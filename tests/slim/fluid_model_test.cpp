#include "slim/fluid_model.h"

#include "core/error.h"
#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/optimizer.h"
#include "nn/softmax.h"

namespace fluid::slim {
namespace {

class FluidModelTest : public ::testing::Test {
 protected:
  FluidModelTest() : model_(FluidModel::PaperDefault(7)), rng_(123) {}
  FluidModel model_;
  core::Rng rng_;
};

TEST_F(FluidModelTest, ConfigGeometryMatchesPaper) {
  const auto& cfg = model_.config();
  EXPECT_EQ(cfg.SpatialAfter(0), 14);
  EXPECT_EQ(cfg.SpatialAfter(1), 7);
  EXPECT_EQ(cfg.SpatialAfter(2), 3);
  EXPECT_EQ(cfg.FeaturesPerChannel(), 9);
}

TEST_F(FluidModelTest, EverySubnetProducesLogits) {
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 28, 28}, rng_, 0, 1);
  for (const auto& spec : model_.family().All()) {
    core::Tensor logits = model_.Forward(spec, x, false);
    EXPECT_EQ(logits.shape(), core::Shape({2, 10})) << spec.ToString();
  }
}

TEST_F(FluidModelTest, ExtractedSubnetIsBitIdentical) {
  core::Tensor x = core::Tensor::UniformRandom({3, 1, 28, 28}, rng_, 0, 1);
  for (const auto& spec : model_.family().All()) {
    nn::Sequential standalone = model_.ExtractSubnet(spec);
    core::Tensor a = model_.Forward(spec, x, false);
    core::Tensor b = standalone.Forward(x, false);
    EXPECT_EQ(core::MaxAbsDiff(a, b), 0.0F)
        << "extracted " << spec.ToString() << " diverged";
  }
}

TEST_F(FluidModelTest, ImportSubnetRoundTripsThroughExtract) {
  const auto spec = model_.family().ByName("upper50%");
  nn::Sequential standalone = model_.ExtractSubnet(spec);
  // Perturb the standalone model, import, re-extract: must match.
  for (auto& p : standalone.Params()) {
    for (auto& v : p.value->data()) v += 0.25F;
  }
  model_.ImportSubnet(spec, standalone);
  nn::Sequential again = model_.ExtractSubnet(spec);
  for (std::size_t i = 0; i < again.Params().size(); ++i) {
    EXPECT_TRUE(core::AllClose(*again.Params()[i].value,
                               *standalone.Params()[i].value));
  }
}

TEST_F(FluidModelTest, ImportDoesNotTouchDisjointSlices) {
  const auto upper = model_.family().ByName("upper50%");
  const auto lower = model_.family().ByName("50%");
  nn::Sequential lower_before = model_.ExtractSubnet(lower);

  nn::Sequential standalone = model_.ExtractSubnet(upper);
  for (auto& p : standalone.Params()) {
    for (auto& v : p.value->data()) v += 1.0F;
  }
  model_.ImportSubnet(upper, standalone);

  // Conv weights of the lower model are untouched; its classifier bias is
  // shared with the whole family (and was deliberately overwritten by the
  // import), so compare everything except fc.bias.
  nn::Sequential lower_after = model_.ExtractSubnet(lower);
  const auto before = lower_before.Params();
  const auto after = lower_after.Params();
  for (std::size_t i = 0; i + 1 < before.size(); ++i) {
    EXPECT_TRUE(core::AllClose(*before[i].value, *after[i].value))
        << before[i].name;
  }
}

TEST_F(FluidModelTest, BackwardConfinesGradientsToSlice) {
  const auto spec = model_.family().ByName("upper25%");
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 28, 28}, rng_, 0, 1);
  nn::SoftmaxCrossEntropy loss;
  model_.ZeroGrad();
  loss.Forward(model_.Forward(spec, x, true), {1, 2});
  model_.Backward(loss.Backward());

  // conv2 weight grads must live in rows/cols [8, 12).
  const auto params = model_.Params();
  for (const auto& p : params) {
    if (p.name != "conv2.weight") continue;
    for (std::int64_t o = 0; o < 16; ++o) {
      for (std::int64_t i = 0; i < 16; ++i) {
        const bool inside = o >= 8 && o < 12 && i >= 8 && i < 12;
        float norm = 0;
        for (std::int64_t k = 0; k < 9; ++k) {
          norm += std::fabs(p.grad->at((o * 16 + i) * 9 + k));
        }
        if (!inside) {
          EXPECT_EQ(norm, 0.0F) << "grad leak at out " << o << " in " << i;
        }
      }
    }
  }
}

TEST_F(FluidModelTest, TrainableMasksFreezeNestedSlice) {
  const auto& family = model_.family();
  const auto masks = model_.TrainableMasks(
      family.ByName("50%"), family.ByName("25%"), /*train_head_bias=*/false);
  const auto& c2 = masks.at("conv2.weight");
  // Inside 25% block: frozen.
  EXPECT_EQ(c2({0, 0, 0, 0}), 0.0F);
  EXPECT_EQ(c2({3, 3, 1, 1}), 0.0F);
  // New 50% block: trainable.
  EXPECT_EQ(c2({5, 5, 0, 0}), 1.0F);
  EXPECT_EQ(c2({5, 1, 0, 0}), 1.0F);  // new row, old column
  EXPECT_EQ(c2({1, 5, 0, 0}), 1.0F);  // old row, new column
  // Outside the 50% slice entirely: not trainable.
  EXPECT_EQ(c2({9, 0, 0, 0}), 0.0F);
  // Head bias frozen as requested.
  EXPECT_DOUBLE_EQ(core::Sum(masks.at("fc.bias")), 0.0);
}

TEST_F(FluidModelTest, TrainableMasksUpperSliceDisjointFromLower) {
  const auto& family = model_.family();
  const auto masks = model_.TrainableMasks(family.ByName("upper50%"),
                                           std::nullopt, false);
  const auto& c2 = masks.at("conv2.weight");
  EXPECT_EQ(c2({8, 8, 0, 0}), 1.0F);
  EXPECT_EQ(c2({8, 0, 0, 0}), 0.0F);  // upper rows never read lower cols
  EXPECT_EQ(c2({0, 0, 0, 0}), 0.0F);
  // conv1 consumes the image, so its input range is the image channel.
  const auto& c1 = masks.at("conv1.weight");
  EXPECT_EQ(c1({8, 0, 0, 0}), 1.0F);
  EXPECT_EQ(c1({0, 0, 0, 0}), 0.0F);
}

TEST_F(FluidModelTest, MaskedTrainingPreservesFrozenSubnetExactly) {
  const auto& family = model_.family();
  const auto spec25 = family.ByName("25%");
  const auto spec50 = family.ByName("50%");
  core::Tensor x = core::Tensor::UniformRandom({4, 1, 28, 28}, rng_, 0, 1);
  const std::vector<std::int64_t> labels{0, 1, 2, 3};

  core::Tensor logits25_before = model_.Forward(spec25, x, false);

  nn::Sgd sgd(0.05F);
  for (auto& [name, mask] :
       model_.TrainableMasks(spec50, spec25, /*train_head_bias=*/false)) {
    sgd.SetMask(name, std::move(mask));
  }
  nn::SoftmaxCrossEntropy loss;
  const auto params = model_.Params();
  for (int step = 0; step < 5; ++step) {
    model_.ZeroGrad();
    loss.Forward(model_.Forward(spec50, x, true), labels);
    model_.Backward(loss.Backward());
    sgd.Step(params);
  }

  core::Tensor logits25_after = model_.Forward(spec25, x, false);
  EXPECT_EQ(core::MaxAbsDiff(logits25_before, logits25_after), 0.0F)
      << "frozen 25% sub-network drifted during 50% training";
}

TEST_F(FluidModelTest, SubnetFlopsMonotoneInWidth) {
  const auto& family = model_.family();
  std::int64_t prev = 0;
  for (const auto& spec : family.LowerFamily()) {
    const auto flops = model_.SubnetFlops(spec);
    EXPECT_GT(flops, prev);
    prev = flops;
  }
  // Upper50 has the same width as 50%, so identical cost structure except
  // equal — both 8-channel models.
  EXPECT_EQ(model_.SubnetFlops(family.ByName("upper50%")),
            model_.SubnetFlops(family.ByName("50%")));
}

TEST_F(FluidModelTest, SubnetParamBytesMatchExtractedModel) {
  for (const auto& spec : model_.family().All()) {
    nn::Sequential extracted = model_.ExtractSubnet(spec);
    std::int64_t count = 0;
    for (auto& p : extracted.Params()) count += p.value->numel();
    EXPECT_EQ(model_.SubnetParamBytes(spec),
              count * static_cast<std::int64_t>(sizeof(float)))
        << spec.ToString();
  }
}

TEST_F(FluidModelTest, BackwardWithoutForwardThrows) {
  EXPECT_THROW(model_.Backward(core::Tensor({1, 10})), core::Error);
}

TEST_F(FluidModelTest, ParamsExposeFullWidthStores) {
  const auto params = model_.Params();
  ASSERT_EQ(params.size(), 8u);  // 3 convs + fc, weight+bias each
  EXPECT_EQ(params[0].name, "conv1.weight");
  EXPECT_EQ(params[0].value->shape(), core::Shape({16, 1, 3, 3}));
  EXPECT_EQ(params[6].name, "fc.weight");
  EXPECT_EQ(params[6].value->shape(), core::Shape({10, 144}));
}

}  // namespace
}  // namespace fluid::slim
