#include "slim/model_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"

namespace fluid::slim {
namespace {

TEST(ModelIoTest, SerializeParseRoundTripPreservesEverything) {
  FluidModel original = FluidModel::PaperDefault(77);
  const auto bytes = SerializeFluidModel(original);
  auto parsed = ParseFluidModel(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->config().image_size, 28);
  EXPECT_EQ(parsed->family().max_width(), 16);
  EXPECT_EQ(parsed->family().split_width(), 8);

  core::Rng rng(5);
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 28, 28}, rng, 0, 1);
  for (const auto& spec : original.family().All()) {
    EXPECT_EQ(core::MaxAbsDiff(original.Forward(spec, x, false),
                               parsed->Forward(spec, x, false)),
              0.0F)
        << spec.ToString();
  }
}

TEST(ModelIoTest, NonDefaultConfigRoundTrips) {
  FluidNetConfig cfg;
  cfg.image_size = 16;
  cfg.num_conv_layers = 2;
  cfg.relu_leak = 0.05F;
  SubnetFamily family({2, 4, 6}, 1);
  core::Rng rng(3);
  FluidModel original(cfg, family, rng);

  auto parsed = ParseFluidModel(SerializeFluidModel(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->config().num_conv_layers, 2);
  EXPECT_EQ(parsed->config().relu_leak, 0.05F);
  EXPECT_EQ(parsed->family().widths(), (std::vector<std::int64_t>{2, 4, 6}));
  EXPECT_EQ(parsed->family().split_index(), 1u);
}

TEST(ModelIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fluid_model_io_test.bin";
  FluidModel original = FluidModel::PaperDefault(88);
  ASSERT_TRUE(SaveFluidModel(original, path).ok());
  auto loaded = LoadFluidModel(path);
  ASSERT_TRUE(loaded.ok());
  core::Rng rng(6);
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  const auto spec = original.family().Combined();
  EXPECT_EQ(core::MaxAbsDiff(original.Forward(spec, x, false),
                             loaded->Forward(spec, x, false)),
            0.0F);
  std::remove(path.c_str());
}

TEST(ModelIoTest, BadMagicRejected) {
  std::vector<std::uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(ParseFluidModel(garbage).status().code(),
            core::StatusCode::kDataLoss);
}

TEST(ModelIoTest, TruncatedPayloadRejected) {
  FluidModel original = FluidModel::PaperDefault(99);
  auto bytes = SerializeFluidModel(original);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(ParseFluidModel(bytes).ok());
}

TEST(ModelIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadFluidModel("/no/such/fluid_model.bin").status().code(),
            core::StatusCode::kNotFound);
}

}  // namespace
}  // namespace fluid::slim
