#include "core/logging.h"

#include <gtest/gtest.h>

namespace fluid::core {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelGateControlsEmission) {
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(detail::LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(detail::LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(detail::LogEnabled(LogLevel::kError));

  SetLogLevel(LogLevel::kTrace);
  EXPECT_TRUE(detail::LogEnabled(LogLevel::kDebug));

  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(detail::LogEnabled(LogLevel::kError));
}

TEST_F(LoggingTest, GetterReflectsSetter) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, NamesAreStable) {
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST_F(LoggingTest, MacroSkipsDisabledLevelsWithoutEvaluating) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  FLUID_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  FLUID_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace fluid::core
