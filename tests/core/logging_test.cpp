#include "core/logging.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace fluid::core {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelGateControlsEmission) {
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(detail::LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(detail::LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(detail::LogEnabled(LogLevel::kError));

  SetLogLevel(LogLevel::kTrace);
  EXPECT_TRUE(detail::LogEnabled(LogLevel::kDebug));

  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(detail::LogEnabled(LogLevel::kError));
}

TEST_F(LoggingTest, GetterReflectsSetter) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, NamesAreStable) {
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST_F(LoggingTest, MacroSkipsDisabledLevelsWithoutEvaluating) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  FLUID_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  FLUID_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, WithRendersKeyValueFieldsAfterFreeText) {
  SetLogLevel(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  FLUID_LOG(Warn).With("event", "stale_reply").With("seq", 17)
      << "dropping reply";
  const std::string out = ::testing::internal::GetCapturedStderr();
  // Free text first, then the structured fields in call order.
  const auto text = out.find("dropping reply");
  const auto ev = out.find("event=stale_reply");
  const auto seq = out.find("seq=17");
  ASSERT_NE(text, std::string::npos) << out;
  ASSERT_NE(ev, std::string::npos) << out;
  ASSERT_NE(seq, std::string::npos) << out;
  EXPECT_LT(text, ev);
  EXPECT_LT(ev, seq);
}

TEST_F(LoggingTest, WithIsSkippedEntirelyBelowTheLevelGate) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 1;
  };
  FLUID_LOG(Warn).With("n", expensive()) << "quiet";
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsAnyCaseAndRejectsJunk) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("info", level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("WARN", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("Debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("trace", level));
  EXPECT_EQ(level, LogLevel::kTrace);
  EXPECT_TRUE(ParseLogLevel("error", level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", level));
  EXPECT_EQ(level, LogLevel::kOff);

  level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("loud", level));
  EXPECT_FALSE(ParseLogLevel("", level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

TEST_F(LoggingTest, EnvOverrideAppliesValidLevelsAndIgnoresJunk) {
  ASSERT_EQ(setenv("FLUID_LOG_LEVEL", "debug", 1), 0);
  ApplyLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);

  // An unrecognised value leaves the current level alone.
  SetLogLevel(LogLevel::kInfo);
  ASSERT_EQ(setenv("FLUID_LOG_LEVEL", "shouty", 1), 0);
  ::testing::internal::CaptureStderr();  // swallow the warning it prints
  ApplyLogLevelFromEnv();
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);

  // Unset: no-op.
  ASSERT_EQ(unsetenv("FLUID_LOG_LEVEL"), 0);
  ApplyLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace fluid::core
