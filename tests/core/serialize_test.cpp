#include "core/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace fluid::core {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  ByteWriter w;
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteU64(0xDEADBEEFCAFEF00DULL);
  w.WriteI64(-42);
  w.WriteF32(3.25F);
  w.WriteF64(-1.5e300);

  ByteReader r(w.buffer());
  EXPECT_EQ(r.ReadU8(), 7);
  EXPECT_EQ(r.ReadU32(), 123456u);
  EXPECT_EQ(r.ReadU64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadF32(), 3.25F);
  EXPECT_EQ(r.ReadF64(), -1.5e300);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, StringRoundTripIncludingEmpty) {
  ByteWriter w;
  w.WriteString("hello");
  w.WriteString("");
  w.WriteString(std::string("with\0null", 9));
  ByteReader r(w.buffer());
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadString().size(), 9u);
}

TEST(SerializeTest, TensorRoundTrip) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  ByteWriter w;
  w.WriteTensor(t);
  ByteReader r(w.buffer());
  Tensor back = r.ReadTensor();
  EXPECT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(back.at(i), t.at(i));
  }
}

TEST(SerializeTest, EmptyAndScalarTensorRoundTrip) {
  // Default (empty) tensor: shape [0], zero elements.
  ByteWriter w;
  w.WriteTensor(Tensor{});
  ByteReader r(w.buffer());
  Tensor back = r.ReadTensor();
  EXPECT_EQ(back.shape(), Shape({0}));
  EXPECT_TRUE(back.empty());

  // Rank-0 scalar: one element.
  Tensor scalar((Shape()));
  scalar.at(0) = 6.5F;
  ByteWriter w2;
  w2.WriteTensor(scalar);
  ByteReader r2(w2.buffer());
  Tensor back2 = r2.ReadTensor();
  EXPECT_EQ(back2.shape().rank(), 0u);
  EXPECT_EQ(back2.at(0), 6.5F);
}

TEST(SerializeTest, TruncatedInputGivesDataLossStatus) {
  ByteWriter w;
  w.WriteU64(5);
  auto buf = w.TakeBuffer();
  buf.pop_back();
  ByteReader r(buf);
  std::uint64_t v = 0;
  const auto st = r.TryReadU64(v);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, CorruptTensorShapeIsRejectedNotCrashing) {
  ByteWriter w;
  w.WriteU32(2);       // rank
  w.WriteI64(1000000); // dims that cannot match payload
  w.WriteI64(1000000);
  w.WriteU64(0);       // zero floats
  ByteReader r(w.buffer());
  Tensor t;
  EXPECT_EQ(r.TryReadTensor(t).code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, ImplausibleRankRejected) {
  ByteWriter w;
  w.WriteU32(1000);
  ByteReader r(w.buffer());
  Tensor t;
  EXPECT_EQ(r.TryReadTensor(t).code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/fluid_serialize_test.bin";
  ByteWriter w;
  w.WriteString("persisted");
  ASSERT_TRUE(WriteFile(path, w.buffer()).ok());
  auto back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  ByteReader r(*back);
  EXPECT_EQ(r.ReadString(), "persisted");
  std::remove(path.c_str());

  EXPECT_EQ(ReadFile(path + ".does_not_exist").status().code(),
            StatusCode::kNotFound);
}

TEST(SerializeTest, FloatsBlockRoundTrip) {
  ByteWriter w;
  const std::vector<float> values{1.5F, -2.5F, 0.0F};
  w.WriteFloats(values);
  ByteReader r(w.buffer());
  std::vector<float> back;
  ASSERT_TRUE(r.TryReadFloats(back).ok());
  EXPECT_EQ(back, values);
}

}  // namespace
}  // namespace fluid::core
