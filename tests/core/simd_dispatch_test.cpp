// Tests for the SIMD microkernel dispatch layer: table well-formedness,
// FLUID_SIMD override resolution, per-tier parity against the scalar tier
// over the all-transpose-combo + ragged-edge grid, and per-tier bitwise
// determinism across thread counts.

#include "core/simd/gemm_kernel.h"

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gemm.h"
#include "core/parallel.h"
#include "core/rng.h"

namespace fluid::core::simd {
namespace {

// Forces a kernel for the scope of a test and restores the previously
// active one on exit.
class KernelGuard {
 public:
  explicit KernelGuard(const GemmKernel* k) : prev_(&ActiveGemmKernel()) {
    SetGemmKernelForTesting(k);
  }
  ~KernelGuard() { SetGemmKernelForTesting(prev_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  const GemmKernel* prev_;
};

TEST(SimdDispatchTest, TableIsWellFormed) {
  const auto kernels = AllGemmKernels();
  ASSERT_FALSE(kernels.empty());
  std::set<std::string> names;
  for (const GemmKernel* k : kernels) {
    ASSERT_NE(k, nullptr);
    EXPECT_TRUE(names.insert(k->name).second) << "duplicate " << k->name;
    EXPECT_GT(k->mr, 0);
    EXPECT_GT(k->nr, 0);
    EXPECT_LE(k->mr, kMaxMr);
    EXPECT_LE(k->nr, kMaxNr);
    EXPECT_EQ(k->mc % k->mr, 0) << k->name << ": MC must be a multiple of MR";
    EXPECT_GT(k->kc, 0);
    EXPECT_GE(k->nc, k->nr);
    EXPECT_NE(k->micro, nullptr);
    EXPECT_NE(k->pack_a, nullptr);
    EXPECT_NE(k->pack_b, nullptr);
    EXPECT_NE(k->supported, nullptr);
  }
  // The portable fallback is always present and always runnable.
  ASSERT_EQ(names.count("scalar"), 1U);
  EXPECT_TRUE(GemmKernelByName("scalar")->supported());
}

TEST(SimdDispatchTest, LookupByName) {
  for (const GemmKernel* k : AllGemmKernels()) {
    EXPECT_EQ(GemmKernelByName(k->name), k);
  }
  EXPECT_EQ(GemmKernelByName("neon"), nullptr);
  EXPECT_EQ(GemmKernelByName(""), nullptr);
}

TEST(SimdDispatchTest, ResolveHonoursOverrideAndFallsBackToBest) {
  // Auto selection picks the first supported entry (the table is ordered
  // best first).
  const GemmKernel* best = nullptr;
  for (const GemmKernel* k : AllGemmKernels()) {
    if (k->supported()) {
      best = k;
      break;
    }
  }
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(ResolveGemmKernel(nullptr), best);
  EXPECT_EQ(ResolveGemmKernel(""), best);

  // A known, supported name selects exactly that kernel; unsupported and
  // unknown names report failure so the env path can warn and fall back.
  for (const GemmKernel* k : AllGemmKernels()) {
    EXPECT_EQ(ResolveGemmKernel(k->name), k->supported() ? k : nullptr);
  }
  EXPECT_EQ(ResolveGemmKernel("bogus"), nullptr);
}

TEST(SimdDispatchTest, FluidSimdEnvironmentOverrideIsHonoured) {
  const GemmKernel* active_before = &ActiveGemmKernel();
  const char* saved = std::getenv("FLUID_SIMD");
  const std::string saved_value = saved ? saved : "";

  ::setenv("FLUID_SIMD", "scalar", /*overwrite=*/1);
  SetGemmKernelForTesting(nullptr);  // force re-resolution from the env
  EXPECT_STREQ(ActiveGemmKernel().name, "scalar");

  // Unknown values warn and fall back to auto-detection.
  ::setenv("FLUID_SIMD", "definitely-not-a-kernel", 1);
  SetGemmKernelForTesting(nullptr);
  EXPECT_EQ(&ActiveGemmKernel(), ResolveGemmKernel(nullptr));

  if (saved != nullptr) {
    ::setenv("FLUID_SIMD", saved_value.c_str(), 1);
  } else {
    ::unsetenv("FLUID_SIMD");
  }
  SetGemmKernelForTesting(active_before);
}

// Runs C = alpha·op(A)op(B) + beta·C through core::Gemm with the given
// kernel forced, over the full transpose grid with ragged edges spanning
// every tier's MR/NR (and k crossing every tier's KC). Returns all case
// results concatenated.
std::vector<float> RunGrid(const GemmKernel* kernel) {
  KernelGuard guard(kernel);
  std::vector<float> all;
  const std::int64_t ms[] = {1, 5, 8, 9, 17};
  const std::int64_t ns[] = {1, 15, 16, 47, 48, 49};
  const std::int64_t ks[] = {1, 9, 100, 200};  // 200 crosses KC for all tiers
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      for (const std::int64_t m : ms) {
        for (const std::int64_t n : ns) {
          for (const std::int64_t k : ks) {
            const float alpha = ((m + n) % 2 == 0) ? 1.0F : -0.75F;
            const float beta = ((m + k) % 2 == 0) ? 0.0F : 0.5F;
            Rng rng(m * 7919 + n * 131 + k * 7 + (ta ? 3 : 0) + (tb ? 5 : 0));
            const std::int64_t lda = ta ? m : k;
            const std::int64_t ldb = tb ? k : n;
            std::vector<float> a(static_cast<std::size_t>((ta ? k : m) * lda));
            std::vector<float> b(static_cast<std::size_t>((tb ? n : k) * ldb));
            std::vector<float> c(static_cast<std::size_t>(m * n));
            for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
            for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
            for (auto& v : c) v = static_cast<float>(rng.Uniform(-1, 1));
            Gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
                 c.data(), n);
            all.insert(all.end(), c.begin(), c.end());
          }
        }
      }
    }
  }
  return all;
}

TEST(SimdKernelParityTest, EveryTierMatchesScalarOnTransposeAndRaggedGrid) {
  const GemmKernel* scalar = GemmKernelByName("scalar");
  ASSERT_NE(scalar, nullptr);
  const std::vector<float> ref = RunGrid(scalar);
  for (const GemmKernel* k : AllGemmKernels()) {
    if (k == scalar || !k->supported()) continue;
    SCOPED_TRACE(k->name);
    const std::vector<float> got = RunGrid(k);
    ASSERT_EQ(got.size(), ref.size());
    // Every tier accumulates each C element in the same strictly-increasing
    // k order with FMA, so tiers agree to rounding noise; the bound is a
    // few ULP of the k<=200 dot products exercised here.
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(got[i], ref[i], 5e-5F)
          << k->name << " diverges from scalar at " << i;
    }
  }
}

TEST(SimdKernelDeterminismTest, EveryTierIsBitwiseStableAcrossThreadCounts) {
  // Spans several MC/KC blocks for every tier, with ragged edges.
  const std::int64_t m = 129, n = 65, k = 300;
  Rng rng(7);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));

  for (const GemmKernel* kern : AllGemmKernels()) {
    if (!kern->supported()) continue;
    SCOPED_TRACE(kern->name);
    KernelGuard guard(kern);
    std::vector<float> c1(static_cast<std::size_t>(m * n), 0.25F);
    std::vector<float> c4 = c1;

    const int saved = NumThreads();
    SetNumThreads(1);
    Gemm(false, false, m, n, k, 1.5F, a.data(), k, b.data(), n, 0.5F,
         c1.data(), n);
    SetNumThreads(4);
    Gemm(false, false, m, n, k, 1.5F, a.data(), k, b.data(), n, 0.5F,
         c4.data(), n);
    SetNumThreads(saved);

    for (std::size_t i = 0; i < c1.size(); ++i) {
      ASSERT_EQ(c1[i], c4[i])
          << kern->name << ": thread-count-dependent result at " << i;
    }
  }
}

}  // namespace
}  // namespace fluid::core::simd
